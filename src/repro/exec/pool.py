"""Process-pool shard scheduler for independent transient jobs.

:func:`simulate_transient_many` amortises the per-step Python cost of
topology-sharing jobs inside one process; the experiments' workloads
(Table 1 sweeps, Figure 2, ablations) are additionally *embarrassingly
parallel across processes*.  :func:`run_jobs` is the execution front end
that combines the three scaling layers of this repo:

1. **Store** — every job is first looked up in the
   :class:`~repro.exec.store.ResultStore` (when the
   :class:`~repro.exec.ExecutionConfig` carries one); hits skip
   simulation entirely and warm experiment re-runs perform zero
   transient solves.
2. **Shards** — the remaining jobs are partitioned into per-worker
   shards along :func:`~repro.circuit.transient.job_group_key`
   boundaries (so in-worker batching stays intact), large groups are
   split across workers, and each shard runs
   ``simulate_transient_many`` in a forked worker process.
3. **Batch** — inside every worker the PR-1/PR-2 batched engines do
   their usual stacked-Newton / structured-solve work.

Determinism and fallback
------------------------
Shard assignment is a pure function of the job list and worker count,
and results are merged back in submission order, so a sharded run
returns the same list (within the batched-vs-scalar engine tolerance,
<1e-9 V) as the serial path.  Adaptive (LTE-controlled) job groups are
never split across shards — their lockstep step sequence depends on the
group membership — so for them sharded and serial runs agree bit for
bit.  ``workers=1``, tiny job lists, pool creation failure, and
*per-shard worker crashes* all fall back to the deterministic
in-process path — a crash costs time, never results.

Workers can also *wedge* rather than crash — a deadlock, a stalled NFS
mount — and a wedged worker raises nothing, ever.  When the
:class:`~repro.exec.ExecutionConfig` carries a ``shard_timeout``
(``REPRO_SHARD_TIMEOUT``), every shard future gets a deadline scaled by
the shard's estimated cost (:func:`job_cost`); a future past its
deadline is abandoned (its worker process terminated so pool teardown
cannot hang either) and the shard re-solves inline exactly like the
crash path, counted in both ``fallback_shards`` and the dedicated
``timeout_shards`` diagnostic.

Workers receive their shard by pickling the jobs (circuits, sources and
options are plain data) and return ``(times, solutions, stats)`` arrays;
the parent rebuilds :class:`~repro.circuit.transient.TransientResult`
objects against its own compiled systems, so solver handles and other
unpicklables never cross the process boundary.
"""

from __future__ import annotations

import multiprocessing as mp
import sys
import time
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout

import numpy as np

from ..circuit.mna import MnaSystem
from ..circuit.transient import (TransientJob, TransientResult, job_group_key,
                                 simulate_transient_many)
from ..faults import FaultError, maybe_fault
from .config import ExecutionConfig, default_execution

__all__ = ["run_jobs", "run_indexed", "make_shards", "job_cost",
           "fleet_stats", "reset_fleet_stats"]


def _honour_entry_fault(rule) -> None:
    """Act out an injected worker-entry fault (chaos harness only).

    ``crash`` raises in the worker — the parent sees a dead future and
    re-solves the shard inline; ``wedge``/``slow`` sleep — a wedge long
    enough to trip the shard deadline, a slow just perturbing timing.
    """
    if rule.kind == "crash":
        raise FaultError(f"injected {rule.point} crash")
    time.sleep(rule.delay())


def _simulate_shard(jobs: list[TransientJob],
                    fault_token: "int | None" = None) -> list[tuple[np.ndarray, np.ndarray, dict]]:
    """Worker entry point: solve a shard, return picklable payloads.

    ``fault_token`` is the shard index — a stable token, so which shards
    an injected plan crashes or wedges is predictable from the parent
    (:func:`repro.faults.would_fire`) even though the fire itself
    happens (and dies) worker-side.
    """
    rule = maybe_fault("pool.worker", fault_token)
    if rule is not None:
        _honour_entry_fault(rule)
    results = simulate_transient_many(jobs)
    return [(r.times, r._x, r.stats) for r in results]


# ----------------------------------------------------------------------
# Fleet stats: cross-call, cross-worker solver totals
# ----------------------------------------------------------------------

#: Process-wide accumulator over every :func:`run_jobs` call.  Worker
#: stats come home inside each result's payload, so sharded runs
#: contribute exactly like serial ones.
_FLEET: dict = {}

#: Per-result stats entries that are not additive counters.
_FLEET_SKIP = frozenset({"batch_size", "backend", "kernel", "adaptive"})


def reset_fleet_stats() -> None:
    """Zero the process-wide fleet totals."""
    _FLEET.clear()


def _fleet_round(value: float) -> "int | float":
    return int(round(value)) if abs(value - round(value)) < 1e-6 else value


def fleet_stats() -> dict:
    """Solver totals accumulated across every :func:`run_jobs` call.

    ``runs``/``jobs``/``store_hits``/``store_misses``/``shards``/
    ``fallback_shards`` describe the execution layer; the engine
    counters (``newton_iters``, ``halvings``, ``matrix_builds``,
    ``newton_fallbacks``, adaptive's ``lte_rejects`` …) are the fleet
    sums of the per-group transient stats, merged across workers.
    Per-group counters are recovered exactly from the per-result copies
    (see :func:`_accumulate_fleet`), so integer counters come back as
    integers.
    """
    flat = {k: _fleet_round(v) for k, v in _FLEET.items()
            if not isinstance(v, dict)}
    for k, v in _FLEET.items():
        if isinstance(v, dict):
            flat[k] = {kk: vv for kk, vv in v.items()}
    return flat


def _accumulate_fleet(solved: "list[TransientResult | None]",
                      info: dict) -> None:
    """Fold one call's solved results and diagnostics into the fleet.

    Every member of a batched solve group carries an identical *copy* of
    the group's stats dict (and sharded groups come home as exactly the
    members the worker solved together), so each group counter is summed
    ``batch_size`` times at weight ``1/batch_size`` — recovering the
    group total without needing a shared-identity marker that would not
    survive pickling.  Store hits contribute nothing: their simulations
    ran (and were counted) when the store was populated.
    """
    _FLEET["runs"] = _FLEET.get("runs", 0) + 1
    for key in ("jobs", "store_hits", "store_misses", "shards",
                "fallback_shards", "timeout_shards"):
        _FLEET[key] = _FLEET.get(key, 0) + info.get(key, 0)
    for res in solved:
        if res is None:
            continue
        stats = res.stats
        weight = 1.0 / max(1, int(stats.get("batch_size", 1)))
        for key, value in stats.items():
            if key in _FLEET_SKIP:
                continue
            if isinstance(value, dict):
                bucket = _FLEET.setdefault(key, {})
                for kk, vv in value.items():
                    bucket[kk] = bucket.get(kk, 0.0) + vv * weight
            elif isinstance(value, (int, float)) \
                    and not isinstance(value, bool):
                _FLEET[key] = _FLEET.get(key, 0.0) + value * weight


def job_cost(job: TransientJob, mna: MnaSystem) -> float:
    """Relative wall-clock estimate of one transient job.

    ``n_steps × size² × (1 + n_mosfets)``: the per-step cost of every
    engine is dominated by work over the (size × size) system, and
    MOSFET circuits pay it once per Newton *iteration* rather than once
    per step — the device count is the cheap proxy for how many.  Only
    relative magnitudes matter; the units are arbitrary.
    """
    n_steps = max(1, int(round((job.t_stop - job.t_start) / job.dt)))
    return float(n_steps) * float(mna.size) ** 2 * (1.0 + mna.n_mosfets)


def make_shards(indices: Sequence[int], jobs: Sequence[TransientJob],
                mnas: Sequence[MnaSystem], n_workers: int) -> list[list[int]]:
    """Partition job ``indices`` into at most ``n_workers`` shards.

    Groups of batch-compatible jobs (equal
    :func:`~repro.circuit.transient.job_group_key`) are kept contiguous
    so each worker still batches internally; a group whose estimated
    cost (:func:`job_cost` — heterogeneous Table-1 + interconnect mixes
    are *not* uniform per job, so raw job counts skew wall-clock)
    exceeds the per-worker cost target is split into chunks — except
    *adaptive* groups (``TransientOptions.adaptive``), which always stay
    whole: the LTE-controlled engine advances a group in lockstep on the
    minimum accepted stride, so a job's accepted grid depends on its
    group membership, and splitting would make the sharded run diverge
    from the serial one.  Chunks go to the least-loaded shard by
    accumulated cost (ties to the lowest shard index), which is
    deterministic for a given job list and worker count.
    """
    groups: dict[tuple, list[int]] = {}
    for k in indices:
        groups.setdefault(job_group_key(jobs[k], mnas[k]), []).append(k)
    costs = {k: job_cost(jobs[k], mnas[k]) for k in indices}
    target = sum(costs.values()) / max(1, n_workers)

    chunks: list[tuple[list[int], float]] = []
    for members in groups.values():
        opts = jobs[members[0]].options
        if opts is not None and opts.adaptive:
            chunks.append((members, sum(costs[k] for k in members)))
            continue
        chunk: list[int] = []
        chunk_cost = 0.0
        for k in members:
            if chunk and chunk_cost + costs[k] > target:
                chunks.append((chunk, chunk_cost))
                chunk, chunk_cost = [], 0.0
            chunk.append(k)
            chunk_cost += costs[k]
        if chunk:
            chunks.append((chunk, chunk_cost))

    shards: list[list[int]] = [[] for _ in range(n_workers)]
    loads = [0.0] * n_workers
    # Stable sort: equal-cost chunks keep their group build order, so the
    # assignment is a pure function of the job list and worker count.
    for chunk, cost in sorted(chunks, key=lambda c: c[1], reverse=True):
        w = loads.index(min(loads))
        shards[w].extend(chunk)
        loads[w] += cost
    return [s for s in shards if s]


def _run_indexed_chunk(fn, indices: list[int]) -> list:
    """Worker entry point for :func:`run_indexed`: evaluate one chunk.

    The fault token is the chunk's first index — stable for a given
    ``(count, workers)``, so injected crashes land on predictable
    chunks.  ``wedge`` is not a declared kind here: ``run_indexed`` has
    no deadline, so a wedge would hang the run rather than test it.
    """
    rule = maybe_fault("pool.indexed", indices[0] if indices else 0)
    if rule is not None:
        _honour_entry_fault(rule)
    return [fn(i) for i in indices]


def run_indexed(
    fn,
    count: int,
    execution: ExecutionConfig | None = None,
    diag: dict | None = None,
) -> list:
    """Evaluate ``[fn(0), fn(1), ..., fn(count-1)]``, sharded over workers.

    The generic fan-out companion of :func:`run_jobs` for index-addressed
    work that is not a transient job — Monte-Carlo samples above all.
    ``fn`` must be picklable (a module-level function or
    ``functools.partial`` over one) and *pure in its index*: each call
    derives everything it needs (e.g. an RNG stream) from ``i`` alone,
    which is what makes the result independent of the sharding.

    Determinism contract: results come back in index order, and the
    value of ``fn(i)`` cannot depend on the worker count, so
    ``run_indexed(fn, n, cfg)`` is *bit-identical* for every
    ``cfg.workers`` — the property the statistical STA smoke asserts.

    Failure handling mirrors :func:`run_jobs`: pool-creation failure and
    per-chunk worker crashes fall back to evaluating the chunk inline,
    counted in ``diag["fallback_shards"]``; a crash costs time, never
    results or determinism.
    """
    require_count = int(count)
    if require_count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    cfg = execution if execution is not None else default_execution()
    workers = max(1, int(cfg.workers))
    info = {"mode": "serial", "jobs": require_count, "shards": 0,
            "fallback_shards": 0}
    if diag is not None:
        diag.update(info)
    if require_count == 0:
        return []

    if workers == 1 or require_count < cfg.min_pool_jobs:
        results = [fn(i) for i in range(require_count)]
        if diag is not None:
            diag.update(info)
        return results

    # Contiguous chunks, one per worker: a pure function of (count,
    # workers), and irrelevant to the results by the purity contract.
    n_chunks = min(workers, require_count)
    bounds = [round(require_count * w / n_chunks) for w in range(n_chunks + 1)]
    chunks = [list(range(bounds[w], bounds[w + 1])) for w in range(n_chunks)]
    chunks = [c for c in chunks if c]
    info.update({"mode": "sharded", "shards": len(chunks)})

    results: list = [None] * require_count
    try:
        executor = ProcessPoolExecutor(max_workers=len(chunks),
                                       mp_context=_pool_context())
    except Exception:
        info.update({"mode": "serial", "shards": 0})
        info["fallback_shards"] += len(chunks)
        for chunk in chunks:
            for i in chunk:
                results[i] = fn(i)
        if diag is not None:
            diag.update(info)
        return results

    with executor:
        futures = [(chunk, executor.submit(_run_indexed_chunk, fn, chunk))
                   for chunk in chunks]
        for chunk, future in futures:
            try:
                payload = future.result()
            except Exception:
                # Worker crash / pickling failure: re-evaluate inline —
                # same values by the purity contract.
                info["fallback_shards"] += 1
                payload = [fn(i) for i in chunk]
            for i, value in zip(chunk, payload):
                results[i] = value
    if diag is not None:
        diag.update(info)
    return results


def _pool_context():
    """Prefer ``fork`` on Linux (cheap, no scipy re-import per worker).

    Elsewhere use the platform default: fork-without-exec is unsafe with
    macOS's Objective-C/Accelerate runtimes — the reason CPython made
    ``spawn`` the macOS default.
    """
    if sys.platform == "linux" and "fork" in mp.get_all_start_methods():
        return mp.get_context("fork")
    return mp.get_context()


def run_jobs(
    jobs: Sequence[TransientJob],
    execution: ExecutionConfig | None = None,
    diag: dict | None = None,
) -> list[TransientResult]:
    """Run many independent transient jobs through the execution layer.

    Results come back in submission order and are numerically equivalent
    (within the engines' <1e-9 V batched-vs-scalar tolerance) to
    ``simulate_transient_many(jobs)``; with a warm store they are *bit
    identical* to the run that populated it.  Adaptive job groups are
    handled coherently everywhere membership matters within a call —
    shards never split them, and a *partially*-warm adaptive group
    discards its store hits and re-solves whole — so every adaptive
    group this call actually solves uses exactly the serial baseline's
    lockstep grouping.  A *fully*-warm adaptive hit, however, replays
    the accepted grid of whatever submission populated the store (the
    content key deliberately ignores group membership), which may differ
    from the grid the current submission would produce; both lie within
    the LTE tolerance of the same fixed-grid golden, which is the
    adaptive engine's equivalence contract.

    Parameters
    ----------
    jobs:
        The simulations to perform.
    execution:
        Worker/store configuration; ``None`` uses
        :func:`~repro.exec.config.default_execution` (the
        ``REPRO_WORKERS`` / ``REPRO_STORE`` environment knobs).
    diag:
        Optional dict filled with run diagnostics: ``mode``
        (``"serial"``/``"sharded"``), ``jobs``, ``store_hits``,
        ``store_misses``, ``shards``, ``fallback_shards`` (shards whose
        worker failed — or timed out — and were re-run in-process) and
        ``timeout_shards`` (the subset of those abandoned at their
        ``shard_timeout`` deadline).
    """
    jobs = list(jobs)
    cfg = execution if execution is not None else default_execution()
    info = {"mode": "serial", "jobs": len(jobs), "store_hits": 0,
            "store_misses": 0, "shards": 0, "fallback_shards": 0,
            "timeout_shards": 0}
    if diag is not None:
        diag.update(info)
    if not jobs:
        return []

    store = cfg.store
    workers = max(1, int(cfg.workers))
    if store is None and workers == 1:
        results = simulate_transient_many(jobs)
        _accumulate_fleet(results, info)
        return results

    results: list[TransientResult | None] = [None] * len(jobs)
    mnas = [MnaSystem(job.circuit) for job in jobs]
    keys: list[str | None] = [None] * len(jobs)
    pending: list[int] = []
    for k, (job, mna) in enumerate(zip(jobs, mnas)):
        if store is not None:
            key = store.key_for(job, mna)
            keys[k] = key
            if key is not None:
                cached = store.lookup(key, job, mna)
                if cached is not None:
                    results[k] = cached
                    continue
        pending.append(k)
    if store is not None and pending:
        pending = _coherent_adaptive_pending(jobs, mnas, results, pending,
                                             keys, store)
    if store is not None:
        info["store_hits"] = len(jobs) - len(pending)
        info["store_misses"] = len(pending)

    if pending:
        if workers == 1 or len(pending) < cfg.min_pool_jobs:
            solved = simulate_transient_many([jobs[k] for k in pending],
                                             mnas=[mnas[k] for k in pending])
            for k, res in zip(pending, solved):
                results[k] = res
        else:
            _run_sharded(pending, jobs, mnas, results, workers, info,
                         shard_timeout=cfg.shard_timeout)

    if store is not None:
        for k in pending:
            if keys[k] is not None:
                try:
                    store.store(keys[k], results[k])
                except Exception:
                    # Persistence is an optimisation: a full disk or
                    # revoked permission must degrade to an uncached run,
                    # never discard hours of completed simulation.  The
                    # store itself already degrades to miss-only on write
                    # failure; this belt catches anything it cannot.
                    store.write_failures += 1
    if diag is not None:
        diag.update(info)
    _accumulate_fleet([results[k] for k in pending], info)
    return results  # type: ignore[return-value]


def _coherent_adaptive_pending(
    jobs: list[TransientJob],
    mnas: list[MnaSystem],
    results: "list[TransientResult | None]",
    pending: list[int],
    keys: "list[str | None]",
    store,
) -> list[int]:
    """Discard store hits of partially-warm *adaptive* groups.

    The LTE-controlled engine advances a batch-compatible group in
    lockstep, so a job's accepted grid (and waveforms, within the LTE
    tolerance) depend on which group it solves with.  If only some
    members of an adaptive group hit the store, re-solving just the
    misses would run them in a smaller group than the serial baseline
    ``simulate_transient_many(jobs)`` uses — the whole group re-solves
    (and re-stores) instead, keeping ``run_jobs`` equivalent to the
    baseline for adaptive jobs too.  The discarded lookups are recounted
    as misses.  Fully-warm and fully-cold groups are unaffected, so warm
    reruns still perform zero solves.
    """
    groups: dict[tuple, list[int]] = {}
    for k, (job, mna) in enumerate(zip(jobs, mnas)):
        opts = job.options
        if opts is not None and opts.adaptive:
            groups.setdefault(job_group_key(job, mna), []).append(k)
    pending_set = set(pending)
    for members in groups.values():
        missed = sum(k in pending_set for k in members)
        if 0 < missed < len(members):
            for k in members:
                if k not in pending_set:
                    results[k] = None
                    pending_set.add(k)
                    store.discard_hit(keys[k])
    return sorted(pending_set)


def _shard_deadlines(shards: list[list[int]], jobs: Sequence[TransientJob],
                     mnas: Sequence[MnaSystem],
                     shard_timeout: float) -> "list[float | None]":
    """Per-shard deadline budgets in seconds (``None`` = wait forever).

    ``shard_timeout`` is the budget of an *average-cost* shard of this
    run; each shard's own budget scales with its estimated cost
    (:func:`job_cost`), never below the base — a shard three times the
    mean gets three times as long before it is declared wedged, so one
    knob serves heterogeneous Table-1 + interconnect mixes without
    killing their slowest (largest), healthy shard.
    """
    if shard_timeout <= 0.0:
        return [None] * len(shards)
    shard_costs = [sum(job_cost(jobs[k], mnas[k]) for k in shard)
                   for shard in shards]
    mean_cost = sum(shard_costs) / max(1, len(shard_costs))
    if mean_cost <= 0.0:
        return [shard_timeout] * len(shards)
    return [shard_timeout * max(1.0, cost / mean_cost)
            for cost in shard_costs]


def _abandon_pool(executor: ProcessPoolExecutor) -> None:
    """Tear down a pool that still holds wedged workers.

    ``shutdown(wait=True)`` — and interpreter exit, which joins the
    executor's management thread — would block on a wedged worker
    forever, re-creating the very hang the shard deadline just broke.
    Every healthy shard's payload has already been collected by the
    time this runs, so terminating the remaining worker processes loses
    nothing; the management thread then observes the broken pool and
    exits on its own.
    """
    for proc in list((getattr(executor, "_processes", None) or {}).values()):
        try:
            proc.terminate()
        except (OSError, ValueError):
            pass  # already exited / already closed
    executor.shutdown(wait=False, cancel_futures=True)


def _run_sharded(
    pending: list[int],
    jobs: list[TransientJob],
    mnas: list[MnaSystem],
    results: list[TransientResult | None],
    workers: int,
    info: dict,
    shard_timeout: float = 0.0,
) -> None:
    """Solve ``pending`` across a process pool, serial fallback on failure.

    With ``shard_timeout > 0`` every shard future gets a cost-scaled
    deadline (:func:`_shard_deadlines`); a worker past its deadline is
    abandoned and its shard re-solved inline, deterministically, exactly
    like the crash path — counted in ``fallback_shards`` *and*
    ``timeout_shards``.
    """
    shards = make_shards(pending, jobs, mnas, workers)
    info.update({"mode": "sharded", "shards": len(shards)})

    def solve_inline(shard: list[int]) -> None:
        solved = simulate_transient_many([jobs[k] for k in shard],
                                         mnas=[mnas[k] for k in shard])
        for k, res in zip(shard, solved):
            results[k] = res

    try:
        executor = ProcessPoolExecutor(max_workers=len(shards),
                                       mp_context=_pool_context())
    except Exception:
        # Pool creation can fail outright (fork limits, missing
        # semaphores in containers); degrade to the deterministic
        # in-process path, counted per shard in the diagnostics.
        info.update({"mode": "serial", "shards": 0})
        info["fallback_shards"] += len(shards)
        for shard in shards:
            solve_inline(shard)
        return

    budgets = _shard_deadlines(shards, jobs, mnas, shard_timeout)
    abandoned = False
    try:
        futures = [(shard, executor.submit(_simulate_shard,
                                           [jobs[k] for k in shard], s_idx))
                   for s_idx, shard in enumerate(shards)]
        # All shards run concurrently (max_workers == len(shards)), so
        # absolute deadlines are measured from one submission instant;
        # waiting for them in submission order costs nothing.
        t_submit = time.monotonic()
        for (shard, future), budget in zip(futures, budgets):
            try:
                if budget is None:
                    payload = future.result()
                else:
                    remaining = t_submit + budget - time.monotonic()
                    payload = future.result(timeout=max(0.0, remaining))
            except _FutureTimeout:
                # A *wedged* worker (deadlock, NFS stall) raises
                # nothing, ever — without this deadline the whole run
                # hangs even though crashes fall back cleanly.  Abandon
                # the future and re-solve inline.
                future.cancel()
                abandoned = True
                info["timeout_shards"] += 1
                info["fallback_shards"] += 1
                solve_inline(shard)
                continue
            except Exception:
                # A dead or failing worker (crash, OOM kill, pickling
                # error) must not take the run down: re-solve its shard
                # in-process, deterministically.
                info["fallback_shards"] += 1
                solve_inline(shard)
                continue
            for k, (times, x, stats) in zip(shard, payload):
                results[k] = TransientResult(mnas[k], times, x, stats=stats)
    finally:
        if abandoned:
            _abandon_pool(executor)
        else:
            executor.shutdown(wait=True)
