"""Content-keyed on-disk store of transient-simulation results.

The experiments re-simulate identical (circuit, stimulus, grid) jobs
across runs: Table 1 and Figure 2 share noise cases, ablations re-sweep
the same alignments, and ``propagate_path`` re-simulates quiet references
per technique.  The in-memory
:class:`~repro.sta.noise_aware.QuietReferenceCache` showed the pattern;
this module generalises it to *every* :class:`~repro.circuit.transient.TransientJob`
and persists the results on disk, so repeat experiment runs are
near-free.

Keying
------
An entry is addressed by a SHA-256 over the full *content* of a job —
nothing positional or environmental:

* the circuit's :meth:`~repro.circuit.mna.MnaSystem.topology_signature`
  (element lists, node order, ``gmin``),
* a fingerprint of every independent source function
  (:meth:`~repro.circuit.sources.SourceFunction.content_fingerprint` —
  exact for DC/PWL/waveform sources; sources without a fingerprint make
  the job *uncacheable*, never silently mis-keyed),
* the time grid ``(t_start, t_stop, dt)``,
* the initial state (``use_ic`` plus the sorted ``initial_voltages``
  items — the DC *seed* steers the Newton path, so it keys the entry),
* every :class:`~repro.circuit.transient.TransientOptions` field (sorted
  by field name, so construction order is irrelevant) — including the
  stepping mode and LTE tolerances, so an adaptive run and a fixed-grid
  run of the same job can never alias each other's entries (stored
  adaptive results replay their accepted non-uniform grid), and
* :data:`STORE_VERSION`, bumped whenever the solver's numerics change —
  stale stores invalidate themselves instead of replaying old waveforms.

Changing *any* component changes the key; see the README for the
resulting invalidation rules.

Storage
-------
One ``<key>.npz`` file per entry under the store root, written to a
temporary file and atomically renamed (a crashed writer can never leave a
half-entry under the final name).  Lookups validate shapes against the
job's compiled system; an unreadable or mis-shaped entry is counted in
``corrupt``, deleted, and treated as a miss, so the store self-heals.
Hits touch the file's mtime, and inserts evict least-recently-used
entries until the store fits ``max_bytes``.  ``hits`` / ``misses`` /
``corrupt`` / ``evictions`` counters double as the test spy, surfaced
alongside the quiet-reference cache by
:func:`repro.sta.noise_aware.quiet_cache_stats`.
"""

from __future__ import annotations

import dataclasses
import errno
import hashlib
import io
import os
import re
import struct
import warnings
from collections.abc import Mapping
from pathlib import Path

import numpy as np

from .._knobs import DEFAULT_STORE_MAX_BYTES
from .._util import require
from ..circuit.mna import MnaSystem
from ..circuit.transient import TransientJob, TransientOptions, TransientResult
from ..faults import FaultError, maybe_fault

__all__ = ["STORE_VERSION", "KEYED_FIELDS", "NO_KEY", "UnkeyableJobError",
           "ResultStore", "job_key", "dc_key", "content_key", "DcStoreMemo"]

#: Bump when solver numerics change in a way that should invalidate
#: previously stored waveforms.
#:
#: 2 — adaptive LTE-controlled stepping: results may live on non-uniform
#:     grids and every :class:`TransientOptions` gained stepping fields
#:     (``adaptive``/``lte_rtol``/``lte_atol``/``max_step``/``min_step``)
#:     that participate in the key, so pre-adaptive entries — which were
#:     keyed without a stepping mode — must stop matching.
#: 3 — pattern-frozen sparse Newton for MOSFET circuits: large gate +
#:     interconnect netlists now iterate through structured
#:     refactorizations whose waveforms differ from the dense path at
#:     the ~1e-12 V level, and the store gained DC operating-point
#:     entries (:func:`dc_key`) alongside the transient ones.
STORE_VERSION = 3

#: Default size budget of a store (bytes) unless overridden; the value
#: lives in :mod:`repro._knobs` next to the ``REPRO_STORE_MAX_BYTES``
#: knob that overrides it.
DEFAULT_MAX_BYTES = DEFAULT_STORE_MAX_BYTES

#: :class:`TransientOptions` fields that participate in every transient
#: store key.  Together with :data:`NO_KEY` this must cover *every*
#: dataclass field — :func:`_options_items` enforces it at runtime (so a
#: new field fails loudly at first keying, not via stale cache hits) and
#: reprolint's ``store-key`` rule proves it statically in CI.  Adding a
#: result-affecting option means adding it here *and* bumping
#: :data:`STORE_VERSION`.
KEYED_FIELDS = frozenset({
    "abstol", "max_newton", "max_halvings", "v_limit", "backend",
    "adaptive", "lte_rtol", "lte_atol", "max_step", "min_step",
})

#: Names that must NEVER enter a store key because they cannot affect
#: results.  ``kernel`` is declared even though it lives on
#: ``ExecutionConfig`` today: the PR-6 contract is that the array-kernel
#: choice only renames which machine runs the arithmetic, so a store
#: warmed under one backend must stay warm under the other — if the
#: knob ever migrates onto :class:`TransientOptions`, this entry keeps
#: it out of the keys (entries here need not be current fields; the set
#: is a blocklist, not an inventory).
NO_KEY = frozenset({"kernel"})

require(KEYED_FIELDS.isdisjoint(NO_KEY),
        "KEYED_FIELDS and NO_KEY overlap; a field cannot both key the "
        "store and be banned from its keys")

#: Inserts between full directory rescans of the size counter (bounds
#: the eviction-trigger drift when several processes share one root).
_RESCAN_EVERY = 64

#: Eviction drains the store to this fraction of ``max_bytes``: stopping
#: exactly at the budget would leave the very next insert over it again,
#: re-paying _evict's full directory scan on every store() once full.
_EVICT_WATERMARK = 0.9

#: Pre-hit recency stamps remembered for :meth:`ResultStore.discard_hit`
#: (bounded: discards follow their lookup within one ``run_jobs`` call,
#: so only the most recent hits ever need restoring).
_RECENCY_REMEMBERED = 1024

#: Namespaces are path components of entry filenames; constrain them so
#: a tenant name can never escape the store root or collide with the
#: ``<key>.npz`` entries of the default namespace.
_NAMESPACE_OK = re.compile(r"[A-Za-z0-9._-]{1,64}")


class UnkeyableJobError(TypeError):
    """A job contains content no canonical fingerprint exists for."""


# ----------------------------------------------------------------------
# Canonical hashing
# ----------------------------------------------------------------------
def _update(h, obj) -> None:
    """Feed ``obj`` into hash ``h`` with an unambiguous type-tagged encoding.

    Every supported value hashes the same regardless of container
    insertion order (mappings are sorted by key) or numpy vs builtin
    scalar type; unsupported objects raise :class:`UnkeyableJobError`.
    """
    if obj is None:
        h.update(b"\x00N")
    elif isinstance(obj, (bool, np.bool_)):
        h.update(b"\x00B1" if obj else b"\x00B0")
    elif isinstance(obj, (int, np.integer)):
        enc = str(int(obj)).encode()
        h.update(b"\x00I" + len(enc).to_bytes(4, "big") + enc)
    elif isinstance(obj, (float, np.floating)):
        h.update(b"\x00F" + struct.pack(">d", float(obj)))
    elif isinstance(obj, str):
        enc = obj.encode()
        h.update(b"\x00S" + len(enc).to_bytes(8, "big") + enc)
    elif isinstance(obj, bytes):
        h.update(b"\x00Y" + len(obj).to_bytes(8, "big") + obj)
    elif isinstance(obj, np.ndarray):
        a = np.ascontiguousarray(obj)
        h.update(b"\x00A" + str(a.dtype).encode() + b"|" + str(a.shape).encode() + b"|")
        h.update(a.tobytes())
    elif isinstance(obj, (tuple, list)):
        h.update(b"\x00T" + len(obj).to_bytes(8, "big"))
        for item in obj:
            _update(h, item)
    elif isinstance(obj, Mapping):
        items = sorted(obj.items(), key=lambda kv: str(kv[0]))
        h.update(b"\x00M" + len(items).to_bytes(8, "big"))
        for k, v in items:
            _update(h, k)
            _update(h, v)
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        h.update(b"\x00D" + type(obj).__qualname__.encode())
        for f in sorted(dataclasses.fields(obj), key=lambda f: f.name):
            _update(h, f.name)
            _update(h, getattr(obj, f.name))
    else:
        raise UnkeyableJobError(
            f"no canonical fingerprint for {type(obj).__qualname__!r}")


def _options_items(options: TransientOptions) -> tuple:
    """The *keyed* options as ``(name, value)`` pairs sorted by field name.

    Runtime mirror of reprolint's ``store-key`` rule: every dataclass
    field must be declared in exactly one of :data:`KEYED_FIELDS` /
    :data:`NO_KEY`, and every keyed name must still be a field.  An
    undeclared field would otherwise either silently alias cached
    waveforms (left out of the key) or silently fragment the store
    (keyed without a ``STORE_VERSION`` decision); both fail here, at
    import/test time, instead.
    """
    names = {f.name for f in dataclasses.fields(options)}
    undeclared = names - KEYED_FIELDS - NO_KEY
    require(not undeclared,
            f"TransientOptions field(s) {sorted(undeclared)} are declared in "
            f"neither KEYED_FIELDS nor NO_KEY; decide whether they affect "
            f"results and register them in repro.exec.store")
    stale = KEYED_FIELDS - names
    require(not stale,
            f"KEYED_FIELDS name(s) {sorted(stale)} are not TransientOptions "
            f"fields; remove the stale declaration")
    return tuple(sorted(
        (name, getattr(options, name)) for name in names & KEYED_FIELDS))


def job_key(job: TransientJob, mna: MnaSystem | None = None) -> str:
    """SHA-256 content key of a transient job (hex digest).

    Parameters
    ----------
    job:
        The job to fingerprint.
    mna:
        Optionally a pre-compiled :class:`~repro.circuit.mna.MnaSystem`
        of ``job.circuit`` (avoids recompiling when the caller already
        holds one).

    Raises
    ------
    UnkeyableJobError
        When a source function (or other job content) has no canonical
        fingerprint; such jobs must not be cached.
    """
    mna = mna if mna is not None else MnaSystem(job.circuit)
    h = hashlib.sha256()
    _update(h, ("repro-transient-job", STORE_VERSION))
    _update(h, mna.topology_signature())
    try:
        # The SourceFunction base raises NotImplementedError for sources
        # without a canonical fingerprint; normalise to the one exception
        # type callers treat as "uncacheable".
        _update(h, tuple(v.source.content_fingerprint()
                         for v in job.circuit.vsources))
        _update(h, tuple(i.source.content_fingerprint()
                         for i in job.circuit.isources))
    except NotImplementedError as exc:
        raise UnkeyableJobError(str(exc)) from exc
    _update(h, (float(job.t_start), float(job.t_stop), float(job.dt)))
    _update(h, bool(job.use_ic))
    _update(h, tuple(sorted(
        (str(node), float(v))
        for node, v in (job.initial_voltages or {}).items()
    )))
    _update(h, _options_items(job.options or TransientOptions()))
    return h.hexdigest()


def dc_key(circuit, mna: MnaSystem, at_time: float,
           seed: "Mapping[str, float] | None") -> str:
    """SHA-256 content key of a DC operating-point solve (hex digest).

    Same canonical machinery as :func:`job_key` over what determines the
    operating point: topology signature, source fingerprints, the sample
    time and the Newton seed (which steers the solution a multi-stable
    circuit converges to, so it keys the entry).  The solver backend is
    deliberately excluded — every backend computes the same point.

    Raises
    ------
    UnkeyableJobError
        When a source function has no canonical fingerprint.
    """
    h = hashlib.sha256()
    _update(h, ("repro-dc-op", STORE_VERSION))
    _update(h, mna.topology_signature())
    try:
        _update(h, tuple(v.source.content_fingerprint()
                         for v in circuit.vsources))
        _update(h, tuple(i.source.content_fingerprint()
                         for i in circuit.isources))
    except NotImplementedError as exc:
        raise UnkeyableJobError(str(exc)) from exc
    _update(h, float(at_time))
    _update(h, tuple(sorted(
        (str(node), float(v)) for node, v in (seed or {}).items()
    )))
    return h.hexdigest()


def content_key(label: str, payload) -> str:
    """SHA-256 content key of an arbitrary canonical-hashable payload.

    The public face of the store's canonical hashing for consumers that
    key something other than a transient job — the run journal
    (:mod:`repro.exec.journal`) keys a whole sweep with it.  Same
    machinery, same :data:`STORE_VERSION` scoping, same
    :class:`UnkeyableJobError` on content without a canonical form.
    """
    h = hashlib.sha256()
    _update(h, (str(label), STORE_VERSION))
    _update(h, payload)
    return h.hexdigest()


def _faulted_write(fault, f, arrays: dict) -> None:
    """Act out an injected ``store.write`` fault on an open temp file.

    ``partial`` writes half the encoded entry then raises (a torn write
    the atomic-rename path must clean up); ``enospc`` raises the real
    ``OSError(ENOSPC)`` a full disk produces.
    """
    if fault.kind == "partial":
        buf = io.BytesIO()
        np.savez(buf, **arrays)
        payload = buf.getvalue()
        f.write(payload[:max(1, len(payload) // 2)])
        raise OSError("injected partial store write")
    if fault.kind == "enospc":
        raise OSError(errno.ENOSPC, os.strerror(errno.ENOSPC))
    np.savez(f, **arrays)


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
class ResultStore:
    """Content-keyed on-disk store of :class:`TransientResult` arrays.

    Parameters
    ----------
    root:
        Directory holding the entries (created on first use).
    max_bytes:
        Size budget; inserts evict least-recently-used entries (by file
        mtime, refreshed on every hit) until the store fits.  The entry
        being inserted is never evicted by its own insert.
    namespace:
        Optional tenant prefix on every entry filename
        (``<namespace>--<key>.npz``).  Namespaces sharing one ``root``
        never alias each other's entries — the same job stored by two
        tenants lives twice — while the size budget, rescans and LRU
        eviction stay root-wide (one shared disk).  :meth:`clear`
        deletes only this namespace's entries; :meth:`namespaced`
        derives a tenant view from an existing store.

    Counters (``hits``/``misses``/``corrupt``/``evictions``/``stores``/
    ``uncacheable``) are per-instance and reset by :meth:`clear`;
    ``misses`` counts every failed lookup, including the ``corrupt``
    ones.
    """

    def __init__(self, root: str | os.PathLike, max_bytes: int = DEFAULT_MAX_BYTES,
                 namespace: str = ""):
        require(max_bytes > 0, "store size budget must be positive")
        require(namespace == "" or _NAMESPACE_OK.fullmatch(namespace) is not None,
                f"invalid store namespace {namespace!r}: need 1-64 chars "
                f"from [A-Za-z0-9._-]")
        self.root = Path(root)
        self.max_bytes = int(max_bytes)
        self.namespace = namespace
        # Running on-disk byte total, seeded by one directory scan on
        # first need and maintained incrementally — inserts must not pay
        # an O(entries) rescan each (cold runs store thousands of
        # entries).  ``None`` means "stale, rescan before trusting";
        # periodically invalidated so concurrent writers sharing the
        # root can only drift the eviction trigger by a bounded amount.
        self._total_bytes: int | None = None
        self._stores_since_rescan = 0
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.evictions = 0
        self.stores = 0
        self.uncacheable = 0
        self.write_failures = 0
        # Latched by the first failed write: a store that cannot persist
        # keeps *serving* (reads still hit) but stops paying for writes
        # that will fail again — and stops spamming one warning per
        # entry.  clear() resets it (fresh root, fresh chances).
        self.miss_only = False
        # DC operating-point entries are counted apart from the transient
        # ones: the warm-run contracts differ ("zero transient solves"
        # vs "zero DC Newton solves") and tests spy them separately.
        self.dc_hits = 0
        self.dc_misses = 0
        self.dc_stores = 0
        # Keys whose corrupt entry could not be unlinked (read-only
        # store root): each is counted in ``corrupt`` exactly once —
        # without the memo every lookup of such a key re-counted it
        # *and* invalidated the incremental byte total, re-paying a
        # full directory rescan per lookup.
        self._undeletable: set[str] = set()
        # key -> (atime, mtime) captured just before a hit's os.utime,
        # so :meth:`discard_hit` can restore the entry's LRU recency.
        self._pre_hit_times: dict[str, tuple[float, float]] = {}

    def namespaced(self, namespace: str) -> "ResultStore":
        """A tenant view of the same root: same size budget, prefixed keys.

        Counters are per-view (fresh on the returned store), matching
        the service's per-tenant accounting; the on-disk budget and LRU
        eviction remain shared across all namespaces of the root.
        """
        return ResultStore(self.root, max_bytes=self.max_bytes,
                           namespace=namespace)

    # -- keys ----------------------------------------------------------
    def key_for(self, job: TransientJob, mna: MnaSystem | None = None) -> str | None:
        """The job's content key, or ``None`` (counted) when uncacheable."""
        try:
            return job_key(job, mna)
        except UnkeyableJobError:
            self.uncacheable += 1
            return None

    def _path(self, key: str) -> Path:
        if self.namespace:
            return self.root / f"{self.namespace}--{key}.npz"
        return self.root / f"{key}.npz"

    # -- lookup / store ------------------------------------------------
    def _read_entry(self, key: str, decode):
        """Load an entry through ``decode`` (which raises on a bad
        payload); shared by every entry kind the way writes share
        :meth:`_write_entry`.

        Returns the decoded value, or ``None`` when the entry is absent
        or corrupt — corrupt entries are counted, deleted and thereby
        healed; present ones get their LRU recency refreshed (the
        pre-hit stamp is remembered so :meth:`discard_hit` can undo the
        refresh).  An entry that cannot be deleted (read-only store
        root) is counted as corrupt once, remembered, and read as a
        plain miss from then on — no re-count, no byte-total rescan.
        Per-kind hit/miss accounting stays with the callers.
        """
        path = self._path(key)
        if not path.is_file():
            return None
        if key in self._undeletable:
            return None
        try:
            if maybe_fault("store.read") is not None:
                raise FaultError("injected corrupt store entry")
            with np.load(path, allow_pickle=False) as data:
                value = decode(data)
        except Exception:
            self.corrupt += 1
            try:
                if maybe_fault("store.unlink") is not None:
                    raise OSError("injected unlink failure")
                path.unlink()
            except OSError:
                # Healing failed (read-only root, concurrent sweeper
                # holding the file …): the entry stays on disk, so the
                # byte total is still right — remember the key instead
                # of re-paying the corrupt count and a directory rescan
                # on every subsequent lookup.
                self._undeletable.add(key)
            else:
                self._total_bytes = None  # entry removed outside _evict
            return None
        try:
            st = path.stat()
            self._remember_recency(key, st.st_atime, st.st_mtime)
            os.utime(path)  # refresh LRU recency
        except OSError:
            pass
        return value

    def _remember_recency(self, key: str, atime: float, mtime: float) -> None:
        """Stash an entry's pre-hit timestamps (bounded, oldest dropped)."""
        if key not in self._pre_hit_times and \
                len(self._pre_hit_times) >= _RECENCY_REMEMBERED:
            self._pre_hit_times.pop(next(iter(self._pre_hit_times)))
        self._pre_hit_times[key] = (atime, mtime)

    def lookup(self, key: str, job: TransientJob,
               mna: MnaSystem | None = None) -> TransientResult | None:
        """The stored result rebuilt against ``job``'s circuit, or ``None``.

        A present-but-unreadable (or mis-shaped) entry counts as
        ``corrupt``, is deleted, and reads as a miss — the caller
        re-simulates and re-stores.
        """
        if not self._path(key).is_file():
            self.misses += 1
            return None
        mna = mna if mna is not None else MnaSystem(job.circuit)

        def decode(data):
            times = np.array(data["times"], dtype=np.float64)
            x = np.array(data["x"], dtype=np.float64)
            require(times.ndim == 1 and times.size >= 2, "bad time axis")
            require(x.shape == (times.size, mna.size),
                    "solution shape mismatch")
            return times, x

        payload = self._read_entry(key, decode)
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return TransientResult(mna, payload[0], payload[1],
                               stats={"source": "store"})

    def discard_hit(self, key: str | None = None) -> None:
        """Recount one successful :meth:`lookup` as a miss.

        For callers that fetched an entry and then decided not to use it
        (the execution layer discards the hits of partially-warm
        adaptive groups so the whole group re-solves together): keeps
        the accounting invariant — effective outcomes, not raw lookups —
        in this module.  ``hits`` never goes negative (a stray discard
        is an accounting bug upstream, not license to report one).

        When ``key`` is given, the entry's pre-hit LRU recency is
        restored too: the discarded lookup's ``os.utime`` refresh would
        otherwise make an entry the caller *didn't use* look hot to
        eviction, aging out genuinely-hot entries in its place.
        """
        self.hits = max(0, self.hits - 1)
        self.misses += 1
        if key is None:
            return
        stamp = self._pre_hit_times.pop(key, None)
        if stamp is not None:
            try:
                os.utime(self._path(key), times=stamp)
            except OSError:
                pass  # entry already evicted/removed: nothing to restore

    def store(self, key: str, result: TransientResult) -> None:
        """Insert a result, degrading on write failure (never raising).

        A store that cannot persist — full disk, revoked permission, a
        vanished mount — must not kill the sweep that just spent hours
        computing ``result``: the failure is counted in
        ``write_failures``, warned about exactly once, and the store
        latches into miss-only mode (lookups keep working; further
        writes are skipped without touching the disk).
        """
        if self.miss_only:
            return
        try:
            self._write_entry(key, times=result.times, x=result._x)
        except Exception:
            self.write_failures += 1
            self._enter_miss_only()
            return
        self.stores += 1

    def _enter_miss_only(self) -> None:
        """Latch the write-failure degradation, warning on the first."""
        if not self.miss_only:
            self.miss_only = True
            warnings.warn(
                f"result store at {self.root} failed to persist an entry; "
                f"continuing in miss-only mode (lookups still served, "
                f"further writes skipped; counted in write_failures)",
                RuntimeWarning, stacklevel=3)

    def _write_entry(self, key: str, **arrays: np.ndarray) -> None:
        """Atomic ``.npz`` insert shared by every entry kind."""
        fault = maybe_fault("store.write")
        if fault is not None and fault.kind == "fail":
            raise FaultError("injected store write failure")
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        existing = 0
        if path.exists():  # overwrite: don't double-count the bytes
            try:
                existing = path.stat().st_size
            except OSError:
                existing = 0
        tmp = path.with_name(f".{key}.{os.getpid()}.tmp")
        try:
            with open(tmp, "wb") as f:
                if fault is not None:
                    _faulted_write(fault, f, arrays)
                else:
                    np.savez(f, **arrays)
            written = tmp.stat().st_size
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # replace failed midway
                try:
                    tmp.unlink()
                except OSError:
                    pass
        # A fresh write under the key supersedes any corrupt entry the
        # store could not delete (and any pre-hit recency stamp).
        self._undeletable.discard(key)
        self._pre_hit_times.pop(key, None)
        self._stores_since_rescan += 1
        if self._stores_since_rescan >= _RESCAN_EVERY:
            self._total_bytes = None  # pick up concurrent writers' bytes
        elif self._total_bytes is not None:
            self._total_bytes += written - existing
        if self.total_bytes() > self.max_bytes:
            self._evict(keep=path)

    # -- DC operating points -------------------------------------------
    def dc_key_for(self, circuit, mna: MnaSystem, at_time: float,
                   seed: "Mapping[str, float] | None") -> str | None:
        """The DC solve's content key, or ``None`` (counted) when
        uncacheable."""
        try:
            return dc_key(circuit, mna, at_time, seed)
        except UnkeyableJobError:
            self.uncacheable += 1
            return None

    def lookup_dc(self, key: str, mna: MnaSystem) -> np.ndarray | None:
        """The stored operating-point solution vector, or ``None``.

        Same corruption contract as :meth:`lookup` (shared through
        :meth:`_read_entry`): an unreadable or mis-shaped entry counts
        as ``corrupt``, is deleted and reads as a miss.
        """
        def decode(data):
            solution = np.array(data["dc"], dtype=np.float64)
            require(solution.shape == (mna.size,),
                    "dc solution shape mismatch")
            return solution

        solution = self._read_entry(key, decode)
        if solution is None:
            self.dc_misses += 1
            return None
        self.dc_hits += 1
        return solution

    def store_dc(self, key: str, solution: np.ndarray) -> None:
        """Insert a DC operating point (LRU eviction shared with the
        transient entries; same miss-only write-failure degradation as
        :meth:`store`)."""
        if self.miss_only:
            return
        try:
            self._write_entry(key, dc=np.asarray(solution, dtype=np.float64))
        except Exception:
            self.write_failures += 1
            self._enter_miss_only()
            return
        self.dc_stores += 1

    def _entries(self, own_only: bool = False) -> list[tuple[float, int, Path]]:
        """Entries as ``(mtime, size, path)``, oldest first.

        Root-wide by default — the size budget and LRU eviction span
        every namespace sharing the root.  ``own_only`` restricts to
        this store's namespace (used by :meth:`clear`, :meth:`stats`
        and ``len()`` so one tenant's view never reports — or deletes —
        another tenant's entries); a store without a namespace owns the
        whole root.
        """
        pattern = f"{self.namespace}--*.npz" \
            if (own_only and self.namespace) else "*.npz"
        out = []
        if self.root.is_dir():
            for p in self.root.glob(pattern):
                try:
                    st = p.stat()
                except OSError:
                    continue
                out.append((st.st_mtime, st.st_size, p))
        out.sort(key=lambda e: (e[0], e[2].name))
        return out

    def total_bytes(self) -> int:
        """Current on-disk size, from the incremental counter (seeded by
        one directory scan when first consulted or after invalidation)."""
        if self._total_bytes is None:
            self._total_bytes = sum(size for _, size, _ in self._entries())
            self._stores_since_rescan = 0
        return self._total_bytes

    def _evict(self, keep: Path | None = None) -> None:
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        low = _EVICT_WATERMARK * self.max_bytes
        for _, size, path in entries:
            if total <= low:
                break
            if keep is not None and path == keep:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            self.evictions += 1
        self._total_bytes = total

    # -- maintenance ---------------------------------------------------
    def reset_counters(self) -> None:
        """Zero the hit/miss/corrupt/eviction counters, keeping entries."""
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.evictions = 0
        self.stores = 0
        self.uncacheable = 0
        self.write_failures = 0
        self.dc_hits = 0
        self.dc_misses = 0
        self.dc_stores = 0

    def clear(self) -> None:
        """Delete every on-disk entry of *this namespace* and reset all
        counters (a namespace-less store owns, and clears, the whole
        root)."""
        for _, _, path in self._entries(own_only=True):
            try:
                path.unlink()
            except OSError:
                pass
        # Other namespaces' bytes may remain: rescan on next need.
        self._total_bytes = None
        self._undeletable.clear()
        self._pre_hit_times.clear()
        self.miss_only = False
        self.reset_counters()

    def __len__(self) -> int:
        return len(self._entries(own_only=True))

    def stats(self) -> dict:
        """Counters plus current entry count and on-disk byte size
        (``entries``/``bytes`` cover this namespace; the eviction budget
        itself is root-wide)."""
        entries = self._entries(own_only=True)
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "evictions": self.evictions,
            "stores": self.stores,
            "uncacheable": self.uncacheable,
            "write_failures": self.write_failures,
            "miss_only": self.miss_only,
            "dc_hits": self.dc_hits,
            "dc_misses": self.dc_misses,
            "dc_stores": self.dc_stores,
            "entries": len(entries),
            "bytes": sum(size for _, size, _ in entries),
            "root": str(self.root),
            "namespace": self.namespace,
        }


class DcStoreMemo:
    """Adapter presenting a :class:`ResultStore` as the circuit layer's
    DC operating-point memo (:func:`repro.circuit.dc.set_dc_memo`).

    Lives here rather than in the circuit layer so ``repro.circuit``
    keeps zero knowledge of the execution layer; the execution config
    installs one whenever a store is configured.
    """

    def __init__(self, store: ResultStore):
        self._store = store

    def key(self, circuit, mna, at_time, seed) -> str | None:
        return self._store.dc_key_for(circuit, mna, at_time, seed)

    def lookup(self, key: str, mna) -> np.ndarray | None:
        return self._store.lookup_dc(key, mna)

    def store(self, key: str, solution: np.ndarray) -> None:
        # store_dc degrades internally (miss-only mode + write_failures)
        # rather than raising, so the solve that produced the operating
        # point can never be lost to a persistence failure.
        self._store.store_dc(key, solution)
