"""Write-ahead run journal: crash-safe resumable sweeps.

A 1000-sample Monte-Carlo sweep killed at sample 900 used to restart
from zero — the result store only helps when the per-sample work is
itself storable (transient jobs), not when the samples are cheap
engine runs whose *aggregate* is the expensive thing.  The journal
closes that gap at the sweep level:

* the run is **content-keyed** (:func:`repro.exec.store.content_key`
  over everything that determines the results — design, variation,
  seed, sample count), so a resumed run can only ever splice records
  from an identical run;
* each completed sample appends one JSON line ``{"i": idx, "row": …}``
  to ``<store root>/journal/<run key>.jsonl`` via a single ``O_APPEND``
  write — atomic enough that concurrent worker processes interleave
  whole lines, and a ``kill -9`` can tear at most the final line;
* on rerun, completed indices are replayed from the journal and only
  the missing ones are computed — and because ``json`` round-trips
  every finite IEEE-754 double exactly (``repr``-based), the resumed
  sweep's final quantiles are *byte-identical* to an uninterrupted
  run's;
* a sweep that completes deletes its journal (the durable artifact is
  the result, not the log).

Enabled by the ``REPRO_JOURNAL`` knob (or an explicit ``journal=``
argument on the sweep drivers); requires a configured result store for
the root directory.  Torn tails, stale headers and foreign files all
degrade to "start fresh", never to an exception.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path

import numpy as np

from .._knobs import knob
from .config import ExecutionConfig, default_execution
from .store import UnkeyableJobError, content_key

__all__ = ["RunJournal", "journal_for"]

#: Bumped on incompatible journal-line format changes; carried in the
#: header line so stale journals discard themselves.
JOURNAL_VERSION = 1


def _json_default(obj):
    """Encode the numpy scalars/arrays sweep rows may carry.

    ``float(np.float64(x))`` is the same IEEE-754 double, so this
    normalisation cannot perturb the replayed values.
    """
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"row value of type {type(obj).__qualname__!r} "
                    f"is not journalable")


class RunJournal:
    """One run's append-only journal of completed-index records.

    Construct through :meth:`open` (which replays any compatible
    existing file) or :func:`journal_for` (which also resolves the
    knob/store gating).  Instances pickle without their file handle, so
    a ``functools.partial`` over :meth:`record` can cross into pool
    workers — each process appends through its own descriptor.
    """

    def __init__(self, path: Path, run_key: str, total: int):
        self.path = Path(path)
        self.run_key = str(run_key)
        self.total = int(total)
        self._completed: dict[int, object] = {}
        self._fd: "int | None" = None

    # -- lifecycle -----------------------------------------------------
    @classmethod
    def open(cls, root: "str | os.PathLike", run_key: str,
             total: int) -> "RunJournal":
        """The journal for ``run_key`` under ``root``, replaying any
        compatible existing file (stale or torn content starts fresh)."""
        journal = cls(Path(root) / f"{run_key}.jsonl", run_key, total)
        journal._replay()
        return journal

    def _header(self) -> dict:
        return {"journal": JOURNAL_VERSION, "run": self.run_key,
                "total": self.total}

    def _replay(self) -> None:
        """Load completed records from an existing file, if compatible."""
        try:
            raw = self.path.read_bytes()
        except OSError:
            return
        lines = raw.split(b"\n")
        if not lines:
            return
        try:
            header = json.loads(lines[0])
        except ValueError:
            header = None
        if header != self._header():
            # A different run, format version, or total: records cannot
            # be spliced safely — discard and start fresh.
            try:
                self.path.unlink()
            except OSError:
                pass
            return
        for line in lines[1:]:
            if not line.strip():
                continue
            try:
                obj = json.loads(line)
            except ValueError:
                continue  # torn tail of a killed writer
            if isinstance(obj, dict) and isinstance(obj.get("i"), int) \
                    and 0 <= obj["i"] < self.total and "row" in obj:
                self._completed[obj["i"]] = obj["row"]

    def _ensure_fd(self) -> int:
        if self._fd is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fresh = not self.path.exists()
            self._fd = os.open(self.path,
                               os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            if fresh:
                os.write(self._fd,
                         json.dumps(self._header(),
                                    separators=(",", ":")).encode() + b"\n")
        return self._fd

    # -- recording / replay --------------------------------------------
    def completed(self) -> dict[int, object]:
        """Replayed ``index -> row`` records (a copy)."""
        return dict(self._completed)

    def record(self, index: int, row) -> None:
        """Append one completed-index record (one atomic ``write``)."""
        line = json.dumps({"i": int(index), "row": row},
                          separators=(",", ":"), allow_nan=True,
                          default=_json_default).encode("utf-8") + b"\n"
        os.write(self._ensure_fd(), line)

    def close(self) -> None:
        if self._fd is not None:
            try:
                os.close(self._fd)
            except OSError:
                pass
            self._fd = None

    def finish(self) -> None:
        """The run completed: the journal has served its purpose."""
        self.close()
        try:
            self.path.unlink()
        except OSError:
            pass

    # -- pickling (journals cross into pool workers) --------------------
    def __getstate__(self) -> dict:
        # Workers only append; the replayed records and the open
        # descriptor stay with the parent.
        return {"path": self.path, "run_key": self.run_key,
                "total": self.total}

    def __setstate__(self, state: dict) -> None:
        self.path = state["path"]
        self.run_key = state["run_key"]
        self.total = state["total"]
        self._completed = {}
        self._fd = None


def journal_for(label: str, payload, total: int,
                execution: "ExecutionConfig | None" = None,
                enabled: "bool | None" = None) -> "RunJournal | None":
    """The run journal for a sweep, or ``None`` when journaling is off.

    ``enabled=None`` follows the ``REPRO_JOURNAL`` knob.  Journaling
    needs a configured result store (for the root directory) and a
    canonically hashable run ``payload`` (for the run key); either
    missing degrades to no journal with one warning — a sweep must
    never fail because its safety net is unavailable.
    """
    on = knob("REPRO_JOURNAL") if enabled is None else bool(enabled)
    if not on:
        return None
    cfg = execution if execution is not None else default_execution()
    if cfg.store is None:
        warnings.warn(
            "run journaling requested but no result store is configured "
            "(set REPRO_STORE); continuing without crash-safe resume",
            RuntimeWarning, stacklevel=2)
        return None
    try:
        run_key = content_key(f"journal-{label}", payload)
    except UnkeyableJobError as exc:
        warnings.warn(
            f"run journaling disabled for this sweep (no canonical run "
            f"key: {exc}); continuing without crash-safe resume",
            RuntimeWarning, stacklevel=2)
        return None
    return RunJournal.open(Path(cfg.store.root) / "journal", run_key, total)
