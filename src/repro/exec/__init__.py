"""Execution layer: process-level sharding and cross-run memoisation.

The third scaling layer of this reproduction, on top of the in-process
batched engine (PR 1) and the structured solver backends (PR 2):

* :mod:`repro.exec.pool` — :func:`run_jobs`, a drop-in front end for
  :func:`~repro.circuit.transient.simulate_transient_many` that shards
  independent jobs over a process pool and merges results in submission
  order (deterministic serial fallback when ``workers=1`` or the pool is
  unavailable); :func:`fleet_stats` totals the per-shard solver stats
  across every call and worker;
* :mod:`repro.exec.store` — :class:`ResultStore`, a content-keyed
  on-disk memo of transient results (topology signature + source
  fingerprints + grid + options, versioned) that makes repeat experiment
  runs near-free;
* :mod:`repro.exec.config` — :class:`ExecutionConfig`, the single object
  the experiment drivers thread both layers through, with
  ``REPRO_WORKERS`` / ``REPRO_STORE`` environment defaults;
* :mod:`repro.exec.journal` — :class:`RunJournal`, a write-ahead journal
  of completed sweep samples under the store root, so a killed
  Monte-Carlo run resumes at the first unfinished sample with
  bit-identical output (``REPRO_JOURNAL``).
"""

from .config import (ExecutionConfig, default_execution,
                     set_default_execution, store_max_bytes)
from .journal import RunJournal, journal_for
from .pool import (fleet_stats, job_cost, make_shards, reset_fleet_stats,
                   run_indexed, run_jobs)
from .store import (STORE_VERSION, DcStoreMemo, ResultStore,
                    UnkeyableJobError, content_key, dc_key, job_key)

__all__ = [
    "ExecutionConfig",
    "default_execution",
    "set_default_execution",
    "store_max_bytes",
    "run_jobs",
    "run_indexed",
    "make_shards",
    "job_cost",
    "fleet_stats",
    "reset_fleet_stats",
    "ResultStore",
    "DcStoreMemo",
    "job_key",
    "dc_key",
    "content_key",
    "UnkeyableJobError",
    "STORE_VERSION",
    "RunJournal",
    "journal_for",
]
