"""Execution configuration: worker count and result-store wiring.

One :class:`ExecutionConfig` travels through every experiment driver
(``run_noise_cases``, ``run_table1``, ``generate_figure2``, the
ablations, ``propagate_path``), so a single object decides how *all*
simulations of a run execute — in-process, sharded over a pool, and/or
memoised through the on-disk store.

Environment knobs (read once, by :func:`default_execution`; all declared
in :mod:`repro._knobs`):

``REPRO_WORKERS``
    Process count for the shard scheduler (default 1 = in-process).
``REPRO_STORE``
    Directory of the content-keyed result store; unset disables it.
``REPRO_STORE_MAX_BYTES``
    Size budget of that store (default 512 MiB).
``REPRO_KERNEL``
    Array-kernel backend for the hot loops (``auto``/``numpy``/
    ``numba``; read by :func:`repro.circuit.kernels.resolve_kernel`).
``REPRO_SHARD_TIMEOUT``
    Per-shard worker deadline in seconds (0 disables it); see
    :attr:`ExecutionConfig.shard_timeout`.

Tests and programs that need a different default (e.g. a temporary
store) install one with :func:`set_default_execution` instead of
mutating the environment.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from .._knobs import knob
from .._util import require
from ..circuit import dc as _dc
from ..circuit.kernels import backend as _kernels
from .store import DEFAULT_MAX_BYTES, DcStoreMemo, ResultStore

__all__ = ["ExecutionConfig", "default_execution", "set_default_execution",
           "store_max_bytes"]


def _install_dc_memo(config: "ExecutionConfig | None") -> None:
    """Mirror the default config's store into the circuit layer's DC memo.

    DC operating points are solved deep inside the circuit layer
    (transient initial states, characterisation sweeps) where no
    ``ExecutionConfig`` travels, so the *default* config's store is
    installed process-wide through :func:`repro.circuit.dc.set_dc_memo`;
    a config without a store uninstalls it.  Configs passed explicitly
    to ``run_jobs`` do not touch the hook — their stores memoise
    transient results only.
    """
    _dc.set_dc_memo(DcStoreMemo(config.store)
                    if config is not None and config.store is not None
                    else None)


def _install_kernel(config: "ExecutionConfig | None") -> None:
    """Mirror the default config's kernel choice into the circuit layer.

    Like the DC memo, the kernel backend is consulted deep inside the
    transient engines where no ``ExecutionConfig`` travels, so the
    default config installs it process-wide.  ``None`` (config unset)
    falls back to the ``REPRO_KERNEL`` environment variable.  The
    kernel changes execution speed only, never results — it must not
    (and does not) enter result-store keys.
    """
    _kernels.set_default_kernel(config.kernel if config is not None else None)


def store_max_bytes(env: "os._Environ | dict" = os.environ) -> int:
    """The store size budget the environment asks for (bytes).

    Malformed *and* non-positive values fall back to the default —
    ``REPRO_STORE_MAX_BYTES=0`` must not crash every subsequent run
    (unset ``REPRO_STORE`` to disable the store).  Parsing lives in the
    :mod:`repro._knobs` declaration table.
    """
    return knob("REPRO_STORE_MAX_BYTES", env)


@dataclass(frozen=True)
class ExecutionConfig:
    """How the execution layer runs a list of transient jobs.

    Attributes
    ----------
    workers:
        Worker processes for the shard scheduler.  ``1`` (default) keeps
        everything in-process — the deterministic serial path the
        sharded path must agree with.
    store:
        Content-keyed on-disk result store consulted before, and
        populated after, every simulation; ``None`` disables
        memoisation.
    min_pool_jobs:
        Smallest pending-job count worth forking a pool for.  Tiny
        submissions (a propagate_path stage's 2 jobs, a single Figure 2
        re-simulation) solve in milliseconds — pool creation plus
        pickling would dwarf them — so they run inline even when
        ``workers > 1``.
    kernel:
        Array-kernel backend name for the hot loops (``auto``/
        ``numpy``/``numba``).  Installed process-wide when this config
        is the default (see :func:`_install_kernel`); pool workers
        inherit it through their environment.  Performance-only: never
        part of result-store keys.
    shard_timeout:
        Deadline, in seconds, for an *average-cost* shard's worker
        future; each shard's own deadline scales with its estimated
        cost (:func:`repro.exec.pool.job_cost`).  A worker past its
        deadline — wedged, not crashed: a deadlock or an NFS stall
        never raises — is abandoned and its shard re-solved inline, so
        one stuck process can no longer hang the whole run.  ``0.0``
        (default) waits forever, the historical behaviour.  Results
        are unaffected either way: the inline re-solve is the same
        deterministic serial path the crash fallback uses.
    """

    workers: int = 1
    store: ResultStore | None = None
    min_pool_jobs: int = 4
    kernel: str = "auto"
    shard_timeout: float = 0.0

    def __post_init__(self) -> None:
        require(self.workers >= 1, "workers must be at least 1")
        require(self.min_pool_jobs >= 2, "min_pool_jobs must be at least 2")
        require(self.kernel in _kernels.KERNEL_NAMES,
                f"unknown kernel backend {self.kernel!r}; pick from "
                f"{_kernels.KERNEL_NAMES}")
        require(self.shard_timeout >= 0.0,
                "shard_timeout must be >= 0 (0 disables the deadline)")

    @classmethod
    def from_env(cls, env: "os._Environ | dict" = os.environ) -> "ExecutionConfig":
        """Build the configuration the environment asks for.

        Every knob resolves through the :mod:`repro._knobs` declaration
        table, so malformed values (``REPRO_WORKERS=lots``,
        ``REPRO_KERNEL=gpu``) fall back to their declared defaults
        instead of crashing the run.
        """
        store = None
        root = knob("REPRO_STORE", env)
        if root:
            store = ResultStore(root, max_bytes=store_max_bytes(env))
        return cls(workers=knob("REPRO_WORKERS", env), store=store,
                   kernel=knob("REPRO_KERNEL", env),
                   shard_timeout=knob("REPRO_SHARD_TIMEOUT", env))


_DEFAULT: ExecutionConfig | None = None


def default_execution() -> ExecutionConfig:
    """The process-wide default configuration (environment, read once)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = ExecutionConfig.from_env()
        _install_dc_memo(_DEFAULT)
        _install_kernel(_DEFAULT)
    return _DEFAULT


def set_default_execution(config: ExecutionConfig | None) -> ExecutionConfig | None:
    """Install a new process-wide default; returns the previous one.

    ``None`` resets to "unset": the next :func:`default_execution` call
    re-reads the environment.  The DC operating-point memo and the
    kernel-backend default follow the installed default (see
    :func:`_install_dc_memo` / :func:`_install_kernel`).
    """
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = config
    _install_dc_memo(config)
    _install_kernel(config)
    return previous
