"""Distributed RC interconnect models.

The paper's testbench (Figure 1) models each 1000 µm line as three lumped
cells, each a series resistance with grounded capacitances on both sides
(values R = 8.5 Ω, C = 4.8 fF per element).  :class:`RcLineSpec` captures
that construction generally: a line is ``n_segments`` π-cells, so every
internal junction carries the capacitance of two adjacent half-cells.

Per-µm parasitics for a 0.13 µm-class wide metal line are provided so
Config II's 500 µm lines scale consistently from the same process numbers.

Junction nodes are emitted in line order (near end → far end), so the MNA
matrix of a pure line — voltage-source border rows included — permutes to
*tridiagonal* form under reverse Cuthill–McKee, and a coupled bundle of k
lines to block-tridiagonal form.  The transient/DC solver backends exploit
exactly this: line-dominated topologies select the banded Thomas-style
solve instead of dense LU (see :mod:`repro.circuit.solvers`), which lifts
the practical segment-count ceiling far past the 3-π-cell Figure 1 scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._util import require
from ..circuit.netlist import Circuit

__all__ = ["RcLineSpec", "add_rc_line", "WIRE_R_PER_UM", "WIRE_C_PER_UM"]

#: Wire resistance per µm reproducing Figure 1: 3 × 8.5 Ω over 1000 µm.
WIRE_R_PER_UM = 3 * 8.5 / 1000.0
#: Wire ground capacitance per µm reproducing Figure 1: 6 × 4.8 fF over 1000 µm.
WIRE_C_PER_UM = 6 * 4.8e-15 / 1000.0


@dataclass(frozen=True)
class RcLineSpec:
    """Geometry-independent description of a uniform RC line.

    Attributes
    ----------
    total_r:
        Total series resistance, ohms.
    total_c:
        Total grounded capacitance, farads.
    n_segments:
        Number of π-cells the line is discretised into.
    """

    total_r: float
    total_c: float
    n_segments: int = 3

    def __post_init__(self) -> None:
        require(self.total_r > 0.0, "total_r must be positive")
        require(self.total_c > 0.0, "total_c must be positive")
        require(self.n_segments >= 1, "need at least one segment")

    @classmethod
    def from_length(cls, length_um: float, n_segments: int = 3,
                    r_per_um: float = WIRE_R_PER_UM,
                    c_per_um: float = WIRE_C_PER_UM) -> "RcLineSpec":
        """Build a line spec from physical length and per-µm parasitics."""
        require(length_um > 0.0, "length must be positive")
        return cls(total_r=r_per_um * length_um, total_c=c_per_um * length_um,
                   n_segments=n_segments)

    @property
    def r_per_segment(self) -> float:
        """Series resistance of one cell."""
        return self.total_r / self.n_segments

    @property
    def c_per_segment(self) -> float:
        """Grounded capacitance of one cell (split across its two ends)."""
        return self.total_c / self.n_segments

    def internal_node(self, prefix: str, k: int) -> str:
        """Name of the k-th internal junction (1-based) for ``prefix``."""
        return f"{prefix}.n{k}"

    def junction_nodes(self, prefix: str, node_in: str, node_out: str) -> list[str]:
        """All junction nodes from the near end to the far end inclusive."""
        inner = [self.internal_node(prefix, k) for k in range(1, self.n_segments)]
        return [node_in, *inner, node_out]


def add_rc_line(circuit: Circuit, prefix: str, node_in: str, node_out: str,
                spec: RcLineSpec) -> list[str]:
    """Instantiate ``spec`` between ``node_in`` and ``node_out``.

    Each cell contributes ``C/2`` at both of its ends (π topology), so the
    end nodes carry ``C/2`` and internal junctions carry ``C``.

    Returns
    -------
    list[str]
        The junction node names (near end first), which is where coupling
        capacitors attach.
    """
    nodes = spec.junction_nodes(prefix, node_in, node_out)
    half_c = spec.c_per_segment / 2.0
    for k in range(spec.n_segments):
        a, b = nodes[k], nodes[k + 1]
        circuit.resistor(f"{prefix}.r{k + 1}", a, b, spec.r_per_segment)
        circuit.capacitor(f"{prefix}.cl{k + 1}", a, "0", half_c)
        circuit.capacitor(f"{prefix}.cr{k + 1}", b, "0", half_c)
    return nodes
