"""Capacitively coupled line bundles — the crosstalk substrate.

Figure 1 of the paper couples the aggressor and victim lines with one
coupling capacitor per cell (three in total, 100 fF combined).
:func:`add_coupled_lines` generalises this to any number of parallel lines
with pairwise total coupling values, attaching one coupling capacitor at
each matching pair of junction nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .._util import require
from ..circuit.netlist import Circuit
from .rcline import RcLineSpec, add_rc_line

__all__ = ["CouplingSpec", "CoupledBundle", "add_coupled_lines"]


@dataclass(frozen=True)
class CouplingSpec:
    """Total coupling capacitance between two lines of a bundle.

    Attributes
    ----------
    line_a, line_b:
        Indices of the coupled lines within the bundle.
    total_cm:
        Total mutual capacitance, distributed over the shared junctions.
    """

    line_a: int
    line_b: int
    total_cm: float

    def __post_init__(self) -> None:
        require(self.total_cm > 0.0, "coupling capacitance must be positive")
        require(self.line_a != self.line_b, "a line cannot couple to itself")


@dataclass(frozen=True)
class CoupledBundle:
    """Result of instantiating a coupled-line bundle.

    Attributes
    ----------
    junctions:
        Per line, the junction node names from near to far end.
    """

    junctions: tuple[tuple[str, ...], ...] = field(default_factory=tuple)

    def far_end(self, line: int) -> str:
        """Far-end node name of ``line``."""
        return self.junctions[line][-1]

    def near_end(self, line: int) -> str:
        """Near-end node name of ``line``."""
        return self.junctions[line][0]


def add_coupled_lines(
    circuit: Circuit,
    prefix: str,
    terminals: list[tuple[str, str]],
    specs: list[RcLineSpec],
    couplings: list[CouplingSpec],
    couple_at: str = "cell",
) -> CoupledBundle:
    """Instantiate parallel RC lines with mutual coupling capacitors.

    Parameters
    ----------
    circuit:
        Netlist to extend.
    prefix:
        Name prefix for all created elements.
    terminals:
        Per line, the ``(near_end, far_end)`` node names.
    specs:
        Per line, its :class:`RcLineSpec`.  All lines must have the same
        segment count so junctions align.
    couplings:
        Pairwise total coupling capacitances.
    couple_at:
        ``"cell"`` attaches one Cm per segment at the segment *output*
        junction (the paper's drawing); ``"all"`` couples every junction
        including the near end.

    Returns
    -------
    CoupledBundle
        Junction node names per line.
    """
    require(len(terminals) == len(specs), "one spec per line required")
    require(len(specs) >= 1, "need at least one line")
    n_seg = specs[0].n_segments
    require(all(s.n_segments == n_seg for s in specs),
            "all lines must share the segment count for coupling alignment")
    require(couple_at in ("cell", "all"), "couple_at must be 'cell' or 'all'")

    junctions: list[tuple[str, ...]] = []
    for i, ((n_in, n_out), spec) in enumerate(zip(terminals, specs)):
        nodes = add_rc_line(circuit, f"{prefix}.l{i}", n_in, n_out, spec)
        junctions.append(tuple(nodes))

    if couple_at == "cell":
        couple_idx = list(range(1, n_seg + 1))
    else:
        couple_idx = list(range(0, n_seg + 1))

    for spec_c in couplings:
        require(0 <= spec_c.line_a < len(specs) and 0 <= spec_c.line_b < len(specs),
                "coupling references an unknown line")
        cm_each = spec_c.total_cm / len(couple_idx)
        for pos, k in enumerate(couple_idx):
            circuit.capacitor(
                f"{prefix}.cm{spec_c.line_a}_{spec_c.line_b}_{pos}",
                junctions[spec_c.line_a][k],
                junctions[spec_c.line_b][k],
                cm_each,
            )
    return CoupledBundle(junctions=tuple(junctions))
