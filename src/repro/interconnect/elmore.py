"""Elmore delay and first moments of RC trees.

The paper's E4 technique is "inspired by the Elmore delay idea [2]"; this
module provides the classic first-moment delay both as an independent
reference for testing the circuit simulator on RC networks and as the wire
model of the conventional STA engine.

The implementation works on any RC *tree*: resistances form a tree rooted
at the driver, every node may carry grounded capacitance.  (Coupling
capacitors are handled by the noise-aware flow, not by Elmore.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .._util import require

__all__ = ["RcTree", "elmore_delay", "elmore_delays_line"]


@dataclass
class RcTree:
    """An RC tree rooted at ``root``.

    Build with :meth:`add_resistor` (parent → child) and
    :meth:`add_capacitance` (node → ground).  The structure must stay a
    tree: every node except the root has exactly one resistive parent.
    """

    root: str
    _parent: dict[str, tuple[str, float]] = field(default_factory=dict)
    _cap: dict[str, float] = field(default_factory=dict)
    _children: dict[str, list[str]] = field(default_factory=dict)

    def add_resistor(self, parent: str, child: str, resistance: float) -> None:
        """Attach ``child`` below ``parent`` through ``resistance`` ohms."""
        require(resistance >= 0.0, "resistance must be non-negative")
        require(child != self.root, "cannot re-parent the root")
        require(child not in self._parent, f"node {child!r} already has a parent")
        self._parent[child] = (parent, resistance)
        self._children.setdefault(parent, []).append(child)

    def add_capacitance(self, node: str, capacitance: float) -> None:
        """Add grounded capacitance at ``node`` (accumulates)."""
        require(capacitance >= 0.0, "capacitance must be non-negative")
        self._cap[node] = self._cap.get(node, 0.0) + capacitance

    @property
    def nodes(self) -> list[str]:
        """All nodes, root first, in insertion (topological) order."""
        seen = [self.root]
        stack = [self.root]
        while stack:
            for child in self._children.get(stack.pop(0), []):
                seen.append(child)
                stack.append(child)
        return seen

    def capacitance(self, node: str) -> float:
        """Grounded capacitance at ``node``."""
        return self._cap.get(node, 0.0)

    def path_to_root(self, node: str) -> list[tuple[str, float]]:
        """Resistor chain from ``node`` up to the root: ``(parent, R)`` hops."""
        path = []
        current = node
        while current != self.root:
            require(current in self._parent, f"node {current!r} is not in the tree")
            parent, r = self._parent[current]
            path.append((parent, r))
            current = parent
        return path

    def downstream_capacitance(self, node: str) -> float:
        """Total capacitance at and below ``node``."""
        total = self.capacitance(node)
        for child in self._children.get(node, []):
            total += self.downstream_capacitance(child)
        return total


def elmore_delay(tree: RcTree, sink: str) -> float:
    """First-moment (Elmore) delay from the tree root to ``sink``.

    ``T_D(sink) = Σ_k  C_k · R(path(root→sink) ∩ path(root→k))`` — the
    classic shared-path-resistance formulation.
    """
    # Resistance from root to each node on the sink path, cumulative.
    sink_path = list(reversed(tree.path_to_root(sink)))  # root-side first
    # Map: node -> cumulative resistance from root, for nodes on sink path.
    cum_r: dict[str, float] = {tree.root: 0.0}
    node = tree.root
    running = 0.0
    # Reconstruct downward order of the sink path.
    down_nodes = [tree.root]
    current = sink
    chain = [sink]
    while current != tree.root:
        parent, _ = tree._parent[current]
        chain.append(parent)
        current = parent
    chain.reverse()  # root ... sink
    for i in range(1, len(chain)):
        _, r = tree._parent[chain[i]]
        running += r
        cum_r[chain[i]] = running
        down_nodes.append(chain[i])

    on_path = set(chain)
    delay = 0.0
    for k in tree.nodes:
        # Shared resistance = cumulative R at the deepest sink-path ancestor.
        current = k
        while current not in on_path:
            current, _ = tree._parent[current]
        delay += tree.capacitance(k) * cum_r[current]
    return delay


def elmore_delays_line(total_r: float, total_c: float, n_segments: int,
                       load_c: float = 0.0) -> float:
    """Elmore delay of a uniform π-segmented line with far-end load.

    Matches the discretisation of :func:`repro.interconnect.rcline.add_rc_line`
    exactly, so it can cross-validate the circuit simulator on the same
    structure.
    """
    require(n_segments >= 1, "need at least one segment")
    tree = RcTree(root="n0")
    r_seg = total_r / n_segments
    c_half = total_c / n_segments / 2.0
    tree.add_capacitance("n0", c_half)
    for k in range(1, n_segments + 1):
        tree.add_resistor(f"n{k - 1}", f"n{k}", r_seg)
        c_here = c_half if k == n_segments else 2 * c_half
        tree.add_capacitance(f"n{k}", c_here)
    tree.add_capacitance(f"n{n_segments}", load_c)
    return elmore_delay(tree, f"n{n_segments}")
