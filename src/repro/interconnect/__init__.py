"""Interconnect substrate: distributed RC lines, capacitive coupling,
Elmore/first-moment wire delays."""

from .coupling import CoupledBundle, CouplingSpec, add_coupled_lines
from .elmore import RcTree, elmore_delay, elmore_delays_line
from .rcline import RcLineSpec, WIRE_C_PER_UM, WIRE_R_PER_UM, add_rc_line

__all__ = [
    "RcLineSpec",
    "add_rc_line",
    "WIRE_R_PER_UM",
    "WIRE_C_PER_UM",
    "CouplingSpec",
    "CoupledBundle",
    "add_coupled_lines",
    "RcTree",
    "elmore_delay",
    "elmore_delays_line",
]
