"""repro — reproduction of "Modeling and Propagation of Noisy Waveforms in
Static Timing Analysis" (Nazarian, Pedram, Tuncer, Lin, Ajami; DATE 2005).

The package implements the paper's SGDP technique together with every
substrate it depends on, all from scratch:

* :mod:`repro.core` — waveforms, sensitivity (Eq. 1/2/3), the six
  equivalent-waveform techniques (P1, P2, LSF3, E4, WLS5, SGDP), and the
  gate-delay-propagation evaluation harness;
* :mod:`repro.circuit` — a nonlinear MNA transient simulator (the Hspice
  stand-in);
* :mod:`repro.interconnect` — distributed RC lines, capacitive coupling,
  Elmore delays;
* :mod:`repro.library` — CMOS inverter cells, NLDM characterisation by
  simulation, Liberty I/O;
* :mod:`repro.sta` — a gate-level STA engine with a noise-aware
  equivalent-waveform propagation mode;
* :mod:`repro.experiments` — the Figure 1 testbench and one harness per
  paper artifact (Table 1, §4.2 run-times, Figure 2) plus ablations;
* :mod:`repro.exec` — the execution layer: process-pool sharding of
  independent simulations and a content-keyed on-disk result store
  (``REPRO_WORKERS`` / ``REPRO_STORE`` knobs).

Quickstart::

    from repro.experiments import CONFIG_I, run_table1
    print(run_table1(CONFIG_I, n_cases=10).format())
"""

from . import circuit, core, experiments, interconnect, library, sta
from . import exec as exec_  # "exec" shadows nothing but reads awkwardly bare

__version__ = "1.1.0"

__all__ = ["core", "circuit", "interconnect", "library", "sta", "experiments",
           "exec_", "__version__"]
