"""Gate-level static timing analysis: netlists (structural Verilog),
timing graphs, per-arc NLDM arrival/required propagation, SDF
back-annotation, Monte-Carlo statistical sweeps, and the noise-aware
equivalent-waveform mode.  ``python -m repro.sta`` is the CLI front
door."""

from .analysis import ArcRecord, EdgeTiming, InputSpec, StaEngine, StaResult
from .graph import TimingGraph, TimingGraphError
from .netlist import GateInstance, GateNetlist, NetlistError, parse_structural_verilog
from .sdf import SdfDelays, SdfEngine, SdfError, SdfTriple, read_sdf
from .statistical import (
    McResult,
    McVariation,
    run_noise_monte_carlo,
    run_sta_monte_carlo,
    sample_library,
    sample_wire_specs,
)
from .verilog import read_verilog
from .noise_aware import (
    AggressorSpec,
    NoisyStage,
    QuietReferenceCache,
    StageTiming,
    clear_quiet_cache,
    propagate_path,
    quiet_cache_stats,
)

__all__ = [
    "GateNetlist",
    "GateInstance",
    "NetlistError",
    "parse_structural_verilog",
    "read_verilog",
    "TimingGraph",
    "TimingGraphError",
    "StaEngine",
    "StaResult",
    "EdgeTiming",
    "ArcRecord",
    "InputSpec",
    "SdfTriple",
    "SdfDelays",
    "SdfError",
    "SdfEngine",
    "read_sdf",
    "McVariation",
    "McResult",
    "run_sta_monte_carlo",
    "run_noise_monte_carlo",
    "sample_library",
    "sample_wire_specs",
    "AggressorSpec",
    "NoisyStage",
    "StageTiming",
    "propagate_path",
    "QuietReferenceCache",
    "clear_quiet_cache",
    "quiet_cache_stats",
]
