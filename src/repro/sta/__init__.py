"""Gate-level static timing analysis: netlists, timing graphs, NLDM
arrival propagation, and the noise-aware equivalent-waveform mode."""

from .analysis import EdgeTiming, InputSpec, StaEngine, StaResult
from .graph import TimingGraph, TimingGraphError
from .netlist import GateInstance, GateNetlist, NetlistError, parse_structural_verilog
from .noise_aware import (
    AggressorSpec,
    NoisyStage,
    QuietReferenceCache,
    StageTiming,
    clear_quiet_cache,
    propagate_path,
    quiet_cache_stats,
)

__all__ = [
    "GateNetlist",
    "GateInstance",
    "NetlistError",
    "parse_structural_verilog",
    "TimingGraph",
    "TimingGraphError",
    "StaEngine",
    "StaResult",
    "EdgeTiming",
    "InputSpec",
    "AggressorSpec",
    "NoisyStage",
    "StageTiming",
    "propagate_path",
    "QuietReferenceCache",
    "clear_quiet_cache",
    "quiet_cache_stats",
]
