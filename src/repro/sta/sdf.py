"""SDF (Standard Delay Format) back-annotation.

:func:`read_sdf` parses the SDF subset that gate-level timing consumes —
``DELAYFILE`` header, ``TIMESCALE``, per-cell ``IOPATH`` arcs and
top-level ``INTERCONNECT`` wire delays, all with ``min:typ:max`` triples
— into an :class:`SdfDelays` index.  :class:`SdfEngine` then runs the
full per-arc STA machinery of :class:`~repro.sta.analysis.StaEngine`
(arrivals, per-edge required times, critical paths) with every delay
taken from the annotation instead of NLDM table lookups:

* the ``IOPATH`` delay is selected by the *output* edge (SDF convention:
  first triple = output rise, second = output fall),
* the ``INTERCONNECT`` delay from the driver's output port to the
  consuming input pin is selected by the *input* edge travelling the
  wire and added on the input side of the arc,
* slews pass through unchanged (SDF carries no transition times).

Unknown constructs inside ``DELAY (ABSOLUTE ...)`` are skipped;
structural problems — missing annotation for an arc the netlist needs,
malformed triples — raise :class:`SdfError`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .._util import require
from ..library.characterize import CharacterizedCell
from .analysis import StaEngine
from .netlist import GateInstance, GateNetlist

__all__ = ["SdfTriple", "SdfDelays", "SdfError", "read_sdf", "SdfEngine"]

_CORNERS = ("min", "typ", "max")


class SdfError(ValueError):
    """Raised on malformed SDF input or missing annotation."""


@dataclass(frozen=True)
class SdfTriple:
    """A ``min:typ:max`` delay triple (seconds)."""

    min: float
    typ: float
    max: float

    def pick(self, corner: str) -> float:
        """The value at ``corner`` (``"min"``/``"typ"``/``"max"``)."""
        require(corner in _CORNERS, f"bad corner {corner!r} (use {_CORNERS})")
        return getattr(self, corner)


@dataclass
class SdfDelays:
    """Parsed SDF annotation.

    ``iopaths`` maps ``(instance, in_pin, out_pin)`` to the
    ``(output-rise, output-fall)`` triples; ``interconnects`` maps
    ``(from_port, to_port)`` — ports written ``inst/PIN`` — to the
    ``(rising-edge, falling-edge)`` wire-delay triples.
    """

    design: str = ""
    timescale: float = 1e-9
    iopaths: dict[tuple[str, str, str], tuple[SdfTriple, SdfTriple]] = \
        field(default_factory=dict)
    interconnects: dict[tuple[str, str], tuple[SdfTriple, SdfTriple]] = \
        field(default_factory=dict)

    def iopath(self, instance: str, in_pin: str, out_pin: str) \
            -> tuple[SdfTriple, SdfTriple]:
        """The (rise, fall) triples of one cell arc.

        Raises
        ------
        SdfError
            When the arc is not annotated — silently timing an
            unannotated arc as zero would corrupt every downstream slack.
        """
        key = (instance, in_pin, out_pin)
        if key not in self.iopaths:
            raise SdfError(
                f"no IOPATH annotation for {instance}/{in_pin}->{out_pin} "
                f"(have {sorted(self.iopaths)})")
        return self.iopaths[key]


# ----------------------------------------------------------------------
# S-expression reader
# ----------------------------------------------------------------------
_SDF_TOKEN_RE = re.compile(
    r"""
    \s+                       # whitespace (skipped)
    | //[^\n]*                # line comment (skipped)
    | (?P<string>"[^"]*")
    | (?P<paren>[()])
    | (?P<atom>[^\s()"]+)
    """,
    re.VERBOSE,
)


def _sdf_tokens(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        m = _SDF_TOKEN_RE.match(text, pos)
        if m is None:
            raise SdfError(f"unexpected character at offset {pos}: {text[pos]!r}")
        pos = m.end()
        if m.lastgroup is not None:
            tokens.append(m.group())
    return tokens


def _read_sexpr(tokens: list[str], i: int) -> tuple[list, int]:
    """Parse one parenthesised expression starting at ``tokens[i] == '('``."""
    if tokens[i] != "(":
        raise SdfError(f"expected '(', got {tokens[i]!r}")
    i += 1
    items: list = []
    while i < len(tokens):
        tok = tokens[i]
        if tok == ")":
            return items, i + 1
        if tok == "(":
            sub, i = _read_sexpr(tokens, i)
            items.append(sub)
        else:
            items.append(tok[1:-1] if tok.startswith('"') else tok)
            i += 1
    raise SdfError("unbalanced parentheses")


_TIMESCALE_UNITS = {"s": 1.0, "ms": 1e-3, "us": 1e-6, "ns": 1e-9,
                    "ps": 1e-12, "fs": 1e-15}


def _parse_timescale(items: list) -> float:
    """``(TIMESCALE 1ns)`` or ``(TIMESCALE 100 ps)`` → seconds."""
    text = "".join(str(x) for x in items[1:])
    m = re.fullmatch(r"([\d.]+)\s*([a-z]+)", text)
    if m is None or m.group(2) not in _TIMESCALE_UNITS:
        raise SdfError(f"cannot parse TIMESCALE {text!r}")
    return float(m.group(1)) * _TIMESCALE_UNITS[m.group(2)]


def _parse_triple(expr, timescale: float, context: str) -> SdfTriple:
    """``(a:b:c)`` or ``(v)`` → :class:`SdfTriple` in seconds."""
    if not isinstance(expr, list) or len(expr) != 1:
        raise SdfError(f"{context}: expected a (min:typ:max) triple, got {expr!r}")
    parts = str(expr[0]).split(":")
    try:
        if len(parts) == 1:
            v = float(parts[0]) * timescale
            return SdfTriple(v, v, v)
        if len(parts) == 3:
            lo, ty, hi = (float(p) * timescale for p in parts)
            return SdfTriple(lo, ty, hi)
    except ValueError:
        pass
    raise SdfError(f"{context}: malformed delay triple {expr[0]!r}")


def _edge_pair(values: list, timescale: float,
               context: str) -> tuple[SdfTriple, SdfTriple]:
    """One or two triples → (first-edge, second-edge); one serves both."""
    if len(values) == 1:
        t = _parse_triple(values[0], timescale, context)
        return t, t
    if len(values) == 2:
        return (_parse_triple(values[0], timescale, context),
                _parse_triple(values[1], timescale, context))
    raise SdfError(f"{context}: expected 1 or 2 delay triples, got {len(values)}")


def read_sdf(text: str) -> SdfDelays:
    """Parse SDF text into an :class:`SdfDelays` annotation index."""
    tokens = _sdf_tokens(text)
    if not tokens:
        raise SdfError("empty SDF input")
    top, end = _read_sexpr(tokens, 0)
    if end != len(tokens):
        raise SdfError("trailing tokens after DELAYFILE")
    if not top or top[0] != "DELAYFILE":
        raise SdfError("expected a (DELAYFILE ...) top-level form")

    delays = SdfDelays()
    for item in top[1:]:
        if not isinstance(item, list) or not item:
            continue
        head = item[0]
        if head == "DESIGN" and len(item) > 1:
            delays.design = str(item[1])
        elif head == "TIMESCALE":
            delays.timescale = _parse_timescale(item)
        elif head == "CELL":
            _read_cell(item, delays)
    return delays


def _read_cell(cell: list, delays: SdfDelays) -> None:
    instance = ""
    for item in cell[1:]:
        if isinstance(item, list) and item and item[0] == "INSTANCE":
            instance = str(item[1]) if len(item) > 1 else ""
    for item in cell[1:]:
        if not (isinstance(item, list) and item and item[0] == "DELAY"):
            continue
        for absolute in item[1:]:
            if not (isinstance(absolute, list) and absolute
                    and absolute[0] == "ABSOLUTE"):
                continue
            for entry in absolute[1:]:
                if not (isinstance(entry, list) and entry):
                    continue
                if entry[0] == "IOPATH":
                    if len(entry) < 4:
                        raise SdfError(f"malformed IOPATH entry {entry!r}")
                    in_pin, out_pin = str(entry[1]), str(entry[2])
                    context = f"IOPATH {instance}/{in_pin}->{out_pin}"
                    delays.iopaths[(instance, in_pin, out_pin)] = _edge_pair(
                        entry[3:], delays.timescale, context)
                elif entry[0] == "INTERCONNECT":
                    if len(entry) < 4:
                        raise SdfError(f"malformed INTERCONNECT entry {entry!r}")
                    src, dst = str(entry[1]), str(entry[2])
                    context = f"INTERCONNECT {src}->{dst}"
                    delays.interconnects[(src, dst)] = _edge_pair(
                        entry[3:], delays.timescale, context)
                # other constructs (PORT, DEVICE, ...) are outside the
                # subset and skipped; they never alias IOPATH semantics.


# ----------------------------------------------------------------------
# Back-annotated engine
# ----------------------------------------------------------------------
class SdfEngine(StaEngine):
    """STA driven entirely by SDF annotation.

    Parameters
    ----------
    delays:
        Parsed annotation (:func:`read_sdf`).
    corner:
        Which of the ``min:typ:max`` triple to time (default ``"typ"``).
    library:
        Optional cell library used only to resolve each arc's unateness
        (``TimingArc.inverting``); cells absent from it fall back to
        ``inverting_default``.
    inverting_default:
        Unateness assumed for unknown cells (``True``: negative-unate,
        the correct sense for INV/NAND/NOR-style cells).
    input_slew:
        Slew carried through the design (SDF has no transition data).
    """

    def __init__(self, delays: SdfDelays, corner: str = "typ",
                 library: dict[str, CharacterizedCell] | None = None,
                 inverting_default: bool = True,
                 input_slew: float = 50e-12):
        require(corner in _CORNERS, f"bad corner {corner!r} (use {_CORNERS})")
        require(input_slew > 0, "input_slew must be positive")
        self.delays = delays
        self.corner = corner
        self.library = dict(library or {})
        self.wire_specs = {}
        self.inverting_default = inverting_default
        self.input_slew = input_slew

    def net_load(self, netlist: GateNetlist, net: str) -> float:
        """Loads are irrelevant — delays come from the annotation."""
        return 0.0

    def _wire_arc(self, net: str, load_cap: float) -> tuple[float, float]:
        """Wire delay is carried per-pin by INTERCONNECT, not per-net."""
        return (0.0, 0.0)

    def _inverting(self, cell: str, pin: str) -> bool:
        entry = self.library.get(cell)
        if entry is not None:
            try:
                return entry.arc_for(pin).inverting
            except KeyError:
                pass  # library lacks this arc; fall through to the default
        return self.inverting_default

    def _arc_delay(self, netlist: GateNetlist, inst: GateInstance, pin: str,
                   in_net: str, input_rising: bool, in_slew: float,
                   load: float) -> tuple[float, float, bool]:
        output_rising = ((not input_rising)
                         if self._inverting(inst.cell, pin) else input_rising)
        rise, fall = self.delays.iopath(inst.name, pin, inst.output_pin)
        delay = (rise if output_rising else fall).pick(self.corner)
        driver = netlist.driver_of(in_net)
        if driver is not None:
            key = (f"{driver.name}/{driver.output_pin}", f"{inst.name}/{pin}")
            wire = self.interconnect_for(key)
            if wire is not None:
                delay += (wire[0] if input_rising else wire[1]).pick(self.corner)
        return delay, in_slew, output_rising

    def interconnect_for(self, key: tuple[str, str]) \
            -> tuple[SdfTriple, SdfTriple] | None:
        """The annotated wire delay for ``(from_port, to_port)``, if any."""
        return self.delays.interconnects.get(key)
