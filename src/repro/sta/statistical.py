"""Monte-Carlo statistical STA (SSTA by sampling).

Process variation enters conventional STA as per-sample scaling of the
characterised data: every NLDM delay/slew table is multiplied by a
lognormal cell-speed factor (via :meth:`NldmTable.map_values` /
:meth:`TimingArc.scaled`) and every wire's R and C by lognormal
interconnect factors, then the deterministic engine runs unchanged.
Arrival and slack *distributions* come out of the sample sweep; the
drivers report the 5/50/95 quantiles.

Determinism is the load-bearing property: sample ``i`` draws from the
dedicated stream ``default_rng([salt, tag, seed, i])`` — no shared
sequential RNG — so the value of a sample does not depend on which
worker computes it or how many workers there are.  The sweep fans out
through :func:`repro.exec.run_indexed`, and sharded≡serial quantiles are
bit-for-bit identical (asserted by the corpus smoke in CI).

:func:`run_noise_monte_carlo` adds the same statistical axis to the
paper's noise-aware propagation: aggressor alignments jitter per sample,
while the shared simulation window is pinned (``window_end``) so the
noiseless quiet reference — which does not depend on the alignment —
keeps one cache/store key across the whole sweep and is solved once.
"""

from __future__ import annotations

import dataclasses
import zlib
from collections.abc import Callable
from dataclasses import dataclass, field
from functools import partial

import numpy as np

from .._knobs import knob
from .._util import require
from ..exec import ExecutionConfig, journal_for, run_indexed
from ..interconnect.rcline import RcLineSpec
from ..library.characterize import CharacterizedCell
from .analysis import InputSpec, StaEngine
from .netlist import GateNetlist

__all__ = [
    "McVariation",
    "McResult",
    "sample_library",
    "sample_wire_specs",
    "run_sta_monte_carlo",
    "run_noise_monte_carlo",
]

#: Stream-family salt so SSTA draws never collide with other consumers
#: of the same base seed.
_STREAM_SALT = 0x55A57A


def _rng_for(tag: str, seed: int, index: int) -> np.random.Generator:
    """The dedicated RNG stream of sample ``index``.

    The tag is hashed with :func:`zlib.crc32` (stable across processes
    and Python runs, unlike ``hash``) so differently-tagged sweeps with
    the same seed draw independent streams.
    """
    return np.random.default_rng(
        [_STREAM_SALT, zlib.crc32(tag.encode()), int(seed), int(index)])


@dataclass(frozen=True)
class McVariation:
    """Variation model: lognormal σ per knob (0 disables that axis).

    Attributes
    ----------
    sigma_cell:
        σ of ``ln(cell speed factor)``; one factor per library cell per
        sample, applied to all of the cell's delay *and* slew tables.
    sigma_wire:
        σ of ``ln(wire factor)``; independent factors for each wire's
        total resistance and capacitance per sample.
    """

    sigma_cell: float = 0.05
    sigma_wire: float = 0.10

    def __post_init__(self) -> None:
        require(self.sigma_cell >= 0 and self.sigma_wire >= 0,
                "variation sigmas must be >= 0")


def sample_library(library: dict[str, CharacterizedCell],
                   rng: np.random.Generator,
                   sigma: float) -> dict[str, CharacterizedCell]:
    """One Monte-Carlo draw of the cell library.

    Cells are visited in sorted-name order (one lognormal factor each),
    so the draw sequence — hence the sample — is independent of dict
    insertion order.
    """
    if sigma <= 0:
        return dict(library)
    out: dict[str, CharacterizedCell] = {}
    for name in sorted(library):
        entry = library[name]
        factor = float(np.exp(rng.normal(0.0, sigma)))
        arcs = tuple(a.scaled(factor) for a in entry.timing_arcs)
        out[name] = dataclasses.replace(
            entry, arc=arcs[0], arcs=arcs if len(arcs) > 1 else ())
    return out


def sample_wire_specs(wire_specs: dict[str, RcLineSpec],
                      rng: np.random.Generator,
                      sigma: float) -> dict[str, RcLineSpec]:
    """One Monte-Carlo draw of the interconnect (independent R/C factors)."""
    if sigma <= 0 or not wire_specs:
        return dict(wire_specs)
    out: dict[str, RcLineSpec] = {}
    for net in sorted(wire_specs):
        spec = wire_specs[net]
        f_r = float(np.exp(rng.normal(0.0, sigma)))
        f_c = float(np.exp(rng.normal(0.0, sigma)))
        out[net] = RcLineSpec(total_r=spec.total_r * f_r,
                              total_c=spec.total_c * f_c,
                              n_segments=spec.n_segments)
    return out


@dataclass(frozen=True)
class _McSpec:
    """Everything a worker needs to solve one sample (picklable)."""

    netlist: GateNetlist
    library: dict[str, CharacterizedCell]
    wire_specs: dict[str, RcLineSpec]
    inputs: dict[str, InputSpec]
    required_times: dict[str, float]
    variation: McVariation
    seed: int
    watch: tuple[str, ...]


def _solve_sample(index: int, spec: _McSpec) -> dict:
    """Solve sample ``index``: draw, run the deterministic engine, record.

    Module-level (not a closure) so :func:`repro.exec.run_indexed` can
    pickle it to worker processes.
    """
    rng = _rng_for("ssta", spec.seed, index)
    library = sample_library(spec.library, rng, spec.variation.sigma_cell)
    wires = sample_wire_specs(spec.wire_specs, rng, spec.variation.sigma_wire)
    engine = StaEngine(library, wire_specs=wires)
    result = engine.analyze(spec.netlist, inputs=spec.inputs,
                            required_times=spec.required_times or None)
    row: dict = {"index": index,
                 "arrival": {net: result.arrival(net) for net in spec.watch}}
    if spec.required_times:
        row["slack"] = {net: result.slack(net) for net in spec.watch
                        if net in result.required}
        row["worst_slack"] = result.worst_slack()
    return row


def _solve_journaled(j: int, spec: _McSpec, indices: tuple[int, ...],
                     journal) -> dict:
    """Solve the ``j``-th *missing* sample and journal it before returning.

    The write-ahead ordering (journal first, merge after) is what makes
    a ``kill -9`` between samples safe: a sample is either fully
    recorded or recomputed from scratch on resume — never half-counted.
    Module-level for the same pickling reason as :func:`_solve_sample`;
    the journal pickles without its file handle, so pool workers append
    through their own descriptors.
    """
    i = indices[j]
    row = _solve_sample(i, spec)
    journal.record(i, row)
    return row


def _quantiles(values, qs=(0.05, 0.5, 0.95)) -> dict[str, float]:
    arr = np.asarray(values, dtype=float)
    return {f"q{int(round(q * 100)):02d}": float(np.quantile(arr, q))
            for q in qs}


@dataclass
class McResult:
    """A Monte-Carlo sweep: per-sample rows plus quantile summaries.

    ``quantiles`` maps metric name (``"arrival"``, ``"slack"``) to
    ``{net: {"q05": ..., "q50": ..., "q95": ...}}``; scalar metrics
    (``"worst_slack"``) map straight to their quantile dict.
    """

    samples: int
    seed: int
    rows: list[dict]
    quantiles: dict
    diag: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready payload (CLI ``--json``, service results)."""
        return {"samples": self.samples, "seed": self.seed,
                "quantiles": self.quantiles, "rows": self.rows,
                "diag": dict(self.diag)}


def _summarise(rows: list[dict], watch: tuple[str, ...],
               with_slack: bool) -> dict:
    quantiles: dict = {
        "arrival": {net: _quantiles([r["arrival"][net] for r in rows])
                    for net in watch},
    }
    if with_slack:
        slack_nets = [net for net in watch
                      if all(net in r.get("slack", {}) for r in rows)]
        quantiles["slack"] = {
            net: _quantiles([r["slack"][net] for r in rows])
            for net in slack_nets}
        quantiles["worst_slack"] = _quantiles(
            [r["worst_slack"] for r in rows])
    return quantiles


def run_sta_monte_carlo(
    netlist: GateNetlist,
    library: dict[str, CharacterizedCell],
    wire_specs: dict[str, RcLineSpec] | None = None,
    inputs: dict[str, InputSpec] | None = None,
    required_times: dict[str, float] | None = None,
    variation: McVariation = McVariation(),
    samples: int | None = None,
    seed: int | None = None,
    watch: list[str] | None = None,
    execution: ExecutionConfig | None = None,
    on_sample: "Callable[[dict], None] | None" = None,
    journal: "bool | None" = None,
) -> McResult:
    """Sweep process-variation samples through the STA engine.

    Parameters
    ----------
    netlist, library, wire_specs, inputs, required_times:
        Exactly as :meth:`StaEngine.analyze` — the nominal design.
    variation:
        The σ model; each sample scales the library and wires by its own
        lognormal draws.
    samples / seed:
        Sweep size and base seed; ``None`` reads the ``REPRO_MC_SAMPLES``
        / ``REPRO_MC_SEED`` knobs.
    watch:
        Nets whose arrival/slack distributions are recorded (default:
        the primary outputs).
    execution:
        Worker configuration for :func:`repro.exec.run_indexed`; results
        are bit-identical across worker counts.
    on_sample:
        Optional streaming callback, called with each per-sample row in
        index order after the sweep completes (the service job uses this
        to emit rows).
    journal:
        Crash-safe resume through the write-ahead run journal
        (:mod:`repro.exec.journal`): completed samples are recorded as
        they finish and a rerun of the identical sweep resumes at the
        first unfinished one, with bit-identical quantiles.  ``None``
        (default) follows the ``REPRO_JOURNAL`` knob; needs a
        configured result store.

    Returns
    -------
    McResult
    """
    n = int(knob("REPRO_MC_SAMPLES") if samples is None else samples)
    base_seed = int(knob("REPRO_MC_SEED") if seed is None else seed)
    require(n >= 1, "need at least one sample")
    watch_nets = tuple(watch if watch is not None else netlist.primary_outputs)
    require(len(watch_nets) >= 1, "no nets to watch (no primary outputs?)")
    spec = _McSpec(netlist=netlist, library=dict(library),
                   wire_specs=dict(wire_specs or {}),
                   inputs=dict(inputs or {}),
                   required_times=dict(required_times or {}),
                   variation=variation, seed=base_seed, watch=watch_nets)
    # Nominal run first: fail fast (and in-process) on bad designs.
    _solve_sample_check = StaEngine(spec.library, wire_specs=spec.wire_specs)
    _solve_sample_check.analyze(netlist, inputs=spec.inputs,
                                required_times=spec.required_times or None)

    diag: dict = {}
    jr = journal_for("ssta-mc", (spec, n), n,
                     execution=execution, enabled=journal)
    if jr is not None:
        done = jr.completed()
        missing = tuple(i for i in range(n) if i not in done)
        computed = run_indexed(
            partial(_solve_journaled, spec=spec, indices=missing, journal=jr),
            len(missing), execution=execution,
            diag=diag) if missing else []
        by_index = dict(done)
        by_index.update(zip(missing, computed))
        rows = [by_index[i] for i in range(n)]
        diag["journal"] = {"resumed": len(done), "computed": len(missing)}
        jr.finish()
    else:
        rows = run_indexed(partial(_solve_sample, spec=spec), n,
                           execution=execution, diag=diag)
    if on_sample is not None:
        for row in rows:
            on_sample(row)
    quantiles = _summarise(rows, watch_nets, bool(spec.required_times))
    return McResult(samples=n, seed=base_seed, rows=rows,
                    quantiles=quantiles, diag=diag)


def run_noise_monte_carlo(
    stages,
    input_ramp,
    sigma_align: float = 20e-12,
    samples: int | None = None,
    seed: int | None = None,
    technique=None,
    dt: float = 2e-12,
    settle_margin: float = 800e-12,
    execution: ExecutionConfig | None = None,
    on_sample: "Callable[[dict], None] | None" = None,
    journal: "bool | None" = None,
) -> McResult:
    """Monte-Carlo over aggressor alignments through noise-aware STA.

    Each sample shifts every aggressor's ``transition_start`` by its own
    normal draw (σ = ``sigma_align``) and re-propagates the path with
    :func:`~repro.sta.noise_aware.propagate_path`.  All samples share one
    pinned simulation window (``window_end`` = the latest window any
    sample needs), so the alignment-independent quiet reference keeps a
    single cache/store key for the whole sweep: with a configured result
    store, a warm rerun performs zero transient solves.

    Samples run sequentially in-process — the parallelism (and the
    memoisation) lives inside ``propagate_path``'s execution layer — and
    each draws from its own indexed stream, so results are independent
    of the execution configuration.

    Returns an :class:`McResult` whose rows carry the path-output
    ``arrival`` (keyed ``"out"``) per sample.
    """
    from .noise_aware import NoisyStage, propagate_path  # cycle-free import

    n = int(knob("REPRO_MC_SAMPLES") if samples is None else samples)
    base_seed = int(knob("REPRO_MC_SEED") if seed is None else seed)
    require(n >= 1, "need at least one sample")
    require(sigma_align >= 0, "sigma_align must be >= 0")
    stages = list(stages)
    require(len(stages) >= 1, "need at least one stage")

    # Pre-draw every sample's offsets so the common window end covers the
    # whole sweep (the draw order is fixed: stage-major, aggressor-minor).
    offsets: list[list[float]] = []
    for i in range(n):
        rng = _rng_for("noise-mc", base_seed, i)
        offsets.append([float(rng.normal(0.0, sigma_align))
                        for stage in stages for _ in stage.aggressors])
    window_end = 0.0
    for per_sample in offsets:
        k = 0
        for stage in stages:
            for agg in stage.aggressors:
                window_end = max(
                    window_end,
                    agg.transition_start + per_sample[k]
                    + agg.slew / 0.8 + settle_margin)
                k += 1

    jr = journal_for(
        "noise-mc",
        (tuple(stages), input_ramp, float(sigma_align), n, base_seed,
         getattr(technique, "name", None), float(dt), float(settle_margin)),
        n, execution=execution, enabled=journal)
    done = jr.completed() if jr is not None else {}

    rows: list[dict] = []
    for i in range(n):
        if i in done:
            row = done[i]
            rows.append(row)
            if on_sample is not None:
                on_sample(row)
            continue
        per_sample = offsets[i]
        k = 0
        jittered: list[NoisyStage] = []
        for stage in stages:
            aggs = []
            for agg in stage.aggressors:
                aggs.append(dataclasses.replace(
                    agg,
                    transition_start=agg.transition_start + per_sample[k]))
                k += 1
            jittered.append(dataclasses.replace(stage, aggressors=tuple(aggs)))
        timings = propagate_path(
            jittered, input_ramp, technique=technique, dt=dt,
            settle_margin=settle_margin, execution=execution,
            window_end=window_end if sigma_align > 0 else None)
        row = {"index": i,
               "arrival": {"out": timings[-1].output_arrival},
               "offsets": list(per_sample)}
        if jr is not None:
            jr.record(i, row)
        rows.append(row)
        if on_sample is not None:
            on_sample(row)

    diag: dict = {"window_end": window_end}
    if jr is not None:
        diag["journal"] = {"resumed": len(done),
                           "computed": n - len(done)}
        jr.finish()
    quantiles = {"arrival": {"out": _quantiles(
        [r["arrival"]["out"] for r in rows])}}
    return McResult(samples=n, seed=base_seed, rows=rows,
                    quantiles=quantiles, diag=diag)
