"""Gate-level netlists for the STA engine.

A :class:`GateNetlist` is a flat graph of cell instances connected by
named nets, with designated primary inputs and outputs.  Cells come from
the characterised library (:mod:`repro.library`); this reproduction's
library is inverters, so instances are single-input/single-output, but the
netlist model (named pins, per-instance cell reference) is the general
one used by timing engines.

A tiny structural-Verilog-subset parser is provided for convenience
(module / input / output / wire declarations and cell instantiations with
named port connections), so realistic netlists can be written as text.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .._util import require

__all__ = ["GateInstance", "GateNetlist", "parse_structural_verilog", "NetlistError"]


class NetlistError(ValueError):
    """Raised on malformed netlists."""


@dataclass(frozen=True)
class GateInstance:
    """One placed cell.

    Attributes
    ----------
    name:
        Instance name (unique).
    cell:
        Library cell name, e.g. ``"INVX4"``.
    input_net / output_net:
        Connected net names (pin A and pin Y of the inverter library).
    """

    name: str
    cell: str
    input_net: str
    output_net: str


@dataclass
class GateNetlist:
    """A combinational gate-level netlist.

    Use :meth:`add_instance` to build programmatically, or
    :func:`parse_structural_verilog` to read the text form.
    """

    name: str = "top"
    primary_inputs: list[str] = field(default_factory=list)
    primary_outputs: list[str] = field(default_factory=list)
    instances: list[GateInstance] = field(default_factory=list)

    def add_instance(self, name: str, cell: str, input_net: str, output_net: str
                     ) -> GateInstance:
        """Add a gate instance and return it."""
        require(all(i.name != name for i in self.instances),
                f"duplicate instance name {name!r}")
        inst = GateInstance(name=name, cell=cell, input_net=input_net,
                            output_net=output_net)
        self.instances.append(inst)
        return inst

    def add_input(self, net: str) -> None:
        """Declare a primary input net."""
        if net not in self.primary_inputs:
            self.primary_inputs.append(net)

    def add_output(self, net: str) -> None:
        """Declare a primary output net."""
        if net not in self.primary_outputs:
            self.primary_outputs.append(net)

    # ------------------------------------------------------------------
    @property
    def nets(self) -> list[str]:
        """All net names in first-use order."""
        seen: list[str] = []
        seen_set: set[str] = set()
        for net in self.primary_inputs:
            if net not in seen_set:
                seen.append(net)
                seen_set.add(net)
        for inst in self.instances:
            for net in (inst.input_net, inst.output_net):
                if net not in seen_set:
                    seen.append(net)
                    seen_set.add(net)
        return seen

    def driver_of(self, net: str) -> GateInstance | None:
        """The instance driving ``net`` (None for primary inputs)."""
        for inst in self.instances:
            if inst.output_net == net:
                return inst
        return None

    def loads_of(self, net: str) -> list[GateInstance]:
        """Instances whose input connects to ``net``."""
        return [inst for inst in self.instances if inst.input_net == net]

    def fanout_count(self, net: str) -> int:
        """Number of gate inputs on ``net``."""
        return len(self.loads_of(net))

    def validate(self) -> None:
        """Check structural sanity.

        Raises
        ------
        NetlistError
            On multiply-driven nets, undriven internal nets, or outputs
            that no instance drives.
        """
        drivers: dict[str, list[str]] = {}
        for inst in self.instances:
            drivers.setdefault(inst.output_net, []).append(inst.name)
        for net, who in drivers.items():
            if len(who) > 1:
                raise NetlistError(f"net {net!r} driven by multiple instances: {who}")
            if net in self.primary_inputs:
                raise NetlistError(f"primary input {net!r} is also driven by {who[0]}")
        for inst in self.instances:
            if inst.input_net not in self.primary_inputs and inst.input_net not in drivers:
                raise NetlistError(
                    f"instance {inst.name!r} input net {inst.input_net!r} is undriven"
                )
        for net in self.primary_outputs:
            if net not in drivers and net not in self.primary_inputs:
                raise NetlistError(f"primary output {net!r} is undriven")

    @classmethod
    def inverter_chain(cls, drives: list[int], name: str = "chain") -> "GateNetlist":
        """Convenience constructor: a chain of inverters of given drives."""
        require(len(drives) >= 1, "need at least one stage")
        net = cls(name=name)
        net.add_input("n0")
        for k, drive in enumerate(drives):
            net.add_instance(f"u{k}", f"INVX{drive}", f"n{k}", f"n{k + 1}")
        net.add_output(f"n{len(drives)}")
        return net


# ----------------------------------------------------------------------
# Structural Verilog subset
# ----------------------------------------------------------------------
_MODULE_RE = re.compile(r"module\s+(\w+)\s*\(([^)]*)\)\s*;", re.DOTALL)
_DECL_RE = re.compile(r"(input|output|wire)\s+([^;]+);")
_INST_RE = re.compile(r"(\w+)\s+(\w+)\s*\(([^;]+)\)\s*;")
_PORT_RE = re.compile(r"\.(\w+)\s*\(\s*(\w+)\s*\)")


def parse_structural_verilog(text: str) -> GateNetlist:
    """Parse a structural-Verilog subset into a :class:`GateNetlist`.

    Supported: one module; ``input`` / ``output`` / ``wire`` declarations
    (comma-separated); instantiations with named ports ``.A(net)`` /
    ``.Y(net)``.  Comments (``//`` and ``/* */``) are stripped.

    Raises
    ------
    NetlistError
        On anything outside the subset.
    """
    text = re.sub(r"//[^\n]*", "", text)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)
    m = _MODULE_RE.search(text)
    if m is None:
        raise NetlistError("no module declaration found")
    netlist = GateNetlist(name=m.group(1))
    body = text[m.end():]
    end = body.find("endmodule")
    if end < 0:
        raise NetlistError("missing endmodule")
    body = body[:end]

    consumed: list[tuple[int, int]] = []
    for dm in _DECL_RE.finditer(body):
        kind = dm.group(1)
        nets = [n.strip() for n in dm.group(2).split(",") if n.strip()]
        for net in nets:
            if kind == "input":
                netlist.add_input(net)
            elif kind == "output":
                netlist.add_output(net)
            # wires need no registration; nets are implicit
        consumed.append(dm.span())

    for im in _INST_RE.finditer(body):
        if any(a <= im.start() < b for a, b in consumed):
            continue
        cell, inst_name, ports = im.group(1), im.group(2), im.group(3)
        if cell in ("input", "output", "wire"):
            continue
        conns = dict(_PORT_RE.findall(ports))
        if "A" not in conns or "Y" not in conns:
            raise NetlistError(
                f"instance {inst_name!r}: need named ports .A(...) and .Y(...)"
            )
        netlist.add_instance(inst_name, cell, conns["A"], conns["Y"])

    netlist.validate()
    return netlist
