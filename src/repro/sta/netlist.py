"""Gate-level netlists for the STA engine.

A :class:`GateNetlist` is a flat graph of cell instances connected by
named nets, with designated primary inputs and outputs.  Instances carry
*named input pins* — ``(pin, net)`` pairs in declaration order — so
multi-input cells (NAND2, AOI …) are first-class citizens of the timing
model: every (related input pin → output) pair is a separate timing arc,
and the engine propagates per arc rather than assuming one fanin.

Netlists are built programmatically (:meth:`GateNetlist.add_instance`)
or read from text: :func:`parse_structural_verilog` accepts the
structural-Verilog subset (it delegates to the tokenizer-based reader in
:mod:`repro.sta.verilog`, which rejects vector and escaped identifiers
with clear :class:`NetlistError`\\ s instead of registering garbage
nets).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .._util import require

__all__ = ["GateInstance", "GateNetlist", "parse_structural_verilog", "NetlistError"]


class NetlistError(ValueError):
    """Raised on malformed netlists."""


def _normalize_inputs(inputs) -> tuple[tuple[str, str], ...]:
    """Canonicalise an input-connection spec into ``((pin, net), ...)``.

    Accepts a single net name (connected to pin ``A``, the single-input
    convention of this library), a mapping ``{pin: net}``, or an
    iterable of ``(pin, net)`` pairs.
    """
    if isinstance(inputs, str):
        return (("A", inputs),)
    if isinstance(inputs, dict):
        pairs = tuple((str(p), str(n)) for p, n in inputs.items())
    else:
        pairs = tuple((str(p), str(n)) for p, n in inputs)
    require(len(pairs) >= 1, "instance needs at least one input connection")
    pins = [p for p, _ in pairs]
    require(len(set(pins)) == len(pins),
            f"duplicate input pin in {pins}")
    return pairs


@dataclass(frozen=True)
class GateInstance:
    """One placed cell.

    Attributes
    ----------
    name:
        Instance name (unique).
    cell:
        Library cell name, e.g. ``"INVX4"`` or ``"NAND2X1"``.
    inputs:
        ``(pin, net)`` pairs in declaration order; one entry per input
        pin of the cell.
    output_net:
        Net driven by the output pin.
    output_pin:
        Name of the output pin (``"Y"`` by convention).
    """

    name: str
    cell: str
    inputs: tuple[tuple[str, str], ...]
    output_net: str
    output_pin: str = "Y"

    @property
    def input_nets(self) -> tuple[str, ...]:
        """Connected input nets, in pin declaration order."""
        return tuple(net for _, net in self.inputs)

    @property
    def input_pins(self) -> tuple[str, ...]:
        """Input pin names, in declaration order."""
        return tuple(pin for pin, _ in self.inputs)

    @property
    def input_net(self) -> str:
        """The single input net (single-input cells only)."""
        require(len(self.inputs) == 1,
                f"instance {self.name!r} has {len(self.inputs)} input pins; "
                f"use .inputs for multi-input cells")
        return self.inputs[0][1]

    def net_of(self, pin: str) -> str:
        """Net connected to input ``pin``."""
        for p, net in self.inputs:
            if p == pin:
                return net
        raise KeyError(f"instance {self.name!r} has no input pin {pin!r} "
                       f"(have {list(self.input_pins)})")


@dataclass
class GateNetlist:
    """A combinational gate-level netlist.

    Use :meth:`add_instance` to build programmatically, or
    :func:`parse_structural_verilog` to read the text form.
    """

    name: str = "top"
    primary_inputs: list[str] = field(default_factory=list)
    primary_outputs: list[str] = field(default_factory=list)
    instances: list[GateInstance] = field(default_factory=list)

    def add_instance(self, name: str, cell: str, inputs, output_net: str,
                     output_pin: str = "Y") -> GateInstance:
        """Add a gate instance and return it.

        ``inputs`` is a net name (single-input cells, pin ``A``), a
        ``{pin: net}`` mapping, or ``(pin, net)`` pairs.
        """
        require(all(i.name != name for i in self.instances),
                f"duplicate instance name {name!r}")
        inst = GateInstance(name=name, cell=cell,
                            inputs=_normalize_inputs(inputs),
                            output_net=output_net, output_pin=output_pin)
        self.instances.append(inst)
        return inst

    def add_input(self, net: str) -> None:
        """Declare a primary input net."""
        if net not in self.primary_inputs:
            self.primary_inputs.append(net)

    def add_output(self, net: str) -> None:
        """Declare a primary output net."""
        if net not in self.primary_outputs:
            self.primary_outputs.append(net)

    # ------------------------------------------------------------------
    @property
    def nets(self) -> list[str]:
        """All net names in first-use order."""
        seen: list[str] = []
        seen_set: set[str] = set()
        for net in self.primary_inputs:
            if net not in seen_set:
                seen.append(net)
                seen_set.add(net)
        for inst in self.instances:
            for net in (*inst.input_nets, inst.output_net):
                if net not in seen_set:
                    seen.append(net)
                    seen_set.add(net)
        return seen

    def driver_of(self, net: str) -> GateInstance | None:
        """The instance driving ``net`` (None for primary inputs)."""
        for inst in self.instances:
            if inst.output_net == net:
                return inst
        return None

    def loads_of(self, net: str) -> list[GateInstance]:
        """Instances with an input on ``net`` (once per connected pin)."""
        return [inst for inst, _ in self.load_pins(net)]

    def load_pins(self, net: str) -> list[tuple[GateInstance, str]]:
        """``(instance, pin)`` pairs of every gate input on ``net``."""
        pairs: list[tuple[GateInstance, str]] = []
        for inst in self.instances:
            for pin, in_net in inst.inputs:
                if in_net == net:
                    pairs.append((inst, pin))
        return pairs

    def fanout_count(self, net: str) -> int:
        """Number of gate input pins on ``net``."""
        return len(self.load_pins(net))

    def validate(self) -> None:
        """Check structural sanity.

        Raises
        ------
        NetlistError
            On multiply-driven nets, undriven internal nets, or outputs
            that no instance drives.
        """
        drivers: dict[str, list[str]] = {}
        for inst in self.instances:
            drivers.setdefault(inst.output_net, []).append(inst.name)
        for net, who in drivers.items():
            if len(who) > 1:
                raise NetlistError(f"net {net!r} driven by multiple instances: {who}")
            if net in self.primary_inputs:
                raise NetlistError(f"primary input {net!r} is also driven by {who[0]}")
        for inst in self.instances:
            for pin, in_net in inst.inputs:
                if in_net not in self.primary_inputs and in_net not in drivers:
                    raise NetlistError(
                        f"instance {inst.name!r} input {pin}({in_net!r}) is undriven"
                    )
        for net in self.primary_outputs:
            if net not in drivers and net not in self.primary_inputs:
                raise NetlistError(f"primary output {net!r} is undriven")

    @classmethod
    def inverter_chain(cls, drives: list[int], name: str = "chain") -> "GateNetlist":
        """Convenience constructor: a chain of inverters of given drives."""
        require(len(drives) >= 1, "need at least one stage")
        net = cls(name=name)
        net.add_input("n0")
        for k, drive in enumerate(drives):
            net.add_instance(f"u{k}", f"INVX{drive}", f"n{k}", f"n{k + 1}")
        net.add_output(f"n{len(drives)}")
        return net


def parse_structural_verilog(text: str) -> GateNetlist:
    """Parse a structural-Verilog subset into a :class:`GateNetlist`.

    Delegates to :func:`repro.sta.verilog.read_verilog` — the
    tokenizer-based reader that supports multi-port instances with named
    connections and rejects vector declarations, escaped identifiers and
    unsupported statements with clear :class:`NetlistError`\\ s.
    """
    from .verilog import read_verilog
    return read_verilog(text)
