"""``python -m repro.sta`` — the front door for taking real designs.

Reads a structural-Verilog netlist plus a Liberty library (or an SDF
back-annotation), runs STA, and prints per-net arrivals, slacks and the
critical path.  ``--mc N`` switches to the Monte-Carlo statistical sweep
and reports arrival/slack quantiles instead.

Examples
--------
::

    python -m repro.sta tests/data/c17.v --liberty tests/data/c17.lib \\
        --required 100e-12
    python -m repro.sta tests/data/c17.v --sdf tests/data/c17.sdf \\
        --corner max
    python -m repro.sta tests/data/c17.v --liberty tests/data/c17.lib \\
        --mc 64 --seed 7 --json ssta.json
"""

from __future__ import annotations

import argparse
import json
import sys

from ..exec import ExecutionConfig, default_execution
from ..library.liberty import parse_liberty
from .analysis import InputSpec, StaEngine
from .netlist import parse_structural_verilog
from .sdf import SdfEngine, read_sdf
from .statistical import McVariation, run_sta_monte_carlo


def _build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.sta",
        description="Gate-level STA over a structural-Verilog design.")
    p.add_argument("verilog", help="structural-Verilog netlist file")
    p.add_argument("--liberty", help="Liberty (.lib) cell library")
    p.add_argument("--sdf", help="SDF back-annotation (delays from the "
                                 "annotation instead of NLDM lookups)")
    p.add_argument("--corner", default="typ", choices=("min", "typ", "max"),
                   help="SDF corner (default typ)")
    p.add_argument("--required", type=float, default=None, metavar="T",
                   help="required time (seconds) applied to every primary "
                        "output; enables slacks")
    p.add_argument("--input-slew", type=float, default=50e-12, metavar="S",
                   help="primary-input slew in seconds (default 50e-12)")
    p.add_argument("--mc", type=int, default=None, metavar="N",
                   help="run an N-sample Monte-Carlo statistical sweep "
                        "(default: single deterministic run)")
    p.add_argument("--seed", type=int, default=None,
                   help="Monte-Carlo base seed (default: REPRO_MC_SEED)")
    p.add_argument("--sigma-cell", type=float, default=0.05,
                   help="lognormal sigma of the cell-speed factor")
    p.add_argument("--sigma-wire", type=float, default=0.10,
                   help="lognormal sigma of the wire R/C factors")
    p.add_argument("--workers", type=int, default=None,
                   help="worker processes for the MC sweep "
                        "(default: REPRO_WORKERS)")
    p.add_argument("--json", metavar="FILE",
                   help="also write the full result as JSON")
    return p


def _ps(seconds: float) -> str:
    return f"{seconds * 1e12:9.2f} ps"


def main(argv: "list[str] | None" = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.liberty is None and args.sdf is None:
        print("error: need --liberty and/or --sdf", file=sys.stderr)
        return 2

    with open(args.verilog) as fh:
        netlist = parse_structural_verilog(fh.read())
    library = {}
    if args.liberty:
        with open(args.liberty) as fh:
            library = parse_liberty(fh.read())

    inputs = {net: InputSpec(slew=args.input_slew)
              for net in netlist.primary_inputs}
    required = None
    if args.required is not None:
        required = {net: args.required for net in netlist.primary_outputs}

    if args.mc is not None:
        if not library:
            print("error: --mc needs --liberty (NLDM tables to perturb)",
                  file=sys.stderr)
            return 2
        execution = None
        if args.workers is not None:
            base = default_execution()
            execution = ExecutionConfig(workers=args.workers,
                                        store=base.store,
                                        min_pool_jobs=base.min_pool_jobs)
        result = run_sta_monte_carlo(
            netlist, library, inputs=inputs, required_times=required,
            variation=McVariation(sigma_cell=args.sigma_cell,
                                  sigma_wire=args.sigma_wire),
            samples=args.mc, seed=args.seed, execution=execution)
        print(f"# {netlist.name}: {result.samples} samples, "
              f"seed {result.seed}, mode {result.diag.get('mode')}")
        for metric, per_net in result.quantiles.items():
            if metric == "worst_slack":
                q = per_net
                print(f"worst_slack   q05 {_ps(q['q05'])}  "
                      f"q50 {_ps(q['q50'])}  q95 {_ps(q['q95'])}")
                continue
            for net, q in sorted(per_net.items()):
                print(f"{metric:<8}{net:<8} q05 {_ps(q['q05'])}  "
                      f"q50 {_ps(q['q50'])}  q95 {_ps(q['q95'])}")
        if args.json:
            with open(args.json, "w") as fh:
                json.dump(result.to_dict(), fh, indent=2)
        return 0

    if args.sdf:
        with open(args.sdf) as fh:
            delays = read_sdf(fh.read())
        engine = SdfEngine(delays, corner=args.corner, library=library,
                           input_slew=args.input_slew)
    else:
        engine = StaEngine(library)
    result = engine.analyze(netlist, inputs=inputs, required_times=required)

    print(f"# {netlist.name}: arrivals")
    payload: dict = {"design": netlist.name, "arrival_rise": {},
                     "arrival_fall": {}, "slack": {}}
    for net in sorted(result.rise):
        r, f = result.rise[net], result.fall[net]
        payload["arrival_rise"][net] = r.arrival
        payload["arrival_fall"][net] = f.arrival
        line = f"{net:<10} rise {_ps(r.arrival)}  fall {_ps(f.arrival)}"
        if required is not None and net in result.required:
            slack = result.slack(net)
            payload["slack"][net] = slack
            line += f"  slack {_ps(slack)}"
        print(line)
    for out in netlist.primary_outputs:
        path = result.critical_path(out)
        payload.setdefault("critical_path", {})[out] = path
        print(f"critical path to {out}: {' -> '.join(path)}")
    if required is not None:
        print(f"worst slack: {_ps(result.worst_slack())}")
        payload["worst_slack"] = result.worst_slack()
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
    return 0


if __name__ == "__main__":
    sys.exit(main())
