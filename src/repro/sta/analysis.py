"""Conventional static timing analysis on NLDM tables.

This is the baseline engine the paper's techniques plug into: arrival
times and slews propagate through gate arcs (table lookup) and wire arcs
(Elmore delay with the standard PERI slew degradation), both transition
edges are tracked, required times propagate backward, and the critical
path can be traced.

The noise-aware flow (:mod:`repro.sta.noise_aware`) replaces the summary
(arrival, slew) at coupled nets with an equivalent waveform computed by a
technique from :mod:`repro.core.techniques`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .._util import require
from ..interconnect.rcline import RcLineSpec
from ..interconnect.elmore import elmore_delays_line
from ..library.characterize import CharacterizedCell
from .graph import TimingGraph
from .netlist import GateNetlist

__all__ = ["EdgeTiming", "InputSpec", "StaResult", "StaEngine"]

#: ln(9) — converts an RC time constant into a 10–90% transition time.
_LN9 = math.log(9.0)


@dataclass(frozen=True)
class EdgeTiming:
    """Timing of one transition edge at a net.

    Attributes
    ----------
    arrival:
        Latest arrival time of this edge (seconds).
    slew:
        10–90% transition time accompanying that arrival.
    from_net:
        Predecessor net on the worst path (None at primary inputs).
    """

    arrival: float
    slew: float
    from_net: str | None = None

    def later_of(self, other: "EdgeTiming | None") -> "EdgeTiming":
        """Worst-case merge of two candidate edge timings."""
        if other is None or self.arrival >= other.arrival:
            return self
        return other


@dataclass(frozen=True)
class InputSpec:
    """Primary-input stimulus: arrival and slew for both edges."""

    arrival: float = 0.0
    slew: float = 50e-12

    def __post_init__(self) -> None:
        require(self.slew > 0, "input slew must be positive")


@dataclass
class StaResult:
    """Arrival/required/slack data for every net.

    ``rise[net]`` / ``fall[net]`` are :class:`EdgeTiming`; ``required``
    maps nets to required times (propagated from primary outputs).
    """

    rise: dict[str, EdgeTiming] = field(default_factory=dict)
    fall: dict[str, EdgeTiming] = field(default_factory=dict)
    required: dict[str, float] = field(default_factory=dict)

    def worst_edge(self, net: str) -> tuple[str, EdgeTiming]:
        """(edge-name, timing) of the later edge at ``net``."""
        r, f = self.rise[net], self.fall[net]
        return ("rise", r) if r.arrival >= f.arrival else ("fall", f)

    def arrival(self, net: str) -> float:
        """Latest arrival at ``net`` across both edges."""
        return self.worst_edge(net)[1].arrival

    def slack(self, net: str) -> float:
        """Required minus arrival at ``net`` (requires a required time)."""
        require(net in self.required, f"no required time at net {net!r}")
        return self.required[net] - self.arrival(net)

    def worst_slack(self) -> float:
        """Minimum slack over all constrained nets."""
        require(bool(self.required), "no required times set")
        return min(self.slack(net) for net in self.required)

    def critical_path(self, end_net: str) -> list[str]:
        """Trace the worst path ending at ``end_net`` back to its input."""
        path = [end_net]
        edge, timing = self.worst_edge(end_net)
        while timing.from_net is not None:
            path.append(timing.from_net)
            # An inverter flips the edge at every stage.
            edge = "fall" if edge == "rise" else "rise"
            timing = (self.rise if edge == "rise" else self.fall)[timing.from_net]
        path.reverse()
        return path


class StaEngine:
    """NLDM-based STA over a characterised inverter library.

    Parameters
    ----------
    library:
        Cell name → :class:`~repro.library.characterize.CharacterizedCell`.
    wire_specs:
        Optional net name → :class:`~repro.interconnect.rcline.RcLineSpec`
        for nets with significant interconnect; other nets are ideal.
    """

    def __init__(self, library: dict[str, CharacterizedCell],
                 wire_specs: dict[str, RcLineSpec] | None = None):
        require(len(library) > 0, "empty cell library")
        self.library = library
        self.wire_specs = dict(wire_specs or {})

    # ------------------------------------------------------------------
    def _cell(self, name: str) -> CharacterizedCell:
        if name not in self.library:
            raise KeyError(f"cell {name!r} not in library (have {sorted(self.library)})")
        return self.library[name]

    def net_load(self, netlist: GateNetlist, net: str) -> float:
        """Capacitive load on ``net``: fanout pin caps plus wire capacitance."""
        load = sum(self._cell(inst.cell).cell.input_capacitance
                   for inst in netlist.loads_of(net))
        if net in self.wire_specs:
            load += self.wire_specs[net].total_c
        return load

    def _wire_arc(self, net: str, load_cap: float) -> tuple[float, float]:
        """(delay, slew-degradation time constant) of the net's wire."""
        if net not in self.wire_specs:
            return (0.0, 0.0)
        spec = self.wire_specs[net]
        delay = elmore_delays_line(spec.total_r, spec.total_c, spec.n_segments,
                                   load_c=load_cap)
        return (delay, delay)

    # ------------------------------------------------------------------
    def analyze(
        self,
        netlist: GateNetlist,
        inputs: dict[str, InputSpec] | None = None,
        required_times: dict[str, float] | None = None,
    ) -> StaResult:
        """Propagate arrivals (and optionally required times) through the design.

        Parameters
        ----------
        netlist:
            The gate-level design (validated internally).
        inputs:
            Primary input specs; unspecified inputs get ``InputSpec()``.
        required_times:
            Net → required time; defaults to none (slacks unavailable).

        Returns
        -------
        StaResult
        """
        graph = TimingGraph.build(netlist)
        inputs = inputs or {}
        result = StaResult()

        for net in graph.levels():
            if net in netlist.primary_inputs:
                spec = inputs.get(net, InputSpec())
                result.rise[net] = EdgeTiming(spec.arrival, spec.slew)
                result.fall[net] = EdgeTiming(spec.arrival, spec.slew)
                continue
            inst = graph.fanin.get(net)
            require(inst is not None, f"net {net!r} neither input nor driven")
            entry = self._cell(inst.cell)
            in_net = inst.input_net
            load = self.net_load(netlist, net)
            wire_delay, wire_tau = self._wire_arc(net, load)

            candidates: dict[str, EdgeTiming] = {}
            for in_edge_name, in_edge in (("rise", result.rise[in_net]),
                                          ("fall", result.fall[in_net])):
                delay, out_slew, out_rising = entry.arc.delay_and_slew(
                    in_edge.slew, load, input_rising=(in_edge_name == "rise"))
                arrival = in_edge.arrival + delay + wire_delay
                slew = math.hypot(out_slew, _LN9 * wire_tau)
                timing = EdgeTiming(arrival=arrival, slew=slew, from_net=in_net)
                key = "rise" if out_rising else "fall"
                candidates[key] = timing.later_of(candidates.get(key))
            # An inverter produces exactly one output edge per input edge,
            # so both output edges are always populated.
            result.rise[net] = candidates["rise"]
            result.fall[net] = candidates["fall"]

        if required_times:
            self._propagate_required(netlist, graph, result, required_times)
        return result

    # ------------------------------------------------------------------
    def _propagate_required(self, netlist: GateNetlist, graph: TimingGraph,
                            result: StaResult, required_times: dict[str, float]) -> None:
        """Backward-propagate required times (worst edge, min over fanout)."""
        required = dict(required_times)
        for net in reversed(graph.levels()):
            if net not in required:
                continue
            inst = graph.fanin.get(net)
            if inst is None:
                continue
            in_net = inst.input_net
            # Stage delay actually used on the worst path at this net.
            _, out_timing = result.worst_edge(net)
            in_arrival = max(result.rise[in_net].arrival, result.fall[in_net].arrival)
            stage_delay = out_timing.arrival - in_arrival
            req_in = required[net] - stage_delay
            required[in_net] = min(required.get(in_net, math.inf), req_in)
        result.required.update(required)
