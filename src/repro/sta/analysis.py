"""Conventional static timing analysis on NLDM tables.

This is the baseline engine the paper's techniques plug into: arrival
times and slews propagate through gate arcs (table lookup, one arc per
related input pin of multi-input cells) and wire arcs (Elmore delay with
the standard PERI slew degradation), both transition edges are tracked,
required times propagate backward *per edge* along the same arcs the
forward pass used, and the critical path is traced through the recorded
causal (net, edge) predecessors.

The noise-aware flow (:mod:`repro.sta.noise_aware`) replaces the summary
(arrival, slew) at coupled nets with an equivalent waveform computed by a
technique from :mod:`repro.core.techniques`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .._util import require
from ..interconnect.rcline import RcLineSpec
from ..interconnect.elmore import elmore_delays_line
from ..library.characterize import CharacterizedCell
from .graph import TimingGraph
from .netlist import GateInstance, GateNetlist

__all__ = ["EdgeTiming", "InputSpec", "StaResult", "StaEngine", "ArcRecord"]

#: ln(9) — converts an RC time constant into a 10–90% transition time.
_LN9 = math.log(9.0)


@dataclass(frozen=True)
class EdgeTiming:
    """Timing of one transition edge at a net.

    Attributes
    ----------
    arrival:
        Latest arrival time of this edge (seconds).
    slew:
        10–90% transition time accompanying that arrival.
    from_net:
        Predecessor net on the worst path (None at primary inputs).
    from_edge:
        The *causal* input edge (``"rise"``/``"fall"``) at ``from_net``
        that produced this output edge — recorded, not re-derived, so
        path tracing and required-time propagation stay correct for
        non-inverting arcs.
    from_pin:
        Input pin of the driving instance the worst path enters through.
    """

    arrival: float
    slew: float
    from_net: str | None = None
    from_edge: str | None = None
    from_pin: str | None = None

    def later_of(self, other: "EdgeTiming | None") -> "EdgeTiming":
        """Worst-case merge of two candidate edge timings."""
        if other is None or self.arrival >= other.arrival:
            return self
        return other


@dataclass(frozen=True)
class ArcRecord:
    """One evaluated timing arc: input (net, edge) → output edge with delay.

    The forward pass records every arc it evaluates; the backward pass
    replays them, so required times subtract exactly the delay that
    produced each arrival candidate (no re-lookup, no edge guessing).
    """

    in_net: str
    in_pin: str
    in_edge: str
    out_edge: str
    delay: float


@dataclass(frozen=True)
class InputSpec:
    """Primary-input stimulus: arrival and slew for both edges."""

    arrival: float = 0.0
    slew: float = 50e-12

    def __post_init__(self) -> None:
        require(self.slew > 0, "input slew must be positive")


@dataclass
class StaResult:
    """Arrival/required/slack data for every net.

    ``rise[net]`` / ``fall[net]`` are :class:`EdgeTiming`.
    ``required_rise`` / ``required_fall`` are per-edge required times
    (propagated backward from primary outputs along the recorded arcs);
    ``required`` keeps the per-net summary (min over edges) for
    compatibility.
    """

    rise: dict[str, EdgeTiming] = field(default_factory=dict)
    fall: dict[str, EdgeTiming] = field(default_factory=dict)
    required: dict[str, float] = field(default_factory=dict)
    required_rise: dict[str, float] = field(default_factory=dict)
    required_fall: dict[str, float] = field(default_factory=dict)
    arcs: dict[str, tuple[ArcRecord, ...]] = field(default_factory=dict)

    def edge(self, net: str, edge: str) -> EdgeTiming:
        """The :class:`EdgeTiming` of ``edge`` (``"rise"``/``"fall"``)."""
        require(edge in ("rise", "fall"), f"bad edge {edge!r}")
        return (self.rise if edge == "rise" else self.fall)[net]

    def worst_edge(self, net: str) -> tuple[str, EdgeTiming]:
        """(edge-name, timing) of the later edge at ``net``."""
        r, f = self.rise[net], self.fall[net]
        return ("rise", r) if r.arrival >= f.arrival else ("fall", f)

    def arrival(self, net: str) -> float:
        """Latest arrival at ``net`` across both edges."""
        return self.worst_edge(net)[1].arrival

    def slack_edge(self, net: str, edge: str) -> float:
        """Required minus arrival for one edge at ``net``."""
        req = self.required_rise if edge == "rise" else self.required_fall
        require(net in req, f"no {edge} required time at net {net!r}")
        return req[net] - self.edge(net, edge).arrival

    def slack(self, net: str) -> float:
        """Worst (minimum) slack over the edges constrained at ``net``."""
        slacks = [self.slack_edge(net, e)
                  for e, req in (("rise", self.required_rise),
                                 ("fall", self.required_fall))
                  if net in req]
        require(bool(slacks), f"no required time at net {net!r}")
        return min(slacks)

    def worst_slack(self) -> float:
        """Minimum slack over all constrained nets."""
        require(bool(self.required), "no required times set")
        return min(self.slack(net) for net in self.required)

    def critical_path(self, end_net: str, edge: str | None = None) -> list[str]:
        """Trace the worst path ending at ``end_net`` back to its input.

        Follows the recorded causal ``from_edge`` at every stage (correct
        for inverting and non-inverting arcs alike).  ``edge`` selects
        which output edge to trace; default is the later one.
        """
        timing = self.edge(end_net, edge) if edge else self.worst_edge(end_net)[1]
        path = [end_net]
        while timing.from_net is not None:
            path.append(timing.from_net)
            require(timing.from_edge is not None,
                    f"missing causal edge on path at {path[-1]!r}")
            timing = self.edge(timing.from_net, timing.from_edge)
        path.reverse()
        return path


class StaEngine:
    """NLDM-based STA over a characterised cell library.

    Parameters
    ----------
    library:
        Cell name → :class:`~repro.library.characterize.CharacterizedCell`.
        Multi-input cells carry one timing arc per related input pin.
    wire_specs:
        Optional net name → :class:`~repro.interconnect.rcline.RcLineSpec`
        for nets with significant interconnect; other nets are ideal.
    """

    def __init__(self, library: dict[str, CharacterizedCell],
                 wire_specs: dict[str, RcLineSpec] | None = None):
        require(len(library) > 0, "empty cell library")
        self.library = library
        self.wire_specs = dict(wire_specs or {})

    # ------------------------------------------------------------------
    def _cell(self, name: str) -> CharacterizedCell:
        if name not in self.library:
            raise KeyError(f"cell {name!r} not in library (have {sorted(self.library)})")
        return self.library[name]

    def net_load(self, netlist: GateNetlist, net: str) -> float:
        """Capacitive load on ``net``: fanout pin caps plus wire capacitance."""
        load = sum(self._cell(inst.cell).input_capacitance
                   for inst, _pin in netlist.load_pins(net))
        if net in self.wire_specs:
            load += self.wire_specs[net].total_c
        return load

    def _wire_arc(self, net: str, load_cap: float) -> tuple[float, float]:
        """(delay, slew-degradation time constant) of the net's wire."""
        if net not in self.wire_specs:
            return (0.0, 0.0)
        spec = self.wire_specs[net]
        delay = elmore_delays_line(spec.total_r, spec.total_c, spec.n_segments,
                                   load_c=load_cap)
        return (delay, delay)

    def _arc_delay(self, netlist: GateNetlist, inst: GateInstance, pin: str,
                   in_net: str, input_rising: bool, in_slew: float,
                   load: float) -> tuple[float, float, bool]:
        """Evaluate one cell arc: ``(delay, output_slew, output_rising)``.

        The single overridable seam of the engine — subclasses (e.g. the
        SDF back-annotated engine) replace the NLDM lookup while keeping
        the per-arc propagation, required-time and tracing machinery.
        """
        arc = self._cell(inst.cell).arc_for(pin)
        return arc.delay_and_slew(in_slew, load, input_rising=input_rising)

    # ------------------------------------------------------------------
    def analyze(
        self,
        netlist: GateNetlist,
        inputs: dict[str, InputSpec] | None = None,
        required_times: dict[str, float] | None = None,
    ) -> StaResult:
        """Propagate arrivals (and optionally required times) through the design.

        Parameters
        ----------
        netlist:
            The gate-level design (validated internally).
        inputs:
            Primary input specs; unspecified inputs get ``InputSpec()``.
        required_times:
            Net → required time (applied to both edges at that net);
            defaults to none (slacks unavailable).

        Returns
        -------
        StaResult
        """
        graph = TimingGraph.build(netlist)
        inputs = inputs or {}
        result = StaResult()

        for net in graph.levels():
            if net in netlist.primary_inputs:
                spec = inputs.get(net, InputSpec())
                result.rise[net] = EdgeTiming(spec.arrival, spec.slew)
                result.fall[net] = EdgeTiming(spec.arrival, spec.slew)
                continue
            inst = graph.fanin.get(net)
            require(inst is not None, f"net {net!r} neither input nor driven")
            load = self.net_load(netlist, net)
            wire_delay, wire_tau = self._wire_arc(net, load)

            candidates: dict[str, EdgeTiming] = {}
            records: list[ArcRecord] = []
            for pin, in_net in inst.inputs:
                for in_edge_name in ("rise", "fall"):
                    in_edge = result.edge(in_net, in_edge_name)
                    delay, out_slew, out_rising = self._arc_delay(
                        netlist, inst, pin, in_net,
                        input_rising=(in_edge_name == "rise"),
                        in_slew=in_edge.slew, load=load)
                    total_delay = delay + wire_delay
                    arrival = in_edge.arrival + total_delay
                    slew = math.hypot(out_slew, _LN9 * wire_tau)
                    out_edge = "rise" if out_rising else "fall"
                    timing = EdgeTiming(arrival=arrival, slew=slew,
                                        from_net=in_net,
                                        from_edge=in_edge_name,
                                        from_pin=pin)
                    candidates[out_edge] = timing.later_of(candidates.get(out_edge))
                    records.append(ArcRecord(in_net=in_net, in_pin=pin,
                                             in_edge=in_edge_name,
                                             out_edge=out_edge,
                                             delay=total_delay))
            require("rise" in candidates and "fall" in candidates,
                    f"net {net!r}: arcs of {inst.cell!r} never produce both "
                    f"output edges")
            result.rise[net] = candidates["rise"]
            result.fall[net] = candidates["fall"]
            result.arcs[net] = tuple(records)

        if required_times:
            self._propagate_required(graph, result, required_times)
        return result

    # ------------------------------------------------------------------
    def _propagate_required(self, graph: TimingGraph, result: StaResult,
                            required_times: dict[str, float]) -> None:
        """Backward-propagate required times, per edge, along recorded arcs.

        For every arc (in_net, in_edge) → (net, out_edge) with delay *d*,
        the input edge must satisfy ``req_in ≤ req_out − d``; each input
        (net, edge) takes the minimum over all arcs that consume it.
        Subtracting the *causal* edge's arc delay — rather than the gap
        between output arrival and the max input arrival — is what keeps
        slacks exact when rise/fall arrivals are asymmetric.
        """
        req = {"rise": dict(required_times), "fall": dict(required_times)}
        for net in reversed(graph.levels()):
            for rec in result.arcs.get(net, ()):
                out_req = req[rec.out_edge].get(net)
                if out_req is None:
                    continue
                cand = out_req - rec.delay
                cur = req[rec.in_edge].get(rec.in_net, math.inf)
                if cand < cur:
                    req[rec.in_edge][rec.in_net] = cand
        result.required_rise.update(req["rise"])
        result.required_fall.update(req["fall"])
        for net in set(req["rise"]) | set(req["fall"]):
            result.required[net] = min(
                req["rise"].get(net, math.inf), req["fall"].get(net, math.inf))
