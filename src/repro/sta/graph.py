"""Timing graph construction and levelisation.

The STA engine works on a DAG whose vertices are *timing points* (net,
pin) and whose edges are either cell arcs (gate input pin → gate output)
or net arcs (driver output → load input, carrying wire delay).  A
multi-input cell contributes one cell arc per input pin; nets fan out to
any number of load pins.

Levelisation is Kahn's algorithm; cycles raise immediately (combinational
timing graphs must be acyclic).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .._util import require
from .netlist import GateInstance, GateNetlist

__all__ = ["TimingGraph", "TimingGraphError"]


class TimingGraphError(ValueError):
    """Raised on cyclic or malformed timing graphs."""


@dataclass
class TimingGraph:
    """Net-level timing DAG of a gate netlist.

    Vertices are net names.  ``fanin[net]`` is the driving instance (if
    any); ``fanout[net]`` lists ``(instance, pin)`` pairs the net feeds —
    one entry per connected input pin, so a cell listening on two pins of
    the same net appears twice.  Use :meth:`levels` for a topological
    ordering of nets.
    """

    netlist: GateNetlist
    fanin: dict[str, GateInstance] = field(default_factory=dict)
    fanout: dict[str, list[tuple[GateInstance, str]]] = field(default_factory=dict)

    @classmethod
    def build(cls, netlist: GateNetlist) -> "TimingGraph":
        """Compile a validated netlist into its timing graph."""
        netlist.validate()
        graph = cls(netlist=netlist)
        for inst in netlist.instances:
            require(inst.output_net not in graph.fanin,
                    f"net {inst.output_net!r} multiply driven")
            graph.fanin[inst.output_net] = inst
            for pin, in_net in inst.inputs:
                graph.fanout.setdefault(in_net, []).append((inst, pin))
        return graph

    # ------------------------------------------------------------------
    def levels(self) -> list[str]:
        """Nets in topological order (primary inputs first).

        Raises
        ------
        TimingGraphError
            If the graph contains a combinational cycle.
        """
        # A driven net becomes ready once ALL of its driver's input nets
        # are ordered; count distinct predecessor nets, not pins.
        indeg: dict[str, int] = {}
        for net in self.netlist.nets:
            inst = self.fanin.get(net)
            indeg[net] = len(set(inst.input_nets)) if inst is not None else 0
        ready = [net for net, d in indeg.items() if d == 0]
        for net in ready:
            if net not in self.netlist.primary_inputs and self.fanout.get(net):
                raise TimingGraphError(f"undriven internal net {net!r}")
        order: list[str] = []
        queue = list(ready)
        while queue:
            net = queue.pop(0)
            order.append(net)
            released: set[str] = set()
            for inst, _pin in self.fanout.get(net, []):
                if inst.output_net in released:
                    continue  # same net on several pins: release once
                released.add(inst.output_net)
                indeg[inst.output_net] -= 1
                if indeg[inst.output_net] == 0:
                    queue.append(inst.output_net)
        if len(order) != len(indeg):
            missing = sorted(set(indeg) - set(order))
            raise TimingGraphError(f"combinational cycle involving nets {missing}")
        return order

    def depth_of(self, net: str) -> int:
        """Logic depth (max gate stages) from primary inputs to ``net``."""
        depth: dict[str, int] = {}
        for n in self.levels():
            inst = self.fanin.get(n)
            if inst is not None:
                depth[n] = 1 + max(depth.get(in_net, 0)
                                   for in_net in inst.input_nets)
            else:
                depth[n] = 0
        require(net in depth, f"unknown net {net!r}")
        return depth[net]

    def transitive_fanin_nets(self, net: str) -> list[str]:
        """All nets upstream of ``net`` (inclusive), topological order."""
        keep: set[str] = set()
        stack = [net]
        while stack:
            n = stack.pop()
            if n in keep:
                continue
            keep.add(n)
            inst = self.fanin.get(n)
            if inst is not None:
                stack.extend(inst.input_nets)
        return [n for n in self.levels() if n in keep]
