"""Timing graph construction and levelisation.

The STA engine works on a DAG whose vertices are *timing points* (net,
pin) and whose edges are either cell arcs (gate input → gate output) or
net arcs (driver output → load input, carrying wire delay).  For the
inverter library every gate contributes one cell arc; nets fan out to any
number of load pins.

Levelisation is Kahn's algorithm; cycles raise immediately (combinational
timing graphs must be acyclic).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .._util import require
from .netlist import GateInstance, GateNetlist

__all__ = ["TimingGraph", "TimingGraphError"]


class TimingGraphError(ValueError):
    """Raised on cyclic or malformed timing graphs."""


@dataclass
class TimingGraph:
    """Net-level timing DAG of a gate netlist.

    Vertices are net names.  ``fanin[net]`` is the driving instance (if
    any); ``fanout[net]`` lists the instances the net feeds.  Use
    :meth:`levels` for a topological ordering of nets.
    """

    netlist: GateNetlist
    fanin: dict[str, GateInstance] = field(default_factory=dict)
    fanout: dict[str, list[GateInstance]] = field(default_factory=dict)

    @classmethod
    def build(cls, netlist: GateNetlist) -> "TimingGraph":
        """Compile a validated netlist into its timing graph."""
        netlist.validate()
        graph = cls(netlist=netlist)
        for inst in netlist.instances:
            require(inst.output_net not in graph.fanin,
                    f"net {inst.output_net!r} multiply driven")
            graph.fanin[inst.output_net] = inst
            graph.fanout.setdefault(inst.input_net, []).append(inst)
        return graph

    # ------------------------------------------------------------------
    def levels(self) -> list[str]:
        """Nets in topological order (primary inputs first).

        Raises
        ------
        TimingGraphError
            If the graph contains a combinational cycle.
        """
        indeg: dict[str, int] = {}
        for net in self.netlist.nets:
            indeg[net] = 1 if net in self.fanin else 0
        ready = [net for net, d in indeg.items() if d == 0]
        for net in ready:
            if net not in self.netlist.primary_inputs and self.fanout.get(net):
                raise TimingGraphError(f"undriven internal net {net!r}")
        order: list[str] = []
        queue = list(ready)
        while queue:
            net = queue.pop(0)
            order.append(net)
            for inst in self.fanout.get(net, []):
                indeg[inst.output_net] -= 1
                if indeg[inst.output_net] == 0:
                    queue.append(inst.output_net)
        if len(order) != len(indeg):
            missing = sorted(set(indeg) - set(order))
            raise TimingGraphError(f"combinational cycle involving nets {missing}")
        return order

    def depth_of(self, net: str) -> int:
        """Logic depth (number of gate stages) from primary inputs to ``net``."""
        depth: dict[str, int] = {}
        for n in self.levels():
            if n in self.fanin:
                depth[n] = depth.get(self.fanin[n].input_net, 0) + 1
            else:
                depth[n] = 0
        require(net in depth, f"unknown net {net!r}")
        return depth[net]

    def transitive_fanin_nets(self, net: str) -> list[str]:
        """All nets upstream of ``net`` (inclusive), topological order."""
        keep: set[str] = set()
        stack = [net]
        while stack:
            n = stack.pop()
            if n in keep:
                continue
            keep.add(n)
            if n in self.fanin:
                stack.append(self.fanin[n].input_net)
        return [n for n in self.levels() if n in keep]
