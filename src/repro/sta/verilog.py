"""Structural-Verilog reader for gate-level designs.

This is the front door for real netlists: a tokenizer + recursive-descent
parser over the structural subset that timing engines consume —

* one ``module`` with a port list (plain or ANSI-style ``input a``
  entries),
* ``input`` / ``output`` / ``wire`` declarations (comma-separated),
* cell instantiations with *named* port connections
  (``NAND2X1 u1 (.A(n1), .B(n2), .Y(n3));``), any number of ports,
* ``//`` and ``/* */`` comments.

Everything outside the subset is rejected loudly with a
:class:`~repro.sta.netlist.NetlistError` naming the offending construct:
vector declarations (``input [3:0] a;``), escaped identifiers
(``\\foo[1]``), positional port connections, parameter overrides
(``#(...)``), ``assign`` statements, and any statement the grammar does
not recognise.  A timing run over a silently-misparsed netlist is worse
than no run at all — garbage nets must never enter the timing graph.

Which port of an instance is its *output* is decided by name:
``output_pins`` (default ``("Y", "Z", "OUT", "Q")``) — or explicitly per
cell via ``output_pin_of``.  Exactly one output port per instance is
required; the remaining connections become the instance's named input
pins in declaration order.
"""

from __future__ import annotations

import re

from .netlist import GateNetlist, NetlistError

__all__ = ["read_verilog", "DEFAULT_OUTPUT_PINS"]

#: Port names recognised as cell outputs, in lookup order.
DEFAULT_OUTPUT_PINS = ("Y", "Z", "OUT", "Q")

_TOKEN_RE = re.compile(
    r"""
    \s+                          # whitespace (skipped)
    | //[^\n]*                   # line comment (skipped)
    | /\*.*?\*/                  # block comment (skipped)
    | (?P<escaped>\\[^\s]+)      # escaped identifier (rejected later)
    | (?P<word>[A-Za-z_$][\w$]*)
    | (?P<number>\d[\w'.]*)      # numeric literal, incl. 4'b0 forms
    | (?P<punct>[()\[\],;.:=\#*@])
    """,
    re.VERBOSE | re.DOTALL,
)

_KEYWORDS = frozenset(("module", "endmodule", "input", "output", "wire"))
_UNSUPPORTED = frozenset((
    "assign", "inout", "parameter", "localparam", "reg", "always",
    "initial", "generate", "supply0", "supply1", "tri", "specify",
))


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise NetlistError(
                f"unexpected character at offset {pos}: {text[pos]!r}")
        pos = m.end()
        if m.lastgroup is not None:
            tokens.append(m.group())
    return tokens


class _Stream:
    def __init__(self, tokens: list[str]):
        self._tokens = tokens
        self._i = 0

    def peek(self) -> str | None:
        return self._tokens[self._i] if self._i < len(self._tokens) else None

    def next(self) -> str:
        tok = self.peek()
        if tok is None:
            raise NetlistError("unexpected end of input")
        self._i += 1
        return tok

    def expect(self, token: str, context: str) -> None:
        tok = self.next()
        if tok != token:
            raise NetlistError(f"{context}: expected {token!r}, got {tok!r}")


def _identifier(tok: str, context: str) -> str:
    """Validate a token as a plain (non-escaped, non-vector) identifier."""
    if tok.startswith("\\"):
        raise NetlistError(
            f"{context}: escaped identifier {tok!r} is not supported")
    if not re.fullmatch(r"[A-Za-z_$][\w$]*", tok):
        raise NetlistError(f"{context}: expected an identifier, got {tok!r}")
    return tok


def _reject_vector(stream: _Stream, context: str) -> None:
    if stream.peek() == "[":
        raise NetlistError(
            f"{context}: vector/bus declarations ('[msb:lsb]') are not "
            f"supported; flatten the bus into scalar nets")


def _parse_decl(stream: _Stream, kind: str, netlist: GateNetlist,
                declared_wires: set[str]) -> None:
    """``input|output|wire name, name, ... ;``"""
    context = f"{kind} declaration"
    _reject_vector(stream, context)
    while True:
        name = _identifier(stream.next(), context)
        _reject_vector(stream, context)
        if kind == "input":
            netlist.add_input(name)
        elif kind == "output":
            netlist.add_output(name)
        else:
            declared_wires.add(name)
        tok = stream.next()
        if tok == ";":
            return
        if tok != ",":
            raise NetlistError(f"{context}: expected ',' or ';', got {tok!r}")


def _parse_header(stream: _Stream, netlist: GateNetlist) -> list[str]:
    """``module name (ports);`` — returns the header port names."""
    stream.expect("module", "module header")
    netlist.name = _identifier(stream.next(), "module name")
    ports: list[str] = []
    tok = stream.next()
    if tok == ";":
        return ports
    if tok != "(":
        raise NetlistError(f"module header: expected '(' or ';', got {tok!r}")
    if stream.peek() == ")":
        stream.next()
        stream.expect(";", "module header")
        return ports
    while True:
        tok = stream.next()
        # ANSI-style header entries carry their direction inline.
        if tok in ("input", "output"):
            _reject_vector(stream, f"module port ({tok})")
            name = _identifier(stream.next(), "module port")
            (netlist.add_input if tok == "input" else netlist.add_output)(name)
        elif tok == "inout":
            raise NetlistError("module port: 'inout' ports are not supported")
        else:
            name = _identifier(tok, "module port")
        ports.append(name)
        tok = stream.next()
        if tok == ")":
            break
        if tok != ",":
            raise NetlistError(
                f"module header: expected ',' or ')', got {tok!r}")
    stream.expect(";", "module header")
    return ports


def _parse_instance(stream: _Stream, cell: str) -> tuple[str, list[tuple[str, str]]]:
    """``CELL inst (.PIN(net), ...);`` — returns (inst name, connections)."""
    inst_name = _identifier(stream.next(), f"{cell} instantiation")
    context = f"instance {inst_name!r}"
    tok = stream.next()
    if tok == "#":
        raise NetlistError(
            f"{context}: parameter overrides ('#(...)') are not supported")
    if tok != "(":
        raise NetlistError(f"{context}: expected '(', got {tok!r}")
    conns: list[tuple[str, str]] = []
    if stream.peek() == ")":
        raise NetlistError(f"{context}: empty port connection list")
    while True:
        tok = stream.next()
        if tok != ".":
            raise NetlistError(
                f"{context}: need named ports '.PIN(net)'; positional or "
                f"malformed connection starting at {tok!r}")
        pin = _identifier(stream.next(), f"{context} port name")
        stream.expect("(", f"{context} port {pin!r}")
        net_tok = stream.next()
        if re.match(r"\d", net_tok):
            raise NetlistError(
                f"{context}: constant connection {net_tok!r} on port "
                f"{pin!r} is not supported")
        net = _identifier(net_tok, f"{context} port {pin!r} net")
        _reject_vector(stream, f"{context} port {pin!r}")
        stream.expect(")", f"{context} port {pin!r}")
        conns.append((pin, net))
        tok = stream.next()
        if tok == ")":
            break
        if tok != ",":
            raise NetlistError(
                f"{context}: expected ',' or ')', got {tok!r}")
    stream.expect(";", context)
    return inst_name, conns


def read_verilog(
    text: str,
    output_pins: tuple[str, ...] = DEFAULT_OUTPUT_PINS,
    output_pin_of: dict[str, str] | None = None,
) -> GateNetlist:
    """Parse structural Verilog into a validated :class:`GateNetlist`.

    Parameters
    ----------
    text:
        Verilog source (one module).
    output_pins:
        Port names treated as cell outputs when ``output_pin_of`` does
        not name the cell.  Each instance must connect exactly one.
    output_pin_of:
        Optional explicit cell → output-pin-name map, for libraries
        whose output pins fall outside ``output_pins``.

    Raises
    ------
    NetlistError
        On anything outside the structural subset — vector declarations,
        escaped identifiers, positional connections, unknown statements —
        and on structurally invalid results (multiply-driven nets,
        undriven inputs; see :meth:`GateNetlist.validate`).
    """
    stream = _Stream(_tokenize(text))
    netlist = GateNetlist()
    declared_wires: set[str] = set()
    header_ports = _parse_header(stream, netlist)

    saw_end = False
    while True:
        tok = stream.peek()
        if tok is None:
            break
        stream.next()
        if tok == "endmodule":
            saw_end = True
            break
        if tok in ("input", "output", "wire"):
            _parse_decl(stream, tok, netlist, declared_wires)
            continue
        if tok in _UNSUPPORTED:
            raise NetlistError(
                f"unsupported statement {tok!r}: only input/output/wire "
                f"declarations and named-port instantiations are accepted")
        cell = _identifier(tok, "statement")
        inst_name, conns = _parse_instance(stream, cell)
        wanted = None if output_pin_of is None else output_pin_of.get(cell)
        outs = [(p, n) for p, n in conns
                if (p == wanted if wanted is not None else p in output_pins)]
        if len(outs) != 1:
            raise NetlistError(
                f"instance {inst_name!r} ({cell}): need exactly one output "
                f"port ({wanted or '/'.join(output_pins)}), got "
                f"{[p for p, _ in outs] or [p for p, _ in conns]}")
        out_pin, out_net = outs[0]
        inputs = [(p, n) for p, n in conns if p != out_pin]
        if not inputs:
            raise NetlistError(
                f"instance {inst_name!r} ({cell}): no input connections")
        netlist.add_instance(inst_name, cell, inputs, out_net,
                             output_pin=out_pin)
    if not saw_end:
        raise NetlistError("missing endmodule")

    for port in header_ports:
        if port not in netlist.primary_inputs \
                and port not in netlist.primary_outputs:
            raise NetlistError(
                f"module port {port!r} has no input/output declaration")
    netlist.validate()
    return netlist
