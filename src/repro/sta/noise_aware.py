"""Noise-aware timing propagation — "efficient propagation of equivalent
waveforms throughout the circuit" (the paper's stated goal).

A :class:`NoisyStage` is one victim segment: a driver cell, a coupled RC
line with aggressors, and the receiving cell.  :func:`propagate_path`
walks a chain of such stages.  At each coupled stage it

1. simulates the stage circuit driven by the *equivalent ramp* carried in
   from the previous stage (the STA abstraction — only arrival/slew/shape
   summary crosses stage boundaries),
2. extracts the noisy waveform at the receiver input,
3. collapses it back to a new equivalent ramp with the chosen technique
   (SGDP by default), and
4. hands that ramp to the next stage.

A full-waveform reference mode propagates the actual simulated waveform
instead, so the per-stage and accumulated abstraction error of any
technique can be measured — the multi-stage generalisation of Table 1.

Simulation strategy
-------------------
The noisy stage and its quiet-aggressor (noiseless) reference are
submitted together through the execution layer
(:func:`repro.exec.run_jobs`, honouring the shared
:class:`~repro.exec.ExecutionConfig`); stages without aggressors share a
topology with their reference and advance through one stacked Newton
loop, and a configured result store memoises every stage simulation
across runs.

The quiet reference depends only on the stage configuration and the
incoming stimulus — not on the aggressor alignment — so it is memoised in
a :class:`QuietReferenceCache` keyed on ``(quiet stage, stimulus record,
window end, dt)``.  Re-propagating the same path (for another technique,
another aggressor alignment, or a reference run) re-simulates each
distinct quiet reference exactly once; the cache is shared module-wide by
default, can be passed explicitly, and :func:`clear_quiet_cache` resets
it (its ``hits``/``misses`` counters double as a test spy).

Slew fallback policy
--------------------
A partial-swing receiver output has no 10–90 slew; the equivalent ramp
handed to the next stage then needs a substitute value.  That policy is
explicit: ``propagate_path(..., slew_fallback=...)`` gives the substitute
(default 100 ps, the historical behaviour), ``slew_fallback=None`` raises
instead.  Every substitution is recorded on the returned
:class:`StageTiming` (``output_slew_substituted`` /
``retime_slew_substituted``).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field

from .._util import require
from ..circuit.netlist import Circuit
from ..circuit.sources import RampSource
from ..circuit.transient import TransientJob, TransientOptions, resolve_adaptive
from ..core.ramp import SaturatedRamp
from ..exec import (ExecutionConfig, default_execution, fleet_stats,
                    reset_fleet_stats, run_jobs)
from ..core.techniques import PropagationInputs, Technique
from ..core.techniques.sgdp import Sgdp
from ..core.waveform import Waveform
from ..interconnect.coupling import CouplingSpec, add_coupled_lines
from ..interconnect.rcline import RcLineSpec
from ..library.cells import InverterCell

__all__ = [
    "AggressorSpec",
    "NoisyStage",
    "StageTiming",
    "propagate_path",
    "QuietReferenceCache",
    "clear_quiet_cache",
    "quiet_cache_stats",
]


@dataclass(frozen=True)
class AggressorSpec:
    """One aggressor coupled to a stage's victim line.

    Attributes
    ----------
    coupling:
        Total coupling capacitance to the victim line (farads).
    transition_start:
        Absolute start time of the aggressor driver-input ramp.
    rising:
        Direction of the aggressor *line* transition.
    slew:
        Aggressor primary-input slew.
    driver:
        Aggressor driver cell.
    """

    coupling: float
    transition_start: float
    rising: bool
    slew: float
    driver: InverterCell


@dataclass(frozen=True)
class NoisyStage:
    """One victim stage: driver → coupled line → receiver.

    The receiver of stage *k* is the driver of stage *k+1* in
    :func:`propagate_path`; the last stage's receiver output is the path
    endpoint.
    """

    driver: InverterCell
    line: RcLineSpec
    receiver: InverterCell
    aggressors: tuple[AggressorSpec, ...] = ()
    receiver_load: float = 10e-15


@dataclass(frozen=True)
class StageTiming:
    """Result of propagating through one stage.

    Attributes
    ----------
    ramp:
        Equivalent ramp at the receiver *output* handed to the next stage
        (technique mode) — or the fitted summary of the actual waveform
        (reference mode).
    v_receiver_in / v_receiver_out:
        Simulated waveforms at the receiver input (far end of the line)
        and output.
    output_arrival:
        Latest 0.5·Vdd crossing of the receiver output.
    output_slew:
        Receiver output 10–90% transition time (NaN for partial swings).
    output_slew_substituted:
        True when ``output_slew`` was NaN and ``ramp`` was built with the
        ``slew_fallback`` substitute instead.
    retime_slew_substituted:
        True when the re-timed receiver output (technique mode) had no
        measurable slew and the fallback was substituted for the next
        stage's stimulus.
    """

    ramp: SaturatedRamp
    v_receiver_in: Waveform
    v_receiver_out: Waveform
    output_arrival: float
    output_slew: float
    output_slew_substituted: bool = False
    retime_slew_substituted: bool = False


class QuietReferenceCache:
    """Memoised quiet-aggressor reference simulations.

    Maps ``(quiet stage, stimulus waveform, window end, dt, stepping
    options)`` to the simulated ``(far-end, receiver-output)`` waveform
    pair — adaptive and fixed-grid propagation never alias.  A bounded
    FIFO keeps memory flat on long sweeps; ``hits``/``misses`` expose the
    behaviour to tests and benchmarks.
    """

    def __init__(self, maxsize: int = 64):
        require(maxsize >= 1, "cache needs at least one slot")
        self.maxsize = maxsize
        self._data: "OrderedDict[tuple, tuple[Waveform, Waveform]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, key: tuple) -> tuple[Waveform, Waveform] | None:
        """The cached waveform pair, or ``None`` (counted as a miss)."""
        pair = self._data.get(key)
        if pair is None:
            self.misses += 1
            return None
        self.hits += 1
        return pair

    def store(self, key: tuple, pair: tuple[Waveform, Waveform]) -> None:
        """Insert a simulated pair, evicting the oldest entry when full."""
        if key not in self._data and len(self._data) >= self.maxsize:
            self._data.popitem(last=False)
        self._data[key] = pair

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        self._data.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)


#: Module-wide cache shared by all :func:`propagate_path` calls.
_QUIET_CACHE = QuietReferenceCache()


def clear_quiet_cache(drop_store_entries: bool = False) -> None:
    """Reset every memoisation layer behind noise-aware propagation.

    Clears the module-wide quiet-reference cache and, when the default
    :class:`~repro.exec.ExecutionConfig` carries a result store
    (``REPRO_STORE`` or :func:`repro.exec.set_default_execution`), zeroes
    that store's counters.  The store's *on-disk entries* survive by
    default — a warmed store may represent hours of simulation, and a
    stats reset (the common reason to call this in tests and sweeps)
    must not destroy it; pass ``drop_store_entries=True`` to wipe the
    entries too.
    """
    _QUIET_CACHE.clear()
    reset_fleet_stats()
    store = default_execution().store
    if store is not None:
        if drop_store_entries:
            store.clear()
        else:
            store.reset_counters()


def quiet_cache_stats() -> dict:
    """One stats surface over both memoisation layers.

    ``hits``/``misses``/``size`` describe the in-memory quiet-reference
    cache; ``store`` holds the default execution configuration's
    result-store stats (:meth:`repro.exec.ResultStore.stats` — hits,
    misses, corrupt entries, evictions, entry count and bytes), or
    ``None`` when no store is configured; ``fleet`` is the
    execution layer's cross-worker solver totals
    (:func:`repro.exec.fleet_stats` — newton iterations, halvings,
    matrix builds … summed over every ``run_jobs`` call, sharded or
    serial).  :func:`clear_quiet_cache` resets all three.
    """
    store = default_execution().store
    return {"hits": _QUIET_CACHE.hits, "misses": _QUIET_CACHE.misses,
            "size": len(_QUIET_CACHE),
            "store": store.stats() if store is not None else None,
            "fleet": fleet_stats()}


def _build_stage_circuit(stage: NoisyStage, vdd: float) -> tuple[Circuit, dict[str, float], str, str]:
    """Stage netlist with a forced source at the driver input.

    Returns (circuit, initial voltages, far-end node, receiver output node).
    """
    circuit = Circuit("stage")
    circuit.vsource("Vdd", "vdd", "0", vdd)
    stage.driver.instantiate(circuit, "drv", "in", "near", "vdd")

    terminals = [("near", "far")]
    specs = [stage.line]
    couplings = []
    for k, agg in enumerate(stage.aggressors):
        a_in, a_near, a_far = f"a{k}_in", f"a{k}_near", f"a{k}_far"
        v_from, v_to = (vdd, 0.0) if agg.rising else (0.0, vdd)
        circuit.vsource(f"Va{k}", a_in, "0",
                        RampSource(agg.transition_start, agg.slew, v_from, v_to))
        agg.driver.instantiate(circuit, f"adrv{k}", a_in, a_near, "vdd")
        circuit.capacitor(f"acl{k}", a_far, "0", 5e-15)
        terminals.append((a_near, a_far))
        specs.append(stage.line)
        couplings.append(CouplingSpec(line_a=0, line_b=k + 1, total_cm=agg.coupling))
    add_coupled_lines(circuit, "net", terminals, specs, couplings)

    stage.receiver.instantiate(circuit, "recv", "far", "out", "vdd")
    if stage.receiver_load > 0:
        circuit.capacitor("cl", "out", "0", stage.receiver_load)
    return circuit, {}, "far", "out"


def _stage_initial(stage: NoisyStage, vdd: float, input_level: float) -> dict[str, float]:
    """Logic-consistent pre-transition node voltages for fast DC solves."""
    near = vdd - input_level if input_level in (0.0, vdd) else vdd / 2
    initial = {"in": input_level, "near": near, "far": near,
               "out": vdd - near, "vdd": vdd}
    for k, agg in enumerate(stage.aggressors):
        a_from = vdd if agg.rising else 0.0
        initial[f"a{k}_in"] = a_from
        initial[f"a{k}_near"] = vdd - a_from
        initial[f"a{k}_far"] = vdd - a_from
    return initial


def _slew_or_fallback(slew: float, fallback: float | None,
                      context: str) -> tuple[float, bool]:
    """Apply the explicit slew-substitution policy.

    Returns ``(usable slew, substituted?)``; raises :class:`ValueError`
    when the slew is NaN (partial swing) and no fallback is allowed.
    """
    if not math.isnan(slew):
        return slew, False
    if fallback is None:
        raise ValueError(
            f"{context}: output transition has no measurable 10-90 slew "
            f"(partial swing) and slew_fallback is None"
        )
    return fallback, True


def propagate_path(
    stages: list[NoisyStage],
    input_ramp: SaturatedRamp,
    technique: Technique | None = None,
    dt: float = 2e-12,
    settle_margin: float = 800e-12,
    full_waveform: bool = False,
    slew_fallback: float | None = 100e-12,
    quiet_cache: QuietReferenceCache | None = None,
    solver_backend: str = "auto",
    adaptive: bool | None = None,
    execution: ExecutionConfig | None = None,
    window_end: float | None = None,
) -> list[StageTiming]:
    """Propagate timing through a chain of (possibly coupled) stages.

    Parameters
    ----------
    stages:
        The victim path, driver side first.
    input_ramp:
        Equivalent waveform at the first driver input.
    technique:
        Equivalent-waveform technique used at stage boundaries (default
        SGDP).  Ignored in ``full_waveform`` mode.
    dt:
        Simulation step.
    settle_margin:
        Extra simulated time past the stimulus end.
    full_waveform:
        ``True`` propagates the actual simulated waveform between stages
        (reference mode) instead of the equivalent ramp.
    slew_fallback:
        Substitute slew (seconds) when a receiver output has no
        measurable 10–90 transition (partial swing).  ``None`` raises
        :class:`ValueError` instead of substituting.  Substitutions are
        recorded on the returned :class:`StageTiming` entries.
    quiet_cache:
        Cache of quiet-reference simulations; defaults to the module-wide
        instance, so repeated propagation over the same stage
        configuration and stimulus simulates the noiseless reference
        exactly once.
    solver_backend:
        Linear-solver backend request for the stage simulations
        (``TransientOptions.backend``); every backend produces
        equivalent waveforms, so cached quiet references remain valid
        across backend choices.
    adaptive:
        Stepping mode of the stage simulations: ``True``/``False`` pin
        LTE-controlled adaptive stepping on/off, ``None`` (default)
        follows the ``REPRO_ADAPTIVE`` environment knob.  Unlike the
        backend choice, the stepping options *do* key the quiet cache —
        adaptive references live on a different grid and carry an
        LTE-sized deviation, so modes never alias each other's entries.
    execution:
        Execution-layer configuration for the stage simulations; with a
        result store, re-propagating a path (another technique, another
        run) re-simulates nothing that was already solved.  ``None``
        uses the environment defaults.
    window_end:
        Optional floor on every stage's simulation-window end.  The
        window normally tracks the stimulus and aggressor alignments —
        which makes the quiet-reference cache/store key depend on them.
        A Monte-Carlo sweep that jitters alignments pins ``window_end``
        to a common value covering all samples, so the quiet reference
        (and its store entry) is shared across the whole sweep.

    Returns
    -------
    list[StageTiming]
        One entry per stage, in path order.
    """
    require(len(stages) >= 1, "need at least one stage")
    tech = technique or Sgdp()
    sim_opts = TransientOptions(backend=solver_backend,
                                adaptive=resolve_adaptive(adaptive))
    cache = quiet_cache if quiet_cache is not None else _QUIET_CACHE
    results: list[StageTiming] = []
    stimulus: "Waveform | SaturatedRamp" = input_ramp

    for stage_index, stage in enumerate(stages):
        vdd = stage.driver.vdd
        if isinstance(stimulus, SaturatedRamp):
            t0 = stimulus.t_begin - 100e-12
            t1 = stimulus.t_finish + settle_margin
            wave_in = stimulus.to_waveform(t0, t1)
        else:
            wave_in = stimulus
            t1 = wave_in.t_end

        # The aggressor windows may extend past the victim stimulus.
        for agg in stage.aggressors:
            t1 = max(t1, agg.transition_start + agg.slew / 0.8 + settle_margin)
        if window_end is not None:
            t1 = max(t1, window_end)

        circuit, _, far, out = _build_stage_circuit(stage, vdd)
        if wave_in.t_end < t1:
            wave_in = Waveform(list(wave_in.times) + [t1],
                               list(wave_in.values) + [wave_in.v_final])
        circuit.vsource("Vin", "in", "0", wave_in)
        initial = _stage_initial(stage, vdd, wave_in.v_initial)
        jobs = [TransientJob(circuit, t_stop=t1, dt=dt,
                             t_start=wave_in.t_start, initial_voltages=initial,
                             options=sim_opts)]

        # Noiseless reference for the receiver: same stage, quiet
        # aggressors — memoised per (stage config, stimulus, window, dt).
        quiet = NoisyStage(driver=stage.driver, line=stage.line,
                           receiver=stage.receiver, aggressors=(),
                           receiver_load=stage.receiver_load)
        # The stepping mode keys the entry (an adaptive reference lives
        # on a different grid); the solver backend deliberately does not.
        quiet_key = (quiet, wave_in, t1, dt, sim_opts.adaptive,
                     sim_opts.lte_rtol, sim_opts.lte_atol,
                     sim_opts.max_step, sim_opts.min_step)
        quiet_pair = cache.lookup(quiet_key)
        if quiet_pair is None:
            qc, _, qfar, qout = _build_stage_circuit(quiet, vdd)
            qc.vsource("Vin", "in", "0", wave_in)
            jobs.append(TransientJob(
                qc, t_stop=t1, dt=dt, t_start=wave_in.t_start,
                initial_voltages=_stage_initial(quiet, vdd, wave_in.v_initial),
                options=sim_opts))

        # Aggressor-free stages share a topology with their quiet
        # reference, so this advances both through one stacked solve.
        sims = run_jobs(jobs, execution)
        v_far = sims[0].waveform(far)
        v_out = sims[0].waveform(out)
        if quiet_pair is None:
            quiet_pair = (sims[1].waveform(qfar), sims[1].waveform(qout))
            cache.store(quiet_key, quiet_pair)

        inputs = PropagationInputs(
            v_in_noisy=v_far, vdd=vdd,
            v_in_noiseless=quiet_pair[0],
            v_out_noiseless=quiet_pair[1],
        )
        gamma_in = tech.equivalent_waveform(inputs)

        arrival = v_out.arrival_time(vdd, which="last")
        try:
            out_slew = v_out.slew(vdd)
        except ValueError:
            out_slew = float("nan")
        ramp_slew, out_substituted = _slew_or_fallback(
            out_slew, slew_fallback, f"stage {stage_index} receiver output")
        out_rising = v_out.polarity() == "rising"
        # Summary of the receiver *output* as (arrival, slew) — what a
        # conventional STA would carry across the stage boundary.
        out_ramp = SaturatedRamp.from_arrival_slew(
            arrival=arrival, slew=ramp_slew, vdd=vdd, rising=out_rising)

        retime_substituted = False
        if full_waveform:
            stimulus = v_out
        else:
            # Re-time the receiver from the equivalent input waveform: the
            # next stage sees only the abstraction, as a real STA would.
            g0 = gamma_in.t_begin - 100e-12
            g1 = gamma_in.t_finish + settle_margin
            gamma_wave = gamma_in.to_waveform(min(g0, wave_in.t_start), max(g1, t1))
            re_c = Circuit("retime")
            re_c.vsource("Vdd", "vdd", "0", vdd)
            stage.receiver.instantiate(re_c, "recv", "far", "out", "vdd")
            re_c.capacitor("cl", "out", "0", stage.receiver_load)
            re_c.vsource("Vfar", "far", "0", gamma_wave)
            re_init = {"far": gamma_wave.v_initial, "vdd": vdd,
                       "out": vdd - gamma_wave.v_initial}
            re_sim = run_jobs([TransientJob(
                re_c, t_stop=gamma_wave.t_end, dt=dt,
                t_start=gamma_wave.t_start, initial_voltages=re_init,
                options=sim_opts)], execution)[0]
            re_v_out = re_sim.waveform("out")
            arr = re_v_out.arrival_time(vdd, which="last")
            try:
                slw = re_v_out.slew(vdd)
            except ValueError:
                slw = float("nan")
            slw, retime_substituted = _slew_or_fallback(
                slw, slew_fallback, f"stage {stage_index} re-timed output")
            stimulus = SaturatedRamp.from_arrival_slew(
                arrival=arr, slew=slw, vdd=vdd,
                rising=re_v_out.polarity() == "rising")

        results.append(StageTiming(
            ramp=out_ramp,
            v_receiver_in=v_far,
            v_receiver_out=v_out,
            output_arrival=arrival,
            output_slew=out_slew,
            output_slew_substituted=out_substituted,
            retime_slew_substituted=retime_substituted,
        ))
    return results
