"""Figure 2 reproduction: the waveforms SGDP builds internally.

Figure 2(a) shows the noiseless input/output pair with 0.2·ρ_noiseless;
Figure 2(b) shows the noisy input, the golden (Hspice) noisy output,
0.2·ρ_eff, the equivalent waveform Γ_eff, and the output produced by
Γ_eff (``v_out_eff``).  This module generates all series on a common time
grid for a representative Configuration I noise case, and can render them
as CSV or a quick ASCII plot.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.propagation import GateFixture
from ..core.techniques import PropagationInputs
from ..core.techniques.sgdp import Sgdp
from ..core.waveform import Waveform
from ..exec import ExecutionConfig, run_jobs
from .noise_injection import SweepTiming, run_noise_cases
from .setup import CONFIG_I, CrosstalkConfig, receiver_fixture

__all__ = ["Figure2Data", "generate_figure2", "ascii_plot"]

#: Scale factor the paper applies to ρ so it fits the voltage axis.
RHO_PLOT_SCALE = 0.2


@dataclass(frozen=True)
class Figure2Data:
    """All series of Figure 2, sampled on ``times``.

    Panel (a): ``v_in_noiseless``, ``v_out_noiseless``, ``rho_noiseless``
    (pre-scaled by 0.2, magnitude).  Panel (b): ``v_in_noisy``,
    ``v_out_noisy`` (golden), ``rho_eff`` (scaled), ``gamma_eff``,
    ``v_out_eff``.
    """

    times: np.ndarray
    v_in_noiseless: np.ndarray
    v_out_noiseless: np.ndarray
    rho_noiseless_scaled: np.ndarray
    v_in_noisy: np.ndarray
    v_out_noisy: np.ndarray
    rho_eff_scaled: np.ndarray
    gamma_eff: np.ndarray
    v_out_eff: np.ndarray

    def to_csv(self) -> str:
        """Render every series as CSV (times in seconds, volts)."""
        header = ("time,v_in_noiseless,v_out_noiseless,rho_noiseless_x0.2,"
                  "v_in_noisy,v_out_noisy,rho_eff_x0.2,gamma_eff,v_out_eff")
        rows = [header]
        for k in range(self.times.size):
            rows.append(",".join(
                f"{x:.6e}" for x in (
                    self.times[k], self.v_in_noiseless[k], self.v_out_noiseless[k],
                    self.rho_noiseless_scaled[k], self.v_in_noisy[k],
                    self.v_out_noisy[k], self.rho_eff_scaled[k],
                    self.gamma_eff[k], self.v_out_eff[k],
                )
            ))
        return "\n".join(rows) + "\n"


def generate_figure2(
    config: CrosstalkConfig = CONFIG_I,
    offset: float = -0.1e-9,
    timing: SweepTiming | None = None,
    n_points: int = 241,
    fixture: GateFixture | None = None,
    solver_backend: str = "auto",
    adaptive: "bool | None" = None,
    execution: ExecutionConfig | None = None,
) -> Figure2Data:
    """Produce the Figure 2 series for one noise alignment.

    The default offset places the aggressor glitch mid-transition, the
    situation panel (b) of the paper illustrates.  ``solver_backend``
    is the linear-solver backend request forwarded to every simulation
    (``adaptive`` likewise pins the stepping mode, defaulting to the
    ``REPRO_ADAPTIVE`` environment knob);
    ``execution`` routes all three simulations (noiseless reference,
    noise case, Γ_eff re-simulation) through the shared execution layer,
    so a warm result store regenerates the figure without solving.
    """
    timing = timing or SweepTiming()
    # The noiseless reference and the noise case share a topology: one batch.
    ref, cases = run_noise_cases(
        config, [tuple(offset for _ in range(config.n_aggressors))],
        timing, include_noiseless=True, solver_backend=solver_backend,
        adaptive=adaptive, execution=execution)
    case = cases[0]
    inputs = PropagationInputs(
        v_in_noisy=case.v_in_noisy, vdd=config.vdd,
        v_in_noiseless=ref.v_in, v_out_noiseless=ref.v_out,
    )
    sens = inputs.sensitivity()
    sgdp = Sgdp()
    gamma = sgdp.equivalent_waveform(inputs)
    fixture = fixture or receiver_fixture(config, dt=timing.dt,
                                          solver_backend=solver_backend,
                                          adaptive=adaptive)
    eff_job = fixture.transient_job(
        gamma, t_window=(case.v_in_noisy.t_start,
                         case.v_in_noisy.t_end + fixture.settle_margin))
    eff_out = fixture.measure(run_jobs([eff_job], execution)[0])

    # Common plotting grid: span both critical regions with margin.
    t_lo = min(sens.region[0], inputs.noisy_critical_region()[0]) - 0.2e-9
    t_hi = max(sens.region[1], inputs.noisy_critical_region()[1]) + 0.4e-9
    times = np.linspace(t_lo, t_hi, n_points)

    # ρ_eff on the grid, reproducing SGDP step 2 (with the causal weight).
    v_noisy = np.asarray(case.v_in_noisy(times))
    rho_eff = np.asarray(sens.rho_at_voltage(v_noisy))
    rho_eff = rho_eff * sgdp._output_activity_weight(inputs, sens, times)

    return Figure2Data(
        times=times,
        v_in_noiseless=np.asarray(ref.v_in(times)),
        v_out_noiseless=np.asarray(ref.v_out(times)),
        rho_noiseless_scaled=RHO_PLOT_SCALE * np.abs(np.asarray(sens.rho_at_time(times))),
        v_in_noisy=v_noisy,
        v_out_noisy=np.asarray(case.v_out_noisy(times)),
        rho_eff_scaled=RHO_PLOT_SCALE * np.abs(rho_eff),
        gamma_eff=np.asarray(gamma(times)),
        v_out_eff=np.asarray(eff_out.v_out(times)),
    )


def ascii_plot(times: np.ndarray, series: dict[str, np.ndarray],
               width: int = 78, height: int = 22,
               v_min: float | None = None, v_max: float | None = None) -> str:
    """Tiny dependency-free line plot for terminals and logs.

    Each series gets the first character of its label as the marker;
    later series overwrite earlier ones where they collide.
    """
    lo = min(float(np.min(v)) for v in series.values()) if v_min is None else v_min
    hi = max(float(np.max(v)) for v in series.values()) if v_max is None else v_max
    if hi <= lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    t0, t1 = float(times[0]), float(times[-1])
    for label, values in series.items():
        marker = label[0]
        for t, v in zip(times, values):
            x = int((t - t0) / (t1 - t0) * (width - 1))
            y = int((v - lo) / (hi - lo) * (height - 1))
            y = min(max(y, 0), height - 1)
            grid[height - 1 - y][x] = marker
    legend = "  ".join(f"{label[0]}={label}" for label in series)
    rows = ["".join(r) for r in grid]
    rows.append("-" * width)
    rows.append(f"t: [{t0 * 1e9:.2f}, {t1 * 1e9:.2f}] ns   v: [{lo:.2f}, {hi:.2f}] V")
    rows.append(legend)
    return "\n".join(rows)
