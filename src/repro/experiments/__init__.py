"""Experiment harnesses: the Figure 1 testbench and one module per
paper artifact (Table 1, §4.2 run-times, Figure 2) plus ablations."""

from .ablation import (
    SamplingAblationRow,
    alignment_ablation,
    causal_mask_ablation,
    sampling_ablation,
)
from .figure2 import Figure2Data, ascii_plot, generate_figure2
from .glitch import GlitchMeasurement, glitch_sweep, measure_glitch, worst_glitch
from .montecarlo import (
    build_chain_design,
    run_chain_monte_carlo,
    run_noise_alignment_monte_carlo,
)
from .noise_injection import (
    NoiseCase,
    NoiselessReference,
    SweepTiming,
    alignment_offsets,
    iter_noise_cases,
    run_noise_case,
    run_noise_cases,
    run_noiseless,
)
from .runtime import (
    PAPER_RUNTIMES_US,
    RuntimeMeasurement,
    make_runtime_inputs,
    measure_runtimes,
)
from .setup import (
    CONFIG_I,
    CONFIG_II,
    CrosstalkConfig,
    Testbench,
    TestbenchNodes,
    build_testbench,
    receiver_fixture,
)
from .table1 import (
    PAPER_TABLE1,
    Table1Result,
    Table1Row,
    default_case_count,
    run_table1,
    run_table1_many,
)

__all__ = [
    "CrosstalkConfig",
    "CONFIG_I",
    "CONFIG_II",
    "Testbench",
    "TestbenchNodes",
    "build_testbench",
    "receiver_fixture",
    "SweepTiming",
    "NoiseCase",
    "NoiselessReference",
    "alignment_offsets",
    "run_noiseless",
    "run_noise_case",
    "run_noise_cases",
    "iter_noise_cases",
    "Table1Row",
    "Table1Result",
    "run_table1",
    "run_table1_many",
    "default_case_count",
    "PAPER_TABLE1",
    "RuntimeMeasurement",
    "measure_runtimes",
    "make_runtime_inputs",
    "PAPER_RUNTIMES_US",
    "Figure2Data",
    "generate_figure2",
    "ascii_plot",
    "SamplingAblationRow",
    "sampling_ablation",
    "causal_mask_ablation",
    "alignment_ablation",
    "GlitchMeasurement",
    "measure_glitch",
    "glitch_sweep",
    "worst_glitch",
    "build_chain_design",
    "run_chain_monte_carlo",
    "run_noise_alignment_monte_carlo",
]
