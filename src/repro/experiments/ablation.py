"""Ablation studies backing the paper's design-choice claims.

* **Sampling count P** (§4.2): "small P tends to result in lower timing
  analysis accuracy" — sweep SGDP's accuracy against P.
* **Causal mask** (this reproduction's documented deviation, DESIGN.md
  §5): quantify SGDP with and without the output-settling mask.
* **Alignment granularity**: how coarse an aggressor-alignment sweep may
  be before the worst-case delay push-out is underestimated — the
  implicit experimental-design question behind "200 cases in 1 ns".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import require
from ..core.propagation import finish_evaluation, prepare_evaluation
from ..core.techniques import PropagationInputs
from ..core.techniques.sgdp import Sgdp
from ..core.metrics import ErrorStats, error_stats
from ..exec import ExecutionConfig, run_jobs
from .noise_injection import SweepTiming, alignment_offsets, run_noise_cases
from .setup import CONFIG_I, CrosstalkConfig, receiver_fixture

__all__ = ["SamplingAblationRow", "sampling_ablation", "causal_mask_ablation",
           "alignment_ablation"]


@dataclass(frozen=True)
class SamplingAblationRow:
    """SGDP accuracy at one sampling count P."""

    n_samples: int
    stats: ErrorStats


def _alignment_sweep(config: CrosstalkConfig, n_cases: int,
                     timing: SweepTiming,
                     execution: ExecutionConfig | None,
                     adaptive: "bool | None" = None):
    """The shared noise sweep of an ablation: one batched submission."""
    offsets_list = [tuple(base for _ in range(config.n_aggressors))
                    for base in alignment_offsets(n_cases, timing.window)]
    return run_noise_cases(config, offsets_list, timing,
                           include_noiseless=True, adaptive=adaptive,
                           execution=execution)


def _sgdp_errors(config: CrosstalkConfig, sgdp: Sgdp, ref, cases,
                 n_samples: int, timing: SweepTiming,
                 execution: ExecutionConfig | None = None,
                 adaptive: "bool | None" = None) -> ErrorStats:
    """Delay-error statistics of one SGDP variant over precomputed cases.

    All cases' golden + SGDP re-simulations form one execution-layer
    submission (the :func:`~repro.core.propagation.prepare_evaluation` /
    ``finish_evaluation`` pattern), so they shard with ``workers > 1``
    instead of trickling through 2-job-at-a-time calls.
    """
    fixture = receiver_fixture(config, dt=timing.dt, adaptive=adaptive)
    plans = []
    jobs = []
    for case in cases:
        inputs = PropagationInputs(
            v_in_noisy=case.v_in_noisy, vdd=config.vdd,
            v_in_noiseless=ref.v_in, v_out_noiseless=ref.v_out,
            n_samples=n_samples,
        )
        plan = prepare_evaluation(fixture, inputs, [sgdp])
        plans.append(plan)
        jobs.extend(plan.jobs)
    sims = run_jobs(jobs, execution)
    errors: list[float | None] = []
    cursor = 0
    for plan in plans:
        _, results = finish_evaluation(plan, sims[cursor:cursor + plan.n_jobs])
        cursor += plan.n_jobs
        errors.append(results["SGDP"].delay_error)
    return error_stats(errors)


def sampling_ablation(
    sample_counts: tuple[int, ...] = (5, 9, 17, 35, 69),
    config: CrosstalkConfig = CONFIG_I,
    n_cases: int = 9,
    timing: SweepTiming | None = None,
    execution: ExecutionConfig | None = None,
    adaptive: "bool | None" = None,
) -> list[SamplingAblationRow]:
    """SGDP accuracy versus the sampling count P (§4.2's claim).

    The alignment sweep does not depend on P, so it is simulated once
    and shared by every row; each row re-runs only its own golden+SGDP
    fixture evaluations (the equivalent ramp depends on P).
    """
    require(len(sample_counts) >= 2, "sweep at least two sample counts")
    timing = timing or SweepTiming()
    ref, cases = _alignment_sweep(config, n_cases, timing, execution, adaptive)
    rows = []
    for p in sample_counts:
        stats = _sgdp_errors(config, Sgdp(), ref, cases, p, timing, execution,
                             adaptive)
        rows.append(SamplingAblationRow(n_samples=p, stats=stats))
    return rows


def causal_mask_ablation(
    config: CrosstalkConfig = CONFIG_I,
    n_cases: int = 9,
    timing: SweepTiming | None = None,
    execution: ExecutionConfig | None = None,
    adaptive: "bool | None" = None,
) -> dict[str, ErrorStats]:
    """SGDP with the causal ρ_eff mask versus the paper-literal remap.

    The mask matters in the strong-glitch regime this testbench produces
    (crosstalk sags after the output has switched); see DESIGN.md §5.
    Both variants score the same simulated sweep (computed once).
    """
    timing = timing or SweepTiming()
    ref, cases = _alignment_sweep(config, n_cases, timing, execution, adaptive)
    return {
        "causal-mask": _sgdp_errors(config, Sgdp(causal_mask=True), ref, cases,
                                    35, timing, execution, adaptive),
        "paper-literal": _sgdp_errors(config, Sgdp(causal_mask=False), ref,
                                      cases, 35, timing, execution, adaptive),
    }


def alignment_ablation(
    granularities: tuple[int, ...] = (5, 9, 17, 33),
    config: CrosstalkConfig = CONFIG_I,
    timing: SweepTiming | None = None,
    execution: ExecutionConfig | None = None,
    adaptive: "bool | None" = None,
) -> dict[int, float]:
    """Worst-case golden delay push-out found at each sweep density.

    Returns granularity → worst push-out (seconds) of the golden receiver
    output arrival relative to the noiseless arrival.  Coarse sweeps can
    miss the worst alignment; the finest granularity is the reference.

    The union of all granularities' distinct alignments is simulated as
    one submission through the execution layer (duplicate alignments
    across densities are computed once, as before).
    """
    timing = timing or SweepTiming()
    per_density = {
        n: [round(float(base), 15) for base in alignment_offsets(n, timing.window)]
        for n in granularities
    }
    unique: list[float] = []
    seen: set[float] = set()
    for n in granularities:
        for key in per_density[n]:
            if key not in seen:
                seen.add(key)
                unique.append(key)

    offsets_list = [tuple(base for _ in range(config.n_aggressors))
                    for base in unique]
    ref, cases = run_noise_cases(config, offsets_list, timing,
                                 include_noiseless=True, adaptive=adaptive,
                                 execution=execution)
    arrival = {key: case.golden_output_arrival
               for key, case in zip(unique, cases)}
    # Push-outs floor at zero, as in the per-case loop this replaces.
    return {
        n: max([0.0] + [arrival[key] - ref.output_arrival
                        for key in per_density[n]])
        for n in per_density
    }
