"""Ablation studies backing the paper's design-choice claims.

* **Sampling count P** (§4.2): "small P tends to result in lower timing
  analysis accuracy" — sweep SGDP's accuracy against P.
* **Causal mask** (this reproduction's documented deviation, DESIGN.md
  §5): quantify SGDP with and without the output-settling mask.
* **Alignment granularity**: how coarse an aggressor-alignment sweep may
  be before the worst-case delay push-out is underestimated — the
  implicit experimental-design question behind "200 cases in 1 ns".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import require
from ..core.propagation import evaluate_techniques
from ..core.techniques import PropagationInputs
from ..core.techniques.sgdp import Sgdp
from ..core.metrics import ErrorStats, error_stats
from .noise_injection import SweepTiming, alignment_offsets, run_noise_case, run_noiseless
from .setup import CONFIG_I, CrosstalkConfig, receiver_fixture

__all__ = ["SamplingAblationRow", "sampling_ablation", "causal_mask_ablation",
           "alignment_ablation"]


@dataclass(frozen=True)
class SamplingAblationRow:
    """SGDP accuracy at one sampling count P."""

    n_samples: int
    stats: ErrorStats


def _sweep_sgdp(config: CrosstalkConfig, sgdp: Sgdp, n_cases: int,
                n_samples: int, timing: SweepTiming) -> ErrorStats:
    """Delay-error statistics of one SGDP variant over an alignment sweep."""
    ref = run_noiseless(config, timing)
    fixture = receiver_fixture(config, dt=timing.dt)
    errors: list[float | None] = []
    for base in alignment_offsets(n_cases, timing.window):
        case = run_noise_case(config, tuple(base for _ in range(config.n_aggressors)),
                              timing)
        inputs = PropagationInputs(
            v_in_noisy=case.v_in_noisy, vdd=config.vdd,
            v_in_noiseless=ref.v_in, v_out_noiseless=ref.v_out,
            n_samples=n_samples,
        )
        _, results = evaluate_techniques(fixture, inputs, [sgdp])
        errors.append(results["SGDP"].delay_error)
    return error_stats(errors)


def sampling_ablation(
    sample_counts: tuple[int, ...] = (5, 9, 17, 35, 69),
    config: CrosstalkConfig = CONFIG_I,
    n_cases: int = 9,
    timing: SweepTiming | None = None,
) -> list[SamplingAblationRow]:
    """SGDP accuracy versus the sampling count P (§4.2's claim)."""
    require(len(sample_counts) >= 2, "sweep at least two sample counts")
    timing = timing or SweepTiming()
    rows = []
    for p in sample_counts:
        stats = _sweep_sgdp(config, Sgdp(), n_cases, p, timing)
        rows.append(SamplingAblationRow(n_samples=p, stats=stats))
    return rows


def causal_mask_ablation(
    config: CrosstalkConfig = CONFIG_I,
    n_cases: int = 9,
    timing: SweepTiming | None = None,
) -> dict[str, ErrorStats]:
    """SGDP with the causal ρ_eff mask versus the paper-literal remap.

    The mask matters in the strong-glitch regime this testbench produces
    (crosstalk sags after the output has switched); see DESIGN.md §5.
    """
    timing = timing or SweepTiming()
    return {
        "causal-mask": _sweep_sgdp(config, Sgdp(causal_mask=True), n_cases, 35, timing),
        "paper-literal": _sweep_sgdp(config, Sgdp(causal_mask=False), n_cases, 35, timing),
    }


def alignment_ablation(
    granularities: tuple[int, ...] = (5, 9, 17, 33),
    config: CrosstalkConfig = CONFIG_I,
    timing: SweepTiming | None = None,
) -> dict[int, float]:
    """Worst-case golden delay push-out found at each sweep density.

    Returns granularity → worst push-out (seconds) of the golden receiver
    output arrival relative to the noiseless arrival.  Coarse sweeps can
    miss the worst alignment; the finest granularity is the reference.
    """
    timing = timing or SweepTiming()
    ref = run_noiseless(config, timing)
    out: dict[int, float] = {}
    cache: dict[float, float] = {}
    for n in granularities:
        worst = 0.0
        for base in alignment_offsets(n, timing.window):
            key = round(float(base), 15)
            if key not in cache:
                case = run_noise_case(
                    config, tuple(base for _ in range(config.n_aggressors)), timing)
                cache[key] = case.golden_output_arrival
            pushout = cache[key] - ref.output_arrival
            worst = max(worst, pushout)
        out[n] = worst
    return out
