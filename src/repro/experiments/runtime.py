"""§4.2 run-time comparison of the techniques.

The paper reports per-gate delay-propagation times on a Sun Blade 1000:
P1/P2/LSF3/E4 ≈ 40 µs, WLS5 ≈ 60 µs, SGDP (P = 35) ≈ 65 µs — all linear
in the sampling count P.  This harness times the *pure technique
computation* (building Γ_eff from an already-available noisy waveform and
noiseless reference), which is the operation those numbers measure; the
golden circuit simulations are excluded, exactly as Hspice time is
excluded from the paper's figures.

Absolute times depend on host and language; the reproduction target is
the *ordering* (point/LS/energy techniques cheapest, WLS5 and SGDP a
constant factor dearer) and the linear scaling in P.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from .._util import require
from ..core.techniques import PropagationInputs, Technique, all_techniques
from .noise_injection import SweepTiming, run_noise_case, run_noiseless
from .setup import CONFIG_I, CrosstalkConfig

__all__ = ["RuntimeMeasurement", "measure_runtimes", "make_runtime_inputs",
           "PAPER_RUNTIMES_US"]

#: §4.2 reference times in µs on the paper's Sun Blade 1000.
PAPER_RUNTIMES_US = {"P1": 40.0, "P2": 40.0, "LSF3": 40.0, "E4": 40.0,
                     "WLS5": 60.0, "SGDP": 65.0}


@dataclass(frozen=True)
class RuntimeMeasurement:
    """Timing of one technique's Γ_eff computation.

    Attributes
    ----------
    technique:
        Technique name.
    seconds_per_call:
        Mean wall time of one equivalent-waveform computation.
    calls:
        Number of timed calls.
    """

    technique: str
    seconds_per_call: float
    calls: int

    @property
    def microseconds(self) -> float:
        """Mean time in µs (the paper's unit)."""
        return self.seconds_per_call * 1e6


def make_runtime_inputs(
    config: CrosstalkConfig = CONFIG_I,
    offset: float = -0.1e-9,
    n_samples: int = 35,
    timing: SweepTiming | None = None,
) -> PropagationInputs:
    """Build a representative noisy-waveform input for timing runs.

    Uses a mid-transition noise alignment of Configuration I, the same
    kind of waveform Figure 2 illustrates.
    """
    timing = timing or SweepTiming()
    ref = run_noiseless(config, timing)
    case = run_noise_case(config, tuple(offset for _ in range(config.n_aggressors)),
                          timing)
    return PropagationInputs(
        v_in_noisy=case.v_in_noisy,
        vdd=config.vdd,
        v_in_noiseless=ref.v_in,
        v_out_noiseless=ref.v_out,
        n_samples=n_samples,
    )


def measure_runtimes(
    inputs: PropagationInputs,
    techniques: list[Technique] | None = None,
    repeat: int = 50,
    warmup: int = 5,
) -> dict[str, RuntimeMeasurement]:
    """Time each technique's Γ_eff computation on shared inputs.

    The cached sensitivity map inside ``inputs`` is computed once before
    timing (the paper likewise counts gate characterisation as given).
    """
    require(repeat >= 1, "repeat must be positive")
    techs = techniques if techniques is not None else all_techniques()
    if inputs.v_in_noiseless is not None:
        inputs.sensitivity()  # prime the shared cache outside the timing loop
    out: dict[str, RuntimeMeasurement] = {}
    for tech in techs:
        for _ in range(warmup):
            tech.equivalent_waveform(inputs)
        start = time.perf_counter()
        for _ in range(repeat):
            tech.equivalent_waveform(inputs)
        elapsed = time.perf_counter() - start
        out[tech.name] = RuntimeMeasurement(
            technique=tech.name,
            seconds_per_call=elapsed / repeat,
            calls=repeat,
        )
    return out
