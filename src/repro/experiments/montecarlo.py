"""Monte-Carlo statistical STA driver (the SSTA axis from PAPERS.md).

Two sweeps over a characterised inverter-chain design:

* :func:`run_chain_monte_carlo` — process-variation SSTA: per-sample
  lognormal scaling of the NLDM tables and wire RC, fanned out through
  :func:`repro.exec.run_indexed`; arrival/slack quantiles at the chain
  output.  Deterministic across worker counts by construction.
* :func:`run_noise_alignment_monte_carlo` — the noise-aware variant:
  aggressor alignments jitter per sample and the coupled path re-times
  through :func:`~repro.sta.noise_aware.propagate_path` with a pinned
  simulation window, so the quiet reference (and any configured result
  store) is shared across the whole sweep.

``python -m repro.experiments.montecarlo`` prints both summaries;
``--json FILE`` writes the benchmark payload (CI uploads it as
``BENCH_ssta.json``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from .._knobs import knob
from ..core.ramp import SaturatedRamp
from ..exec import ExecutionConfig, default_execution
from ..interconnect.rcline import RcLineSpec
from ..library.cells import make_inverter
from ..library.characterize import characterize_cell
from ..sta.analysis import InputSpec
from ..sta.netlist import GateNetlist
from ..sta.noise_aware import AggressorSpec, NoisyStage, clear_quiet_cache, quiet_cache_stats
from ..sta.statistical import McResult, McVariation, run_noise_monte_carlo, run_sta_monte_carlo

__all__ = ["build_chain_design", "run_chain_monte_carlo",
           "run_noise_alignment_monte_carlo", "main"]


def build_chain_design(drives: "list[int] | None" = None,
                       dt: float = 2e-12):
    """A characterised inverter chain with per-net wire specs.

    Returns ``(netlist, library, wire_specs)`` — the nominal design the
    Monte-Carlo sweeps perturb.  Characterisation uses a reduced grid
    (2 slews × 2 loads) to keep the driver fast; accuracy of the grid is
    the library tests' concern, not this driver's.
    """
    drives = drives or [1, 4, 16]
    slews = np.array([40e-12, 200e-12])
    library = {}
    for drive in sorted(set(drives)):
        cell = make_inverter(drive)
        loads = np.array([2e-15, 40e-15]) * drive
        library[cell.name] = characterize_cell(cell, input_slews=slews,
                                               loads=loads, dt=dt)
    netlist = GateNetlist.inverter_chain(drives)
    wire_specs = {f"n{k + 1}": RcLineSpec(total_r=200.0, total_c=8e-15)
                  for k in range(len(drives) - 1)}
    return netlist, library, wire_specs


def run_chain_monte_carlo(
    samples: "int | None" = None,
    seed: "int | None" = None,
    variation: McVariation = McVariation(),
    execution: "ExecutionConfig | None" = None,
) -> McResult:
    """Process-variation SSTA over the characterised chain."""
    netlist, library, wire_specs = build_chain_design()
    out = netlist.primary_outputs[0]
    # Required time: nominal arrival plus ~25% margin, so slack
    # distributions straddle interesting territory at sigma ~ 5%.
    from ..sta.analysis import StaEngine
    nominal = StaEngine(library, wire_specs=wire_specs).analyze(
        netlist, inputs={"n0": InputSpec(slew=80e-12)})
    required = {out: nominal.arrival(out) * 1.25}
    return run_sta_monte_carlo(
        netlist, library, wire_specs=wire_specs,
        inputs={"n0": InputSpec(slew=80e-12)}, required_times=required,
        variation=variation, samples=samples, seed=seed,
        execution=execution)


def run_noise_alignment_monte_carlo(
    samples: "int | None" = None,
    seed: "int | None" = None,
    sigma_align: float = 25e-12,
    execution: "ExecutionConfig | None" = None,
) -> McResult:
    """Alignment-jitter Monte-Carlo through the noise-aware path."""
    driver = make_inverter(4)
    receiver = make_inverter(4)
    line = RcLineSpec(total_r=400.0, total_c=20e-15)
    agg = AggressorSpec(coupling=15e-15, transition_start=0.35e-9,
                        rising=True, slew=100e-12, driver=make_inverter(8))
    stage = NoisyStage(driver=driver, line=line, receiver=receiver,
                       aggressors=(agg,))
    ramp = SaturatedRamp.from_arrival_slew(arrival=0.3e-9, slew=100e-12,
                                           vdd=driver.vdd, rising=True)
    return run_noise_monte_carlo([stage], ramp, sigma_align=sigma_align,
                                 samples=samples, seed=seed,
                                 execution=execution)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="Monte-Carlo statistical (noise-aware) STA driver")
    parser.add_argument("--samples", type=int, default=None,
                        help="sample count (default: REPRO_MC_SAMPLES)")
    parser.add_argument("--seed", type=int, default=None,
                        help="base seed (default: REPRO_MC_SEED)")
    parser.add_argument("--noise-samples", type=int, default=None,
                        help="noise-MC sample count (default: samples/4, "
                             "min 4 — transient solves are dearer)")
    parser.add_argument("--skip-noise", action="store_true",
                        help="skip the noise-aware alignment sweep")
    parser.add_argument("--json", metavar="FILE",
                        help="write the benchmark payload as JSON")
    args = parser.parse_args(argv)

    samples = args.samples if args.samples is not None \
        else knob("REPRO_MC_SAMPLES")
    payload: dict = {"workers": default_execution().workers}

    t0 = time.perf_counter()
    ssta = run_chain_monte_carlo(samples=samples, seed=args.seed)
    payload["ssta"] = {"seconds": time.perf_counter() - t0,
                       **ssta.to_dict()}
    out = sorted(ssta.quantiles["arrival"])[0]
    q = ssta.quantiles["arrival"][out]
    print(f"SSTA ({ssta.samples} samples, seed {ssta.seed}, "
          f"mode {ssta.diag.get('mode')}):")
    print(f"  arrival[{out}] q05/q50/q95 = "
          f"{q['q05'] * 1e12:.2f} / {q['q50'] * 1e12:.2f} / "
          f"{q['q95'] * 1e12:.2f} ps")
    wq = ssta.quantiles["worst_slack"]
    print(f"  worst_slack  q05/q50/q95 = "
          f"{wq['q05'] * 1e12:.2f} / {wq['q50'] * 1e12:.2f} / "
          f"{wq['q95'] * 1e12:.2f} ps")

    if not args.skip_noise:
        n_noise = args.noise_samples if args.noise_samples is not None \
            else max(4, samples // 4)
        clear_quiet_cache()
        t0 = time.perf_counter()
        noise = run_noise_alignment_monte_carlo(samples=n_noise,
                                                seed=args.seed)
        stats = quiet_cache_stats()
        payload["noise_mc"] = {"seconds": time.perf_counter() - t0,
                               "quiet_cache": {"hits": stats["hits"],
                                               "misses": stats["misses"]},
                               **noise.to_dict()}
        nq = noise.quantiles["arrival"]["out"]
        print(f"noise-MC ({noise.samples} samples, sigma_align jitter):")
        print(f"  arrival[out] q05/q50/q95 = "
              f"{nq['q05'] * 1e12:.2f} / {nq['q50'] * 1e12:.2f} / "
              f"{nq['q95'] * 1e12:.2f} ps")
        print(f"  quiet reference: {stats['misses']} solve(s), "
              f"{stats['hits']} cache hit(s) across the sweep")

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
    return 0


if __name__ == "__main__":
    sys.exit(main())
