"""Quiet-victim glitch (functional noise) analysis.

The paper's techniques handle crosstalk on a *switching* victim.  The
complementary SI question — how large a noise pulse the same aggressors
inject into a *quiet* victim, and whether the receiver propagates it — is
what noise-analysis tools check first, and it characterises the strength
of the coupling regime the timing experiments run in (EXPERIMENTS.md
relates our glitch heights to the paper's).

:func:`measure_glitch` holds the victim input at its rail, fires the
aggressors, and measures the victim far-end noise pulse and the
receiver-output response.  :func:`glitch_sweep` maps pulse height against
aggressor alignment; :func:`worst_glitch` reports the maximum.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .._util import require
from ..circuit.transient import simulate_transient
from ..core.waveform import Waveform
from .noise_injection import SweepTiming, alignment_offsets
from .setup import CrosstalkConfig, build_testbench

__all__ = ["GlitchMeasurement", "measure_glitch", "glitch_sweep", "worst_glitch"]


@dataclass(frozen=True)
class GlitchMeasurement:
    """One quiet-victim noise measurement.

    Attributes
    ----------
    offsets:
        Aggressor start times relative to the sweep's victim reference.
    v_victim / v_receiver_out:
        Waveforms at the victim far end and the receiver output.
    peak_height:
        Largest excursion of the victim far end from its quiet rail
        (volts, positive regardless of direction).
    width_at_half:
        Duration the victim excursion exceeds half its peak (seconds; 0.0
        for vanishing glitches).
    output_disturbance:
        Largest excursion of the receiver output from its quiet rail —
        how much of the glitch the gate propagates.
    """

    offsets: tuple[float, ...]
    v_victim: Waveform
    v_receiver_out: Waveform
    peak_height: float
    width_at_half: float
    output_disturbance: float

    def propagates(self, vdd: float, fraction: float = 0.5) -> bool:
        """True when the receiver output is disturbed past ``fraction·Vdd``
        — the classic functional-noise failure criterion."""
        return self.output_disturbance > fraction * vdd


def _excursion(wave: Waveform, quiet_level: float) -> tuple[float, float]:
    """(peak excursion from quiet level, width at half peak)."""
    dev = np.abs(wave.values - quiet_level)
    peak = float(np.max(dev))
    if peak <= 0.0:
        return 0.0, 0.0
    above = dev >= 0.5 * peak
    if not bool(above.any()):
        return peak, 0.0
    t = wave.times
    idx = np.flatnonzero(above)
    return peak, float(t[idx[-1]] - t[idx[0]])


def measure_glitch(config: CrosstalkConfig, offsets: tuple[float, ...],
                   timing: SweepTiming | None = None,
                   toward_threshold: bool = True) -> GlitchMeasurement:
    """Fire the aggressors against a quiet victim and measure the noise.

    Parameters
    ----------
    config:
        Testbench configuration (the victim transition direction decides
        which rail the victim rests at: a rising victim rests low).
    offsets:
        Per-aggressor start offsets relative to ``timing.victim_start``.
    toward_threshold:
        ``True`` (default) picks the aggressor transition direction that
        pushes the quiet victim *toward* the switching threshold — the
        dangerous glitch; ``False`` keeps the configuration's direction,
        which for opposing-aggressor configs drives the victim past its
        own rail (an overshoot glitch the receiver ignores).
    """
    timing = timing or SweepTiming()
    require(len(offsets) == config.n_aggressors, "one offset per aggressor")
    if toward_threshold:
        # Victim rests at its pre-transition rail; an aggressor moving in
        # the victim's own transition direction lifts it toward threshold
        # — that is the "same-direction" (non-opposing) configuration.
        config = replace(config, aggressors_opposing=False)
    starts = [timing.victim_start + off for off in offsets]
    bench = build_testbench(config, victim_start=timing.victim_start,
                            aggressor_starts=starts, aggressor_active=True,
                            victim_active=False)
    result = simulate_transient(bench.circuit, t_stop=timing.t_stop, dt=timing.dt,
                                initial_voltages=bench.initial_voltages)
    v_victim = result.waveform(bench.nodes.victim_far_end)
    v_out = result.waveform(bench.nodes.receiver_out)
    quiet_victim = 0.0 if config.victim_line_rising else config.vdd
    quiet_out = config.vdd - quiet_victim
    peak, width = _excursion(v_victim, quiet_victim)
    out_peak, _ = _excursion(v_out, quiet_out)
    return GlitchMeasurement(
        offsets=tuple(offsets),
        v_victim=v_victim,
        v_receiver_out=v_out,
        peak_height=peak,
        width_at_half=width,
        output_disturbance=out_peak,
    )


def glitch_sweep(config: CrosstalkConfig, n_cases: int,
                 timing: SweepTiming | None = None) -> list[GlitchMeasurement]:
    """Measure the quiet-victim glitch across an aggressor-alignment sweep.

    For a quiet victim the glitch barely depends on absolute alignment
    (nothing else moves), so a modest ``n_cases`` suffices; the sweep
    exists to expose multi-aggressor constructive overlap in Config II.
    """
    timing = timing or SweepTiming()
    out = []
    for base in alignment_offsets(n_cases, timing.window):
        offsets = tuple(base for _ in range(config.n_aggressors))
        out.append(measure_glitch(config, offsets, timing))
    return out


def worst_glitch(measurements: list[GlitchMeasurement]) -> GlitchMeasurement:
    """The measurement with the largest victim-side peak."""
    require(len(measurements) > 0, "no measurements")
    return max(measurements, key=lambda m: m.peak_height)
