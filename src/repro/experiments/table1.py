"""Table 1 reproduction: accuracy comparison of all techniques.

For each configuration the harness sweeps aggressor alignments over a
1 ns window (§4.1: 200 noise-injection timing cases), runs the full
coupled circuit for the golden reference, applies every technique to the
noisy waveform at the victim far end, re-simulates the receiver with each
Γ_eff, and aggregates the gate-delay errors into the paper's Max / Avg
columns.

Both aggressor switching directions are swept by default (``polarity=
"both"``): opposing transitions inject slow-down noise, same-direction
transitions speed-up noise — each stresses different techniques (P2/E4
are pessimistic on slow-down glitches; P1/WLS5 misjudge sped-up
transitions).  The paper does not state its aggressor direction policy;
a single-direction sweep is available via ``polarity="opposing"`` /
``"same"``.

The case count defaults to the ``REPRO_CASES`` environment variable
(falling back to 24 for tractable CI runs); set ``REPRO_CASES=200`` to
match the paper's sweep density.

The sweep is batched end to end: all coupled-circuit noise cases of one
polarity (plus the quiet-aggressor reference) run through one stacked
transient solve, and each case's golden-plus-techniques fixture
re-simulations form a second batch — see
:func:`~repro.circuit.transient.simulate_transient_many`.  Pass
``batch=False`` for the sequential baseline.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

from .._util import require
from ..core.metrics import ErrorStats, error_stats, format_ps
from ..core.propagation import evaluate_techniques
from ..core.techniques import PropagationInputs, Technique, all_techniques
from .noise_injection import NoiselessReference, SweepTiming, alignment_offsets, run_noise_cases
from .setup import CrosstalkConfig, receiver_fixture

__all__ = ["Table1Row", "Table1Result", "run_table1", "default_case_count",
           "PAPER_TABLE1"]

#: The paper's Table 1 numbers (ps), for side-by-side reporting:
#: {technique: {config: (max, avg)}}.
PAPER_TABLE1 = {
    "P1": {"I": (81.3, 29.3), "II": (134.2, 48.5)},
    "P2": {"I": (82.7, 24.5), "II": (144.5, 51.3)},
    "LSF3": {"I": (75.1, 30.9), "II": (110.8, 45.4)},
    "E4": {"I": (82.3, 14.5), "II": (145.3, 33.4)},
    "WLS5": {"I": (42.4, 10.3), "II": (49.3, 17.4)},
    "SGDP": {"I": (38.3, 9.2), "II": (44.5, 14.8)},
}

_POLARITIES = ("both", "opposing", "same")


def default_case_count(fallback: int = 24) -> int:
    """Sweep density: ``REPRO_CASES`` env var or ``fallback``."""
    try:
        n = int(os.environ.get("REPRO_CASES", ""))
    except ValueError:
        return fallback
    return n if n >= 2 else fallback


@dataclass(frozen=True)
class Table1Row:
    """One technique's row: delay-error and arrival-error statistics."""

    technique: str
    delay: ErrorStats
    arrival: ErrorStats


@dataclass(frozen=True)
class Table1Result:
    """The full accuracy-comparison table for one configuration."""

    config_name: str
    n_cases: int
    polarity: str
    rows: tuple[Table1Row, ...]

    def row(self, technique: str) -> Table1Row:
        """Row for a technique name."""
        for r in self.rows:
            if r.technique == technique:
                return r
        raise KeyError(technique)

    def format(self, include_paper: bool = True) -> str:
        """Render the paper-style table (plus our extra diagnostics)."""
        lines = [
            f"Table 1 — Configuration {self.config_name} "
            f"({self.n_cases} noise-injection cases, {self.polarity} aggressors)",
            f"{'Method':7s} {'Max(ps)':>8s} {'Avg(ps)':>8s} {'Bias(ps)':>9s} "
            f"{'Fail':>5s}" + ("   paper Max/Avg" if include_paper else ""),
        ]
        for r in self.rows:
            paper = ""
            if include_paper and r.technique in PAPER_TABLE1:
                pm, pa = PAPER_TABLE1[r.technique].get(self.config_name, (None, None))
                if pm is not None:
                    paper = f"   {pm:6.1f}/{pa:5.1f}"
            lines.append(
                f"{r.technique:7s} {format_ps(r.delay.max_abs):>8s} "
                f"{format_ps(r.delay.mean_abs):>8s} "
                f"{r.delay.mean_signed * 1e12:+9.1f} {r.delay.failures:5d}{paper}"
            )
        return "\n".join(lines)


def run_table1(
    config: CrosstalkConfig,
    n_cases: int | None = None,
    timing: SweepTiming | None = None,
    techniques: list[Technique] | None = None,
    polarity: str = "both",
    noiseless: NoiselessReference | None = None,
    progress: bool = False,
    batch: bool = True,
    solver_backend: str = "auto",
) -> Table1Result:
    """Run the Table 1 sweep for one configuration.

    Parameters
    ----------
    config:
        :data:`~repro.experiments.setup.CONFIG_I` or ``CONFIG_II`` (or a
        custom configuration).
    n_cases:
        Total alignment cases (split evenly across polarities for
        ``polarity="both"``).  Defaults to :func:`default_case_count`.
    timing:
        Sweep timing frame.
    techniques:
        Technique instances; defaults to all six in Table 1 order.
    polarity:
        ``"both"`` (default), ``"opposing"`` or ``"same"`` aggressor
        transition directions.
    noiseless:
        Optionally reuse a precomputed noiseless reference (per polarity
        the reference is identical — aggressors are quiet).
    progress:
        Print one line per case (for long interactive runs).
    batch:
        Run the coupled-circuit sweep and each case's technique
        re-simulations through the batched transient engine (default).
        ``False`` reproduces the sequential per-simulation path —
        numerically equivalent, used as the benchmark baseline.
    solver_backend:
        Linear-solver backend request (``TransientOptions.backend``)
        applied to every simulation of the sweep — the coupled-circuit
        noise cases and the fixture re-simulations alike.

    Returns
    -------
    Table1Result
    """
    require(polarity in _POLARITIES, f"polarity must be one of {_POLARITIES}")
    timing = timing or SweepTiming()
    techs = techniques if techniques is not None else all_techniques()
    n_total = n_cases if n_cases is not None else default_case_count()
    require(n_total >= 2, "need at least two cases")

    if polarity == "both":
        plans = [("opposing", True), ("same", False)]
        counts = [n_total - n_total // 2, n_total // 2]
    else:
        plans = [(polarity, polarity == "opposing")]
        counts = [n_total]

    fixture = receiver_fixture(config, dt=timing.dt,
                               solver_backend=solver_backend)
    delay_errors: dict[str, list[float | None]] = {t.name: [] for t in techs}
    arrival_errors: dict[str, list[float | None]] = {t.name: [] for t in techs}

    for (label, opposing), n_here in zip(plans, counts):
        cfg = replace(config, aggressors_opposing=opposing)
        offsets_list = [tuple(base for _ in range(cfg.n_aggressors))
                        for base in alignment_offsets(n_here, timing.window)]
        ref, cases = run_noise_cases(cfg, offsets_list, timing,
                                     include_noiseless=noiseless is None,
                                     batch=batch,
                                     solver_backend=solver_backend)
        ref = noiseless if noiseless is not None else ref
        for case in cases:
            inputs = PropagationInputs(
                v_in_noisy=case.v_in_noisy,
                vdd=cfg.vdd,
                v_in_noiseless=ref.v_in,
                v_out_noiseless=ref.v_out,
            )
            _, results = evaluate_techniques(fixture, inputs, techs, batch=batch)
            for name, ev in results.items():
                delay_errors[name].append(ev.delay_error)
                arrival_errors[name].append(ev.arrival_error)
            if progress:
                worst = max((abs(e.delay_error or 0.0) for e in results.values()),
                            default=0.0)
                print(f"  config {config.name} {label} offset "
                      f"{case.offsets[0] * 1e12:+6.1f} ps "
                      f"worst |err| {worst * 1e12:6.1f} ps")

    order = [t.name for t in techs]
    rows = tuple(
        Table1Row(
            technique=name,
            delay=error_stats(delay_errors[name]),
            arrival=error_stats(arrival_errors[name]),
        )
        for name in order
    )
    return Table1Result(config_name=config.name, n_cases=n_total,
                        polarity=polarity, rows=rows)
