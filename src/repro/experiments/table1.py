"""Table 1 reproduction: accuracy comparison of all techniques.

For each configuration the harness sweeps aggressor alignments over a
1 ns window (§4.1: 200 noise-injection timing cases), runs the full
coupled circuit for the golden reference, applies every technique to the
noisy waveform at the victim far end, re-simulates the receiver with each
Γ_eff, and aggregates the gate-delay errors into the paper's Max / Avg
columns.

Both aggressor switching directions are swept by default (``polarity=
"both"``): opposing transitions inject slow-down noise, same-direction
transitions speed-up noise — each stresses different techniques (P2/E4
are pessimistic on slow-down glitches; P1/WLS5 misjudge sped-up
transitions).  The paper does not state its aggressor direction policy;
a single-direction sweep is available via ``polarity="opposing"`` /
``"same"``.

The case count defaults to the ``REPRO_CASES`` environment variable
(falling back to 24 for tractable CI runs); set ``REPRO_CASES=200`` to
match the paper's sweep density.

The sweep is batched end to end with the *widest possible front*: the
coupled-circuit noise cases of **every polarity of every configuration**
(plus the quiet-aggressor references) form one submission to the
execution layer, and all cases' golden-plus-techniques fixture
re-simulations form a second — so a multi-worker
:class:`~repro.exec.ExecutionConfig` shards the whole workload in two
passes, and a warm result store satisfies it without a single transient
solve.  :func:`run_table1_many` exposes the multi-configuration front
directly; pass ``batch=False`` for the strictly sequential baseline.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import asdict, dataclass, replace

from .._knobs import knob
from .._util import require
from ..core.metrics import ErrorStats, error_stats, format_ps
from ..core.propagation import finish_evaluation, prepare_evaluation
from ..core.techniques import PropagationInputs, Technique, all_techniques
from ..exec import ExecutionConfig, journal_for, run_jobs
from .noise_injection import (NoiselessReference, SweepTiming,
                              alignment_offsets, finish_noise_sweep,
                              prepare_noise_sweep)
from .setup import CrosstalkConfig, receiver_fixture

__all__ = ["Table1Row", "Table1Result", "run_table1", "run_table1_many",
           "default_case_count", "PAPER_TABLE1"]

#: The paper's Table 1 numbers (ps), for side-by-side reporting:
#: {technique: {config: (max, avg)}}.
PAPER_TABLE1 = {
    "P1": {"I": (81.3, 29.3), "II": (134.2, 48.5)},
    "P2": {"I": (82.7, 24.5), "II": (144.5, 51.3)},
    "LSF3": {"I": (75.1, 30.9), "II": (110.8, 45.4)},
    "E4": {"I": (82.3, 14.5), "II": (145.3, 33.4)},
    "WLS5": {"I": (42.4, 10.3), "II": (49.3, 17.4)},
    "SGDP": {"I": (38.3, 9.2), "II": (44.5, 14.8)},
}

_POLARITIES = ("both", "opposing", "same")


def default_case_count(fallback: int = 24) -> int:
    """Sweep density: the ``REPRO_CASES`` knob or ``fallback``.

    Declared in :mod:`repro._knobs`; unset, unparseable, and sub-2
    values all resolve to ``fallback``.
    """
    n = knob("REPRO_CASES")
    return fallback if n is None else n


@dataclass(frozen=True)
class Table1Row:
    """One technique's row: delay-error and arrival-error statistics."""

    technique: str
    delay: ErrorStats
    arrival: ErrorStats


@dataclass(frozen=True)
class Table1Result:
    """The full accuracy-comparison table for one configuration."""

    config_name: str
    n_cases: int
    polarity: str
    rows: tuple[Table1Row, ...]

    def row(self, technique: str) -> Table1Row:
        """Row for a technique name."""
        for r in self.rows:
            if r.technique == technique:
                return r
        raise KeyError(technique)

    def format(self, include_paper: bool = True) -> str:
        """Render the paper-style table (plus our extra diagnostics)."""
        lines = [
            f"Table 1 — Configuration {self.config_name} "
            f"({self.n_cases} noise-injection cases, {self.polarity} aggressors)",
            f"{'Method':7s} {'Max(ps)':>8s} {'Avg(ps)':>8s} {'Bias(ps)':>9s} "
            f"{'Fail':>5s}" + ("   paper Max/Avg" if include_paper else ""),
        ]
        for r in self.rows:
            paper = ""
            if include_paper and r.technique in PAPER_TABLE1:
                pm, pa = PAPER_TABLE1[r.technique].get(self.config_name, (None, None))
                if pm is not None:
                    paper = f"   {pm:6.1f}/{pa:5.1f}"
            lines.append(
                f"{r.technique:7s} {format_ps(r.delay.max_abs):>8s} "
                f"{format_ps(r.delay.mean_abs):>8s} "
                f"{r.delay.mean_signed * 1e12:+9.1f} {r.delay.failures:5d}{paper}"
            )
        return "\n".join(lines)


def _result_payload(result: Table1Result) -> dict:
    """A :class:`Table1Result` as a JSON-journalable dict."""
    return {"config_name": result.config_name, "n_cases": result.n_cases,
            "polarity": result.polarity,
            "rows": [{"technique": r.technique, "delay": asdict(r.delay),
                      "arrival": asdict(r.arrival)} for r in result.rows]}


def _result_from_payload(payload: dict) -> Table1Result:
    """Rebuild a journaled :class:`Table1Result` (inverse of
    :func:`_result_payload`; exact — JSON round-trips doubles and NaN)."""
    return Table1Result(
        config_name=payload["config_name"], n_cases=payload["n_cases"],
        polarity=payload["polarity"],
        rows=tuple(Table1Row(technique=r["technique"],
                             delay=ErrorStats(**r["delay"]),
                             arrival=ErrorStats(**r["arrival"]))
                   for r in payload["rows"]))


def run_table1(
    config: CrosstalkConfig,
    n_cases: int | None = None,
    timing: SweepTiming | None = None,
    techniques: list[Technique] | None = None,
    polarity: str = "both",
    noiseless: NoiselessReference | None = None,
    progress: bool = False,
    batch: bool = True,
    solver_backend: str = "auto",
    adaptive: "bool | None" = None,
    execution: ExecutionConfig | None = None,
    journal: "bool | None" = None,
) -> Table1Result:
    """Run the Table 1 sweep for one configuration.

    Parameters
    ----------
    config:
        :data:`~repro.experiments.setup.CONFIG_I` or ``CONFIG_II`` (or a
        custom configuration).
    n_cases:
        Total alignment cases (split evenly across polarities for
        ``polarity="both"``).  Defaults to :func:`default_case_count`.
    timing:
        Sweep timing frame.
    techniques:
        Technique instances; defaults to all six in Table 1 order.
    polarity:
        ``"both"`` (default), ``"opposing"`` or ``"same"`` aggressor
        transition directions.
    noiseless:
        Optionally reuse a precomputed noiseless reference (per polarity
        the reference is identical — aggressors are quiet).
    progress:
        Announce each batched submission as it starts and print one
        line per case once its results are scored (for long interactive
        runs; per-case lines necessarily follow the batched solves).
    batch:
        Submit the coupled-circuit sweep and all technique
        re-simulations through the execution layer in two wide batches
        (default).  ``False`` reproduces the strictly sequential
        per-simulation path — numerically equivalent, used as the
        benchmark baseline.
    solver_backend:
        Linear-solver backend request (``TransientOptions.backend``)
        applied to every simulation of the sweep — the coupled-circuit
        noise cases and the fixture re-simulations alike.
    adaptive:
        Stepping mode applied to every simulation of the sweep
        (``None`` follows the ``REPRO_ADAPTIVE`` environment knob;
        the ``tests/test_adaptive_stepping.py`` harness pins the
        adaptive sweep to the fixed-grid one within the LTE tolerance).
    execution:
        Shared execution-layer configuration (workers + result store);
        ``None`` uses the ``REPRO_WORKERS`` / ``REPRO_STORE``
        environment defaults.
    journal:
        Crash-safe resume through the write-ahead run journal
        (:mod:`repro.exec.journal`), one record per completed
        configuration.  ``None`` (default) follows the
        ``REPRO_JOURNAL`` knob; needs a configured result store.

    Returns
    -------
    Table1Result
    """
    return run_table1_many(
        [config], n_cases=n_cases, timing=timing, techniques=techniques,
        polarity=polarity, noiseless=noiseless, progress=progress,
        batch=batch, solver_backend=solver_backend, adaptive=adaptive,
        execution=execution, journal=journal)[0]


def run_table1_many(
    configs: Sequence[CrosstalkConfig],
    n_cases: int | None = None,
    timing: SweepTiming | None = None,
    techniques: list[Technique] | None = None,
    polarity: str = "both",
    noiseless: NoiselessReference | None = None,
    progress: bool = False,
    batch: bool = True,
    solver_backend: str = "auto",
    adaptive: "bool | None" = None,
    execution: ExecutionConfig | None = None,
    journal: "bool | None" = None,
) -> list[Table1Result]:
    """Run the Table 1 sweep for several configurations at once.

    The widest batch front of the repo: *all* coupled-circuit noise
    cases — every polarity of every configuration, plus one
    quiet-aggressor reference per (configuration, polarity) — go through
    the execution layer as one submission, and every case's
    golden-plus-techniques fixture re-simulations form a second.  With
    ``workers > 1`` both submissions shard across processes; with a warm
    result store neither performs a single transient solve.

    Parameters are as in :func:`run_table1` (``noiseless``, when given,
    replaces the reference of every configuration — only meaningful when
    all configurations share one).  Returns one :class:`Table1Result`
    per configuration, in order.
    """
    require(polarity in _POLARITIES, f"polarity must be one of {_POLARITIES}")
    require(len(configs) >= 1, "need at least one configuration")
    timing = timing or SweepTiming()
    techs = techniques if techniques is not None else all_techniques()
    n_total = n_cases if n_cases is not None else default_case_count()
    require(n_total >= 2, "need at least two cases")

    jr = journal_for(
        "table1",
        (tuple(configs), int(n_total), timing,
         tuple(t.name for t in techs), polarity, noiseless,
         str(solver_backend),
         bool(knob("REPRO_ADAPTIVE") if adaptive is None else adaptive)),
        len(configs), execution=execution, enabled=journal)
    if jr is not None:
        # Resumable mode trades the cross-configuration batch front for
        # per-configuration checkpoints: each configuration runs through
        # the plain (journal-less) path below and is recorded on
        # completion, so a killed multi-configuration sweep resumes at
        # the first unfinished configuration.  Per-configuration results
        # are bit-identical either way — sharding never changes results.
        done = jr.completed()
        results: list[Table1Result] = []
        for c_idx, config in enumerate(configs):
            if c_idx in done:
                results.append(_result_from_payload(done[c_idx]))
                continue
            res = run_table1_many(
                [config], n_cases=n_total, timing=timing, techniques=techs,
                polarity=polarity, noiseless=noiseless, progress=progress,
                batch=batch, solver_backend=solver_backend,
                adaptive=adaptive, execution=execution, journal=False)[0]
            jr.record(c_idx, _result_payload(res))
            results.append(res)
        jr.finish()
        return results

    if polarity == "both":
        plan_dirs = [("opposing", True), ("same", False)]
        counts = [n_total - n_total // 2, n_total // 2]
    else:
        plan_dirs = [(polarity, polarity == "opposing")]
        counts = [n_total]

    def run(jobs):
        return run_jobs(jobs, execution) if batch else [j.run() for j in jobs]

    def announce(message):
        # Phase-level liveness for long interactive runs: the per-case
        # lines can only appear after a batched submission returns, so
        # say what each submission contains before it starts.
        if progress:
            print(f"  {message}", flush=True)

    # --- phase 1: every noise case of every (config, polarity) plan ----
    plans = []  # (config index, label, NoiseSweepPlan)
    jobs = []
    for c_idx, config in enumerate(configs):
        for (label, opposing), n_here in zip(plan_dirs, counts):
            cfg = replace(config, aggressors_opposing=opposing)
            offsets_list = [tuple(base for _ in range(cfg.n_aggressors))
                            for base in alignment_offsets(n_here, timing.window)]
            sweep = prepare_noise_sweep(cfg, offsets_list, timing,
                                        include_noiseless=noiseless is None,
                                        solver_backend=solver_backend,
                                        adaptive=adaptive)
            plans.append((c_idx, label, sweep))
            jobs.extend(sweep.jobs)
    announce(f"simulating {len(jobs)} coupled noise cases "
             f"({len(plans)} sweep plan(s))...")
    sims = run(jobs)

    # --- phase 2: golden + technique re-simulations for every case -----
    fixtures = [receiver_fixture(config, dt=timing.dt,
                                 solver_backend=solver_backend,
                                 adaptive=adaptive)
                for config in configs]
    eval_plans = []  # (config index, label, case, EvaluationPlan)
    eval_jobs = []
    cursor = 0
    for c_idx, label, sweep in plans:
        ref, cases = finish_noise_sweep(sweep, sims[cursor:cursor + sweep.n_jobs])
        cursor += sweep.n_jobs
        ref = noiseless if noiseless is not None else ref
        for case in cases:
            inputs = PropagationInputs(
                v_in_noisy=case.v_in_noisy,
                vdd=sweep.config.vdd,
                v_in_noiseless=ref.v_in,
                v_out_noiseless=ref.v_out,
            )
            plan = prepare_evaluation(fixtures[c_idx], inputs, techs)
            eval_plans.append((c_idx, label, case, plan))
            eval_jobs.extend(plan.jobs)
    # The coupled-circuit solution matrices are large at sweep scale and
    # fully consumed (each case keeps only its two waveforms): release
    # them before the second batch solves.
    del sims, jobs
    announce(f"re-simulating {len(eval_jobs)} golden+technique fixtures "
             f"({len(eval_plans)} cases)...")
    eval_sims = run(eval_jobs)

    # --- scoring -------------------------------------------------------
    order = [t.name for t in techs]
    delay_errors = [{name: [] for name in order} for _ in configs]
    arrival_errors = [{name: [] for name in order} for _ in configs]
    cursor = 0
    for c_idx, label, case, plan in eval_plans:
        _, results = finish_evaluation(plan, eval_sims[cursor:cursor + plan.n_jobs])
        cursor += plan.n_jobs
        for name, ev in results.items():
            delay_errors[c_idx][name].append(ev.delay_error)
            arrival_errors[c_idx][name].append(ev.arrival_error)
        if progress:
            worst = max((abs(e.delay_error or 0.0) for e in results.values()),
                        default=0.0)
            print(f"  config {configs[c_idx].name} {label} offset "
                  f"{case.offsets[0] * 1e12:+6.1f} ps "
                  f"worst |err| {worst * 1e12:6.1f} ps")

    return [
        Table1Result(
            config_name=config.name, n_cases=n_total, polarity=polarity,
            rows=tuple(
                Table1Row(
                    technique=name,
                    delay=error_stats(delay_errors[c_idx][name]),
                    arrival=error_stats(arrival_errors[c_idx][name]),
                )
                for name in order
            ),
        )
        for c_idx, config in enumerate(configs)
    ]
