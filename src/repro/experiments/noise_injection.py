"""Noise-injection sweep driver (§4.1: "200 noise injection timing cases
in a range of 1 ns").

Each *case* picks an aggressor alignment relative to the victim
transition, simulates the full coupled Figure 1 circuit, and records the
noisy waveform at the victim far end (``in_u``) together with the golden
receiver output (``out_u``).  One additional run with quiet aggressors
yields the noiseless reference pair every sensitivity-based technique
needs.

All cases of a sweep share the Figure 1 topology — only the aggressor
source timings differ — so :func:`run_noise_cases` submits the whole
sweep (optionally including the quiet-aggressor reference, whose circuit
differs only in its source functions) as one batch through the execution
layer (:func:`repro.exec.run_jobs`): an
:class:`~repro.exec.ExecutionConfig` decides whether that batch runs
in-process, sharded over worker processes, and/or against the
content-keyed result store.  Every driver here takes the shared
``execution`` object (defaulting to the ``REPRO_WORKERS`` /
``REPRO_STORE`` environment configuration) instead of constructing its
own.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import require
from ..circuit.transient import (TransientJob, TransientOptions,
                                 resolve_adaptive)
from ..core.waveform import Waveform
from ..exec import ExecutionConfig, run_jobs
from .setup import CrosstalkConfig, Testbench, build_testbench

__all__ = [
    "SweepTiming",
    "NoiseCase",
    "NoiselessReference",
    "NoiseSweepPlan",
    "alignment_offsets",
    "prepare_noise_sweep",
    "finish_noise_sweep",
    "run_noiseless",
    "run_noise_case",
    "run_noise_cases",
    "iter_noise_cases",
]


@dataclass(frozen=True)
class SweepTiming:
    """Timing frame of the sweep.

    Attributes
    ----------
    victim_start:
        Victim primary-input ramp start (absolute seconds).
    window:
        Width of the aggressor-alignment range (the paper uses 1 ns).
    t_stop:
        Simulation end; must leave room for the latest aggressor bump to
        settle through the receiver.
    dt:
        Simulation step.
    """

    victim_start: float = 0.8e-9
    window: float = 1.0e-9
    t_stop: float = 2.6e-9
    dt: float = 1e-12

    def __post_init__(self) -> None:
        require(self.t_stop > self.victim_start + self.window / 2,
                "simulation window too short for the sweep range")


@dataclass(frozen=True)
class NoiseCase:
    """One noise-injection case: stimulus alignment plus measured waveforms.

    Attributes
    ----------
    offsets:
        Aggressor start times minus the victim start time.
    v_in_noisy / v_out_noisy:
        Victim far-end (``in_u``) and receiver output (``out_u``) from the
        full coupled simulation.
    golden_output_arrival:
        Latest 0.5·Vdd crossing of ``out_u`` — the full-circuit golden.
    """

    offsets: tuple[float, ...]
    v_in_noisy: Waveform
    v_out_noisy: Waveform
    golden_output_arrival: float


@dataclass(frozen=True)
class NoiselessReference:
    """The quiet-aggressor run: the noiseless input/output pair at the gate."""

    v_in: Waveform
    v_out: Waveform
    output_arrival: float


def alignment_offsets(n_cases: int, window: float = 1.0e-9) -> np.ndarray:
    """Uniformly spaced aggressor offsets over ``[-window/2, +window/2]``.

    The paper's 200 cases over a 1 ns range correspond to
    ``alignment_offsets(200)``.
    """
    require(n_cases >= 1, "need at least one case")
    return np.linspace(-window / 2.0, window / 2.0, n_cases)


def _simulate(bench: Testbench, timing: SweepTiming,
              solver_backend: str = "auto",
              adaptive: "bool | None" = None,
              execution: ExecutionConfig | None = None):
    return run_jobs([_bench_job(bench, timing, solver_backend, adaptive)],
                    execution)[0]


def run_noiseless(config: CrosstalkConfig, timing: SweepTiming | None = None,
                  solver_backend: str = "auto",
                  adaptive: "bool | None" = None,
                  execution: ExecutionConfig | None = None) -> NoiselessReference:
    """Simulate the testbench with quiet aggressors."""
    timing = timing or SweepTiming()
    bench = build_testbench(config, victim_start=timing.victim_start,
                            aggressor_starts=[timing.victim_start] * config.n_aggressors,
                            aggressor_active=False)
    result = _simulate(bench, timing, solver_backend, adaptive, execution)
    v_in = result.waveform(bench.nodes.victim_far_end)
    v_out = result.waveform(bench.nodes.receiver_out)
    return NoiselessReference(
        v_in=v_in, v_out=v_out,
        output_arrival=v_out.arrival_time(config.vdd, which="last"),
    )


def run_noise_case(config: CrosstalkConfig, offsets: tuple[float, ...],
                   timing: SweepTiming | None = None,
                   solver_backend: str = "auto",
                   adaptive: "bool | None" = None,
                   execution: ExecutionConfig | None = None) -> NoiseCase:
    """Simulate one aggressor alignment.

    Parameters
    ----------
    offsets:
        Per-aggressor start-time offset relative to the victim start.
    solver_backend:
        Linear-solver backend request (``TransientOptions.backend``).
    execution:
        Execution-layer configuration (a single simulation still
        benefits from the result store on repeat runs).
    """
    timing = timing or SweepTiming()
    require(len(offsets) == config.n_aggressors, "one offset per aggressor")
    starts = [timing.victim_start + off for off in offsets]
    bench = build_testbench(config, victim_start=timing.victim_start,
                            aggressor_starts=starts, aggressor_active=True)
    result = _simulate(bench, timing, solver_backend, adaptive, execution)
    v_in = result.waveform(bench.nodes.victim_far_end)
    v_out = result.waveform(bench.nodes.receiver_out)
    return NoiseCase(
        offsets=tuple(offsets),
        v_in_noisy=v_in,
        v_out_noisy=v_out,
        golden_output_arrival=v_out.arrival_time(config.vdd, which="last"),
    )


def _bench_job(bench: Testbench, timing: SweepTiming,
               solver_backend: str = "auto",
               adaptive: "bool | None" = None) -> TransientJob:
    return TransientJob(bench.circuit, t_stop=timing.t_stop, dt=timing.dt,
                        initial_voltages=bench.initial_voltages,
                        options=TransientOptions(
                            backend=solver_backend,
                            adaptive=resolve_adaptive(adaptive)))


def _case_from(bench: Testbench, result, config: CrosstalkConfig,
               offsets: tuple[float, ...]) -> NoiseCase:
    v_in = result.waveform(bench.nodes.victim_far_end)
    v_out = result.waveform(bench.nodes.receiver_out)
    return NoiseCase(
        offsets=tuple(offsets),
        v_in_noisy=v_in,
        v_out_noisy=v_out,
        golden_output_arrival=v_out.arrival_time(config.vdd, which="last"),
    )


@dataclass(frozen=True)
class NoiseSweepPlan:
    """A prepared (not yet simulated) noise-injection sweep.

    Built by :func:`prepare_noise_sweep`; ``jobs`` is what the execution
    layer must run (one result per job, in order) before
    :func:`finish_noise_sweep` extracts the reference and cases.
    Callers that want a wider batch front (e.g.
    :func:`~repro.experiments.table1.run_table1_many`) concatenate the
    ``jobs`` of several plans into one submission and hand each plan its
    slice of the results.
    """

    config: CrosstalkConfig
    offsets_list: tuple[tuple[float, ...], ...]
    include_noiseless: bool
    benches: tuple[Testbench, ...]
    jobs: tuple[TransientJob, ...]

    @property
    def n_jobs(self) -> int:
        """Number of results :func:`finish_noise_sweep` expects."""
        return len(self.jobs)


def prepare_noise_sweep(
    config: CrosstalkConfig,
    offsets_list: "list[tuple[float, ...]]",
    timing: SweepTiming | None = None,
    include_noiseless: bool = False,
    solver_backend: str = "auto",
    adaptive: "bool | None" = None,
) -> NoiseSweepPlan:
    """Build the testbenches and jobs of one alignment sweep.

    ``adaptive`` selects the stepping mode of every job (``None``
    follows the ``REPRO_ADAPTIVE`` environment knob).
    """
    timing = timing or SweepTiming()
    benches: list[Testbench] = []
    if include_noiseless:
        benches.append(build_testbench(
            config, victim_start=timing.victim_start,
            aggressor_starts=[timing.victim_start] * config.n_aggressors,
            aggressor_active=False))
    for offsets in offsets_list:
        require(len(offsets) == config.n_aggressors, "one offset per aggressor")
        starts = [timing.victim_start + off for off in offsets]
        benches.append(build_testbench(config, victim_start=timing.victim_start,
                                       aggressor_starts=starts,
                                       aggressor_active=True))
    return NoiseSweepPlan(
        config=config,
        offsets_list=tuple(tuple(o) for o in offsets_list),
        include_noiseless=include_noiseless,
        benches=tuple(benches),
        jobs=tuple(_bench_job(b, timing, solver_backend, adaptive)
                   for b in benches),
    )


def finish_noise_sweep(
    plan: NoiseSweepPlan, results
) -> tuple[NoiselessReference | None, list[NoiseCase]]:
    """Extract the reference and cases from a prepared sweep's results."""
    require(len(results) == plan.n_jobs,
            f"sweep plan expects {plan.n_jobs} results, got {len(results)}")
    config = plan.config
    ref: NoiselessReference | None = None
    cursor = 0
    if plan.include_noiseless:
        bench0, res0 = plan.benches[0], results[0]
        v_in = res0.waveform(bench0.nodes.victim_far_end)
        v_out = res0.waveform(bench0.nodes.receiver_out)
        ref = NoiselessReference(
            v_in=v_in, v_out=v_out,
            output_arrival=v_out.arrival_time(config.vdd, which="last"),
        )
        cursor = 1
    cases = [
        _case_from(bench, result, config, offsets)
        for bench, result, offsets in zip(plan.benches[cursor:],
                                          results[cursor:], plan.offsets_list)
    ]
    return ref, cases


def run_noise_cases(
    config: CrosstalkConfig,
    offsets_list: "list[tuple[float, ...]]",
    timing: SweepTiming | None = None,
    include_noiseless: bool = False,
    batch: bool = True,
    solver_backend: str = "auto",
    adaptive: "bool | None" = None,
    execution: ExecutionConfig | None = None,
) -> tuple[NoiselessReference | None, list[NoiseCase]]:
    """Simulate many aggressor alignments through the execution layer.

    All alignment cases (and the optional quiet-aggressor reference)
    share one circuit topology, so they advance through stacked Newton
    loops — sharded over worker processes and/or served from the result
    store as the ``execution`` configuration directs.

    Parameters
    ----------
    config:
        The crosstalk configuration.
    offsets_list:
        One per-aggressor offset tuple per case.
    timing:
        Sweep timing frame.
    include_noiseless:
        Also simulate the quiet-aggressor reference (in the same batch)
        and return it as the first element.
    batch:
        ``False`` falls back to strictly sequential per-case simulation,
        bypassing the execution layer entirely (numerically equivalent;
        the benchmarks' baseline).
    solver_backend:
        Linear-solver backend request (``TransientOptions.backend``)
        applied to every simulation of the sweep.
    adaptive:
        Stepping mode applied to every simulation of the sweep
        (``None`` follows the ``REPRO_ADAPTIVE`` environment knob).
    execution:
        Shared execution-layer configuration; ``None`` uses the
        ``REPRO_WORKERS`` / ``REPRO_STORE`` environment defaults.

    Returns
    -------
    (noiseless, cases):
        The reference (or ``None``) and one :class:`NoiseCase` per offset
        tuple, in order.
    """
    plan = prepare_noise_sweep(config, offsets_list, timing,
                               include_noiseless=include_noiseless,
                               solver_backend=solver_backend,
                               adaptive=adaptive)
    results = run_jobs(list(plan.jobs), execution) if batch \
        else [j.run() for j in plan.jobs]
    return finish_noise_sweep(plan, results)


def iter_noise_cases(config: CrosstalkConfig, n_cases: int,
                     timing: SweepTiming | None = None,
                     stagger: float = 0.0,
                     solver_backend: str = "auto",
                     adaptive: "bool | None" = None,
                     execution: ExecutionConfig | None = None):
    """Yield :class:`NoiseCase` objects across the alignment sweep.

    With multiple aggressors, all are swept together; ``stagger`` offsets
    aggressor ``k`` by ``k·stagger`` from the first (the paper does not
    specify the multi-aggressor alignment policy — synchronised aggressors
    maximise the injected noise, which is the interesting regime).

    Lazy: one coupled simulation per ``next()``, each routed through the
    shared ``execution`` configuration (not a private per-case default) —
    so a warm result store feeds the iterator for free, and consumers
    that break early never pay for the rest of the sweep.  Use
    :func:`run_noise_cases` for the batched/sharded all-at-once front.
    """
    timing = timing or SweepTiming()
    for base in alignment_offsets(n_cases, timing.window):
        offsets = tuple(base + k * stagger for k in range(config.n_aggressors))
        yield run_noise_case(config, offsets, timing,
                             solver_backend=solver_backend,
                             adaptive=adaptive,
                             execution=execution)
