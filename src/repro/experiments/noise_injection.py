"""Noise-injection sweep driver (§4.1: "200 noise injection timing cases
in a range of 1 ns").

Each *case* picks an aggressor alignment relative to the victim
transition, simulates the full coupled Figure 1 circuit, and records the
noisy waveform at the victim far end (``in_u``) together with the golden
receiver output (``out_u``).  One additional run with quiet aggressors
yields the noiseless reference pair every sensitivity-based technique
needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import require
from ..circuit.transient import simulate_transient
from ..core.waveform import Waveform
from .setup import CrosstalkConfig, Testbench, build_testbench

__all__ = [
    "SweepTiming",
    "NoiseCase",
    "NoiselessReference",
    "alignment_offsets",
    "run_noiseless",
    "run_noise_case",
    "iter_noise_cases",
]


@dataclass(frozen=True)
class SweepTiming:
    """Timing frame of the sweep.

    Attributes
    ----------
    victim_start:
        Victim primary-input ramp start (absolute seconds).
    window:
        Width of the aggressor-alignment range (the paper uses 1 ns).
    t_stop:
        Simulation end; must leave room for the latest aggressor bump to
        settle through the receiver.
    dt:
        Simulation step.
    """

    victim_start: float = 0.8e-9
    window: float = 1.0e-9
    t_stop: float = 2.6e-9
    dt: float = 1e-12

    def __post_init__(self) -> None:
        require(self.t_stop > self.victim_start + self.window / 2,
                "simulation window too short for the sweep range")


@dataclass(frozen=True)
class NoiseCase:
    """One noise-injection case: stimulus alignment plus measured waveforms.

    Attributes
    ----------
    offsets:
        Aggressor start times minus the victim start time.
    v_in_noisy / v_out_noisy:
        Victim far-end (``in_u``) and receiver output (``out_u``) from the
        full coupled simulation.
    golden_output_arrival:
        Latest 0.5·Vdd crossing of ``out_u`` — the full-circuit golden.
    """

    offsets: tuple[float, ...]
    v_in_noisy: Waveform
    v_out_noisy: Waveform
    golden_output_arrival: float


@dataclass(frozen=True)
class NoiselessReference:
    """The quiet-aggressor run: the noiseless input/output pair at the gate."""

    v_in: Waveform
    v_out: Waveform
    output_arrival: float


def alignment_offsets(n_cases: int, window: float = 1.0e-9) -> np.ndarray:
    """Uniformly spaced aggressor offsets over ``[-window/2, +window/2]``.

    The paper's 200 cases over a 1 ns range correspond to
    ``alignment_offsets(200)``.
    """
    require(n_cases >= 1, "need at least one case")
    return np.linspace(-window / 2.0, window / 2.0, n_cases)


def _simulate(bench: Testbench, timing: SweepTiming):
    return simulate_transient(
        bench.circuit,
        t_stop=timing.t_stop,
        dt=timing.dt,
        initial_voltages=bench.initial_voltages,
    )


def run_noiseless(config: CrosstalkConfig, timing: SweepTiming | None = None
                  ) -> NoiselessReference:
    """Simulate the testbench with quiet aggressors."""
    timing = timing or SweepTiming()
    bench = build_testbench(config, victim_start=timing.victim_start,
                            aggressor_starts=[timing.victim_start] * config.n_aggressors,
                            aggressor_active=False)
    result = _simulate(bench, timing)
    v_in = result.waveform(bench.nodes.victim_far_end)
    v_out = result.waveform(bench.nodes.receiver_out)
    return NoiselessReference(
        v_in=v_in, v_out=v_out,
        output_arrival=v_out.arrival_time(config.vdd, which="last"),
    )


def run_noise_case(config: CrosstalkConfig, offsets: tuple[float, ...],
                   timing: SweepTiming | None = None) -> NoiseCase:
    """Simulate one aggressor alignment.

    Parameters
    ----------
    offsets:
        Per-aggressor start-time offset relative to the victim start.
    """
    timing = timing or SweepTiming()
    require(len(offsets) == config.n_aggressors, "one offset per aggressor")
    starts = [timing.victim_start + off for off in offsets]
    bench = build_testbench(config, victim_start=timing.victim_start,
                            aggressor_starts=starts, aggressor_active=True)
    result = _simulate(bench, timing)
    v_in = result.waveform(bench.nodes.victim_far_end)
    v_out = result.waveform(bench.nodes.receiver_out)
    return NoiseCase(
        offsets=tuple(offsets),
        v_in_noisy=v_in,
        v_out_noisy=v_out,
        golden_output_arrival=v_out.arrival_time(config.vdd, which="last"),
    )


def iter_noise_cases(config: CrosstalkConfig, n_cases: int,
                     timing: SweepTiming | None = None,
                     stagger: float = 0.0):
    """Yield :class:`NoiseCase` objects across the alignment sweep.

    With multiple aggressors, all are swept together; ``stagger`` offsets
    aggressor ``k`` by ``k·stagger`` from the first (the paper does not
    specify the multi-aggressor alignment policy — synchronised aggressors
    maximise the injected noise, which is the interesting regime).
    """
    timing = timing or SweepTiming()
    for base in alignment_offsets(n_cases, timing.window):
        offsets = tuple(base + k * stagger for k in range(config.n_aggressors))
        yield run_noise_case(config, offsets, timing)
