"""The paper's experimental setup (Figure 1) and its two configurations.

Victim path:  ``in_x → INVx1 → out_x → [coupled RC line] → in_u → INVx4
→ out_u → INVx16 → w1 → INVx64 → w2``.  Each aggressor is an identical
driver/line/receiver path whose line couples to the victim line through
distributed Cm.

* **Configuration I** — one aggressor, 1000 µm lines, 100 fF total
  coupling (Figure 1 exactly; per-cell R = 8.5 Ω, C = 4.8 fF follow from
  the per-µm parasitics in :mod:`repro.interconnect.rcline`).
* **Configuration II** — two aggressors x1, x2, each coupling 100 fF to
  the victim; all three lines 500 µm.

Both aggressor and victim inputs get 150 ps slews, as in §4.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .._util import require
from ..circuit.netlist import Circuit
from ..circuit.sources import RampSource
from ..core.propagation import GateFixture
from ..interconnect.coupling import CouplingSpec, add_coupled_lines
from ..interconnect.rcline import RcLineSpec
from ..library.cells import InverterCell, VDD_DEFAULT, make_inverter

__all__ = ["CrosstalkConfig", "CONFIG_I", "CONFIG_II", "TestbenchNodes",
           "Testbench", "build_testbench", "receiver_fixture"]


@dataclass(frozen=True)
class CrosstalkConfig:
    """Parameters of one experimental configuration.

    Attributes
    ----------
    name:
        ``"I"`` or ``"II"`` (or any label for custom sweeps).
    n_aggressors:
        Number of aggressor lines coupled to the victim.
    line_length_um:
        Length of every line in the bundle.
    coupling_per_aggressor:
        Total victim coupling capacitance per aggressor (farads).
    n_segments:
        RC cells per line (Figure 1 draws three).
    input_slew:
        Slew of all primary inputs.
    vdd:
        Supply voltage.
    victim_line_rising:
        Direction of the victim transition *on the line* (the primary
        input is inverted by the driver).
    aggressors_opposing:
        ``True`` couples opposing aggressor transitions (worst-case
        slow-down noise), ``False`` same-direction (speed-up).
    driver_drive / receiver_drive / chain_drives:
        Inverter sizes of the driver, the receiver under test, and its
        fanout chain (Figure 1: 1, 4, then 16 → 64).
    """

    name: str
    n_aggressors: int
    line_length_um: float
    coupling_per_aggressor: float
    n_segments: int = 3
    input_slew: float = 150e-12
    vdd: float = VDD_DEFAULT
    victim_line_rising: bool = True
    aggressors_opposing: bool = True
    driver_drive: int = 1
    receiver_drive: int = 4
    chain_drives: tuple[int, ...] = (16, 64)

    def __post_init__(self) -> None:
        require(self.n_aggressors >= 0, "n_aggressors must be non-negative")
        require(self.line_length_um > 0, "line length must be positive")

    # -- cells ----------------------------------------------------------
    def driver_cell(self) -> InverterCell:
        """The line-driver inverter (INVx in Figure 1)."""
        return make_inverter(self.driver_drive, vdd=self.vdd)

    def receiver_cell(self) -> InverterCell:
        """The receiver under test (4INVx in Figure 1)."""
        return make_inverter(self.receiver_drive, vdd=self.vdd)

    def chain_cells(self) -> tuple[InverterCell, ...]:
        """The fanout chain loading the receiver (16INVx → 64INVx)."""
        return tuple(make_inverter(d, vdd=self.vdd) for d in self.chain_drives)

    def line_spec(self) -> RcLineSpec:
        """The RC line model shared by victim and aggressors."""
        return RcLineSpec.from_length(self.line_length_um, n_segments=self.n_segments)


#: Configuration I of §4.1: Figure 1 with 100 fF total coupling.
CONFIG_I = CrosstalkConfig(
    name="I", n_aggressors=1, line_length_um=1000.0,
    coupling_per_aggressor=100e-15,
)

#: Configuration II of §4.1: two aggressors, 500 µm lines, 100 fF each.
CONFIG_II = CrosstalkConfig(
    name="II", n_aggressors=2, line_length_um=500.0,
    coupling_per_aggressor=100e-15,
)


@dataclass(frozen=True)
class TestbenchNodes:
    """Node names of interest in a built testbench (paper's labels).

    ``in_u`` is the noisy gate input (far end of the victim line) and
    ``out_u`` the receiver output whose arrival defines the gate delay.
    """

    victim_input: str
    victim_driver_out: str
    victim_far_end: str
    receiver_out: str
    chain_nodes: tuple[str, ...]
    aggressor_inputs: tuple[str, ...]
    aggressor_far_ends: tuple[str, ...]


@dataclass(frozen=True)
class Testbench:
    """A built Figure 1 instance ready for simulation.

    ``initial_voltages`` carries the logic-consistent pre-transition state
    so the DC solve converges immediately.
    """

    circuit: Circuit
    nodes: TestbenchNodes
    initial_voltages: dict[str, float] = field(default_factory=dict)


def build_testbench(
    config: CrosstalkConfig,
    victim_start: float,
    aggressor_starts: tuple[float, ...] | list[float],
    aggressor_active: bool = True,
    victim_active: bool = True,
) -> Testbench:
    """Instantiate the Figure 1 circuit for one noise-injection case.

    Parameters
    ----------
    config:
        The configuration (I, II, or custom).
    victim_start:
        Start time of the victim primary-input ramp.
    aggressor_starts:
        Start time of each aggressor primary-input ramp (length must
        match ``config.n_aggressors``).
    aggressor_active:
        ``False`` holds every aggressor quiet — the *noiseless* reference
        run of the paper.
    victim_active:
        ``False`` holds the victim input at its pre-transition rail —
        the quiet-victim configuration of glitch (functional noise)
        analysis.

    Returns
    -------
    Testbench
    """
    starts = tuple(aggressor_starts)
    require(len(starts) == config.n_aggressors,
            f"need {config.n_aggressors} aggressor start times, got {len(starts)}")
    vdd = config.vdd
    circuit = Circuit(f"config_{config.name}")
    circuit.vsource("Vdd", "vdd", "0", vdd)

    driver = config.driver_cell()
    receiver = config.receiver_cell()
    chain = config.chain_cells()

    # --- victim path ---------------------------------------------------
    # The driver inverts: a rising victim line needs a falling input ramp.
    if config.victim_line_rising:
        v_from, v_to = vdd, 0.0
    else:
        v_from, v_to = 0.0, vdd
    if victim_active:
        circuit.vsource("Vx", "in_x", "0",
                        RampSource(victim_start, config.input_slew, v_from, v_to))
    else:
        circuit.vsource("Vx", "in_x", "0", v_from)
    driver.instantiate(circuit, "invx", "in_x", "out_x", "vdd")

    # --- aggressor paths -------------------------------------------------
    initial = {"in_x": v_from, "out_x": vdd - v_from, "in_u": vdd - v_from,
               "out_u": v_from, "vdd": vdd}
    aggressor_inputs = []
    aggressor_far_ends = []
    for k, t_start in enumerate(starts):
        suffix = f"y{k + 1}" if config.n_aggressors > 1 else "y"
        in_a, out_a = f"in_{suffix}", f"out_{suffix}"
        far_a, rec_a = f"in_v{k + 1}", f"out_v{k + 1}"
        # Opposing noise: aggressor line moves against the victim line.
        agg_line_rising = (not config.victim_line_rising
                           if config.aggressors_opposing else config.victim_line_rising)
        a_from, a_to = (vdd, 0.0) if agg_line_rising else (0.0, vdd)
        if aggressor_active:
            circuit.vsource(f"V{suffix}", in_a, "0",
                            RampSource(t_start, config.input_slew, a_from, a_to))
        else:
            circuit.vsource(f"V{suffix}", in_a, "0", a_from)
        driver.instantiate(circuit, f"inv{suffix}", in_a, out_a, "vdd")
        receiver.instantiate(circuit, f"recv{suffix}", far_a, rec_a, "vdd")
        circuit.capacitor(f"cl_{suffix}", rec_a, "0", 10e-15)
        initial.update({in_a: a_from, out_a: vdd - a_from, far_a: vdd - a_from,
                        rec_a: a_from})
        aggressor_inputs.append(in_a)
        aggressor_far_ends.append(far_a)

    # --- coupled line bundle ---------------------------------------------
    spec = config.line_spec()
    terminals = [("out_x", "in_u")]
    couplings = []
    for k in range(config.n_aggressors):
        suffix = f"y{k + 1}" if config.n_aggressors > 1 else "y"
        terminals.append((f"out_{suffix}", f"in_v{k + 1}"))
        couplings.append(CouplingSpec(line_a=0, line_b=k + 1,
                                      total_cm=config.coupling_per_aggressor))
    add_coupled_lines(circuit, "bundle", terminals,
                      [spec] * (config.n_aggressors + 1), couplings)

    # --- victim receiver and fanout chain ---------------------------------
    receiver.instantiate(circuit, "invu", "in_u", "out_u", "vdd")
    chain_nodes = []
    prev = "out_u"
    level = float(initial["out_u"])
    for k, stage in enumerate(chain):
        nxt = f"w{k + 1}"
        stage.instantiate(circuit, f"chain{k + 1}", prev, nxt, "vdd")
        level = 0.0 if level > vdd / 2 else vdd
        initial[nxt] = level
        chain_nodes.append(nxt)
        prev = nxt

    nodes = TestbenchNodes(
        victim_input="in_x",
        victim_driver_out="out_x",
        victim_far_end="in_u",
        receiver_out="out_u",
        chain_nodes=tuple(chain_nodes),
        aggressor_inputs=tuple(aggressor_inputs),
        aggressor_far_ends=tuple(aggressor_far_ends),
    )
    return Testbench(circuit=circuit, nodes=nodes, initial_voltages=initial)


def receiver_fixture(config: CrosstalkConfig, dt: float = 1e-12,
                     solver_backend: str = "auto",
                     adaptive: "bool | None" = None) -> GateFixture:
    """The victim receiver with its Figure 1 fanout chain, as a forced-input
    fixture for technique evaluation.

    ``adaptive`` pins the stepping mode of the fixture simulations
    (``None`` follows the ``REPRO_ADAPTIVE`` environment knob).
    """
    return GateFixture(
        cell=config.receiver_cell(),
        chain=config.chain_cells(),
        dt=dt,
        solver_backend=solver_backend,
        adaptive=adaptive,
    )
