"""NLDM characterisation: build delay/slew tables by circuit simulation.

This reproduces the standard ASIC library flow: for every (input slew,
output load) grid point, drive the cell with a saturated ramp, simulate,
and measure 50%→50% delay and 10–90% output transition.  The paper's
point is that SGDP works "with the current level of gate characterization
in conventional ASIC cell libraries" — i.e. exactly these tables plus the
noiseless input/output waveforms, no extra library data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._util import require
from ..circuit.netlist import Circuit
from ..circuit.sources import RampSource
from ..circuit.transient import simulate_transient
from ..core.waveform import Waveform
from .cells import InverterCell
from .nldm import NldmTable, TimingArc

__all__ = [
    "GateResponse",
    "simulate_gate_response",
    "characterize_cell",
    "CharacterizedCell",
    "default_slew_grid",
    "default_load_grid",
]


def default_slew_grid() -> np.ndarray:
    """Input-slew index grid used for library characterisation (seconds)."""
    return np.array([20e-12, 50e-12, 100e-12, 150e-12, 250e-12, 400e-12])


def default_load_grid(cell: InverterCell) -> np.ndarray:
    """Load index grid scaled with cell drive (farads)."""
    base = np.array([2e-15, 5e-15, 10e-15, 20e-15, 40e-15, 80e-15])
    return base * cell.drive


@dataclass(frozen=True)
class GateResponse:
    """Waveforms from one gate simulation.

    Attributes
    ----------
    v_in, v_out:
        Input and output waveforms on the simulation grid.
    delay:
        Input 50% (latest crossing) to output 50% (latest crossing).
    output_slew:
        10–90% output transition time.
    """

    v_in: Waveform
    v_out: Waveform
    delay: float
    output_slew: float


def _settle_window(cell: InverterCell, slew: float, load: float) -> tuple[float, float]:
    """Heuristic (t_start, t_stop) so input and output both settle."""
    idsat = 0.5 * cell.nmos.beta(cell.wn, cell.length) * (cell.vdd - cell.nmos.vth) ** 2
    r_eff = cell.vdd / max(idsat, 1e-9)
    tau_out = r_eff * (load + cell.output_capacitance)
    t_start = max(50e-12, 0.5 * slew)
    t_stop = t_start + slew / 0.8 + 10.0 * tau_out + 200e-12
    return t_start, t_stop


def simulate_gate_response(
    cell: InverterCell,
    input_slew: float,
    load: float,
    input_rising: bool,
    dt: float = 1e-12,
    t_start_offset: float | None = None,
) -> GateResponse:
    """Simulate one inverter with a ramp input into a lumped load.

    Parameters
    ----------
    cell:
        The inverter to characterise.
    input_slew:
        10–90% input transition time.
    load:
        Lumped output capacitance in farads.
    input_rising:
        Direction of the input transition.
    dt:
        Simulation step.
    t_start_offset:
        Optional explicit ramp start time.

    Raises
    ------
    RuntimeError
        If the output fails to settle even after window extension.
    """
    require(input_slew > 0 and load >= 0, "bad characterisation point")
    t_ramp, t_stop = _settle_window(cell, input_slew, load)
    if t_start_offset is not None:
        shift = t_start_offset - t_ramp
        t_ramp, t_stop = t_start_offset, t_stop + shift

    v_from, v_to = (0.0, cell.vdd) if input_rising else (cell.vdd, 0.0)
    out_target = 0.0 if input_rising else cell.vdd

    for attempt in range(4):
        circuit = Circuit(f"char.{cell.name}")
        circuit.vsource("Vdd", "vdd", "0", cell.vdd)
        circuit.vsource("Vin", "in", "0", RampSource(t_ramp, input_slew, v_from, v_to))
        cell.instantiate(circuit, "dut", "in", "out", "vdd")
        if load > 0:
            circuit.capacitor("CL", "out", "0", load)
        initial = {"in": v_from, "out": cell.vdd - v_from, "vdd": cell.vdd}
        result = simulate_transient(circuit, t_stop=t_stop, dt=dt,
                                    initial_voltages=initial)
        v_out = result.waveform("out")
        if v_out.settles_to(out_target, 0.02 * cell.vdd):
            v_in = result.waveform("in")
            delay = (v_out.arrival_time(cell.vdd, which="last")
                     - v_in.arrival_time(cell.vdd, which="last"))
            return GateResponse(v_in=v_in, v_out=v_out, delay=delay,
                                output_slew=v_out.slew(cell.vdd))
        t_stop = t_ramp + 2.0 * (t_stop - t_ramp)
    raise RuntimeError(
        f"{cell.name} output failed to settle (slew={input_slew:.3e}, load={load:.3e})"
    )


@dataclass(frozen=True)
class CharacterizedCell:
    """A cell together with its NLDM timing arcs.

    Single-input cells carry one arc in ``arc``; multi-input cells list
    one arc per related input pin in ``arcs`` (which, when non-empty,
    supersedes ``arc`` for lookups).  ``input_cap`` overrides the
    transistor-derived input capacitance for cells that were read from a
    Liberty file rather than characterised from a device model.
    """

    cell: InverterCell
    arc: TimingArc
    input_slews: np.ndarray = field(repr=False)
    loads: np.ndarray = field(repr=False)
    arcs: tuple[TimingArc, ...] = ()
    input_cap: float | None = None

    @property
    def name(self) -> str:
        """Library cell name."""
        return self.cell.name

    @property
    def timing_arcs(self) -> tuple[TimingArc, ...]:
        """All timing arcs of the cell (``arcs`` if set, else ``(arc,)``)."""
        return self.arcs if self.arcs else (self.arc,)

    def arc_for(self, pin: str) -> TimingArc:
        """The timing arc whose related input pin is ``pin``.

        Raises
        ------
        KeyError
            If the cell has no arc for that pin — a netlist/library
            mismatch that must not be papered over with a guess.
        """
        for a in self.timing_arcs:
            if a.related_pin == pin:
                return a
        raise KeyError(
            f"cell {self.name!r} has no timing arc for input pin {pin!r} "
            f"(arcs: {[a.related_pin for a in self.timing_arcs]})")

    @property
    def input_capacitance(self) -> float:
        """Per-input-pin capacitance (library override or device-derived)."""
        if self.input_cap is not None:
            return self.input_cap
        return self.cell.input_capacitance

    @property
    def vdd(self) -> float:
        """Supply voltage the cell was characterised at."""
        return self.cell.vdd


def characterize_cell(
    cell: InverterCell,
    input_slews: np.ndarray | None = None,
    loads: np.ndarray | None = None,
    dt: float = 1e-12,
) -> CharacterizedCell:
    """Run the full characterisation grid and assemble the timing arc.

    For the inverting arc, Liberty tables are named by the *output*
    transition: ``cell_rise`` is measured with a falling input.
    """
    slews = default_slew_grid() if input_slews is None else np.asarray(input_slews, dtype=float)
    cap_grid = default_load_grid(cell) if loads is None else np.asarray(loads, dtype=float)
    shape = (slews.size, cap_grid.size)
    cell_rise = np.empty(shape)
    cell_fall = np.empty(shape)
    rise_tran = np.empty(shape)
    fall_tran = np.empty(shape)
    for i, slew in enumerate(slews):
        for j, load in enumerate(cap_grid):
            falling_in = simulate_gate_response(cell, slew, load, input_rising=False, dt=dt)
            rising_in = simulate_gate_response(cell, slew, load, input_rising=True, dt=dt)
            cell_rise[i, j] = falling_in.delay
            rise_tran[i, j] = falling_in.output_slew
            cell_fall[i, j] = rising_in.delay
            fall_tran[i, j] = rising_in.output_slew
    arc = TimingArc(
        related_pin="A",
        output_pin="Y",
        inverting=True,
        cell_rise=NldmTable(slews, cap_grid, cell_rise),
        cell_fall=NldmTable(slews, cap_grid, cell_fall),
        rise_transition=NldmTable(slews, cap_grid, rise_tran),
        fall_transition=NldmTable(slews, cap_grid, fall_tran),
    )
    return CharacterizedCell(cell=cell, arc=arc, input_slews=slews, loads=cap_grid)
