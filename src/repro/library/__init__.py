"""Standard-cell substrate: inverter cells, NLDM characterisation by
simulation, and Liberty import/export."""

from .cells import (
    InverterCell,
    STANDARD_DRIVES,
    VDD_DEFAULT,
    make_inverter,
    standard_cell,
    standard_cells,
)
from .characterize import (
    CharacterizedCell,
    GateResponse,
    characterize_cell,
    default_load_grid,
    default_slew_grid,
    simulate_gate_response,
)
from .liberty import LibertyGroup, LibertyParseError, parse_liberty, write_liberty
from .nldm import NldmTable, TimingArc

__all__ = [
    "InverterCell",
    "VDD_DEFAULT",
    "STANDARD_DRIVES",
    "make_inverter",
    "standard_cell",
    "standard_cells",
    "GateResponse",
    "simulate_gate_response",
    "characterize_cell",
    "CharacterizedCell",
    "default_slew_grid",
    "default_load_grid",
    "NldmTable",
    "TimingArc",
    "write_liberty",
    "parse_liberty",
    "LibertyGroup",
    "LibertyParseError",
]
