"""Non-linear delay model (NLDM) lookup tables.

Conventional STA — the baseline the paper improves on — characterises each
timing arc as 2-D tables of delay and output transition indexed by (input
slew, output load).  This module provides the table type with the bilinear
interpolation / linear extrapolation semantics commercial tools use, plus
the grouping of tables into timing arcs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import as_float_array, is_strictly_increasing, require

__all__ = ["NldmTable", "TimingArc"]


def _bracket(grid: np.ndarray, x: float) -> tuple[int, float]:
    """Index ``i`` and fraction ``f`` such that ``x ≈ grid[i]·(1-f) + grid[i+1]·f``.

    Out-of-range ``x`` extrapolates linearly from the boundary cell, the
    standard NLDM convention.
    """
    if grid.size == 1:
        return 0, 0.0
    i = int(np.clip(np.searchsorted(grid, x) - 1, 0, grid.size - 2))
    span = grid[i + 1] - grid[i]
    return i, float((x - grid[i]) / span)


@dataclass(frozen=True)
class NldmTable:
    """A 2-D characterisation table ``values[slew_index, load_index]``.

    Attributes
    ----------
    input_slews:
        Strictly increasing index-1 grid (seconds).
    loads:
        Strictly increasing index-2 grid (farads).
    values:
        Table payload (seconds), shape ``(len(input_slews), len(loads))``.
    """

    input_slews: np.ndarray
    loads: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "input_slews", as_float_array(self.input_slews, "input_slews"))
        object.__setattr__(self, "loads", as_float_array(self.loads, "loads"))
        vals = np.asarray(self.values, dtype=np.float64)
        require(vals.shape == (self.input_slews.size, self.loads.size),
                f"values shape {vals.shape} does not match grids "
                f"({self.input_slews.size}, {self.loads.size})")
        require(is_strictly_increasing(self.input_slews), "input_slews must increase")
        require(is_strictly_increasing(self.loads), "loads must increase")
        require(bool(np.all(np.isfinite(vals))), "table values must be finite")
        object.__setattr__(self, "values", vals)

    def lookup(self, input_slew: float, load: float) -> float:
        """Bilinear interpolation (linear extrapolation outside the grid)."""
        i, fi = _bracket(self.input_slews, input_slew)
        j, fj = _bracket(self.loads, load)
        v = self.values
        if self.input_slews.size == 1 and self.loads.size == 1:
            return float(v[0, 0])
        if self.input_slews.size == 1:
            return float(v[0, j] * (1 - fj) + v[0, j + 1] * fj)
        if self.loads.size == 1:
            return float(v[i, 0] * (1 - fi) + v[i + 1, 0] * fi)
        return float(
            v[i, j] * (1 - fi) * (1 - fj)
            + v[i + 1, j] * fi * (1 - fj)
            + v[i, j + 1] * (1 - fi) * fj
            + v[i + 1, j + 1] * fi * fj
        )

    def map_values(self, func) -> "NldmTable":
        """Return a new table with ``func`` applied elementwise to values."""
        return NldmTable(self.input_slews, self.loads, func(self.values.copy()))


@dataclass(frozen=True)
class TimingArc:
    """A characterised input→output arc of a cell.

    For an inverting arc, ``cell_rise`` is the delay from the *falling*
    input to the rising output (Liberty convention: tables are named after
    the output transition).

    Attributes
    ----------
    related_pin / output_pin:
        Pin names of the arc.
    inverting:
        ``True`` for a negative-unate arc (an inverter).
    cell_rise, cell_fall:
        Delay tables (input 50% to output 50%).
    rise_transition, fall_transition:
        Output slew tables (10–90%).
    """

    related_pin: str
    output_pin: str
    inverting: bool
    cell_rise: NldmTable
    cell_fall: NldmTable
    rise_transition: NldmTable
    fall_transition: NldmTable

    def delay_and_slew(self, input_slew: float, load: float,
                       input_rising: bool) -> tuple[float, float, bool]:
        """Propagate (slew, load) through the arc.

        Returns
        -------
        (delay, output_slew, output_rising)
        """
        output_rising = (not input_rising) if self.inverting else input_rising
        if output_rising:
            return (self.cell_rise.lookup(input_slew, load),
                    self.rise_transition.lookup(input_slew, load),
                    True)
        return (self.cell_fall.lookup(input_slew, load),
                self.fall_transition.lookup(input_slew, load),
                False)

    def scaled(self, delay_factor: float,
               slew_factor: float | None = None) -> "TimingArc":
        """A new arc with delays (and slews) multiplied by a factor.

        This is the process-variation hook: Monte-Carlo statistical STA
        draws a per-sample ``delay_factor`` and rebuilds every table via
        :meth:`NldmTable.map_values`.  ``slew_factor`` defaults to
        ``delay_factor`` (slews stretch with the same device slowdown).
        """
        require(delay_factor > 0, "delay_factor must be positive")
        sf = delay_factor if slew_factor is None else slew_factor
        require(sf > 0, "slew_factor must be positive")
        return TimingArc(
            related_pin=self.related_pin,
            output_pin=self.output_pin,
            inverting=self.inverting,
            cell_rise=self.cell_rise.map_values(lambda v: v * delay_factor),
            cell_fall=self.cell_fall.map_values(lambda v: v * delay_factor),
            rise_transition=self.rise_transition.map_values(lambda v: v * sf),
            fall_transition=self.fall_transition.map_values(lambda v: v * sf),
        )
