"""Liberty (.lib) writer and parser for the characterised library.

Implements the subset of the Liberty format that NLDM timing needs:
``library`` / ``cell`` / ``pin`` / ``timing`` groups, scalar attributes,
``index_1`` / ``index_2`` / ``values`` tables.  The writer emits files in
conventional units (ns, pF); the parser reads them back into
:class:`~repro.library.nldm.TimingArc` objects, and round-trips are tested
to table precision.

The parser is a small recursive-descent over a generic group grammar::

    group_name (args) { attribute : value ; ...  nested_group (...) { ... } }

so it tolerates (and ignores) attributes this library does not model.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

import numpy as np

from .._util import require
from .cells import InverterCell, make_inverter
from .characterize import CharacterizedCell
from .nldm import NldmTable, TimingArc

__all__ = ["write_liberty", "parse_liberty", "LibertyGroup", "LibertyParseError"]

_TIME_UNIT = 1e-9   # ns
_CAP_UNIT = 1e-12   # pF


class LibertyParseError(ValueError):
    """Raised on malformed Liberty input."""


# ----------------------------------------------------------------------
# Generic group model
# ----------------------------------------------------------------------
@dataclass
class LibertyGroup:
    """A parsed Liberty group: ``name (args) { attributes; subgroups }``."""

    name: str
    args: list[str] = field(default_factory=list)
    attributes: dict[str, str] = field(default_factory=dict)
    # Complex attributes such as index_1 ("...") keep their argument lists.
    complex_attributes: dict[str, list[list[str]]] = field(default_factory=dict)
    subgroups: list["LibertyGroup"] = field(default_factory=list)

    def first(self, name: str) -> "LibertyGroup | None":
        """First subgroup called ``name`` (or None)."""
        for g in self.subgroups:
            if g.name == name:
                return g
        return None

    def all(self, name: str) -> list["LibertyGroup"]:
        """All subgroups called ``name``."""
        return [g for g in self.subgroups if g.name == name]


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------
def _fmt_row(values: np.ndarray, scale: float) -> str:
    return ", ".join(f"{v / scale:.6g}" for v in values)


def _write_table(out: list[str], kind: str, table: NldmTable, indent: str) -> None:
    out.append(f"{indent}{kind} (delay_template) {{")
    out.append(f'{indent}  index_1 ("{_fmt_row(table.input_slews, _TIME_UNIT)}");')
    out.append(f'{indent}  index_2 ("{_fmt_row(table.loads, _CAP_UNIT)}");')
    rows = ", \\\n".join(
        f'{indent}    "{_fmt_row(row, _TIME_UNIT)}"' for row in table.values
    )
    out.append(f"{indent}  values ( \\\n{rows});")
    out.append(f"{indent}}}")


def write_liberty(cells: list[CharacterizedCell], library_name: str = "repro013",
                  vdd: float | None = None) -> str:
    """Serialise characterised cells into Liberty text."""
    require(len(cells) > 0, "need at least one cell")
    nom_v = vdd if vdd is not None else cells[0].cell.vdd
    out: list[str] = []
    out.append(f"library ({library_name}) {{")
    out.append('  delay_model : table_lookup;')
    out.append('  time_unit : "1ns";')
    out.append("  capacitive_load_unit (1, pf);")
    out.append('  voltage_unit : "1V";')
    out.append(f"  nom_voltage : {nom_v:g};")
    out.append("  lu_table_template (delay_template) {")
    out.append("    variable_1 : input_net_transition;")
    out.append("    variable_2 : total_output_net_capacitance;")
    out.append("  }")
    for entry in cells:
        cell, arcs = entry.cell, entry.timing_arcs
        out.append(f"  cell ({cell.name}) {{")
        out.append(f"    area : {cell.drive:g};")
        for pin in dict.fromkeys(a.related_pin for a in arcs):
            out.append(f"    pin ({pin}) {{")
            out.append("      direction : input;")
            out.append(f"      capacitance : {entry.input_capacitance / _CAP_UNIT:.6g};")
            out.append("    }")
        out.append(f"    pin ({arcs[0].output_pin}) {{")
        out.append("      direction : output;")
        if len(arcs) == 1 and arcs[0].inverting:
            out.append(f'      function : "(!{arcs[0].related_pin})";')
        for arc in arcs:
            sense = "negative_unate" if arc.inverting else "positive_unate"
            out.append("      timing () {")
            out.append(f'        related_pin : "{arc.related_pin}";')
            out.append(f"        timing_sense : {sense};")
            for kind, table in (("cell_rise", arc.cell_rise),
                                ("rise_transition", arc.rise_transition),
                                ("cell_fall", arc.cell_fall),
                                ("fall_transition", arc.fall_transition)):
                _write_table(out, kind, table, "        ")
            out.append("      }")
        out.append("    }")
        out.append("  }")
    out.append("}")
    return "\n".join(out) + "\n"


# ----------------------------------------------------------------------
# Tokeniser / parser
# ----------------------------------------------------------------------
_TOKEN_RE = re.compile(
    r"""
    \s+                      # whitespace (skipped)
    | /\*.*?\*/              # block comment (skipped)
    | //[^\n]*               # line comment (skipped)
    | \\\n                   # line continuation (skipped)
    | (?P<string>"[^"]*")
    | (?P<punct>[(){};:,])
    | (?P<word>[^\s(){};:,"]+)
    """,
    re.VERBOSE | re.DOTALL,
)


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise LibertyParseError(f"unexpected character at offset {pos}: {text[pos]!r}")
        pos = m.end()
        if m.lastgroup in ("string", "punct", "word"):
            tokens.append(m.group())
    return tokens


class _TokenStream:
    def __init__(self, tokens: list[str]):
        self._tokens = tokens
        self._i = 0

    def peek(self) -> str | None:
        return self._tokens[self._i] if self._i < len(self._tokens) else None

    def next(self) -> str:
        tok = self.peek()
        if tok is None:
            raise LibertyParseError("unexpected end of input")
        self._i += 1
        return tok

    def expect(self, token: str) -> None:
        tok = self.next()
        if tok != token:
            raise LibertyParseError(f"expected {token!r}, got {tok!r}")


def _unquote(tok: str) -> str:
    return tok[1:-1] if tok.startswith('"') and tok.endswith('"') else tok


def _parse_group(stream: _TokenStream) -> LibertyGroup:
    name = stream.next()
    stream.expect("(")
    args: list[str] = []
    while stream.peek() != ")":
        tok = stream.next()
        if tok != ",":
            args.append(_unquote(tok))
    stream.expect(")")
    group = LibertyGroup(name=name, args=args)
    if stream.peek() != "{":
        # Statement-style group without body (unused in our subset).
        if stream.peek() == ";":
            stream.next()
        return group
    stream.expect("{")
    while stream.peek() != "}":
        _parse_statement(stream, group)
    stream.expect("}")
    return group


def _parse_statement(stream: _TokenStream, parent: LibertyGroup) -> None:
    name = stream.next()
    tok = stream.peek()
    if tok == ":":
        stream.next()
        value_parts: list[str] = []
        while stream.peek() not in (";", "}", None):
            value_parts.append(_unquote(stream.next()))
        if stream.peek() == ";":
            stream.next()
        parent.attributes[name] = " ".join(value_parts)
        return
    if tok == "(":
        # Either a complex attribute or a nested group; decide by what
        # follows the closing paren.
        stream.next()
        args: list[str] = []
        while stream.peek() != ")":
            t = stream.next()
            if t != ",":
                args.append(_unquote(t))
        stream.expect(")")
        if stream.peek() == "{":
            group = LibertyGroup(name=name, args=args)
            stream.expect("{")
            while stream.peek() != "}":
                _parse_statement(stream, group)
            stream.expect("}")
            parent.subgroups.append(group)
        else:
            if stream.peek() == ";":
                stream.next()
            parent.complex_attributes.setdefault(name, []).append(args)
        return
    raise LibertyParseError(f"cannot parse statement starting with {name!r}")


def _numbers(args: list[str]) -> np.ndarray:
    """Flatten Liberty number-list arguments into a float array."""
    values: list[float] = []
    for arg in args:
        for piece in arg.replace(",", " ").split():
            values.append(float(piece))
    return np.asarray(values)


def _table_from_group(group: LibertyGroup) -> NldmTable:
    idx1 = _numbers(group.complex_attributes["index_1"][0]) * _TIME_UNIT
    idx2 = _numbers(group.complex_attributes["index_2"][0]) * _CAP_UNIT
    rows = group.complex_attributes["values"][0]
    flat = _numbers(rows) * _TIME_UNIT
    require(flat.size == idx1.size * idx2.size,
            f"values count {flat.size} != {idx1.size}x{idx2.size}")
    return NldmTable(idx1, idx2, flat.reshape(idx1.size, idx2.size))


def _arc_from_timing_group(cell_name: str, out_pin: LibertyGroup,
                           tg: LibertyGroup) -> TimingArc:
    tables = {}
    for kind in ("cell_rise", "cell_fall", "rise_transition", "fall_transition"):
        sub = tg.first(kind)
        if sub is None:
            raise LibertyParseError(f"cell {cell_name!r} missing {kind}")
        tables[kind] = _table_from_group(sub)
    return TimingArc(
        related_pin=tg.attributes.get("related_pin", "A"),
        output_pin=out_pin.args[0],
        inverting=tg.attributes.get("timing_sense", "negative_unate") == "negative_unate",
        **tables,
    )


def parse_liberty(text: str) -> dict[str, CharacterizedCell]:
    """Parse Liberty text into characterised cells keyed by cell name.

    Transistor geometry is reconstructed from the ``INVX<drive>`` naming
    convention of this library (the .lib format does not carry device
    sizes).  Other cell names — multi-input gates of an external library
    such as the test corpus — get a placeholder unit-inverter geometry
    whose input capacitance is *overridden* by the input-pin
    ``capacitance`` attribute, which then must be present.  Multiple
    ``timing`` groups on the output pin become one arc per related pin.
    """
    stream = _TokenStream(_tokenize(text))
    top = _parse_group(stream)
    if top.name != "library":
        raise LibertyParseError(f"expected a library group, got {top.name!r}")
    nom_v = float(top.attributes.get("nom_voltage", "1.2"))

    cells: dict[str, CharacterizedCell] = {}
    for cg in top.all("cell"):
        cell_name = cg.args[0]
        out_pin = None
        pin_cap: float | None = None
        for pg in cg.all("pin"):
            if pg.attributes.get("direction") == "output":
                out_pin = pg
            elif "capacitance" in pg.attributes and pin_cap is None:
                pin_cap = float(pg.attributes["capacitance"]) * _CAP_UNIT
        m = re.fullmatch(r"INVX(\d+)", cell_name)
        if m is not None:
            inv: InverterCell = make_inverter(int(m.group(1)), vdd=nom_v)
            input_cap = None  # device-derived, exact
        elif pin_cap is not None:
            inv = make_inverter(1, vdd=nom_v)
            input_cap = pin_cap
        else:
            raise LibertyParseError(
                f"cannot reconstruct geometry for cell {cell_name!r}: not an "
                f"INVX<drive> name and no input-pin capacitance to fall back on"
            )
        if out_pin is None:
            raise LibertyParseError(f"cell {cell_name!r} has no output pin")
        timing_groups = out_pin.all("timing")
        if not timing_groups:
            raise LibertyParseError(f"cell {cell_name!r} has no timing group")
        arcs = tuple(_arc_from_timing_group(cell_name, out_pin, tg)
                     for tg in timing_groups)
        related = [a.related_pin for a in arcs]
        if len(set(related)) != len(related):
            raise LibertyParseError(
                f"cell {cell_name!r} has duplicate timing arcs for pins {related}")
        cells[cell_name] = CharacterizedCell(
            cell=inv, arc=arcs[0],
            input_slews=arcs[0].cell_rise.input_slews,
            loads=arcs[0].cell_rise.loads,
            arcs=arcs if len(arcs) > 1 else (),
            input_cap=input_cap,
        )
    return cells
