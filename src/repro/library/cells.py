"""Standard-cell definitions: the inverter family of the paper's testbench.

The paper instantiates INVx, 4INVx, 16INVx and 64INVx from a TSMC 0.13 µm
library.  Our substitute builds geometrically scaled static CMOS inverters
from the :mod:`repro.circuit.mosfet` device models: drive ``k`` multiplies
both transistor widths by ``k`` over the unit cell (Wn = 0.5 µm,
Wp = 1.0 µm, L = 0.13 µm).
"""

from __future__ import annotations

from dataclasses import dataclass

from .._util import require
from ..circuit.mosfet import MosfetParams, NMOS_013, PMOS_013
from ..circuit.netlist import Circuit

__all__ = ["InverterCell", "VDD_DEFAULT", "make_inverter", "STANDARD_DRIVES",
           "standard_cell", "standard_cells"]

#: Supply voltage of the 0.13 µm-class substitute process.
VDD_DEFAULT = 1.2

#: Drive strengths used throughout the paper's experiments.
STANDARD_DRIVES = (1, 4, 16, 64)

_UNIT_WN = 0.5e-6
_UNIT_WP = 1.0e-6
_LENGTH = 0.13e-6


@dataclass(frozen=True)
class InverterCell:
    """A sized static CMOS inverter.

    Attributes
    ----------
    name:
        Library cell name, e.g. ``"INVX4"``.
    drive:
        Integer drive strength (width multiplier over the unit cell).
    wn, wp, length:
        Transistor geometry in metres.
    vdd:
        Nominal supply.
    """

    name: str
    drive: int
    wn: float
    wp: float
    length: float
    vdd: float
    nmos: MosfetParams = NMOS_013
    pmos: MosfetParams = PMOS_013

    def __post_init__(self) -> None:
        require(self.drive >= 1, "drive must be >= 1")
        require(self.wn > 0 and self.wp > 0 and self.length > 0, "bad geometry")
        require(self.vdd > 0, "vdd must be positive")

    @property
    def input_capacitance(self) -> float:
        """Total gate capacitance presented at the input pin (farads)."""
        return (self.nmos.gate_capacitance(self.wn, self.length)
                + self.pmos.gate_capacitance(self.wp, self.length))

    @property
    def output_capacitance(self) -> float:
        """Drain junction capacitance at the output pin (farads)."""
        return (self.nmos.drain_capacitance(self.wn)
                + self.pmos.drain_capacitance(self.wp))

    def instantiate(self, circuit: Circuit, inst_name: str, inp: str, out: str,
                    vdd_node: str) -> None:
        """Add this inverter to ``circuit`` between ``inp`` and ``out``."""
        circuit.inverter(inst_name, inp, out, vdd_node,
                         wn=self.wn, wp=self.wp, length=self.length,
                         nmos_params=self.nmos, pmos_params=self.pmos)


def make_inverter(drive: int, vdd: float = VDD_DEFAULT,
                  nmos: MosfetParams = NMOS_013,
                  pmos: MosfetParams = PMOS_013) -> InverterCell:
    """Create the inverter cell of the given drive strength."""
    require(drive >= 1, "drive must be >= 1")
    return InverterCell(
        name=f"INVX{drive}",
        drive=drive,
        wn=_UNIT_WN * drive,
        wp=_UNIT_WP * drive,
        length=_LENGTH,
        vdd=vdd,
        nmos=nmos,
        pmos=pmos,
    )


def standard_cell(drive: int) -> InverterCell:
    """The standard-library inverter of the given drive strength."""
    require(drive in STANDARD_DRIVES, f"drive must be one of {STANDARD_DRIVES}")
    return make_inverter(drive)


def standard_cells() -> dict[str, InverterCell]:
    """All standard inverters, keyed by cell name."""
    return {cell.name: cell for cell in map(make_inverter, STANDARD_DRIVES)}
