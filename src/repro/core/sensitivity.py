"""Output-to-input sensitivity ρ — Equation 1 and SGDP step 2 of the paper.

``ρ(t) = ∂v_out/∂v_in`` evaluated along the *noiseless* transition equals
the ratio of output to input time-derivatives (Eq. 1).  It is non-zero
only inside the noiseless critical region (first 0.1·Vdd to last 0.9·Vdd
crossing of the noiseless input).

SGDP's key step re-indexes this sensitivity *by input voltage level*: for
each sample of the noisy waveform, ρ_eff takes the value ρ_noiseless had
when the noiseless input sat at the same voltage.  That makes the weight
follow the noise wherever it moves in time — the fix for WLS5's blindness
to distortion outside the noiseless critical region.

:class:`SensitivityMap` stores both views (by time and by voltage) plus
``dρ/dv``, which SGDP's second-order objective (Eq. 3) needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.signal import savgol_filter

from .._util import require
from .waveform import TransitionPolarity, Waveform

__all__ = ["SensitivityMap", "compute_sensitivity", "NonOverlappingTransitionsError"]


class NonOverlappingTransitionsError(ValueError):
    """Input and output transitions do not overlap, so ρ is undefined.

    The paper notes WLS5 "cannot be applied to gates with large intrinsic
    delay ... where the input and output transitions may not overlap";
    SGDP handles this case by δ-shifting (see
    :class:`repro.core.techniques.sgdp.Sgdp`).
    """


@dataclass(frozen=True)
class SensitivityMap:
    """Sampled sensitivity of a gate along its noiseless transition.

    Attributes
    ----------
    times:
        Sample times spanning the noiseless critical region.
    rho:
        ρ(t) at those times (signed: negative for an inverting gate).
    voltages:
        Noiseless *input* voltage at those times (monotone).
    region:
        The noiseless critical region ``(t_first, t_last)``.
    vdd:
        Supply voltage.
    input_rising:
        Direction of the noiseless input transition.
    """

    times: np.ndarray
    rho: np.ndarray
    voltages: np.ndarray
    region: tuple[float, float]
    vdd: float
    input_rising: bool
    out_levels: np.ndarray | None = None

    def __post_init__(self) -> None:
        require(self.times.size == self.rho.size == self.voltages.size,
                "inconsistent sensitivity sample arrays")
        require(self.times.size >= 4, "sensitivity needs at least 4 samples")
        if self.out_levels is not None:
            require(self.out_levels.size == self.times.size,
                    "out_levels must match the sample count")

    # -- by-time view (what WLS5 uses) ---------------------------------
    def rho_at_time(self, t: float | np.ndarray) -> float | np.ndarray:
        """ρ(t): interpolated inside the critical region, zero outside."""
        out = np.interp(t, self.times, self.rho, left=0.0, right=0.0)
        if np.isscalar(t):
            return float(out)
        return out

    # -- by-voltage view (what SGDP uses) ------------------------------
    def _voltage_grid(self) -> tuple[np.ndarray, np.ndarray]:
        """Monotonically increasing (voltage, rho) arrays for interpolation."""
        if self.input_rising:
            return self.voltages, self.rho
        return self.voltages[::-1], self.rho[::-1]

    def rho_at_voltage(self, v: float | np.ndarray) -> float | np.ndarray:
        """ρ re-indexed by input voltage; zero outside the noiseless band.

        This is SGDP step 2: ``ρ_eff(t_i) = ρ_noiseless(t_j)`` where the
        noiseless input at ``t_j`` equals the noisy input at ``t_i``.
        """
        vg, rg = self._voltage_grid()
        out = np.interp(v, vg, rg, left=0.0, right=0.0)
        if np.isscalar(v):
            return float(out)
        return out

    def drho_dv_at_voltage(self, v: float | np.ndarray) -> float | np.ndarray:
        """``dρ/dv_in`` at input voltage ``v`` (zero outside the band)."""
        vg, rg = self._voltage_grid()
        drho = np.gradient(rg, vg)
        out = np.interp(v, vg, drho, left=0.0, right=0.0)
        if np.isscalar(v):
            return float(out)
        return out

    @property
    def peak_rho(self) -> float:
        """Largest |ρ| — a measure of the gate's switching gain."""
        return float(np.max(np.abs(self.rho)))

    def settle_input_voltage(self, tolerance: float = 0.05) -> float:
        """Input voltage at which the noiseless *output* completes its swing.

        Walking the noiseless trajectory in transition order, this is the
        first input level at which the output is within ``tolerance`` of
        its final rail.  Falls back to the 0.9·Vdd (rising) / 0.1·Vdd
        (falling) input level when output samples were not recorded.
        """
        if self.out_levels is None:
            return (0.9 if self.input_rising else 0.1) * self.vdd
        final = float(self.out_levels[-1])
        tol = tolerance * self.vdd
        done = np.abs(self.out_levels - final) <= tol
        idx = int(np.argmax(done)) if bool(done.any()) else len(done) - 1
        return float(self.voltages[idx])

    def commit_input_voltage(self) -> float:
        """Input level at which the noiseless output crosses 0.5·Vdd.

        Once the input passes this level the gate output is *committed*:
        it will complete its swing even if the input then stalls, as long
        as the input does not fall back through the switching threshold.
        SGDP's causal mask uses this together with
        :meth:`settle_duration_after_commit`.
        """
        if self.out_levels is None:
            return 0.5 * self.vdd
        half = 0.5 * self.vdd
        crossed = (self.out_levels <= half) if self.out_levels[0] > half else (
            self.out_levels >= half)
        idx = int(np.argmax(crossed)) if bool(crossed.any()) else len(crossed) - 1
        return float(self.voltages[idx])

    def settle_duration_after_commit(self, tolerance: float = 0.05) -> float:
        """Noiseless time from the output's 0.5·Vdd crossing to settling.

        The causal mask declares the output settled this long after the
        commit instant.  Returns the tail of the critical region when
        output samples were not recorded.
        """
        if self.out_levels is None:
            return 0.5 * (self.region[1] - self.region[0])
        half = 0.5 * self.vdd
        final = float(self.out_levels[-1])
        crossed = (self.out_levels <= half) if self.out_levels[0] > half else (
            self.out_levels >= half)
        i_commit = int(np.argmax(crossed)) if bool(crossed.any()) else len(crossed) - 1
        done = np.abs(self.out_levels - final) <= tolerance * self.vdd
        done[: i_commit + 1] = False
        i_done = int(np.argmax(done)) if bool(done.any()) else len(done) - 1
        return float(self.times[i_done] - self.times[i_commit])


def compute_sensitivity(
    v_in_noiseless: Waveform,
    v_out_noiseless: Waveform,
    vdd: float,
    n_samples: int = 512,
    require_overlap: bool = True,
) -> SensitivityMap:
    """Equation 1: ρ(t) = (dv_out/dt) / (dv_in/dt) on the noiseless pair.

    Parameters
    ----------
    v_in_noiseless, v_out_noiseless:
        The gate's noiseless input and the resulting output, on a common
        absolute time axis.
    vdd:
        Supply voltage (defines the 0.1/0.9 critical region).
    n_samples:
        Resolution of the internal uniform sampling of the critical region.
    require_overlap:
        When ``True`` (default), raise
        :class:`NonOverlappingTransitionsError` if the transitions do not
        overlap — mirroring the validity condition the paper states for
        WLS5.  SGDP's δ-shift path sets this ``False`` after aligning.

    Returns
    -------
    SensitivityMap
    """
    require(vdd > 0, "vdd must be positive")
    pol = v_in_noiseless.polarity()
    require(pol != TransitionPolarity.FLAT, "noiseless input does not transition")
    if require_overlap and not v_in_noiseless.overlaps(v_out_noiseless, vdd):
        raise NonOverlappingTransitionsError(
            "noiseless input and output transitions do not overlap; "
            "apply the SGDP δ-shift or use a technique that does not need ρ"
        )

    t0, t1 = v_in_noiseless.critical_region(vdd)
    times = np.linspace(t0, t1, n_samples)
    vin = np.asarray(v_in_noiseless(times))
    vout = np.asarray(v_out_noiseless(times))
    # Savitzky–Golay smoothing before differentiating: the waveforms come
    # from a discrete-step simulator, and ρ is a ratio of derivatives, so
    # raw finite differences make dρ/dv (needed by SGDP's second-order
    # term) uselessly noisy.
    window = max(5, (n_samples // 16) | 1)
    vin_s = savgol_filter(vin, window_length=window, polyorder=3)
    vout_s = savgol_filter(vout, window_length=window, polyorder=3)
    din = np.gradient(vin_s, times)
    dout = np.gradient(vout_s, times)

    # Guard the denominator: inside the critical region of a real
    # (simulated) ramp the input derivative can only approach zero near
    # the edges; floor it at 0.1% of its peak to keep ρ bounded.
    peak = float(np.max(np.abs(din)))
    require(peak > 0, "noiseless input is flat inside its critical region")
    floor = 1e-3 * peak
    din_safe = np.where(np.abs(din) < floor, np.sign(din) * floor + (din == 0) * floor, din)
    rho = savgol_filter(dout / din_safe, window_length=window, polyorder=3)

    # Enforce a strictly monotone voltage grid for the by-voltage view
    # (simulation noise can leave micro-wiggles).
    if pol == TransitionPolarity.RISING:
        v_monotone = np.maximum.accumulate(vin)
        input_rising = True
    else:
        v_monotone = np.minimum.accumulate(vin)
        input_rising = False
    # Break exact ties so np.interp sees strictly increasing abscissae.
    tie_break = np.arange(n_samples) * (1e-12 * vdd)
    v_monotone = v_monotone + (tie_break if input_rising else -tie_break)

    return SensitivityMap(
        times=times,
        rho=rho,
        voltages=v_monotone,
        region=(t0, t1),
        vdd=vdd,
        input_rising=input_rising,
        out_levels=vout,
    )
