"""Error statistics for technique comparisons (Table 1's Max / Avg columns).

The paper reports, per technique and configuration, the maximum and
average absolute gate-delay error over all noise-injection cases.  This
module provides those statistics plus a few diagnostics (signed bias, RMS,
failure counting) that the benchmark reports include.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import require

__all__ = ["ErrorStats", "error_stats", "format_ps"]


@dataclass(frozen=True)
class ErrorStats:
    """Summary of a set of signed timing errors (seconds).

    Attributes
    ----------
    count:
        Number of successful cases.
    failures:
        Number of cases where the technique was not applicable.
    max_abs / mean_abs / rms:
        Magnitude statistics (the paper's Max / Avg are the first two).
    mean_signed:
        Bias: positive = pessimistic on average.
    """

    count: int
    failures: int
    max_abs: float
    mean_abs: float
    rms: float
    mean_signed: float

    @property
    def max_ps(self) -> float:
        """Max |error| in picoseconds."""
        return self.max_abs * 1e12

    @property
    def avg_ps(self) -> float:
        """Mean |error| in picoseconds."""
        return self.mean_abs * 1e12


def error_stats(errors: list[float | None]) -> ErrorStats:
    """Aggregate signed errors; ``None`` entries count as failures."""
    ok = np.asarray([e for e in errors if e is not None], dtype=np.float64)
    failures = sum(1 for e in errors if e is None)
    require(ok.size + failures == len(errors), "inconsistent error list")
    if ok.size == 0:
        return ErrorStats(count=0, failures=failures, max_abs=float("nan"),
                          mean_abs=float("nan"), rms=float("nan"),
                          mean_signed=float("nan"))
    return ErrorStats(
        count=int(ok.size),
        failures=failures,
        max_abs=float(np.max(np.abs(ok))),
        mean_abs=float(np.mean(np.abs(ok))),
        rms=float(np.sqrt(np.mean(ok * ok))),
        mean_signed=float(np.mean(ok)),
    )


def format_ps(seconds: float) -> str:
    """Render a time in picoseconds with one decimal, as the paper does."""
    if not np.isfinite(seconds):
        return "  n/a"
    return f"{seconds * 1e12:5.1f}"
