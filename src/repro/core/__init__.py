"""Core contribution of the paper: waveforms, sensitivity, and the
equivalent-waveform techniques (P1, P2, LSF3, E4, WLS5, SGDP)."""

from .metrics import ErrorStats, error_stats, format_ps
from .ramp import SaturatedRamp
from .sensitivity import NonOverlappingTransitionsError, SensitivityMap, compute_sensitivity
from .waveform import TransitionPolarity, Waveform

__all__ = [
    "Waveform",
    "TransitionPolarity",
    "SaturatedRamp",
    "SensitivityMap",
    "compute_sensitivity",
    "NonOverlappingTransitionsError",
    "GateFixture",
    "GateOutput",
    "TechniqueEvaluation",
    "EvaluationPlan",
    "prepare_evaluation",
    "finish_evaluation",
    "evaluate_techniques",
    "ErrorStats",
    "error_stats",
    "format_ps",
]

_PROPAGATION_NAMES = {"GateFixture", "GateOutput", "TechniqueEvaluation",
                      "EvaluationPlan", "prepare_evaluation",
                      "finish_evaluation", "evaluate_techniques"}


def __getattr__(name: str):
    # repro.core.propagation needs repro.circuit, which in turn needs
    # repro.core.waveform; importing it lazily breaks that cycle while
    # keeping `from repro.core import GateFixture` working.
    if name in _PROPAGATION_NAMES:
        from . import propagation

        return getattr(propagation, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
