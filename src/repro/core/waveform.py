"""Sampled voltage waveforms and the measurements STA needs from them.

The :class:`Waveform` type is the common currency of this library: the
circuit simulator produces them, the equivalent-waveform techniques of the
paper consume them, and the STA engine propagates summaries of them
(arrival time and slew).  A waveform is an immutable piecewise-linear curve
``v(t)`` given by strictly-increasing sample times and the voltage at each
sample.

Conventions
-----------
* Times are in seconds, voltages in volts.
* "Crossing" queries interpolate linearly between samples.
* A *rising* waveform settles higher than it starts; *falling* is the
  opposite.  Noise bumps do not change the overall polarity, which is
  decided from the first and last samples.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

import numpy as np

from .._util import as_float_array, is_strictly_increasing, linear_interp_crossings, require

__all__ = ["Waveform", "TransitionPolarity"]


class TransitionPolarity:
    """Symbolic constants for transition direction."""

    RISING = "rising"
    FALLING = "falling"
    FLAT = "flat"


class Waveform:
    """An immutable, piecewise-linear sampled voltage waveform.

    Parameters
    ----------
    times:
        Strictly increasing sample times in seconds.
    values:
        Voltage at each sample, same length as ``times``.

    Examples
    --------
    >>> w = Waveform.ramp(t_start=0.0, slew=100e-12, vdd=1.2)
    >>> round(w.cross_time(0.6), 15)   # 0.5 * Vdd of a 10-90 ramp
    6.25e-11
    """

    __slots__ = ("_times", "_values")

    def __init__(self, times: Iterable[float], values: Iterable[float]):
        t = as_float_array(times, "times")
        v = as_float_array(values, "values")
        require(t.size == v.size, "times and values must have the same length")
        require(t.size >= 2, "a waveform needs at least two samples")
        require(is_strictly_increasing(t), "times must be strictly increasing")
        t.setflags(write=False)
        v.setflags(write=False)
        self._times = t
        self._values = v

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def ramp(
        cls,
        t_start: float,
        slew: float,
        vdd: float,
        rising: bool = True,
        t_end: float | None = None,
        low_frac: float = 0.1,
        high_frac: float = 0.9,
        n_flat: float = 0.5,
    ) -> "Waveform":
        """Build a saturated linear ramp, the canonical STA stimulus.

        ``slew`` is the ``low_frac``→``high_frac`` transition time (the
        usual 10%–90% measurement), so the full 0→Vdd ramp takes
        ``slew / (high_frac - low_frac)`` seconds, starting at ``t_start``.

        Parameters
        ----------
        t_start:
            Time at which the ramp leaves its initial rail.
        slew:
            10–90 (by default) transition time in seconds; must be > 0.
        vdd:
            Supply voltage; the ramp saturates at 0 and ``vdd``.
        rising:
            Direction of the transition.
        t_end:
            Final sample time; defaults to the ramp end plus ``n_flat``
            ramp-durations of settled tail.
        """
        require(slew > 0.0, "slew must be positive")
        require(vdd > 0.0, "vdd must be positive")
        duration = slew / (high_frac - low_frac)
        t_hi = t_start + duration
        if t_end is None:
            t_end = t_hi + n_flat * duration
        require(t_end > t_hi, "t_end must lie after the ramp completes")
        lead = t_start - 0.25 * duration
        if rising:
            times = [lead, t_start, t_hi, t_end]
            values = [0.0, 0.0, vdd, vdd]
        else:
            times = [lead, t_start, t_hi, t_end]
            values = [vdd, vdd, 0.0, 0.0]
        return cls(times, values)

    @classmethod
    def constant(cls, value: float, t_start: float, t_end: float) -> "Waveform":
        """A flat waveform at ``value`` over ``[t_start, t_end]``."""
        require(t_end > t_start, "t_end must exceed t_start")
        return cls([t_start, t_end], [value, value])

    @classmethod
    def from_function(
        cls, func: Callable[[np.ndarray], np.ndarray], t_start: float, t_end: float, n: int = 257
    ) -> "Waveform":
        """Sample ``func`` uniformly on ``[t_start, t_end]`` with ``n`` points."""
        require(n >= 2, "need at least two samples")
        t = np.linspace(t_start, t_end, n)
        return cls(t, np.asarray(func(t), dtype=np.float64))

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def times(self) -> np.ndarray:
        """Sample times (read-only array)."""
        return self._times

    @property
    def values(self) -> np.ndarray:
        """Sample voltages (read-only array)."""
        return self._values

    @property
    def t_start(self) -> float:
        """First sample time."""
        return float(self._times[0])

    @property
    def t_end(self) -> float:
        """Last sample time."""
        return float(self._times[-1])

    @property
    def duration(self) -> float:
        """Span of the sampled window."""
        return self.t_end - self.t_start

    @property
    def v_initial(self) -> float:
        """Voltage at the first sample."""
        return float(self._values[0])

    @property
    def v_final(self) -> float:
        """Voltage at the last sample."""
        return float(self._values[-1])

    @property
    def v_min(self) -> float:
        """Minimum sampled voltage."""
        return float(self._values.min())

    @property
    def v_max(self) -> float:
        """Maximum sampled voltage."""
        return float(self._values.max())

    def __len__(self) -> int:
        return int(self._times.size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Waveform(n={len(self)}, t=[{self.t_start:.3e}, {self.t_end:.3e}], "
            f"v=[{self.v_min:.3f}, {self.v_max:.3f}], {self.polarity()})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Waveform):
            return NotImplemented
        return (
            self._times.shape == other._times.shape
            and bool(np.array_equal(self._times, other._times))
            and bool(np.array_equal(self._values, other._values))
        )

    def __hash__(self) -> int:
        return hash((self._times.tobytes(), self._values.tobytes()))

    def __call__(self, t: float | np.ndarray) -> float | np.ndarray:
        """Evaluate the waveform at time(s) ``t`` by linear interpolation.

        Times outside the sampled window clamp to the first/last value.
        """
        out = np.interp(t, self._times, self._values)
        if np.isscalar(t):
            return float(out)
        return out

    # ------------------------------------------------------------------
    # Transformations (all return new Waveforms)
    # ------------------------------------------------------------------
    def shifted(self, dt: float) -> "Waveform":
        """Return this waveform translated by ``dt`` in time."""
        return Waveform(self._times + dt, self._values)

    def scaled(self, gain: float, offset: float = 0.0) -> "Waveform":
        """Return ``gain * v(t) + offset``."""
        return Waveform(self._times, gain * self._values + offset)

    def clipped(self, v_low: float, v_high: float) -> "Waveform":
        """Return the waveform with voltages clamped into ``[v_low, v_high]``."""
        require(v_high > v_low, "v_high must exceed v_low")
        return Waveform(self._times, np.clip(self._values, v_low, v_high))

    def windowed(self, t0: float, t1: float) -> "Waveform":
        """Return the restriction of the waveform to ``[t0, t1]``.

        End points are added by interpolation so the window bounds are
        always sampled exactly.
        """
        require(t1 > t0, "window must have positive width")
        t0 = max(t0, self.t_start)
        t1 = min(t1, self.t_end)
        require(t1 > t0, "window does not intersect the waveform")
        inside = (self._times > t0) & (self._times < t1)
        times = np.concatenate(([t0], self._times[inside], [t1]))
        values = np.concatenate(([self(t0)], self._values[inside], [self(t1)]))
        return Waveform(times, values)

    def resampled(self, n: int | None = None, times: Iterable[float] | None = None) -> "Waveform":
        """Return the waveform re-sampled on a new grid.

        Exactly one of ``n`` (uniform grid over the current window) or
        ``times`` (explicit grid) must be given.
        """
        require((n is None) != (times is None), "give exactly one of n / times")
        if n is not None:
            require(n >= 2, "need at least two samples")
            grid = np.linspace(self.t_start, self.t_end, n)
        else:
            grid = as_float_array(times, "times")
            require(is_strictly_increasing(grid), "times must be strictly increasing")
        return Waveform(grid, np.asarray(self(grid)))

    def reversed_polarity(self, vdd: float) -> "Waveform":
        """Mirror the waveform about ``vdd / 2`` (rising ↔ falling)."""
        return Waveform(self._times, vdd - self._values)

    def derivative(self) -> "Waveform":
        """Return dv/dt, sampled at the original times (central differences)."""
        dv = np.gradient(self._values, self._times)
        return Waveform(self._times, dv)

    def plus(self, other: "Waveform") -> "Waveform":
        """Pointwise sum on the union time window (self's grid + other's)."""
        grid = np.union1d(self._times, other._times)
        return Waveform(grid, np.asarray(self(grid)) + np.asarray(other(grid)))

    def minus(self, other: "Waveform") -> "Waveform":
        """Pointwise difference ``self - other`` on the union grid."""
        grid = np.union1d(self._times, other._times)
        return Waveform(grid, np.asarray(self(grid)) - np.asarray(other(grid)))

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------
    def polarity(self, settle_tol: float = 1e-3) -> str:
        """Classify the overall transition as rising / falling / flat.

        Decided from the first and last samples; excursions in between
        (noise bumps) are ignored, matching how STA treats a noisy victim
        transition.
        """
        delta = self.v_final - self.v_initial
        span = max(abs(self.v_max - self.v_min), 1e-30)
        if abs(delta) <= settle_tol * span:
            return TransitionPolarity.FLAT
        return TransitionPolarity.RISING if delta > 0 else TransitionPolarity.FALLING

    def crossings(self, level: float) -> np.ndarray:
        """All times at which the waveform crosses ``level`` (may be empty)."""
        return linear_interp_crossings(self._times, self._values, level)

    def cross_time(self, level: float, which: str = "last") -> float:
        """Time of the first/last crossing of ``level``.

        Parameters
        ----------
        level:
            Absolute voltage level.
        which:
            ``"first"`` or ``"last"``.

        Raises
        ------
        ValueError
            If the waveform never reaches ``level``.
        """
        require(which in ("first", "last"), "which must be 'first' or 'last'")
        hits = self.crossings(level)
        if hits.size == 0:
            raise ValueError(
                f"waveform (v in [{self.v_min:.4f}, {self.v_max:.4f}]) "
                f"never crosses level {level:.4f}"
            )
        return float(hits[0] if which == "first" else hits[-1])

    def crossing_count(self, level: float) -> int:
        """Number of crossings of ``level`` — a simple noisiness measure."""
        return int(self.crossings(level).size)

    def arrival_time(self, vdd: float, frac: float = 0.5, which: str = "last") -> float:
        """STA arrival time: crossing of ``frac * vdd`` (latest by default).

        STA uses the *latest* crossing of the measurement threshold for a
        noisy waveform, which is the conservative choice the paper's
        point-based techniques anchor on.
        """
        return self.cross_time(frac * vdd, which=which)

    def slew(
        self,
        vdd: float,
        low_frac: float = 0.1,
        high_frac: float = 0.9,
        mode: str = "noisy",
    ) -> float:
        """Transition time between the ``low_frac`` and ``high_frac`` levels.

        Parameters
        ----------
        vdd:
            Supply voltage used to turn fractions into absolute levels.
        low_frac, high_frac:
            Measurement thresholds (defaults 10% / 90%).
        mode:
            ``"noisy"`` measures from the *earliest* entry into the
            transition band to the *latest* exit (the paper's P2 rule);
            ``"clean"`` measures first-entry to first-exit, appropriate for
            monotonic waveforms (the paper's P1 rule applies this to the
            noiseless waveform).

        Returns
        -------
        float
            Positive transition time in seconds.

        Raises
        ------
        ValueError
            If the waveform never reaches one of the levels, or if the
            band traversal is *inverted* — the measured exit from the
            transition band precedes the entry (e.g. a waveform that
            starts beyond the far threshold and dips through the band
            before settling).  Such a record has no meaningful slew;
            wrapping the difference in ``abs()`` would silently report a
            plausible-looking positive number instead.
        """
        require(mode in ("noisy", "clean"), "mode must be 'noisy' or 'clean'")
        pol = self.polarity()
        require(pol != TransitionPolarity.FLAT, "slew of a flat waveform is undefined")
        v_lo = low_frac * vdd
        v_hi = high_frac * vdd
        if pol == TransitionPolarity.RISING:
            start_level, end_level = v_lo, v_hi
        else:
            start_level, end_level = v_hi, v_lo
        t_begin = self.cross_time(start_level, which="first")
        t_end = self.cross_time(end_level, which="last" if mode == "noisy" else "first")
        if t_end <= t_begin:
            raise ValueError(
                f"inverted transition band traversal: {end_level:.4f} V is "
                f"exited at {t_end:.4e}s before the band is entered at "
                f"{start_level:.4f} V ({t_begin:.4e}s); no meaningful "
                f"{low_frac:.0%}-{high_frac:.0%} slew exists"
            )
        return t_end - t_begin

    def critical_region(
        self, vdd: float, low_frac: float = 0.1, high_frac: float = 0.9
    ) -> tuple[float, float]:
        """The paper's critical region: first ``0.1*Vdd`` to last ``0.9*Vdd``.

        For a falling transition the roles of the levels swap (first
        ``0.9*Vdd`` crossing to last ``0.1*Vdd`` crossing), keeping the
        region the span of the switching activity.
        """
        pol = self.polarity()
        require(pol != TransitionPolarity.FLAT, "critical region of a flat waveform")
        v_lo = low_frac * vdd
        v_hi = high_frac * vdd
        if pol == TransitionPolarity.RISING:
            t_first = self.cross_time(v_lo, which="first")
            t_last = self.cross_time(v_hi, which="last")
        else:
            t_first = self.cross_time(v_hi, which="first")
            t_last = self.cross_time(v_lo, which="last")
        require(t_last > t_first, "degenerate critical region")
        return (t_first, t_last)

    def principal_critical_region(
        self, vdd: float, low_frac: float = 0.1, high_frac: float = 0.9
    ) -> tuple[float, float]:
        """The critical region clipped to the *principal* transition.

        Starts at the first entry into the transition band (as
        :meth:`critical_region`), but ends at the first ``high_frac``-level
        crossing **at or after the arrival anchor** (the latest 0.5·Vdd
        crossing) instead of the absolute last one.  Crosstalk that dips an
        already-settled waveform back into the upper band would otherwise
        stretch the window far past the switching event and starve
        fit-based techniques of transition samples; noise *before or
        during* the transition — the case SGDP is designed to capture —
        is fully retained.
        """
        pol = self.polarity()
        require(pol != TransitionPolarity.FLAT, "critical region of a flat waveform")
        v_lo = low_frac * vdd
        v_hi = high_frac * vdd
        anchor = self.cross_time(0.5 * vdd, which="last")
        if pol == TransitionPolarity.RISING:
            t_first = self.cross_time(v_lo, which="first")
            end_level = v_hi
        else:
            t_first = self.cross_time(v_hi, which="first")
            end_level = v_lo
        ends = self.crossings(end_level)
        after = ends[ends >= anchor]
        t_last = float(after[0]) if after.size else float(ends[-1])
        require(t_last > t_first, "degenerate principal critical region")
        return (t_first, t_last)

    def integral(self, t0: float | None = None, t1: float | None = None) -> float:
        """Trapezoidal integral of ``v(t)`` over ``[t0, t1]`` (default: all)."""
        w = self if t0 is None and t1 is None else self.windowed(
            self.t_start if t0 is None else t0, self.t_end if t1 is None else t1
        )
        return float(np.trapezoid(w.values, w.times))

    def band_area(self, v_low: float, v_high: float, t0: float, t1: float) -> float:
        """Area between the curve (clamped into the band) and ``v_high``.

        Computes ``∫ (v_high - clamp(v(t), v_low, v_high)) dt`` over
        ``[t0, t1]`` — the "energy" measure the paper's E4 technique
        equates between the noisy waveform and the equivalent ramp.
        """
        require(v_high > v_low, "band must have positive height")
        w = self.windowed(t0, t1)
        clamped = np.clip(w.values, v_low, v_high)
        return float(np.trapezoid(v_high - clamped, w.times))

    def settles_to(self, target: float, tolerance: float) -> bool:
        """True when the final sample is within ``tolerance`` of ``target``."""
        return abs(self.v_final - target) <= tolerance

    def is_monotonic(self, tolerance: float = 0.0) -> bool:
        """True when samples never move against the overall transition."""
        pol = self.polarity()
        dv = np.diff(self._values)
        if pol == TransitionPolarity.FALLING:
            dv = -dv
        return bool(np.all(dv >= -abs(tolerance)))

    def overlaps(self, other: "Waveform", vdd: float) -> bool:
        """True when the critical regions of the two waveforms intersect.

        The paper's WLS5 requires the (noiseless) input and output
        transitions to overlap for the sensitivity ρ to be meaningful; this
        predicate implements that check.
        """
        a0, a1 = self.critical_region(vdd)
        b0, b1 = other.critical_region(vdd)
        return a0 < b1 and b0 < a1
