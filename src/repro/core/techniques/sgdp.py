"""SGDP — Sensitivity-based Gate Delay Propagation (paper §3).

The proposed technique.  Three steps:

1. **ρ_noiseless** (same as WLS5, Eq. 1): the derivative of the gate output
   with respect to its input along the noiseless transition.
2. **ρ_eff** — remap ρ to the *noisy* waveform **by voltage level**: at
   every sampling instant in the noisy critical region, ρ_eff takes the
   value ρ_noiseless had at the same input voltage.  Distortion is
   weighted wherever it occurs, not only inside the noiseless time window.
3. **Γ_eff** — minimise an estimate of the *output* error (Eq. 3, the
   first two Taylor terms of Δv_out in Δv_in)::

       Σ_k [ ρ_eff(t_k)·e_k  +  ½ · (∂ρ_eff/∂v_in)(t_k) · e_k² ]²,
       e_k = v_in_noisy(t_k) − a·t_k − b

   solved here by Levenberg-damped Gauss–Newton, warm-started from the
   ρ_eff²-weighted linear fit (i.e. the problem with the second-order term
   dropped).

For gates whose noiseless input and output transitions do not overlap
(large intrinsic delay, heavy fanout — where WLS5 is undefined), SGDP
first shifts the output back by δ so the two 0.5·Vdd crossings coincide,
runs steps 1–3, and finally shifts the equivalent waveform forward by δ
(``nonoverlap_mode="paper"``).  A literal forward shift makes Γ_eff late
by δ if it is then re-simulated through the *real* gate, so
``nonoverlap_mode="input-frame"`` (the default) omits the final shift;
see DESIGN.md §5.2 for the discussion.
"""

from __future__ import annotations

import numpy as np

from ..._util import require
from ..ramp import SaturatedRamp
from ..sensitivity import NonOverlappingTransitionsError, SensitivityMap, compute_sensitivity
from .base import (
    DegenerateFitError,
    PropagationInputs,
    Technique,
    fit_line_weighted,
    register_technique,
)

__all__ = ["Sgdp"]

_NONOVERLAP_MODES = ("input-frame", "paper")


@register_technique
class Sgdp(Technique):
    """Sensitivity-based gate delay propagation (the proposed technique).

    Parameters
    ----------
    nonoverlap_mode:
        ``"input-frame"`` (default) or ``"paper"`` — see the module
        docstring.
    max_iterations:
        Gauss–Newton iteration cap for the Eq. 3 minimisation.
    """

    name = "SGDP"

    def __init__(self, nonoverlap_mode: str = "input-frame", max_iterations: int = 40,
                 causal_mask: bool = True):
        require(nonoverlap_mode in _NONOVERLAP_MODES,
                f"nonoverlap_mode must be one of {_NONOVERLAP_MODES}")
        require(max_iterations >= 1, "need at least one iteration")
        self.nonoverlap_mode = nonoverlap_mode
        self.max_iterations = max_iterations
        self.causal_mask = causal_mask

    # ------------------------------------------------------------------
    def equivalent_waveform(self, inputs: PropagationInputs) -> SaturatedRamp:
        """Run SGDP steps 1–3 (with the δ-shift pre/post step if needed)."""
        sens, delta = self._sensitivity_with_shift(inputs)

        # Step 2: sample the noisy critical region; remap ρ by voltage.
        t = inputs.sample_times()
        v = np.asarray(inputs.v_in_noisy(t))
        rho_eff = np.asarray(sens.rho_at_voltage(v))
        drho_dv = np.asarray(sens.drho_dv_at_voltage(v))
        if self.causal_mask:
            weight = self._output_activity_weight(inputs, sens, t)
            rho_eff = rho_eff * weight
            drho_dv = drho_dv * weight

        # Step 3: minimise Eq. 3.
        a, b = self._minimise_output_error(t, v, rho_eff, drho_dv, inputs)

        ramp = SaturatedRamp(a=a, b=b, vdd=inputs.vdd)
        if delta != 0.0 and self.nonoverlap_mode == "paper":
            ramp = ramp.shifted(delta)
        return ramp

    # ------------------------------------------------------------------
    def _output_activity_weight(self, inputs: PropagationInputs, sens: SensitivityMap,
                                t_query: np.ndarray) -> np.ndarray:
        """Causal validity weight for the quasi-static ρ remap.

        The by-voltage remap of step 2 assumes the gate output is still in
        transition.  Physically, the output *commits* once the input
        passes the level at which the noiseless output crosses 0.5·Vdd,
        and then completes its swing over the noiseless commit→settle
        duration Δ_cs — regardless of whether the input stalls at a
        mid-band voltage.  As the remaining output swing shrinks, so does
        the true sensitivity, which the voltage-indexed ρ_eff cannot see:
        crosstalk that sags the input back to the max-|ρ| band *after*
        commit would otherwise dominate Eq. 3 and pin Γ_eff to a
        near-horizontal line.

        The weight therefore decays exponentially with time after commit
        (first-order gate dynamics, time constant Δ_cs) and the fit is
        re-armed from scratch when the input falls back through 0.5·Vdd —
        a genuine re-switch, where only the final episode determines the
        latest crossings that gate delay is measured between.

        Disable via ``Sgdp(causal_mask=False)`` for the paper-literal
        remap; the ``abl-causal`` benchmark quantifies the difference.
        """
        wave = inputs.v_in_noisy
        rising = inputs.rising
        v_commit = sens.commit_input_voltage()
        tau = max(sens.settle_duration_after_commit(), 1e-12)
        half = 0.5 * inputs.vdd
        times = wave.times
        values = wave.values
        t_commit: float | None = None
        weight = np.ones(values.size)
        for i in range(values.size):
            v = float(values[i])
            t = float(times[i])
            if t_commit is None:
                committed_now = (v >= v_commit) if rising else (v <= v_commit)
                if committed_now:
                    t_commit = t
            else:
                w = float(np.exp(-(t - t_commit) / tau))
                if w < 0.02 and ((v < half) if rising else (v > half)):
                    # Settled output, input back through the threshold:
                    # the gate re-switches and only this final episode
                    # matters for the latest crossings.
                    weight[:i] = 0.0
                    t_commit = None
                    w = 1.0
                weight[i] = w
        return np.interp(t_query, times, weight)

    # ------------------------------------------------------------------
    def _sensitivity_with_shift(
        self, inputs: PropagationInputs
    ) -> tuple[SensitivityMap, float]:
        """Step 1, with the additional δ-shift for non-overlapping pairs.

        Returns the sensitivity map and the applied shift δ (0 when the
        transitions overlap).
        """
        v_in, v_out = inputs.require_noiseless(self.name)
        try:
            return inputs.sensitivity(), 0.0
        except NonOverlappingTransitionsError:
            pass
        delta = (v_out.arrival_time(inputs.vdd, which="last")
                 - v_in.arrival_time(inputs.vdd, which="last"))
        shifted_out = v_out.shifted(-delta)
        sens = compute_sensitivity(v_in, shifted_out, inputs.vdd, require_overlap=False)
        return sens, delta

    # ------------------------------------------------------------------
    def _minimise_output_error(
        self,
        t: np.ndarray,
        v: np.ndarray,
        rho: np.ndarray,
        drho: np.ndarray,
        inputs: PropagationInputs,
    ) -> tuple[float, float]:
        """Levenberg-damped Gauss–Newton on Eq. 3; returns (a, b)."""
        # Warm start: drop the second-order term → ρ²-weighted linear LS.
        weights = rho * rho
        try:
            a0, b0 = fit_line_weighted(t, v, weights)
        except DegenerateFitError:
            a0, b0 = fit_line_weighted(t, v)  # fall back to unweighted

        # Work in centred/scaled time for conditioning.
        tc = float(np.mean(t))
        ts = max(float(t[-1] - t[0]), 1e-30)
        tau = (t - tc) / ts
        alpha = a0 * ts
        beta = b0 + a0 * tc

        # Trust region: Eq. 3 is a *local* (two-term Taylor) model of the
        # output error, so candidates whose 0.5·Vdd crossing drifts out of
        # the sampling neighbourhood, or whose slope flips sign, are
        # spurious minima of the surrogate — reject those steps outright.
        half_v = 0.5 * inputs.vdd
        tau_lo, tau_hi = float(tau[0]) - 0.5, float(tau[-1]) + 0.5
        rising = inputs.rising

        def admissible(al: float, be: float) -> bool:
            if al == 0.0 or (al > 0) != rising:
                return False
            tau_cross = (half_v - be) / al
            return tau_lo <= tau_cross <= tau_hi

        # Effective gain of Eq. 3's residual r = e·(ρ + ½·(dρ/dv)·e).  The
        # Taylor expansion is only trustworthy for small e; at large e the
        # quadratic term can cancel the linear one pointwise, opening a
        # spurious basin where a near-flat line zeroes the surrogate while
        # matching nothing.  Clamping the correction to ±50 % of ρ keeps
        # Eq. 3 exact in its validity region and sign-safe outside it.
        def effective_gain(e: np.ndarray) -> np.ndarray:
            safe_rho = np.where(rho == 0.0, 1.0, rho)
            factor = np.clip(1.0 + 0.5 * drho * e / safe_rho, 0.5, 1.5)
            return np.where(rho == 0.0, 0.0, rho * factor)

        def cost(al: float, be: float) -> float:
            e = v - al * tau - be
            r = effective_gain(e) * e
            return float(r @ r)

        if not admissible(alpha, beta):
            # The weighted warm start degenerated (heavy re-crossing noise
            # can pull the ρ²-weighted line almost flat).  Cascade to
            # better-behaved initialisers inside the admissible basin: the
            # unweighted fit, then the anchored construction (latest
            # 0.5·Vdd crossing with the noisy-extent slew, i.e. P2's ramp).
            candidates: list[tuple[float, float]] = []
            try:
                candidates.append(fit_line_weighted(t, v))
            except DegenerateFitError:
                pass
            anchor = inputs.anchor_time()
            slew = inputs.v_in_noisy.slew(inputs.vdd, mode="noisy")
            slope = (0.8 * inputs.vdd / slew) * (1.0 if rising else -1.0)
            candidates.append((slope, half_v - slope * anchor))
            for a_c, b_c in candidates:
                alpha_c = a_c * ts
                beta_c = b_c + a_c * tc
                if admissible(alpha_c, beta_c):
                    alpha, beta = alpha_c, beta_c
                    break
            else:
                raise DegenerateFitError(
                    f"{self.name}: no admissible initial ramp for this waveform"
                )

        lam = 1e-6
        current = cost(alpha, beta)
        for _ in range(self.max_iterations):
            e = v - alpha * tau - beta
            g = effective_gain(e)       # d r / d e with the gain frozen
            # Jacobian: dr/dalpha = -tau * g ; dr/dbeta = -g
            j_a = -tau * g
            j_b = -g
            r = g * e
            jtj = np.array([[j_a @ j_a, j_a @ j_b], [j_a @ j_b, j_b @ j_b]])
            jtr = np.array([j_a @ r, j_b @ r])
            step = None
            for _try in range(8):
                try:
                    step = np.linalg.solve(jtj + lam * np.eye(2) * max(np.trace(jtj), 1e-30),
                                           -jtr)
                except np.linalg.LinAlgError:
                    lam *= 10.0
                    continue
                cand = (alpha + float(step[0]), beta + float(step[1]))
                if admissible(*cand) and cost(*cand) <= current:
                    alpha, beta = cand
                    current = cost(alpha, beta)
                    lam = max(lam / 4.0, 1e-12)
                    break
                lam *= 10.0
            else:
                break  # no productive step found
            if step is not None and float(np.max(np.abs(step))) < 1e-12:
                break

        a = alpha / ts
        b = beta - alpha * tc / ts
        if (a > 0) != rising or a == 0.0:
            raise DegenerateFitError(
                f"{self.name}: fitted slope {a:.3e} V/s contradicts the transition"
            )
        return a, b
