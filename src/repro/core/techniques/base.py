"""Shared machinery of the equivalent-waveform techniques.

Every technique consumes the same inputs — the noisy waveform at the gate
input plus (for the sensitivity-aware ones) the gate's *noiseless*
input/output pair — and produces a
:class:`~repro.core.ramp.SaturatedRamp` Γ_eff.  This module defines that
interface, the shared sampling conventions (the paper's ``P`` sampling
points), the weighted line-fit primitive, and the technique registry.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from ..._util import require
from ..ramp import SaturatedRamp
from ..sensitivity import SensitivityMap, compute_sensitivity
from ..waveform import TransitionPolarity, Waveform

__all__ = [
    "PropagationInputs",
    "Technique",
    "TechniqueError",
    "DegenerateFitError",
    "TechniqueNotApplicableError",
    "fit_line_weighted",
    "register_technique",
    "technique_by_name",
    "registered_technique_names",
    "DEFAULT_SAMPLE_COUNT",
]

#: The paper's default number of sampling points (P = 35, §4.2).
DEFAULT_SAMPLE_COUNT = 35


class TechniqueError(RuntimeError):
    """Base class for technique failures."""


class DegenerateFitError(TechniqueError):
    """The fit produced no usable ramp (zero weights, wrong-signed slope…)."""


class TechniqueNotApplicableError(TechniqueError):
    """The technique's validity conditions are not met (e.g. WLS5 on
    non-overlapping input/output transitions)."""


@dataclass
class PropagationInputs:
    """Everything a technique may look at when building Γ_eff.

    Attributes
    ----------
    v_in_noisy:
        The noisy waveform arriving at the gate input (far end of the
        interconnect), on an absolute time axis.
    vdd:
        Supply voltage.
    v_in_noiseless, v_out_noiseless:
        The gate's noiseless input and resulting output on the same time
        axis — available from conventional library characterisation, as
        the paper emphasises.  Required by P1, WLS5 and SGDP.
    n_samples:
        The number of sampling points P.
    """

    v_in_noisy: Waveform
    vdd: float
    v_in_noiseless: Waveform | None = None
    v_out_noiseless: Waveform | None = None
    n_samples: int = DEFAULT_SAMPLE_COUNT
    _sensitivity: SensitivityMap | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        require(self.vdd > 0, "vdd must be positive")
        require(self.n_samples >= 4, "need at least 4 sampling points")

    # ------------------------------------------------------------------
    @property
    def rising(self) -> bool:
        """Direction of the noisy transition."""
        pol = self.v_in_noisy.polarity()
        require(pol != TransitionPolarity.FLAT, "noisy input does not transition")
        return pol == TransitionPolarity.RISING

    def require_noiseless(self, technique: str) -> tuple[Waveform, Waveform]:
        """Return the noiseless pair or raise a helpful error."""
        if self.v_in_noiseless is None or self.v_out_noiseless is None:
            raise TechniqueNotApplicableError(
                f"{technique} needs the noiseless input/output waveforms"
            )
        return self.v_in_noiseless, self.v_out_noiseless

    def sensitivity(self) -> SensitivityMap:
        """The noiseless sensitivity map (cached)."""
        if self._sensitivity is None:
            v_in, v_out = self.require_noiseless("sensitivity")
            self._sensitivity = compute_sensitivity(v_in, v_out, self.vdd)
        return self._sensitivity

    # ------------------------------------------------------------------
    def noisy_critical_region(self) -> tuple[float, float]:
        """Sampling window over the noisy waveform's principal transition.

        The paper defines the noisy critical region as first 0.1·Vdd to
        *last* 0.9·Vdd crossing; this implementation clips the end to the
        first 0.9·Vdd crossing after the arrival anchor so post-settling
        crosstalk dips do not drown the transition samples (see
        :meth:`repro.core.waveform.Waveform.principal_critical_region`
        and DESIGN.md §5).
        """
        return self.v_in_noisy.principal_critical_region(self.vdd)

    def sample_times(self, window: tuple[float, float] | None = None) -> np.ndarray:
        """P uniform sampling instants over ``window`` (default: noisy
        critical region)."""
        t0, t1 = window if window is not None else self.noisy_critical_region()
        require(t1 > t0, "empty sampling window")
        return np.linspace(t0, t1, self.n_samples)

    def anchor_time(self) -> float:
        """Latest 0.5·Vdd crossing of the noisy waveform — the arrival-time
        anchor shared by the point-based and energy-based techniques."""
        return self.v_in_noisy.arrival_time(self.vdd, which="last")


class Technique(ABC):
    """An equivalent-waveform (gate delay propagation) technique."""

    #: Short name as used in the paper's Table 1 (e.g. ``"SGDP"``).
    name: str = "?"

    @abstractmethod
    def equivalent_waveform(self, inputs: PropagationInputs) -> SaturatedRamp:
        """Compute Γ_eff for the given noisy waveform.

        Raises
        ------
        TechniqueError
            When the technique cannot produce a ramp for these inputs.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<technique {self.name}>"


def fit_line_weighted(
    times: np.ndarray,
    values: np.ndarray,
    weights: np.ndarray | None = None,
) -> tuple[float, float]:
    """Weighted least-squares line fit ``v ≈ a·t + b``.

    Times are centred and scaled internally so the normal equations stay
    well conditioned for nanosecond-scale abscissae.

    Returns
    -------
    (a, b):
        Slope (V/s) and intercept (V, at t = 0).

    Raises
    ------
    DegenerateFitError
        If the weights carry (numerically) no information.
    """
    t = np.asarray(times, dtype=np.float64)
    v = np.asarray(values, dtype=np.float64)
    w = np.ones_like(t) if weights is None else np.asarray(weights, dtype=np.float64)
    require(t.size == v.size == w.size, "inconsistent fit arrays")
    w_sum = float(np.sum(w))
    w_peak = float(np.max(np.abs(w))) if w.size else 0.0
    if not np.isfinite(w_sum) or w_peak <= 0.0 or w_sum < 1e-12 * w_peak:
        raise DegenerateFitError("all fit weights are (numerically) zero")

    t_center = float(np.average(t, weights=None))
    t_scale = max(float(t[-1] - t[0]), 1e-30)
    tau = (t - t_center) / t_scale

    s0 = np.sum(w)
    s1 = np.sum(w * tau)
    s2 = np.sum(w * tau * tau)
    r0 = np.sum(w * v)
    r1 = np.sum(w * tau * v)
    det = s0 * s2 - s1 * s1
    if abs(det) < 1e-14 * max(abs(s0 * s2), 1e-30):
        raise DegenerateFitError("singular normal equations (weights too concentrated)")
    alpha = (s0 * r1 - s1 * r0) / det
    beta = (s2 * r0 - s1 * r1) / det
    a = alpha / t_scale
    b = beta - alpha * t_center / t_scale
    return float(a), float(b)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, type[Technique]] = {}


def register_technique(cls: type[Technique]) -> type[Technique]:
    """Class decorator adding a technique to the global registry."""
    require(cls.name != "?", "technique must define a name")
    require(cls.name not in _REGISTRY, f"duplicate technique {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def technique_by_name(name: str, **kwargs) -> Technique:
    """Instantiate a registered technique by its paper name."""
    if name not in _REGISTRY:
        raise KeyError(f"unknown technique {name!r}; have {sorted(_REGISTRY)}")
    return _REGISTRY[name](**kwargs)


def registered_technique_names() -> list[str]:
    """All registered technique names, in registration order."""
    return list(_REGISTRY)
