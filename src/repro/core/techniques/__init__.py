"""The equivalent-waveform techniques of the paper.

Five conventional techniques (P1, P2, LSF3, E4, WLS5 — §2) and the
proposed SGDP (§3).  All share one interface: build a
:class:`~repro.core.ramp.SaturatedRamp` Γ_eff from
:class:`~repro.core.techniques.base.PropagationInputs`.
"""

from .base import (
    DEFAULT_SAMPLE_COUNT,
    DegenerateFitError,
    PropagationInputs,
    Technique,
    TechniqueError,
    TechniqueNotApplicableError,
    fit_line_weighted,
    register_technique,
    registered_technique_names,
    technique_by_name,
)
from .energy import E4
from .least_squares import Lsf3
from .point_based import P1, P2
from .sgdp import Sgdp
from .weighted_ls import Wls5

__all__ = [
    "Technique",
    "PropagationInputs",
    "TechniqueError",
    "DegenerateFitError",
    "TechniqueNotApplicableError",
    "fit_line_weighted",
    "register_technique",
    "technique_by_name",
    "registered_technique_names",
    "DEFAULT_SAMPLE_COUNT",
    "P1",
    "P2",
    "Lsf3",
    "E4",
    "Wls5",
    "Sgdp",
    "all_techniques",
    "PAPER_TECHNIQUE_ORDER",
]

#: Row order of the paper's Table 1.
PAPER_TECHNIQUE_ORDER = ("P1", "P2", "LSF3", "E4", "WLS5", "SGDP")


def all_techniques() -> list[Technique]:
    """One instance of every technique, in the paper's Table 1 order."""
    return [technique_by_name(name) for name in PAPER_TECHNIQUE_ORDER]
