"""Point-based techniques P1 and P2 (paper §2.1).

Both anchor the equivalent ramp's 0.5·Vdd point at the *latest* 0.5·Vdd
crossing of the noisy waveform.  They differ in the slew:

* **P1** pretends the waveform was never distorted: it takes the
  10–90% transition time of the *noiseless* waveform.
* **P2** measures the noisy waveform from its earliest entry into the
  transition band to its latest exit — noise bumps stretch this, making
  P2 slews pessimistic, while the shared anchor can be pessimistic for
  both.
"""

from __future__ import annotations

from ..ramp import SaturatedRamp
from .base import PropagationInputs, Technique, register_technique

__all__ = ["P1", "P2"]


@register_technique
class P1(Technique):
    """Noiseless-slew point technique."""

    name = "P1"

    def equivalent_waveform(self, inputs: PropagationInputs) -> SaturatedRamp:
        """Anchor at the latest noisy 0.5·Vdd crossing; slew of the
        noiseless waveform (first-entry to first-exit of the 10–90 band)."""
        v_in_noiseless, _ = inputs.require_noiseless(self.name)
        slew = v_in_noiseless.slew(inputs.vdd, mode="clean")
        return SaturatedRamp.from_arrival_slew(
            arrival=inputs.anchor_time(),
            slew=slew,
            vdd=inputs.vdd,
            rising=inputs.rising,
        )


@register_technique
class P2(Technique):
    """Noisy-extent point technique."""

    name = "P2"

    def equivalent_waveform(self, inputs: PropagationInputs) -> SaturatedRamp:
        """Anchor at the latest noisy 0.5·Vdd crossing; slew spans from the
        earliest 0.1·Vdd to the latest 0.9·Vdd noisy crossing."""
        slew = inputs.v_in_noisy.slew(inputs.vdd, mode="noisy")
        return SaturatedRamp.from_arrival_slew(
            arrival=inputs.anchor_time(),
            slew=slew,
            vdd=inputs.vdd,
            rising=inputs.rising,
        )
