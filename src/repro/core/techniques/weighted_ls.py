"""WLS5 — weighted least squares with the noiseless sensitivity
(Hashimoto, Yamada, Onodera, TCAD 2004; paper §2.4).

WLS5 refines LSF3 by weighting every squared sample difference with the
gate's noiseless sensitivity ρ_noiseless(t_k) (Eq. 2)::

    minimise  Σ_k [ ρ_noiseless(t_k) · (v_in_noisy(t_k) − a·t_k − b) ]²

The weight is non-zero only inside the *noiseless critical region*, which
acts as a time filter: noise that lands outside that window is ignored
entirely, and with many aggressors the arrival/slew at the gate output can
be underestimated badly — the two shortcomings SGDP removes.  WLS5 is also
undefined when the noiseless input and output transitions do not overlap
(large intrinsic delay / heavy fanout), in which case this implementation
raises :class:`~repro.core.techniques.base.TechniqueNotApplicableError`.
"""

from __future__ import annotations

import numpy as np

from ..ramp import SaturatedRamp
from ..sensitivity import NonOverlappingTransitionsError
from .base import (
    DegenerateFitError,
    PropagationInputs,
    Technique,
    TechniqueNotApplicableError,
    fit_line_weighted,
    register_technique,
)

__all__ = ["Wls5"]


@register_technique
class Wls5(Technique):
    """Sensitivity-weighted least squares over the noiseless critical region."""

    name = "WLS5"

    def equivalent_waveform(self, inputs: PropagationInputs) -> SaturatedRamp:
        """Fit with weights ρ²_noiseless(t_k), sampled over the union of the
        noisy and noiseless critical regions."""
        v_in_noiseless, _ = inputs.require_noiseless(self.name)
        try:
            sens = inputs.sensitivity()
        except NonOverlappingTransitionsError as exc:
            raise TechniqueNotApplicableError(
                f"{self.name}: noiseless input/output transitions do not overlap"
            ) from exc

        noisy_region = inputs.noisy_critical_region()
        window = (min(noisy_region[0], sens.region[0]),
                  max(noisy_region[1], sens.region[1]))
        t = inputs.sample_times(window)
        v = np.asarray(inputs.v_in_noisy(t))
        rho = np.asarray(sens.rho_at_time(t))
        weights = rho * rho
        a, b = fit_line_weighted(t, v, weights)
        if (a > 0) != inputs.rising or a == 0.0:
            raise DegenerateFitError(
                f"{self.name}: fitted slope {a:.3e} V/s contradicts the transition"
            )
        return SaturatedRamp(a=a, b=b, vdd=inputs.vdd)
