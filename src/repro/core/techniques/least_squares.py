"""LSF3 — plain least-squares waveform matching (paper §2.2).

Fits the line that minimises the sum of squared differences to the noisy
waveform over its critical region.  As the paper notes, this is "simply a
mathematical approach to match a waveform without any consideration of the
logic gate behavior": distortion near the rails counts as much as
distortion near the switching threshold, so the fit can be pulled either
optimistic or pessimistic.
"""

from __future__ import annotations

import numpy as np

from ..ramp import SaturatedRamp
from .base import (
    DegenerateFitError,
    PropagationInputs,
    Technique,
    fit_line_weighted,
    register_technique,
)

__all__ = ["Lsf3"]


@register_technique
class Lsf3(Technique):
    """Unweighted least-squares fit over the noisy critical region."""

    name = "LSF3"

    def equivalent_waveform(self, inputs: PropagationInputs) -> SaturatedRamp:
        """Fit ``a·t + b`` to P samples of the noisy waveform."""
        t = inputs.sample_times()
        v = np.asarray(inputs.v_in_noisy(t))
        a, b = fit_line_weighted(t, v)
        if (a > 0) != inputs.rising or a == 0.0:
            raise DegenerateFitError(
                f"{self.name}: fitted slope {a:.3e} V/s contradicts the "
                f"{'rising' if inputs.rising else 'falling'} transition"
            )
        return SaturatedRamp(a=a, b=b, vdd=inputs.vdd)
