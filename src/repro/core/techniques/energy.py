"""E4 — the energy/area-matching technique (paper §2.3).

Inspired by the Elmore-delay idea, E4 passes the equivalent ramp through
the latest 0.5·Vdd crossing of the noisy waveform and chooses the slope so
that the area enclosed between the ramp and the horizontal lines
``v1 = 0.5·Vdd`` and ``v2 = Vdd`` equals the area enclosed by the noisy
waveform and the same two lines.

For a rising ramp with slope ``a`` the enclosed area is the triangle
``(0.5·Vdd)² / (2a)`` independent of the anchor, so the slope follows in
closed form from the measured waveform area.  Every re-crossing of the
0.5·Vdd level adds area, which slows the equivalent slew — the paper's
explanation of E4's pessimism on very noisy waveforms.
"""

from __future__ import annotations

from ..ramp import SaturatedRamp
from ..waveform import Waveform
from .base import DegenerateFitError, PropagationInputs, Technique, register_technique

__all__ = ["E4"]


@register_technique
class E4(Technique):
    """Area-matching (Elmore-inspired) technique."""

    name = "E4"

    def equivalent_waveform(self, inputs: PropagationInputs) -> SaturatedRamp:
        """Anchor at the latest noisy 0.5·Vdd crossing; match the upper-band
        area between the first 0.5·Vdd crossing and the end of the record."""
        vdd = inputs.vdd
        rising = inputs.rising
        wave: Waveform = inputs.v_in_noisy
        if not rising:
            # Mirror a falling waveform into the rising frame; area and
            # anchor are symmetric about Vdd/2.
            wave = wave.reversed_polarity(vdd)

        half = 0.5 * vdd
        t_first_half = wave.cross_time(half, which="first")
        area = wave.band_area(v_low=half, v_high=vdd, t0=t_first_half, t1=wave.t_end)
        if area <= 0.0:
            raise DegenerateFitError(f"{self.name}: non-positive band area {area:.3e}")
        slope = half * half / (2.0 * area)
        if not rising:
            slope = -slope
        return SaturatedRamp.from_arrival_slew(
            arrival=inputs.anchor_time(),
            slew=abs(0.8 * vdd / slope),
            vdd=vdd,
            rising=rising,
        )
