"""Gate delay propagation: drive a receiver gate with a waveform or Γ_eff.

This is the evaluation harness of the paper: take the noisy waveform at a
gate input, build each technique's equivalent waveform, apply it to the
gate (receiver plus its realistic downstream load) in the circuit
simulator, and measure the resulting output arrival.  The error of a
technique is the difference between its output arrival and the golden
output arrival obtained by applying the *actual* noisy waveform to the
same gate — exactly the Hspice comparison of Table 1.

All fixture circuits for one evaluation share a topology (only the forced
``Vin`` stimulus differs), so :func:`evaluate_techniques` submits the
golden run and every technique's Γ_eff re-simulation as one batch to
:func:`~repro.circuit.transient.simulate_transient_many` — one stacked
Newton loop instead of ~7 sequential simulations.  Each technique's
simulation window is extended to cover its *own* ramp
(``ramp.t_finish + settle_margin``), so a late/slow equivalent ramp is
never clipped mid-transition by the noisy waveform's window.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from dataclasses import replace as _dc_replace

from .._util import require
from ..circuit.netlist import Circuit
from ..circuit.transient import (TransientJob, TransientOptions,
                                 TransientResult, resolve_adaptive,
                                 simulate_transient_many)
from ..library.cells import InverterCell
from .ramp import SaturatedRamp
from .techniques.base import PropagationInputs, Technique, TechniqueError
from .waveform import Waveform

__all__ = ["GateFixture", "GateOutput", "TechniqueEvaluation",
           "EvaluationPlan", "prepare_evaluation", "finish_evaluation",
           "evaluate_techniques"]

#: Anything that maps a job list to its results in order — the sequential
#: engine by default; :func:`repro.exec.run_jobs` to add sharding and the
#: result store.  Kept as an injection point so :mod:`repro.core` stays
#: free of execution-layer imports.
JobRunner = Callable[[list[TransientJob]], "list[TransientResult]"]


@dataclass(frozen=True)
class GateOutput:
    """Measured response of the fixture to one stimulus.

    Attributes
    ----------
    v_in, v_out:
        Stimulus (as applied) and gate-output waveforms.
    output_arrival:
        Latest 0.5·Vdd crossing of the gate output (absolute time).
    output_slew:
        10–90% output transition time.
    gate_delay:
        Output arrival minus the stimulus' latest 0.5·Vdd crossing — the
        paper's gate-delay measurement.
    """

    v_in: Waveform
    v_out: Waveform
    output_arrival: float
    output_slew: float
    gate_delay: float


@dataclass
class GateFixture:
    """A receiver gate with its downstream load, driven by a forced source.

    The paper's victim receiver is 4INVx loaded by a 16INVx → 64INVx
    fanout chain; :func:`repro.experiments.setup.receiver_fixture` builds
    exactly that.  ``chain`` gates are real transistor-level stages so the
    receiver sees a nonlinear, Miller-coupled load, not a lumped cap.

    Attributes
    ----------
    cell:
        The gate under test (input pin forced by the stimulus).
    chain:
        Downstream inverter stages loading the gate output, in order.
    extra_load:
        Additional lumped capacitance at the gate output (farads).
    dt:
        Simulation time step.
    settle_margin:
        Extra simulated time after the stimulus ends.
    solver_backend:
        Linear-solver backend request for the fixture simulations
        (``TransientOptions.backend``): ``"auto"``, ``"dense"``,
        ``"sparse"`` or ``"banded"``.
    adaptive:
        Stepping mode of the fixture simulations: ``True``/``False``
        pin LTE-controlled adaptive stepping on/off, ``None`` (default)
        follows the ``REPRO_ADAPTIVE`` environment knob
        (:func:`~repro.circuit.transient.resolve_adaptive`).
    """

    cell: InverterCell
    chain: tuple[InverterCell, ...] = ()
    extra_load: float = 0.0
    dt: float = 1e-12
    settle_margin: float = 500e-12
    solver_backend: str = "auto"
    adaptive: bool | None = None

    def _build(self, stimulus: Waveform) -> tuple[Circuit, dict[str, float]]:
        vdd = self.cell.vdd
        circuit = Circuit(f"fixture.{self.cell.name}")
        circuit.vsource("Vdd", "vdd", "0", vdd)
        circuit.vsource("Vin", "in", "0", stimulus)
        self.cell.instantiate(circuit, "dut", "in", "out", "vdd")
        if self.extra_load > 0:
            circuit.capacitor("CL", "out", "0", self.extra_load)
        prev = "out"
        for k, stage in enumerate(self.chain):
            nxt = f"w{k + 1}"
            stage.instantiate(circuit, f"chain{k + 1}", prev, nxt, "vdd")
            prev = nxt
        # Logic-consistent initial state for fast DC convergence.
        level = stimulus.v_initial
        initial = {"in": level, "vdd": vdd}
        node = "out"
        for k in range(len(self.chain) + 1):
            level = 0.0 if level > vdd / 2 else vdd  # each stage inverts
            initial[node] = level
            node = f"w{k + 1}"
        return circuit, initial

    def transient_job(self, stimulus: "Waveform | SaturatedRamp",
                      t_window: tuple[float, float] | None = None) -> TransientJob:
        """Prepare the simulation job for one stimulus (without running it).

        Ramps are sampled over ``t_window``; waveform records that end
        before the window are extended with their settled value.  Jobs
        built from the same fixture share a topology, so a list of them
        batches through
        :func:`~repro.circuit.transient.simulate_transient_many`.
        """
        if isinstance(stimulus, SaturatedRamp):
            if t_window is None:
                t_window = (stimulus.t_begin - 100e-12,
                            stimulus.t_finish + self.settle_margin)
            wave = stimulus.to_waveform(t_window[0], t_window[1])
        else:
            wave = stimulus
            if t_window is None:
                t_window = (wave.t_start, wave.t_end + self.settle_margin)
            if t_window[1] > wave.t_end:
                # Extend the record with its settled value.
                wave = Waveform(
                    list(wave.times) + [t_window[1]],
                    list(wave.values) + [wave.v_final],
                )
        require(t_window[1] > t_window[0], "empty simulation window")

        circuit, initial = self._build(wave)
        return TransientJob(circuit=circuit, t_stop=t_window[1], dt=self.dt,
                            t_start=t_window[0], initial_voltages=initial,
                            options=TransientOptions(
                                backend=self.solver_backend,
                                adaptive=resolve_adaptive(self.adaptive)))

    def measure(self, result: TransientResult) -> GateOutput:
        """Extract the :class:`GateOutput` measurements from a simulation."""
        vdd = self.cell.vdd
        v_out = result.waveform("out")
        v_in = result.waveform("in")
        arrival = v_out.arrival_time(vdd, which="last")
        try:
            out_slew = v_out.slew(vdd)
        except ValueError:
            # Partial swings (pathological stimuli) have no 10-90 slew.
            out_slew = float("nan")
        return GateOutput(
            v_in=v_in,
            v_out=v_out,
            output_arrival=arrival,
            output_slew=out_slew,
            gate_delay=arrival - v_in.arrival_time(vdd, which="last"),
        )

    def response(self, stimulus: "Waveform | SaturatedRamp",
                 t_window: tuple[float, float] | None = None) -> GateOutput:
        """Simulate the fixture driven by ``stimulus`` and measure the output.

        Parameters
        ----------
        stimulus:
            A sampled waveform or an equivalent ramp.  Ramps are sampled
            over ``t_window`` (required for ramps unless their transition
            fixes a natural window).
        t_window:
            Absolute simulation window.  Defaults to the waveform's span
            plus the settle margin.
        """
        return self.measure(self.transient_job(stimulus, t_window).run())

    def response_many(self, requests: "list[tuple[Waveform | SaturatedRamp, tuple[float, float] | None]]",
                      batch: bool = True) -> list[GateOutput]:
        """Simulate many stimuli against this fixture, batched by default.

        ``requests`` is a list of ``(stimulus, t_window)`` pairs (window
        semantics as in :meth:`response`).  With ``batch=False`` each
        stimulus runs through the sequential engine — useful for
        benchmarking and as a numerical cross-check.
        """
        jobs = [self.transient_job(stim, win) for stim, win in requests]
        results = simulate_transient_many(jobs) if batch else [j.run() for j in jobs]
        return [self.measure(r) for r in results]


@dataclass(frozen=True)
class TechniqueEvaluation:
    """Outcome of one technique on one noisy waveform.

    Two signed error metrics are recorded (positive = pessimistic):

    * ``delay_error`` — the paper's Table 1 metric: the technique's gate
      delay (output 0.5·Vdd crossing minus *its own* Γ_eff 0.5·Vdd
      crossing) minus the golden gate delay (golden output crossing minus
      the *noisy waveform's* latest 0.5·Vdd crossing).  Each gate delay is
      referenced to its own input representation, isolating the gate
      *propagation* error — §4.1: "the gate delay was calculated as the
      difference between the 0.5Vdd crossing points of the input and
      output waveforms".
    * ``arrival_error`` — absolute output-arrival difference on the shared
      time axis; this additionally charges the technique for misplacing
      the input arrival itself.

    ``failed`` carries the error message when the technique was not
    applicable.
    """

    technique: str
    ramp: SaturatedRamp | None
    output: GateOutput | None
    arrival_error: float | None
    delay_error: float | None = None
    failed: str | None = None


@dataclass
class EvaluationPlan:
    """The prepared (but not yet simulated) half of a technique evaluation.

    :func:`prepare_evaluation` builds every simulation job one scoring
    needs — the golden run (unless supplied) plus one re-simulation per
    applicable technique — without running anything.  Callers that score
    many noisy waveforms (e.g. the Table 1 sweep) concatenate the
    ``jobs`` of all their plans into one submission to the execution
    layer, then hand each plan its slice of the results via
    :func:`finish_evaluation`; ``evaluate_techniques`` is the
    one-evaluation convenience wrapper around the same pair.
    """

    fixture: GateFixture
    inputs: PropagationInputs
    jobs: list[TransientJob]
    evaluable: list[tuple[Technique, SaturatedRamp]]
    failed: dict[str, TechniqueEvaluation]
    golden: GateOutput | None

    @property
    def n_jobs(self) -> int:
        """Number of simulation results :func:`finish_evaluation` expects."""
        return len(self.jobs)


def prepare_evaluation(
    fixture: GateFixture,
    inputs: PropagationInputs,
    techniques: list[Technique],
    golden: GateOutput | None = None,
) -> EvaluationPlan:
    """Build the simulation jobs of one technique evaluation.

    Techniques whose equivalent-waveform construction fails are recorded
    as failures immediately; the rest contribute one fixture job each,
    after the golden job (present only when ``golden`` is omitted).
    """
    base_window = (inputs.v_in_noisy.t_start,
                   inputs.v_in_noisy.t_end + fixture.settle_margin)
    failed: dict[str, TechniqueEvaluation] = {}
    evaluable: list[tuple[Technique, SaturatedRamp]] = []
    jobs: list[TransientJob] = []
    if golden is None:
        jobs.append(fixture.transient_job(
            inputs.v_in_noisy, (inputs.v_in_noisy.t_start, base_window[1])))
    for tech in techniques:
        try:
            ramp = tech.equivalent_waveform(inputs)
            # Cover the technique's own ramp on both sides: an early ramp
            # would otherwise be sampled from mid-transition, a late one
            # clipped before it completes.
            window = (min(base_window[0], ramp.t_begin - 100e-12),
                      max(base_window[1], ramp.t_finish + fixture.settle_margin))
            job = fixture.transient_job(ramp, window)
        except (TechniqueError, ValueError) as exc:
            failed[tech.name] = TechniqueEvaluation(
                technique=tech.name, ramp=None, output=None,
                arrival_error=None, delay_error=None, failed=str(exc),
            )
            continue
        evaluable.append((tech, ramp))
        jobs.append(job)
    return EvaluationPlan(fixture=fixture, inputs=inputs, jobs=jobs,
                          evaluable=evaluable, failed=failed, golden=golden)


def finish_evaluation(
    plan: EvaluationPlan,
    sims: list[TransientResult],
) -> tuple[GateOutput, dict[str, TechniqueEvaluation]]:
    """Score a prepared evaluation from its simulation results.

    ``sims`` must hold one result per ``plan.jobs`` entry, in order.
    """
    require(len(sims) == len(plan.jobs),
            f"evaluation plan expects {len(plan.jobs)} results, got {len(sims)}")
    fixture = plan.fixture
    golden = plan.golden
    results = dict(plan.failed)
    cursor = 0
    if golden is None:
        golden = fixture.measure(sims[0])
        cursor = 1
    for tech, ramp in plan.evaluable:
        sim = sims[cursor]
        cursor += 1
        try:
            out = fixture.measure(sim)
        except ValueError as exc:
            results[tech.name] = TechniqueEvaluation(
                technique=tech.name, ramp=None, output=None,
                arrival_error=None, delay_error=None, failed=str(exc),
            )
            continue
        results[tech.name] = TechniqueEvaluation(
            technique=tech.name,
            ramp=ramp,
            output=out,
            arrival_error=out.output_arrival - golden.output_arrival,
            delay_error=out.gate_delay - golden.gate_delay,
        )
    return golden, results


def evaluate_techniques(
    fixture: GateFixture,
    inputs: PropagationInputs,
    techniques: list[Technique],
    golden: GateOutput | None = None,
    batch: bool = True,
    solver_backend: str | None = None,
    adaptive: bool | None = None,
    runner: JobRunner | None = None,
) -> tuple[GateOutput, dict[str, TechniqueEvaluation]]:
    """Score ``techniques`` on one noisy waveform against the golden gate.

    The golden run and every technique's re-simulation share the fixture
    topology, so they are submitted as one batch (a single stacked Newton
    loop) unless ``batch=False``.

    Each technique's window covers its *own* equivalent ramp: sampling a
    late/slow ramp over only the noisy waveform's span would clip it
    mid-transition and measure the "output arrival" on a truncated
    record, so per technique the window is widened to
    ``[min(start, ramp.t_begin - 100 ps), max(end, ramp.t_finish +
    settle_margin)]``.

    Parameters
    ----------
    fixture:
        The receiver gate under evaluation.
    inputs:
        Noisy waveform plus noiseless reference data.
    techniques:
        Technique instances to score.
    golden:
        Pre-computed golden response (the fixture driven by the noisy
        waveform itself); computed here when omitted.
    batch:
        ``False`` runs every simulation sequentially (numerically
        equivalent; used by the batching benchmark as the baseline).
    solver_backend:
        Overrides the fixture's linear-solver backend request for this
        evaluation (``None`` keeps ``fixture.solver_backend``).
    adaptive:
        Overrides the fixture's stepping mode for this evaluation
        (``None`` keeps ``fixture.adaptive``, which itself defaults to
        the ``REPRO_ADAPTIVE`` environment knob).
    runner:
        Executes the batched job list; defaults to
        :func:`~repro.circuit.transient.simulate_transient_many`.  Pass
        :func:`repro.exec.run_jobs` (or a closure over it) to shard the
        simulations and/or consult the result store.

    Returns
    -------
    (golden, results):
        The golden response and a name → evaluation map.
    """
    require(runner is None or batch,
            "runner only applies to the batched path; batch=False is the "
            "strictly sequential baseline and would silently ignore it")
    if solver_backend is not None and solver_backend != fixture.solver_backend:
        fixture = _dc_replace(fixture, solver_backend=solver_backend)
    if adaptive is not None and adaptive != fixture.adaptive:
        fixture = _dc_replace(fixture, adaptive=adaptive)
    plan = prepare_evaluation(fixture, inputs, techniques, golden=golden)
    if batch:
        sims = (runner or simulate_transient_many)(plan.jobs)
    else:
        sims = [j.run() for j in plan.jobs]
    return finish_evaluation(plan, sims)
