"""Saturated linear ramps — the equivalent waveforms Γ_eff of the paper.

Every technique in :mod:`repro.core.techniques` reduces a noisy waveform to
a line ``v(t) = a·t + b`` clamped to the supply rails ``[0, Vdd]``.  This
module provides that representation together with the conversions STA
needs: (arrival time, slew) ↔ (a, b), sampling to a :class:`Waveform`, and
export as a piecewise-linear stimulus for the circuit simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import require
from .waveform import TransitionPolarity, Waveform

__all__ = ["SaturatedRamp"]


@dataclass(frozen=True)
class SaturatedRamp:
    """The equivalent linear waveform Γ_eff: ``clamp(a·t + b, 0, vdd)``.

    Attributes
    ----------
    a:
        Slope in V/s.  Positive for a rising equivalent waveform, negative
        for falling.  Must be non-zero.
    b:
        Intercept in volts (value the un-clamped line takes at ``t = 0``).
    vdd:
        Supply voltage defining the clamping rails.
    """

    a: float
    b: float
    vdd: float

    def __post_init__(self) -> None:
        require(self.vdd > 0.0, "vdd must be positive")
        require(self.a != 0.0, "ramp slope must be non-zero")
        require(np.isfinite(self.a) and np.isfinite(self.b), "ramp coefficients must be finite")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_arrival_slew(
        cls,
        arrival: float,
        slew: float,
        vdd: float,
        rising: bool = True,
        low_frac: float = 0.1,
        high_frac: float = 0.9,
        arrival_frac: float = 0.5,
    ) -> "SaturatedRamp":
        """Build the ramp with the given STA summary.

        Parameters
        ----------
        arrival:
            Time at which the ramp crosses ``arrival_frac * vdd``.
        slew:
            ``low_frac``→``high_frac`` transition time (must be > 0).
        rising:
            Transition direction.
        """
        require(slew > 0.0, "slew must be positive")
        slope = (high_frac - low_frac) * vdd / slew
        if not rising:
            slope = -slope
        # Line passes through (arrival, arrival_frac * vdd).
        intercept = arrival_frac * vdd - slope * arrival
        return cls(a=slope, b=intercept, vdd=vdd)

    @classmethod
    def from_points(cls, t0: float, v0: float, t1: float, v1: float, vdd: float) -> "SaturatedRamp":
        """Build the ramp through two points of the un-clamped line."""
        require(t1 != t0, "the two points must have distinct times")
        slope = (v1 - v0) / (t1 - t0)
        return cls(a=slope, b=v0 - slope * t0, vdd=vdd)

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    @property
    def rising(self) -> bool:
        """True for a rising equivalent transition."""
        return self.a > 0.0

    @property
    def polarity(self) -> str:
        """:class:`TransitionPolarity` value of the transition."""
        return TransitionPolarity.RISING if self.rising else TransitionPolarity.FALLING

    def time_at(self, v: float) -> float:
        """Time at which the un-clamped line reaches voltage ``v``."""
        return (v - self.b) / self.a

    def arrival_time(self, frac: float = 0.5) -> float:
        """Crossing time of ``frac * vdd`` (the STA arrival time)."""
        return self.time_at(frac * self.vdd)

    def slew(self, low_frac: float = 0.1, high_frac: float = 0.9) -> float:
        """Transition time between the measurement thresholds (positive)."""
        return abs((high_frac - low_frac) * self.vdd / self.a)

    @property
    def t_low_rail(self) -> float:
        """Time at which the clamped ramp leaves/reaches the 0 V rail."""
        return self.time_at(0.0)

    @property
    def t_high_rail(self) -> float:
        """Time at which the clamped ramp leaves/reaches the Vdd rail."""
        return self.time_at(self.vdd)

    @property
    def t_begin(self) -> float:
        """Time the clamped transition starts (earlier rail departure)."""
        return min(self.t_low_rail, self.t_high_rail)

    @property
    def t_finish(self) -> float:
        """Time the clamped transition completes."""
        return max(self.t_low_rail, self.t_high_rail)

    def __call__(self, t: float | np.ndarray) -> float | np.ndarray:
        """Evaluate the clamped ramp at time(s) ``t``."""
        v = self.a * np.asarray(t, dtype=np.float64) + self.b
        out = np.clip(v, 0.0, self.vdd)
        if np.isscalar(t):
            return float(out)
        return out

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_waveform(self, t_start: float, t_end: float, n: int | None = None) -> Waveform:
        """Sample the clamped ramp into a :class:`Waveform` on ``[t_start, t_end]``.

        With ``n`` unset, the exact piecewise-linear shape is returned
        (four break points); otherwise ``n`` uniform samples are used.
        """
        require(t_end > t_start, "t_end must exceed t_start")
        if n is not None:
            times = np.linspace(t_start, t_end, n)
            return Waveform(times, np.asarray(self(times)))
        knots = [t_start, t_end]
        for t in (self.t_begin, self.t_finish):
            if t_start < t < t_end:
                knots.append(t)
        times = np.unique(np.asarray(knots))
        return Waveform(times, np.asarray(self(times)))

    def to_pwl(self, t_start: float, t_end: float) -> list[tuple[float, float]]:
        """Break points of the clamped ramp as ``(time, voltage)`` pairs.

        Suitable for a piecewise-linear voltage source in the circuit
        simulator.
        """
        w = self.to_waveform(t_start, t_end)
        return [(float(t), float(v)) for t, v in zip(w.times, w.values)]

    def shifted(self, dt: float) -> "SaturatedRamp":
        """Return the ramp translated by ``dt`` in time."""
        return SaturatedRamp(a=self.a, b=self.b - self.a * dt, vdd=self.vdd)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SaturatedRamp({'rising' if self.rising else 'falling'}, "
            f"arrival={self.arrival_time():.4e}s, slew={self.slew():.4e}s)"
        )
