"""Time-domain stimulus functions for independent sources.

A source function maps time (scalar or array) to a value (volts or
amperes).  Besides evaluation, sources expose their *breakpoints* — times
at which the waveform has a corner — so analyses can align time steps with
them.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from .._util import as_float_array, is_strictly_increasing, require
from ..core.waveform import Waveform

__all__ = ["SourceFunction", "Dc", "Pwl", "RampSource", "PulseSource", "WaveformSource"]


class SourceFunction:
    """Base class for time-dependent source values."""

    def __call__(self, t: float | np.ndarray) -> float | np.ndarray:
        raise NotImplementedError

    @property
    def breakpoints(self) -> tuple[float, ...]:
        """Times at which the source has slope discontinuities."""
        return ()

    def value_at(self, t: float) -> float:
        """Scalar evaluation helper."""
        return float(self(t))

    def content_fingerprint(self) -> tuple:
        """Canonical content of this stimulus, for result-store keying.

        Two sources with equal fingerprints produce identical values at
        *every* time (not just on some sample grid), so a fingerprint
        participates in the content key of
        :mod:`repro.exec.store`.  Sources that cannot make that
        guarantee must leave this unimplemented — the store then treats
        the job as uncacheable instead of mis-keying it.
        """
        raise NotImplementedError(
            f"{type(self).__qualname__} has no canonical content fingerprint")


class Dc(SourceFunction):
    """A constant source."""

    def __init__(self, value: float):
        self.value = float(value)

    def __call__(self, t: float | np.ndarray) -> float | np.ndarray:
        if np.isscalar(t):
            return self.value
        return np.full_like(np.asarray(t, dtype=np.float64), self.value)

    def content_fingerprint(self) -> tuple:
        return ("dc", self.value)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Dc({self.value})"


class Pwl(SourceFunction):
    """Piecewise-linear source defined by ``(time, value)`` corners.

    Values clamp to the first/last corner outside the defined window,
    matching SPICE PWL semantics.
    """

    def __init__(self, points: Iterable[tuple[float, float]]):
        pts = sorted((float(t), float(v)) for t, v in points)
        require(len(pts) >= 1, "PWL needs at least one point")
        self._t = as_float_array([p[0] for p in pts], "pwl times")
        self._v = as_float_array([p[1] for p in pts], "pwl values")
        require(is_strictly_increasing(self._t), "PWL times must be strictly increasing")

    def __call__(self, t: float | np.ndarray) -> float | np.ndarray:
        out = np.interp(t, self._t, self._v)
        if np.isscalar(t):
            return float(out)
        return out

    @property
    def breakpoints(self) -> tuple[float, ...]:
        return tuple(self._t.tolist())

    @property
    def points(self) -> list[tuple[float, float]]:
        """The defining corners as ``(time, value)`` pairs."""
        return list(zip(self._t.tolist(), self._v.tolist()))

    def content_fingerprint(self) -> tuple:
        # The corners fully define the curve (and hence every subclass:
        # RampSource and PulseSource are constructor sugar over corners).
        return ("pwl", self._t, self._v)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Pwl({len(self._t)} points)"


class RampSource(Pwl):
    """A saturated ramp between two levels — the standard STA stimulus.

    Parameters
    ----------
    t_start:
        Time the transition leaves ``v_from``.
    slew:
        10–90 transition time (scaled internally to the full swing).
    v_from, v_to:
        Initial and final levels.
    """

    def __init__(self, t_start: float, slew: float, v_from: float, v_to: float,
                 low_frac: float = 0.1, high_frac: float = 0.9):
        require(slew > 0.0, "slew must be positive")
        duration = slew / (high_frac - low_frac)
        super().__init__([(t_start, v_from), (t_start + duration, v_to)])
        self.t_start = float(t_start)
        self.duration = float(duration)


class PulseSource(Pwl):
    """A trapezoidal pulse: base → peak → base."""

    def __init__(self, t_start: float, rise: float, width: float, fall: float,
                 v_base: float, v_peak: float):
        require(rise > 0 and fall > 0 and width >= 0, "invalid pulse timing")
        t1 = t_start + rise
        t2 = t1 + width
        t3 = t2 + fall
        super().__init__([(t_start, v_base), (t1, v_peak), (t2, v_peak), (t3, v_base)])


class WaveformSource(SourceFunction):
    """Drive a source with an arbitrary sampled :class:`Waveform`."""

    def __init__(self, waveform: Waveform):
        self.waveform = waveform

    def __call__(self, t: float | np.ndarray) -> float | np.ndarray:
        return self.waveform(t)

    @property
    def breakpoints(self) -> tuple[float, ...]:
        # Every sample is a potential corner of the piecewise-linear curve.
        return tuple(self.waveform.times.tolist())

    def content_fingerprint(self) -> tuple:
        return ("waveform", self.waveform.times, self.waveform.values)

    def __repr__(self) -> str:  # pragma: no cover
        return f"WaveformSource({self.waveform!r})"


def as_source(value: "float | SourceFunction | Waveform | Sequence") -> SourceFunction:
    """Coerce a user-supplied stimulus spec to a :class:`SourceFunction`.

    Accepts a number (DC), a :class:`SourceFunction`, a
    :class:`~repro.core.waveform.Waveform`, or an iterable of ``(t, v)``
    pairs (PWL).
    """
    if isinstance(value, SourceFunction):
        return value
    if isinstance(value, Waveform):
        return WaveformSource(value)
    if isinstance(value, (int, float)):
        return Dc(float(value))
    return Pwl(value)
