"""NumPy reference kernels: flat-array primitives of the stepping engines.

Everything here operates on plain ndarrays — device parameter vectors,
terminal index arrays, right-hand sides — with no circuit objects in
sight.  :mod:`repro.circuit.mna` and :mod:`repro.circuit.transient`
gather their per-topology arrays once (``MnaSystem.device_arrays``,
``_StepMatrixCache``) and call these per step; :mod:`._loops` provides
the loop-form twins a numba/GPU backend compiles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DeviceArrays", "SMOOTH_EPS", "mos_eval", "square_law",
           "companion_rhs"]

#: Overdrive smoothing width in volts; small enough not to disturb the
#: strong-inversion region, large enough for smooth Newton convergence.
SMOOTH_EPS = 0.02


@dataclass(frozen=True, eq=False)
class DeviceArrays:
    """The MOSFET population of one topology as flat arrays.

    Kernels depend on this — not on ``MnaSystem`` — so a backend that
    wants the data on a device (numba typed args today, CuPy tomorrow)
    gets everything it needs from seven contiguous vectors.  Terminal
    indices use ``-1`` for ground (kernels read 0 V and skip the stamp).
    """

    d: np.ndarray      #: drain MNA index per device (int64, -1 = ground)
    g: np.ndarray      #: gate MNA index per device
    s: np.ndarray      #: source MNA index per device
    pol: np.ndarray    #: +1.0 NMOS / -1.0 PMOS (float64)
    beta: np.ndarray   #: transconductance factor kp·W/L (A/V²)
    vth: np.ndarray    #: threshold magnitude (V)
    lam: np.ndarray    #: channel-length modulation (1/V)

    @property
    def n_dev(self) -> int:
        return int(self.d.size)


def square_law(vgs: np.ndarray, vds: np.ndarray, beta: np.ndarray,
               vth: np.ndarray, lam: np.ndarray
               ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Square-law drain current for ``vds >= 0`` with smooth overdrive.

    Returns
    -------
    (ids, d_ids/d_vgs, d_ids/d_vds) arrays.
    """
    vgst = vgs - vth
    root = np.sqrt(vgst * vgst + 4.0 * SMOOTH_EPS * SMOOTH_EPS)
    vov = 0.5 * (vgst + root)          # smooth max(vgst, 0)
    dvov = 0.5 * (1.0 + vgst / root)   # its derivative w.r.t. vgs

    triode = vds < vov
    # Triode region current and partials w.r.t. (vov, vds).
    id_tri = beta * (vov * vds - 0.5 * vds * vds)
    did_tri_dvov = beta * vds
    did_tri_dvds = beta * (vov - vds)
    # Saturation region.
    id_sat = 0.5 * beta * vov * vov
    did_sat_dvov = beta * vov
    did_sat_dvds = np.zeros_like(vds)

    id0 = np.where(triode, id_tri, id_sat)
    did_dvov = np.where(triode, did_tri_dvov, did_sat_dvov)
    did_dvds0 = np.where(triode, did_tri_dvds, did_sat_dvds)

    clm = 1.0 + lam * vds
    ids = id0 * clm
    gm = did_dvov * dvov * clm
    gds = did_dvds0 * clm + id0 * lam
    return ids, gm, gds


def mos_eval(
    vd: np.ndarray,
    vg: np.ndarray,
    vs: np.ndarray,
    polarity: np.ndarray,
    beta: np.ndarray,
    vth: np.ndarray,
    lam: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The one flat device-evaluation primitive: currents and partials.

    Broadcasts over any leading shape — a ``(n_dev,)`` scalar operating
    point and a stacked ``(B, n_dev)`` batch take the identical code
    path (the scalar *is* a batch of one), which is what pins the
    scalar and batched engines to bit-equal device physics.  Handles
    both polarities (PMOS via voltage mirroring) and both drain bias
    signs (``vds < 0`` via source/drain swap — the square-law device is
    symmetric).

    Parameters
    ----------
    vd, vg, vs:
        Terminal voltages per device.
    polarity:
        ``+1`` / ``-1`` per device.
    beta, vth, lam:
        Model parameters per device (``vth`` is the magnitude).

    Returns
    -------
    (ids, d_ids/d_vd, d_ids/d_vg, d_ids/d_vs)
        ``ids`` is the current flowing *into* the drain terminal and out
        of the source terminal.  Derivatives are with respect to the
        original (un-mirrored) node voltages, ready for Jacobian
        stamping.
    """
    pol = polarity.astype(np.float64)
    # Mirror PMOS into the NMOS frame: all voltages negated.
    vdp = pol * vd
    vgp = pol * vg
    vsp = pol * vs

    vds = vdp - vsp
    swap = vds < 0.0
    # In the swapped frame the physical source is the drain terminal.
    vgs_n = np.where(swap, vgp - vdp, vgp - vsp)
    vds_n = np.abs(vds)

    ids_n, gm_n, gds_n = square_law(vgs_n, vds_n, beta, vth, lam)

    # Partials w.r.t. the primed (mirrored) terminal voltages.
    # Normal frame:  d/dvg = gm, d/dvd = gds, d/dvs = -(gm + gds).
    # Swapped frame: current reverses and roles of d/s exchange.
    did_dvd = np.where(swap, gm_n + gds_n, gds_n)
    did_dvg = np.where(swap, -gm_n, gm_n)
    did_dvs = np.where(swap, -gds_n, -(gm_n + gds_n))
    ids = np.where(swap, -ids_n, ids_n)

    # Un-mirror: ids_actual = pol * ids(primed); d/dv = pol * d/dv' * pol = d/dv'.
    return pol * ids, did_dvd, did_dvg, did_dvs


def companion_rhs(rhs: np.ndarray, cap_i: np.ndarray, cap_j: np.ndarray,
                  ieq: np.ndarray) -> np.ndarray:
    """Scatter capacitor companion currents onto a scalar rhs, in place.

    ``rhs[i] += ieq``, ``rhs[j] -= ieq`` per capacitor, skipping ground
    terminals.  The updates interleave exactly like the per-capacitor
    Python loop this replaces (``+i₀, −j₀, +i₁, −j₁, …``) and
    ``np.add.at`` applies them unbuffered in that order, so shared
    terminals accumulate in the same sequence — the result is
    bit-identical to the loop.
    """
    n = cap_i.size
    idx = np.empty(2 * n, dtype=np.int64)
    idx[0::2] = cap_i
    idx[1::2] = cap_j
    vals = np.empty(2 * n)
    vals[0::2] = ieq
    vals[1::2] = -ieq
    ok = idx >= 0
    np.add.at(rhs, idx[ok], vals[ok])
    return rhs
