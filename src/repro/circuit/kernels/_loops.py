"""Loop-form kernels: the compiled twins of the NumPy reference path.

Every function here is written in the explicit-loop subset that numba's
``@njit`` compiles — scalar control flow, preallocated output arrays,
``np.linalg.solve`` on contiguous float64 — and is built through
:func:`make_kernels`, which takes the jit decorator as an argument.
``make_kernels(numba.njit(cache=True))`` yields the compiled backend;
``make_kernels(lambda f: f)`` yields plain-Python versions of the *same
code objects*, which is how the test suite verifies these kernels
machine-for-machine against the NumPy engine even on hosts without
numba installed.

Two fused Newton kernels cover the transient hot paths:

``dense_newton``
    The whole damped stacked-Newton solve for small (paper-scale) MNA
    systems: per variant, re-stamp the device Jacobian onto a copy of
    the companion-stamped base matrix, one dense solve, damp, converge.
    Replaces ~5 Python-dispatched array ops per iteration per batch.

``bordered_newton``
    The per-iteration core of the block-bordered structured solve.  The
    key restructuring: with the device fill confined to the border, the
    banded-core sweep ``w1 = B⁻¹·r₁`` and the reduced rhs ``t₀ = r₂ −
    F·w1`` are constant across Newton iterations, so the caller computes
    them once per step (one batched LAPACK ``gbtrs``) and this kernel
    iterates entirely in border-sized arithmetic — device evaluation,
    ``(nb, nb)`` Schur factor, and an ``O(n_core · nb)`` update of the
    full iterate for damping/convergence.  No banded sweep per
    iteration, versus one per iteration on the reference path.

The device model (`mos_eval_one`) mirrors
:func:`repro.circuit.kernels.step_kernels.mos_eval` operation-for-
operation — same smoothing, same strict triode test, same mirror/swap
frames — so both backends agree to float rounding.
"""

from __future__ import annotations

import math
from types import SimpleNamespace

import numpy as np

from .step_kernels import SMOOTH_EPS

__all__ = ["make_kernels", "plain_kernels"]


def make_kernels(decorate):
    """Build the kernel namespace, compiling each function with ``decorate``."""

    @decorate
    def mos_eval_one(vd, vg, vs, pol, beta, vth, lam):
        # Mirror PMOS into the NMOS frame: all voltages negated.
        vdp = pol * vd
        vgp = pol * vg
        vsp = pol * vs
        vds = vdp - vsp
        swap = vds < 0.0
        # In the swapped frame the physical source is the drain terminal.
        if swap:
            vgs_n = vgp - vdp
            vds_n = -vds
        else:
            vgs_n = vgp - vsp
            vds_n = vds
        vgst = vgs_n - vth
        root = math.sqrt(vgst * vgst + 4.0 * SMOOTH_EPS * SMOOTH_EPS)
        vov = 0.5 * (vgst + root)          # smooth max(vgst, 0)
        dvov = 0.5 * (1.0 + vgst / root)   # its derivative w.r.t. vgs
        if vds_n < vov:                    # triode (strict, as reference)
            id0 = beta * (vov * vds_n - 0.5 * vds_n * vds_n)
            did_dvov = beta * vds_n
            did_dvds0 = beta * (vov - vds_n)
        else:                              # saturation
            id0 = 0.5 * beta * vov * vov
            did_dvov = beta * vov
            did_dvds0 = 0.0
        clm = 1.0 + lam * vds_n
        ids_n = id0 * clm
        gm_n = did_dvov * dvov * clm
        gds_n = did_dvds0 * clm + id0 * lam
        if swap:
            gd = gm_n + gds_n
            gg = -gm_n
            gs = -gds_n
            ids = -ids_n
        else:
            gd = gds_n
            gg = gm_n
            gs = -(gm_n + gds_n)
            ids = ids_n
        return pol * ids, gd, gg, gs

    @decorate
    def mos_eval_flat(vd, vg, vs, pol, beta, vth, lam,
                      ids, gd, gg, gs):
        """Elementwise device evaluation over flat 1-D arrays."""
        for k in range(vd.shape[0]):
            ids[k], gd[k], gg[k], gs[k] = mos_eval_one(
                vd[k], vg[k], vs[k], pol[k], beta[k], vth[k], lam[k])

    @decorate
    def dense_newton(a_base, rhs_base, x0, n_nodes,
                     d, g, s, pol, beta, vth, lam,
                     abstol, max_iter, v_limit, require_unlimited):
        """Fused damped Newton over stacked variants; dense refactorize.

        Per-variant iteration sequences match the stacked reference loop
        (converged variants freeze; iteration count is the number of
        joint iterations, i.e. the worst variant's count).  Returns
        ``(x, converged, iters)``.
        """
        B = x0.shape[0]
        n = x0.shape[1]
        ndev = d.shape[0]
        x = x0.copy()
        converged = np.zeros(B, np.bool_)
        iters = 0
        a = np.empty((n, n))
        rhs = np.empty((n, 1))
        for _ in range(max_iter):
            active = 0
            for b in range(B):
                if converged[b]:
                    continue
                active += 1
                a[:, :] = a_base
                for i in range(n):
                    rhs[i, 0] = rhs_base[b, i]
                for k in range(ndev):
                    dk = d[k]
                    gk = g[k]
                    sk = s[k]
                    vd = x[b, dk] if dk >= 0 else 0.0
                    vg = x[b, gk] if gk >= 0 else 0.0
                    vs = x[b, sk] if sk >= 0 else 0.0
                    ids, gdd, gdg, gds = mos_eval_one(
                        vd, vg, vs, pol[k], beta[k], vth[k], lam[k])
                    ieq = gdd * vd + gdg * vg + gds * vs - ids
                    if dk >= 0:
                        a[dk, dk] += gdd
                        if gk >= 0:
                            a[dk, gk] += gdg
                        if sk >= 0:
                            a[dk, sk] += gds
                        rhs[dk, 0] += ieq
                    if sk >= 0:
                        if dk >= 0:
                            a[sk, dk] -= gdd
                        if gk >= 0:
                            a[sk, gk] -= gdg
                        a[sk, sk] -= gds
                        rhs[sk, 0] -= ieq
                xn = np.linalg.solve(a, rhs)
                worst = 0.0
                for i in range(n_nodes):
                    dv = abs(xn[i, 0] - x[b, i])
                    if dv > worst:
                        worst = dv
                limited = worst > v_limit
                scale = v_limit / worst if limited else 1.0
                for i in range(n):
                    x[b, i] += (xn[i, 0] - x[b, i]) * scale
                if worst < abstol and not (require_unlimited and limited):
                    converged[b] = True
            if active == 0:
                break
            iters += 1
        return x, converged, iters

    @decorate
    def banded_trs(lu, ipiv, kl, ku, b):
        """LAPACK ``dgbtrs('N')`` substitution over ``gbtrf`` factors.

        ``lu`` is the ``(2·kl+ku+1, n)`` banded factor array, ``ipiv``
        the pivot vector *as scipy returns it* (0-based — scipy's
        ``dgbtrf`` wrapper shifts LAPACK's 1-based indices); ``b`` is
        ``(n, nrhs)``, overwritten with the solution.
        """
        n = b.shape[0]
        nrhs = b.shape[1]
        if kl > 0:
            # L-solve: interchanges then rank-1 band updates, per column.
            for j in range(n - 1):
                lm = kl if kl < n - 1 - j else n - 1 - j
                piv = ipiv[j]
                if piv != j:
                    for r in range(nrhs):
                        tmp = b[piv, r]
                        b[piv, r] = b[j, r]
                        b[j, r] = tmp
                for i in range(lm):
                    mult = lu[kl + ku + 1 + i, j]
                    if mult != 0.0:
                        for r in range(nrhs):
                            b[j + 1 + i, r] -= mult * b[j, r]
        # U-solve: banded back substitution (U bandwidth kl+ku with fill).
        for j in range(n - 1, -1, -1):
            inv = 1.0 / lu[kl + ku, j]
            lo = j - kl - ku
            if lo < 0:
                lo = 0
            for r in range(nrhs):
                xj = b[j, r] * inv
                b[j, r] = xj
                if xj != 0.0:
                    for i in range(lo, j):
                        b[i, r] -= lu[kl + ku + i - j, j] * xj
        return b

    @decorate
    def bordered_newton(w1, t0, x0, core, border, y, s0, lookup,
                        d, g, s, pol, beta, vth, lam,
                        n_nodes, abstol, max_iter, v_limit,
                        require_unlimited):
        """Fused bordered Newton iterations in border-sized arithmetic.

        ``w1`` ``(B, n_core)`` and ``t0`` ``(B, nb)`` are the
        iteration-constant core solve and reduced rhs (computed once per
        step by the caller); every Newton update is then fully
        determined by the border solution ``z₂`` of ``(S₀+ΔC)·z₂ = t₀ +
        Δr₂``, with the full iterate reconstructed as ``x[core] = w1 −
        Y·z₂`` for damping and convergence.  Returns
        ``(x, converged, iters)``.
        """
        B = x0.shape[0]
        n = x0.shape[1]
        nc = core.shape[0]
        nb = border.shape[0]
        ndev = d.shape[0]
        x = x0.copy()
        converged = np.zeros(B, np.bool_)
        iters = 0
        sm = np.empty((nb, nb))
        t = np.empty((nb, 1))
        xn = np.empty(n)
        for b in range(B):
            itb = 0
            while itb < max_iter:
                itb += 1
                sm[:, :] = s0
                for i in range(nb):
                    t[i, 0] = t0[b, i]
                for k in range(ndev):
                    dk = d[k]
                    gk = g[k]
                    sk = s[k]
                    vd = x[b, dk] if dk >= 0 else 0.0
                    vg = x[b, gk] if gk >= 0 else 0.0
                    vs = x[b, sk] if sk >= 0 else 0.0
                    ids, gdd, gdg, gds = mos_eval_one(
                        vd, vg, vs, pol[k], beta[k], vth[k], lam[k])
                    ieq = gdd * vd + gdg * vg + gds * vs - ids
                    rd = lookup[dk] if dk >= 0 else -1
                    rg = lookup[gk] if gk >= 0 else -1
                    rs = lookup[sk] if sk >= 0 else -1
                    if rd >= 0:
                        sm[rd, rd] += gdd
                        if rg >= 0:
                            sm[rd, rg] += gdg
                        if rs >= 0:
                            sm[rd, rs] += gds
                        t[rd, 0] += ieq
                    if rs >= 0:
                        if rd >= 0:
                            sm[rs, rd] -= gdd
                        if rg >= 0:
                            sm[rs, rg] -= gdg
                        sm[rs, rs] -= gds
                        t[rs, 0] -= ieq
                z2 = np.linalg.solve(sm, t)
                for i in range(nc):
                    acc = 0.0
                    for jj in range(nb):
                        acc += y[i, jj] * z2[jj, 0]
                    xn[core[i]] = w1[b, i] - acc
                for i in range(nb):
                    xn[border[i]] = z2[i, 0]
                worst = 0.0
                for i in range(n_nodes):
                    dv = abs(xn[i] - x[b, i])
                    if dv > worst:
                        worst = dv
                limited = worst > v_limit
                scale = v_limit / worst if limited else 1.0
                for i in range(n):
                    x[b, i] += (xn[i] - x[b, i]) * scale
                if worst < abstol and not (require_unlimited and limited):
                    converged[b] = True
                    break
            if itb > iters:
                iters = itb
        return x, converged, iters

    return SimpleNamespace(
        mos_eval_one=mos_eval_one,
        mos_eval_flat=mos_eval_flat,
        dense_newton=dense_newton,
        banded_trs=banded_trs,
        bordered_newton=bordered_newton,
    )


_PLAIN = None


def plain_kernels():
    """The un-jitted kernel namespace (shared, built on first use)."""
    global _PLAIN
    if _PLAIN is None:
        _PLAIN = make_kernels(lambda f: f)
    return _PLAIN
