"""Kernel-backend registry: NumPy reference vs numba-compiled loops.

A :class:`KernelBackend` names an execution strategy for the hot-loop
kernels.  The ``numpy`` backend carries no function table — the engines'
vectorised reference path *is* the NumPy implementation — while the
``numba`` backend carries the compiled namespace of :mod:`._loops` and
the engines dispatch their fused Newton solves through it.

Resolution order for the process-wide default:

1. :func:`set_default_kernel` (tests, embedding programs,
   ``ExecutionConfig``);
2. the ``REPRO_KERNEL`` environment variable (``auto``/``numpy``/
   ``numba``);
3. ``auto`` — numba when importable, NumPy otherwise.

Requesting ``numba`` on a host without numba degrades to NumPy (with a
one-time warning) instead of failing: the backends are numerically
equivalent, so availability is a performance concern, never a
correctness one.  For the same reason the kernel choice must never
enter result-store keys.
"""

from __future__ import annotations

import importlib.util
import warnings

import numpy as np

from ..._knobs import knob
from ..._util import require
from . import _loops
from .step_kernels import DeviceArrays

__all__ = ["HAVE_NUMBA", "KernelBackend", "available_kernels",
           "resolve_kernel", "set_default_kernel"]

def _probe_numba() -> bool:
    """Whether numba is importable, probed without the multi-second
    ``import numba``.  A raising finder (or a broken install) counts as
    absent — availability is a performance question, so the probe must
    never take the import down."""
    try:
        return importlib.util.find_spec("numba") is not None
    # reprolint: silent-fallback(the probe's job is to report availability — HAVE_NUMBA=False is the visible, tested outcome, and resolve_kernel warns when numba was explicitly requested)
    except Exception:
        return False


#: Whether the optional numba dependency is importable.
HAVE_NUMBA = _probe_numba()

KERNEL_NAMES = ("auto", "numpy", "numba")


class KernelBackend:
    """One named kernel execution strategy.

    ``loops`` is ``None`` for the NumPy reference backend (engines keep
    their vectorised path) or a namespace of compiled loop kernels from
    :func:`._loops.make_kernels`; :attr:`fused` tells the engines
    whether fused Newton dispatch is available.  The wrapper methods
    normalise dtypes/contiguity at the seam so the kernels always see
    contiguous float64/int64 arrays — the same contract a device-array
    backend would enforce with host-to-device copies.
    """

    def __init__(self, name: str, loops=None):
        self.name = name
        self.loops = loops

    @property
    def fused(self) -> bool:
        return self.loops is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KernelBackend({self.name!r}, fused={self.fused})"

    def newton_dense(self, dev: DeviceArrays, a_base: np.ndarray,
                     rhs_base: np.ndarray, x0: np.ndarray, n_nodes: int,
                     abstol: float, max_iter: int, v_limit: float,
                     require_unlimited: bool):
        """Fused stacked dense Newton; ``(x, converged, iters)``."""
        return self.loops.dense_newton(
            np.ascontiguousarray(a_base), np.ascontiguousarray(rhs_base),
            np.ascontiguousarray(x0), n_nodes,
            dev.d, dev.g, dev.s, dev.pol, dev.beta, dev.vth, dev.lam,
            abstol, max_iter, v_limit, require_unlimited)

    def newton_bordered(self, dev: DeviceArrays, state, w1: np.ndarray,
                        t0: np.ndarray, x0: np.ndarray, n_nodes: int,
                        abstol: float, max_iter: int, v_limit: float,
                        require_unlimited: bool):
        """Fused bordered Newton; ``state`` is a
        :meth:`~repro.circuit.mna.BorderedNewtonStep.flat_state` tuple
        ``(core, border, y, s0, lookup)``."""
        core, border, y, s0, lookup = state
        return self.loops.bordered_newton(
            np.ascontiguousarray(w1), np.ascontiguousarray(t0),
            np.ascontiguousarray(x0), core, border, y, s0, lookup,
            dev.d, dev.g, dev.s, dev.pol, dev.beta, dev.vth, dev.lam,
            n_nodes, abstol, max_iter, v_limit, require_unlimited)


#: The always-available reference backend.
NUMPY_KERNEL = KernelBackend("numpy")

_numba_kernel: KernelBackend | None = None
_warned_missing = False


def _build_numba() -> KernelBackend | None:
    """Compile the loop kernels with numba; ``None`` when unavailable."""
    global _numba_kernel
    if _numba_kernel is not None:
        return _numba_kernel
    if not HAVE_NUMBA:
        return None
    try:
        import numba
    # reprolint: silent-fallback(a broken numba install degrades to the NumPy backend — numerically identical — and resolve_kernel warns when numba was explicitly requested)
    except Exception:  # pragma: no cover - broken install
        return None
    njit = numba.njit(cache=True)
    _numba_kernel = KernelBackend("numba", _loops.make_kernels(njit))
    return _numba_kernel


def available_kernels() -> tuple[str, ...]:
    """Concrete backend names usable in this process."""
    return ("numpy", "numba") if HAVE_NUMBA else ("numpy",)


_DEFAULT: "KernelBackend | str | None" = None


def set_default_kernel(kernel: "KernelBackend | str | None"):
    """Install the process-wide default backend; returns the previous.

    Accepts a name (``auto``/``numpy``/``numba``), a ready
    :class:`KernelBackend` (tests install un-jitted loop backends this
    way), or ``None`` to fall back to the ``REPRO_KERNEL`` environment
    variable.
    """
    global _DEFAULT
    if isinstance(kernel, str):
        require(kernel in KERNEL_NAMES,
                f"unknown kernel backend {kernel!r}; pick from {KERNEL_NAMES}")
    previous = _DEFAULT
    _DEFAULT = kernel
    return previous


def resolve_kernel(name: "KernelBackend | str | None" = None) -> KernelBackend:
    """The concrete backend a kernel request resolves to.

    ``None`` consults the installed default, then the ``REPRO_KERNEL``
    knob (declared in :mod:`repro._knobs`; unknown environment values
    fall back to ``auto`` — leniency is for the environment only, an
    explicit bad ``name`` argument still raises), then ``auto``.
    ``auto`` prefers numba; an explicit ``numba`` request without numba
    installed degrades gracefully to NumPy.
    """
    global _warned_missing
    if name is None:
        name = _DEFAULT if _DEFAULT is not None else knob("REPRO_KERNEL")
    if isinstance(name, KernelBackend):
        return name
    require(name in KERNEL_NAMES,
            f"unknown kernel backend {name!r}; pick from {KERNEL_NAMES}")
    if name == "numpy":
        return NUMPY_KERNEL
    backend = _build_numba()
    if backend is not None:
        return backend
    if name == "numba" and not _warned_missing:
        warnings.warn("REPRO_KERNEL=numba requested but numba is not "
                      "installed; falling back to the NumPy kernels",
                      RuntimeWarning, stacklevel=2)
        _warned_missing = True
    return NUMPY_KERNEL
