"""Flat-array kernels for the transient/Newton hot loops.

The stepping engines of :mod:`repro.circuit.transient` spend their time
in a small set of per-step operations — MOSFET device evaluation,
companion-current accumulation, and the damped Newton inner iteration —
and this package isolates those operations as *kernels over preallocated
contiguous arrays* so the same orchestration code can drive more than
one execution strategy:

``numpy`` (the reference)
    The vectorised NumPy path the engines have always used: broadcast
    stamping, one-hot scatter matmuls, stacked LAPACK solves.  Always
    available, bit-compatible with the pre-kernel engine.

``numba`` (the CPU fast path)
    Fused ``@njit`` loop kernels (:mod:`._loops`) that run a whole
    Newton solve — device evaluation, Jacobian stamping, linear solve,
    damping, convergence — in one compiled call per step, with no
    per-iteration Python dispatch.  Optional: when numba is not
    installed the registry silently resolves to ``numpy``.

The split mirrors the device-array seam a GPU backend needs: kernels
receive plain index/coefficient arrays (:class:`~.step_kernels
.DeviceArrays`, banded LU factors, bordered Schur blocks), never
``MnaSystem`` objects, so a CuPy port is an array-registration exercise,
not an engine rewrite.

Backend choice is process-global (``REPRO_KERNEL=auto|numpy|numba``,
:func:`~.backend.set_default_kernel`) and deliberately *not* part of
``TransientOptions``: backends are numerically equivalent (<1e-9 V), so
the kernel must never enter result-store keys.
"""

from .backend import (HAVE_NUMBA, KernelBackend, available_kernels,
                      resolve_kernel, set_default_kernel)
from .step_kernels import DeviceArrays, mos_eval

__all__ = ["DeviceArrays", "HAVE_NUMBA", "KernelBackend",
           "available_kernels", "mos_eval", "resolve_kernel",
           "set_default_kernel"]
