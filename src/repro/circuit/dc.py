"""DC operating-point analysis — scalar and batched.

Solves the nonlinear resistive network (capacitors open) with damped
Newton–Raphson.  Robustness comes from *gmin stepping*: when plain Newton
fails, a large leak conductance to ground is added and progressively
relaxed, each stage warm-starting the next — the standard SPICE fallback,
which handles inverter chains with ill-conditioned intermediate states.
Each stage is solved exactly once; the final stage removes the leak
(``gmin = 0``), so the returned operating point is always that of the
unmodified network.

:func:`dc_operating_point_batch` applies the transient engine's stacked
treatment to initial states: all variants of one topology (identical
structure, different source values) advance through a single batched
Newton loop, and MOSFET-free stacks collapse to one structured linear
solve against ``B`` right-hand sides using the backend selected from the
topology's sparsity pattern (see :mod:`repro.circuit.solvers`).  Variants
the batched pass cannot converge fall back, individually, to the scalar
gmin-stepping path.

Large MOSFET networks run their Newton iterations through the
pattern-frozen sparse kernel
(:meth:`~repro.circuit.mna.MnaSystem.sparse_newton_step`): the Jacobian
pattern is frozen per topology, each iteration (and each gmin stage)
updates only the nnz data vector and pays a numeric SuperLU
refactorization.  The bordered-banded transient kernel is deliberately
not used here — gmin stepping would re-factor its banded core once per
stage for no gain at DC's solve counts.

Operating points are memoisable: :func:`set_dc_memo` installs a
process-wide content-keyed memo (the execution layer wires the on-disk
:class:`~repro.exec.store.ResultStore` through it), and
:func:`dc_operating_point` / :func:`dc_operating_point_batch` consult it
before running Newton — warm characterisation and glitch sweeps perform
zero DC Newton solves.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from .._util import require
from .kernels.backend import resolve_kernel
from .mna import MnaSystem, stacked_newton
from .netlist import Circuit
from .solvers import factorize, select_backend

__all__ = ["DcResult", "dc_operating_point", "dc_operating_point_batch",
           "DcConvergenceError", "set_dc_memo"]

#: gmin-stepping schedule: heavy leak first, relaxed to the exact system.
GMIN_STAGES = (1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8, 0.0)

#: Process-wide DC operating-point memo (see :func:`set_dc_memo`).
_DC_MEMO = None


def set_dc_memo(memo):
    """Install a process-wide DC operating-point memoiser; returns the
    previous one (``None`` uninstalls).

    The hook decouples the circuit layer from the execution layer: the
    execution config (:mod:`repro.exec.config`) installs a
    ResultStore-backed memo whenever a store is configured, and the DC
    solvers consult it before running Newton.  The memo contract is
    ``key(circuit, mna, at_time, seed) -> str | None`` (``None`` =
    uncacheable), ``lookup(key, mna) -> np.ndarray | None`` and
    ``store(key, solution)`` (which must swallow persistence failures).
    """
    global _DC_MEMO
    previous = _DC_MEMO
    _DC_MEMO = memo
    return previous


def _sparse_dc(mna: MnaSystem, requested: str) -> bool:
    """Whether a MOSFET DC Newton should use the pattern-frozen kernel.

    Resolved through the shared :func:`select_backend` rules against the
    DC (capacitor-free) pattern; both structured names map to the sparse
    kernel here (see the module docstring).
    """
    if mna.n_mosfets == 0:
        return False
    structure = mna.structure(include_caps=False) \
        if requested == "auto" else None
    return select_backend(structure, mna.n_mosfets, requested) != "dense"


class DcConvergenceError(RuntimeError):
    """Raised when no operating point is found even with gmin stepping."""


@dataclass(frozen=True)
class DcResult:
    """Operating point: the raw MNA solution plus name-based access."""

    solution: np.ndarray
    node_names: tuple[str, ...]

    @cached_property
    def _name_index(self) -> dict[str, int]:
        # Built on first name lookup; repeated voltage() calls are O(1)
        # instead of an O(n) list scan per call.
        return {name: i for i, name in enumerate(self.node_names)}

    def voltage(self, node: str) -> float:
        """Voltage at ``node`` (0 for ground).

        Raises
        ------
        KeyError
            For a node name absent from the solved circuit (the error
            names the offending node).
        """
        if node == "0":
            return 0.0
        try:
            idx = self._name_index[node]
        except KeyError:
            raise KeyError(
                f"unknown node {node!r}; circuit nodes are "
                f"{list(self.node_names)}") from None
        return float(self.solution[idx])

    def voltages(self) -> dict[str, float]:
        """All node voltages as a dict."""
        return {name: float(self.solution[i]) for i, name in enumerate(self.node_names)}


def _newton_dc(
    mna: MnaSystem,
    extra_gmin: float,
    rhs_src: np.ndarray,
    x0: np.ndarray,
    abstol: float = 1e-9,
    max_iter: int = 200,
    v_limit: float = 0.4,
    sparse: bool = False,
) -> np.ndarray | None:
    """Damped Newton for the resistive network; ``None`` on failure.

    ``extra_gmin`` adds a leak conductance to ground on every node
    diagonal — the gmin-stepping knob.  MOSFET-free networks are linear,
    so a single (leaked) solve is *exact*: the early return below stamps
    the same ``extra_gmin`` the iterative path would, and honours the
    same ``None``-on-failure contract when the matrix is singular.

    ``sparse`` runs the iterations through the pattern-frozen sparse
    kernel (the gmin leak lands on the frozen diagonal positions, so
    every stage shares one symbolic pattern); a singular structured
    refactorization falls back to the dense path mid-solve.
    """
    a_base = mna.g_lin.copy()
    for i in range(mna.n_nodes):
        a_base[i, i] += extra_gmin
    x = x0.copy()
    if mna.n_mosfets == 0:
        try:
            return np.linalg.solve(a_base, rhs_src)
        except np.linalg.LinAlgError:
            return None
    kernel = mna.sparse_newton_step(extra_gmin=extra_gmin) if sparse else None
    for _ in range(max_iter):
        x_new = None
        if kernel is not None:
            try:
                x_new = kernel.solve(rhs_src, x)
            except np.linalg.LinAlgError:
                kernel = None
        if x_new is None:
            a = a_base.copy()
            rhs = rhs_src.copy()
            mna.stamp_mosfets(a, rhs, x)
            try:
                x_new = np.linalg.solve(a, rhs)
            except np.linalg.LinAlgError:
                return None
        dx = x_new - x
        dv = dx[: mna.n_nodes]
        worst = float(np.max(np.abs(dv))) if dv.size else 0.0
        if worst > v_limit:
            dx = dx * (v_limit / worst)
        x = x + dx
        if worst < abstol:
            return x
    return None


def _gmin_stepping(sys_: MnaSystem, rhs: np.ndarray, x0: np.ndarray,
                   circuit_name: str, sparse: bool = False) -> np.ndarray:
    """Walk the gmin schedule, solving each stage exactly once.

    Every successful stage warm-starts the next; the final ``gmin = 0``
    stage's solution is returned directly (no redundant re-solve).  When
    an intermediate stage fails, one *skip-ahead* solve jumps straight to
    ``gmin = 0`` from the last successful stage — the remaining
    relaxation stages are skipped, never retried.  Failures raise
    :class:`DcConvergenceError` naming the stage that failed.
    """
    n_stages = len(GMIN_STAGES)
    for k, gmin in enumerate(GMIN_STAGES):
        x = _newton_dc(sys_, gmin, rhs, x0, sparse=sparse)
        if x is not None:
            x0 = x
            continue
        stage = f"gmin stage {k + 1}/{n_stages} (gmin={gmin:g})"
        if k == 0:
            # No leaked solution exists yet and the plain solve already
            # failed from this very seed — retrying it would be a no-op.
            raise DcConvergenceError(
                f"no DC operating point found for circuit {circuit_name!r}: "
                f"plain Newton failed and gmin stepping failed at its first "
                f"{stage}")
        if gmin == 0.0:
            raise DcConvergenceError(
                f"no DC operating point found for circuit {circuit_name!r}: "
                f"gmin stepping failed at its final {stage}")
        x = _newton_dc(sys_, 0.0, rhs, x0, sparse=sparse)
        if x is None:
            raise DcConvergenceError(
                f"no DC operating point found for circuit {circuit_name!r}: "
                f"gmin stepping failed at {stage} and the direct gmin=0 "
                f"solve from the last successful stage also failed")
        return x
    return x0


def dc_operating_point(
    circuit: Circuit,
    at_time: float = 0.0,
    initial_voltages: dict[str, float] | None = None,
    mna: MnaSystem | None = None,
    backend: str = "auto",
) -> DcResult:
    """Find the DC operating point with sources evaluated at ``at_time``.

    Parameters
    ----------
    circuit:
        The netlist (capacitors are ignored in DC).
    at_time:
        Time at which time-varying sources are sampled.
    initial_voltages:
        Optional Newton seed, node → volts.  Knowing the logic state of a
        digital circuit makes convergence immediate.
    mna:
        Pre-compiled system (avoids recompilation inside the transient
        driver).
    backend:
        Solver backend request (``"auto"``/``"dense"``/``"sparse"``/
        ``"banded"``): large MOSFET networks run their Newton iterations
        through the pattern-frozen sparse kernel (see the module
        docstring); never part of the memo key — every backend computes
        the same operating point.

    Raises
    ------
    DcConvergenceError
        When Newton fails at every gmin-stepping stage; the message names
        the stage that failed.
    """
    sys_ = mna or MnaSystem(circuit)
    # Only nonlinear solves are worth a disk entry: a MOSFET-free DC
    # "solve" is one linear factorization, cheaper than the lookup.
    memo = _DC_MEMO if sys_.n_mosfets > 0 else None
    key = None
    if memo is not None:
        key = memo.key(circuit, sys_, at_time, initial_voltages)
        if key is not None:
            cached = memo.lookup(key, sys_)
            if cached is not None:
                return DcResult(solution=cached,
                                node_names=tuple(sys_.node_names))
    rhs = sys_.source_rhs(at_time)
    x0 = sys_.seed_vector(initial_voltages)
    sparse = _sparse_dc(sys_, backend)

    x = _newton_dc(sys_, 0.0, rhs, x0, sparse=sparse)
    if x is None:
        x = _gmin_stepping(sys_, rhs, x0, circuit.name, sparse=sparse)
    if key is not None:
        memo.store(key, x)
    return DcResult(solution=x, node_names=tuple(sys_.node_names))


def _newton_dc_batch(
    mna: MnaSystem,
    rhs: np.ndarray,
    x0: np.ndarray,
    abstol: float = 1e-9,
    max_iter: int = 200,
    v_limit: float = 0.4,
    kernel=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Stacked damped Newton over ``B`` variants; ``(x, converged)``.

    :func:`~repro.circuit.mna.stacked_newton` with the scalar
    :func:`_newton_dc` convergence and damping tests; converged variants
    are frozen, so each variant reproduces the scalar iteration
    sequence.  A singular stacked solve marks every still-active variant
    unconverged (the per-variant scalar fallback owns the diagnosis).
    ``kernel`` optionally routes the iterations through the
    pattern-frozen sparse operator.

    The kernel backend is threaded through for uniformity, but
    ``catch_singular`` solves always take the reference loop (the
    mid-state contract a fused kernel cannot honour), so the DC batch
    engine is backend-invariant by construction.
    """
    return stacked_newton(mna, mna.g_lin, rhs, x0, abstol=abstol,
                          max_iter=max_iter, v_limit=v_limit,
                          catch_singular=True, kernel=kernel,
                          backend=resolve_kernel())


def dc_operating_point_batch(
    circuits: Sequence[Circuit],
    at_time: float = 0.0,
    initial_voltages: Sequence[Mapping[str, float] | None] | None = None,
    mnas: Sequence[MnaSystem] | None = None,
    backend: str = "auto",
) -> list[DcResult]:
    """Solve the operating points of ``B`` topology-sharing variants at once.

    The batched replacement for looping :func:`dc_operating_point` over
    the variants of one circuit (noise-case sweeps, technique fixtures):
    MOSFET stacks advance through one stacked Newton loop; MOSFET-free
    stacks collapse to a single structured solve of ``g_lin`` against all
    right-hand sides, with the linear-solver backend selected from the
    topology's DC sparsity pattern (shared with the transient engine —
    see :mod:`repro.circuit.solvers`).

    Parameters
    ----------
    circuits:
        The variants; all must share one topology signature (identical
        structure — only source *values* may differ).
    at_time:
        Time at which time-varying sources are sampled.
    initial_voltages:
        Optional per-variant Newton seeds (one mapping or ``None`` per
        circuit).
    mnas:
        Pre-compiled systems, aligned with ``circuits``.
    backend:
        Solver backend request (``"auto"``, ``"dense"``, ``"sparse"``,
        ``"banded"``): selects the structured factorization of
        MOSFET-free stacks, and whether MOSFET stacks iterate through
        the pattern-frozen sparse Newton kernel.

    Returns
    -------
    list[DcResult]
        One operating point per variant, in input order, equivalent to
        the scalar solves.  Variants the batched pass cannot converge are
        retried individually through the scalar gmin-stepping path, so
        failure diagnostics match :func:`dc_operating_point`.
    """
    circuits = list(circuits)
    require(len(circuits) >= 1, "need at least one circuit")
    systems = list(mnas) if mnas is not None else [MnaSystem(c) for c in circuits]
    require(len(systems) == len(circuits), "one MnaSystem per circuit")
    mna0 = systems[0]
    signature = mna0.topology_signature()
    require(all(m.topology_signature() == signature for m in systems[1:]),
            "batched DC requires one shared topology")
    seeds = list(initial_voltages) if initial_voltages is not None \
        else [None] * len(circuits)
    require(len(seeds) == len(circuits), "one seed mapping per circuit")

    batch = len(circuits)
    node_names = tuple(mna0.node_names)
    results: list[DcResult | None] = [None] * batch

    # Linear stacks solve in one factorization — not worth memoising.
    memo = _DC_MEMO if mna0.n_mosfets > 0 else None
    keys: list[str | None] = [None] * batch
    if memo is not None:
        for b in range(batch):
            keys[b] = memo.key(circuits[b], systems[b], at_time, seeds[b])
            if keys[b] is not None:
                cached = memo.lookup(keys[b], systems[b])
                if cached is not None:
                    results[b] = DcResult(solution=cached,
                                          node_names=node_names)
    pending = [b for b in range(batch) if results[b] is None]
    if not pending:
        return results  # type: ignore[return-value]

    rhs = np.stack([systems[b].source_rhs(at_time) for b in pending])
    x0 = np.zeros((len(pending), mna0.size))
    for i, b in enumerate(pending):
        mna0.seed_vector(seeds[b], out=x0[i])

    if mna0.n_mosfets == 0:
        # Linear network: one structured factorization, B exact solves.
        structure = mna0.structure(include_caps=False)
        try:
            solver = factorize(mna0.g_lin,
                               select_backend(structure, 0, backend), structure)
            x = solver.solve(rhs)
            # A singular matrix raises above; the finiteness guard keeps
            # any backend that degrades silently on the scalar-fallback
            # path, whose diagnosis matches dc_operating_point.
            converged = np.isfinite(x).all(axis=1)
        except np.linalg.LinAlgError:
            x = x0
            converged = np.zeros(len(pending), dtype=bool)
    else:
        kernel = mna0.sparse_newton_step() if _sparse_dc(mna0, backend) \
            else None
        x, converged = _newton_dc_batch(mna0, rhs, x0, kernel=kernel)

    for i, b in enumerate(pending):
        if converged[i]:
            results[b] = DcResult(solution=x[i], node_names=node_names)
            if keys[b] is not None:
                memo.store(keys[b], x[i])
        else:
            # The scalar fallback handles its own memoisation.
            results[b] = dc_operating_point(
                circuits[b], at_time=at_time,
                initial_voltages=dict(seeds[b] or {}), mna=systems[b],
                backend=backend)
    return results  # type: ignore[return-value]
