"""DC operating-point analysis.

Solves the nonlinear resistive network (capacitors open) with damped
Newton–Raphson.  Robustness comes from *gmin stepping*: when plain Newton
fails, a large leak conductance to ground is added and progressively
relaxed, each stage warm-starting the next — the standard SPICE fallback,
which handles inverter chains with ill-conditioned intermediate states.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .mna import MnaSystem
from .netlist import Circuit

__all__ = ["DcResult", "dc_operating_point", "DcConvergenceError"]


class DcConvergenceError(RuntimeError):
    """Raised when no operating point is found even with gmin stepping."""


@dataclass(frozen=True)
class DcResult:
    """Operating point: the raw MNA solution plus name-based access."""

    solution: np.ndarray
    node_names: tuple[str, ...]

    def voltage(self, node: str) -> float:
        """Voltage at ``node`` (0 for ground)."""
        if node == "0":
            return 0.0
        return float(self.solution[self.node_names.index(node)])

    def voltages(self) -> dict[str, float]:
        """All node voltages as a dict."""
        return {name: float(self.solution[i]) for i, name in enumerate(self.node_names)}


def _newton_dc(
    mna: MnaSystem,
    extra_gmin: float,
    rhs_src: np.ndarray,
    x0: np.ndarray,
    abstol: float = 1e-9,
    max_iter: int = 200,
    v_limit: float = 0.4,
) -> np.ndarray | None:
    """Damped Newton for the resistive network; ``None`` on failure."""
    a_base = mna.g_lin.copy()
    for i in range(mna.n_nodes):
        a_base[i, i] += extra_gmin
    x = x0.copy()
    if mna.n_mosfets == 0:
        return np.linalg.solve(a_base, rhs_src)
    for _ in range(max_iter):
        a = a_base.copy()
        rhs = rhs_src.copy()
        mna.stamp_mosfets(a, rhs, x)
        try:
            x_new = np.linalg.solve(a, rhs)
        except np.linalg.LinAlgError:
            return None
        dx = x_new - x
        dv = dx[: mna.n_nodes]
        worst = float(np.max(np.abs(dv))) if dv.size else 0.0
        if worst > v_limit:
            dx = dx * (v_limit / worst)
        x = x + dx
        if worst < abstol:
            return x
    return None


def dc_operating_point(
    circuit: Circuit,
    at_time: float = 0.0,
    initial_voltages: dict[str, float] | None = None,
    mna: MnaSystem | None = None,
) -> DcResult:
    """Find the DC operating point with sources evaluated at ``at_time``.

    Parameters
    ----------
    circuit:
        The netlist (capacitors are ignored in DC).
    at_time:
        Time at which time-varying sources are sampled.
    initial_voltages:
        Optional Newton seed, node → volts.  Knowing the logic state of a
        digital circuit makes convergence immediate.
    mna:
        Pre-compiled system (avoids recompilation inside the transient
        driver).

    Raises
    ------
    DcConvergenceError
        When Newton fails at every gmin-stepping stage.
    """
    sys_ = mna or MnaSystem(circuit)
    rhs = sys_.source_rhs(at_time)

    x0 = np.zeros(sys_.size)
    for node, v in (initial_voltages or {}).items():
        idx = sys_.index_of(node)
        if idx >= 0:
            x0[idx] = v

    x = _newton_dc(sys_, 0.0, rhs, x0)
    if x is None:
        # gmin stepping: solve heavily leaked system first, relax leak.
        for gmin in (1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8, 0.0):
            x = _newton_dc(sys_, gmin, rhs, x0)
            if x is None:
                break
            x0 = x
        else:
            x = x0
        if x is None or _newton_dc(sys_, 0.0, rhs, x0) is None:
            raise DcConvergenceError(
                f"no DC operating point found for circuit {circuit.name!r}"
            )
        x = _newton_dc(sys_, 0.0, rhs, x0)
    return DcResult(solution=x, node_names=tuple(sys_.node_names))
