"""DC operating-point analysis — scalar and batched.

Solves the nonlinear resistive network (capacitors open) with damped
Newton–Raphson.  Robustness comes from *gmin stepping*: when plain Newton
fails, a large leak conductance to ground is added and progressively
relaxed, each stage warm-starting the next — the standard SPICE fallback,
which handles inverter chains with ill-conditioned intermediate states.
Each stage is solved exactly once; the final stage removes the leak
(``gmin = 0``), so the returned operating point is always that of the
unmodified network.

:func:`dc_operating_point_batch` applies the transient engine's stacked
treatment to initial states: all variants of one topology (identical
structure, different source values) advance through a single batched
Newton loop, and MOSFET-free stacks collapse to one structured linear
solve against ``B`` right-hand sides using the backend selected from the
topology's sparsity pattern (see :mod:`repro.circuit.solvers`).  Variants
the batched pass cannot converge fall back, individually, to the scalar
gmin-stepping path.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from .._util import require
from .mna import MnaSystem, stacked_newton
from .netlist import Circuit
from .solvers import factorize, select_backend

__all__ = ["DcResult", "dc_operating_point", "dc_operating_point_batch",
           "DcConvergenceError"]

#: gmin-stepping schedule: heavy leak first, relaxed to the exact system.
GMIN_STAGES = (1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8, 0.0)


class DcConvergenceError(RuntimeError):
    """Raised when no operating point is found even with gmin stepping."""


@dataclass(frozen=True)
class DcResult:
    """Operating point: the raw MNA solution plus name-based access."""

    solution: np.ndarray
    node_names: tuple[str, ...]

    @cached_property
    def _name_index(self) -> dict[str, int]:
        # Built on first name lookup; repeated voltage() calls are O(1)
        # instead of an O(n) list scan per call.
        return {name: i for i, name in enumerate(self.node_names)}

    def voltage(self, node: str) -> float:
        """Voltage at ``node`` (0 for ground).

        Raises
        ------
        KeyError
            For a node name absent from the solved circuit (the error
            names the offending node).
        """
        if node == "0":
            return 0.0
        try:
            idx = self._name_index[node]
        except KeyError:
            raise KeyError(
                f"unknown node {node!r}; circuit nodes are "
                f"{list(self.node_names)}") from None
        return float(self.solution[idx])

    def voltages(self) -> dict[str, float]:
        """All node voltages as a dict."""
        return {name: float(self.solution[i]) for i, name in enumerate(self.node_names)}


def _newton_dc(
    mna: MnaSystem,
    extra_gmin: float,
    rhs_src: np.ndarray,
    x0: np.ndarray,
    abstol: float = 1e-9,
    max_iter: int = 200,
    v_limit: float = 0.4,
) -> np.ndarray | None:
    """Damped Newton for the resistive network; ``None`` on failure.

    ``extra_gmin`` adds a leak conductance to ground on every node
    diagonal — the gmin-stepping knob.  MOSFET-free networks are linear,
    so a single (leaked) solve is *exact*: the early return below stamps
    the same ``extra_gmin`` the iterative path would, and honours the
    same ``None``-on-failure contract when the matrix is singular.
    """
    a_base = mna.g_lin.copy()
    for i in range(mna.n_nodes):
        a_base[i, i] += extra_gmin
    x = x0.copy()
    if mna.n_mosfets == 0:
        try:
            return np.linalg.solve(a_base, rhs_src)
        except np.linalg.LinAlgError:
            return None
    for _ in range(max_iter):
        a = a_base.copy()
        rhs = rhs_src.copy()
        mna.stamp_mosfets(a, rhs, x)
        try:
            x_new = np.linalg.solve(a, rhs)
        except np.linalg.LinAlgError:
            return None
        dx = x_new - x
        dv = dx[: mna.n_nodes]
        worst = float(np.max(np.abs(dv))) if dv.size else 0.0
        if worst > v_limit:
            dx = dx * (v_limit / worst)
        x = x + dx
        if worst < abstol:
            return x
    return None


def _gmin_stepping(sys_: MnaSystem, rhs: np.ndarray, x0: np.ndarray,
                   circuit_name: str) -> np.ndarray:
    """Walk the gmin schedule, solving each stage exactly once.

    Every successful stage warm-starts the next; the final ``gmin = 0``
    stage's solution is returned directly (no redundant re-solve).  When
    an intermediate stage fails, one *skip-ahead* solve jumps straight to
    ``gmin = 0`` from the last successful stage — the remaining
    relaxation stages are skipped, never retried.  Failures raise
    :class:`DcConvergenceError` naming the stage that failed.
    """
    n_stages = len(GMIN_STAGES)
    for k, gmin in enumerate(GMIN_STAGES):
        x = _newton_dc(sys_, gmin, rhs, x0)
        if x is not None:
            x0 = x
            continue
        stage = f"gmin stage {k + 1}/{n_stages} (gmin={gmin:g})"
        if k == 0:
            # No leaked solution exists yet and the plain solve already
            # failed from this very seed — retrying it would be a no-op.
            raise DcConvergenceError(
                f"no DC operating point found for circuit {circuit_name!r}: "
                f"plain Newton failed and gmin stepping failed at its first "
                f"{stage}")
        if gmin == 0.0:
            raise DcConvergenceError(
                f"no DC operating point found for circuit {circuit_name!r}: "
                f"gmin stepping failed at its final {stage}")
        x = _newton_dc(sys_, 0.0, rhs, x0)
        if x is None:
            raise DcConvergenceError(
                f"no DC operating point found for circuit {circuit_name!r}: "
                f"gmin stepping failed at {stage} and the direct gmin=0 "
                f"solve from the last successful stage also failed")
        return x
    return x0


def dc_operating_point(
    circuit: Circuit,
    at_time: float = 0.0,
    initial_voltages: dict[str, float] | None = None,
    mna: MnaSystem | None = None,
) -> DcResult:
    """Find the DC operating point with sources evaluated at ``at_time``.

    Parameters
    ----------
    circuit:
        The netlist (capacitors are ignored in DC).
    at_time:
        Time at which time-varying sources are sampled.
    initial_voltages:
        Optional Newton seed, node → volts.  Knowing the logic state of a
        digital circuit makes convergence immediate.
    mna:
        Pre-compiled system (avoids recompilation inside the transient
        driver).

    Raises
    ------
    DcConvergenceError
        When Newton fails at every gmin-stepping stage; the message names
        the stage that failed.
    """
    sys_ = mna or MnaSystem(circuit)
    rhs = sys_.source_rhs(at_time)
    x0 = sys_.seed_vector(initial_voltages)

    x = _newton_dc(sys_, 0.0, rhs, x0)
    if x is None:
        x = _gmin_stepping(sys_, rhs, x0, circuit.name)
    return DcResult(solution=x, node_names=tuple(sys_.node_names))


def _newton_dc_batch(
    mna: MnaSystem,
    rhs: np.ndarray,
    x0: np.ndarray,
    abstol: float = 1e-9,
    max_iter: int = 200,
    v_limit: float = 0.4,
) -> tuple[np.ndarray, np.ndarray]:
    """Stacked damped Newton over ``B`` variants; ``(x, converged)``.

    :func:`~repro.circuit.mna.stacked_newton` with the scalar
    :func:`_newton_dc` convergence and damping tests; converged variants
    are frozen, so each variant reproduces the scalar iteration
    sequence.  A singular stacked solve marks every still-active variant
    unconverged (the per-variant scalar fallback owns the diagnosis).
    """
    return stacked_newton(mna, mna.g_lin, rhs, x0, abstol=abstol,
                          max_iter=max_iter, v_limit=v_limit,
                          catch_singular=True)


def dc_operating_point_batch(
    circuits: Sequence[Circuit],
    at_time: float = 0.0,
    initial_voltages: Sequence[Mapping[str, float] | None] | None = None,
    mnas: Sequence[MnaSystem] | None = None,
    backend: str = "auto",
) -> list[DcResult]:
    """Solve the operating points of ``B`` topology-sharing variants at once.

    The batched replacement for looping :func:`dc_operating_point` over
    the variants of one circuit (noise-case sweeps, technique fixtures):
    MOSFET stacks advance through one stacked Newton loop; MOSFET-free
    stacks collapse to a single structured solve of ``g_lin`` against all
    right-hand sides, with the linear-solver backend selected from the
    topology's DC sparsity pattern (shared with the transient engine —
    see :mod:`repro.circuit.solvers`).

    Parameters
    ----------
    circuits:
        The variants; all must share one topology signature (identical
        structure — only source *values* may differ).
    at_time:
        Time at which time-varying sources are sampled.
    initial_voltages:
        Optional per-variant Newton seeds (one mapping or ``None`` per
        circuit).
    mnas:
        Pre-compiled systems, aligned with ``circuits``.
    backend:
        Solver backend request (``"auto"``, ``"dense"``, ``"sparse"``,
        ``"banded"``); used on the MOSFET-free path.

    Returns
    -------
    list[DcResult]
        One operating point per variant, in input order, equivalent to
        the scalar solves.  Variants the batched pass cannot converge are
        retried individually through the scalar gmin-stepping path, so
        failure diagnostics match :func:`dc_operating_point`.
    """
    circuits = list(circuits)
    require(len(circuits) >= 1, "need at least one circuit")
    systems = list(mnas) if mnas is not None else [MnaSystem(c) for c in circuits]
    require(len(systems) == len(circuits), "one MnaSystem per circuit")
    mna0 = systems[0]
    signature = mna0.topology_signature()
    require(all(m.topology_signature() == signature for m in systems[1:]),
            "batched DC requires one shared topology")
    seeds = list(initial_voltages) if initial_voltages is not None \
        else [None] * len(circuits)
    require(len(seeds) == len(circuits), "one seed mapping per circuit")

    batch = len(circuits)
    rhs = np.stack([m.source_rhs(at_time) for m in systems])
    x0 = np.zeros((batch, mna0.size))
    for b, seed in enumerate(seeds):
        mna0.seed_vector(seed, out=x0[b])

    if mna0.n_mosfets == 0:
        # Linear network: one structured factorization, B exact solves.
        structure = mna0.structure(include_caps=False)
        try:
            solver = factorize(mna0.g_lin,
                               select_backend(structure, 0, backend), structure)
            x = solver.solve(rhs)
            # A singular matrix raises above; the finiteness guard keeps
            # any backend that degrades silently on the scalar-fallback
            # path, whose diagnosis matches dc_operating_point.
            converged = np.isfinite(x).all(axis=1)
        except np.linalg.LinAlgError:
            x = x0
            converged = np.zeros(batch, dtype=bool)
    else:
        x, converged = _newton_dc_batch(mna0, rhs, x0)

    results: list[DcResult] = []
    node_names = tuple(mna0.node_names)
    for b in range(batch):
        if converged[b]:
            results.append(DcResult(solution=x[b], node_names=node_names))
        else:
            results.append(dc_operating_point(
                circuits[b], at_time=at_time,
                initial_voltages=dict(seeds[b] or {}), mna=systems[b]))
    return results
