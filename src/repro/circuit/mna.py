"""Modified nodal analysis (MNA) assembly.

The unknown vector is ``x = [node voltages | voltage-source branch
currents]``.  :class:`MnaSystem` compiles a :class:`~repro.circuit.netlist.Circuit`
into the constant matrices and per-device arrays the analyses need:

* ``g_lin`` — conductances of resistors, voltage-source incidence rows and
  a small ``gmin`` to ground on every node diagonal,
* ``cap_*`` — capacitor terminal indices and values (companion models are
  applied by the transient analysis, which owns the time step),
* MOSFET terminal-index and parameter arrays for vectorised evaluation.

Ground is index ``-1`` throughout; stamping helpers skip it.
"""

from __future__ import annotations

import numpy as np

from collections import OrderedDict
from collections.abc import Mapping
from dataclasses import dataclass, field
from time import perf_counter

from .._util import require
from .kernels.step_kernels import DeviceArrays
from .mosfet import mosfet_eval
from .netlist import GROUND, Circuit
from .solvers import (HAVE_SCIPY, BorderedBanded, MatrixStructure,
                      PatternFrozenLu, _BANDED_MAX_BANDWIDTH, _MAX_BORDER,
                      _MIN_STRUCTURED_SIZE, analyze_pattern)

__all__ = ["MnaSystem", "stacked_newton", "SparseStampMaps",
           "NewtonPartition", "SparseNewtonStep", "BorderedNewtonStep",
           "clear_analysis_cache"]

#: Conductance to ground added on every node diagonal for matrix robustness.
DEFAULT_GMIN = 1e-9


# ----------------------------------------------------------------------
# Per-topology analysis cache
# ----------------------------------------------------------------------
#: Analysis products that depend only on the topology signature — pattern
#: structures (RCM included), sparse stamp maps, Newton core/border
#: partitions — shared across :class:`MnaSystem` instances.  Wide
#: experiment fronts compile one system per job; without this cache every
#: instance re-derived its O(n²)-ish pattern analysis inside
#: ``_StepMatrixCache.__init__``, once per job instead of once per
#: topology.  Bounded LRU.
_ANALYSIS_CACHE: "OrderedDict[tuple, _TopologyAnalysis]" = OrderedDict()
_ANALYSIS_CACHE_ENTRIES = 128

#: Sentinel: "not computed yet" (``None`` is a valid partition result).
_UNCOMPUTED = object()


class _TopologyAnalysis:
    """Lazily filled per-topology analysis slot."""

    __slots__ = ("structures", "maps", "partition")

    def __init__(self):
        self.structures: dict[bool, MatrixStructure] = {}
        self.maps: "SparseStampMaps | None" = None
        self.partition = _UNCOMPUTED


def _analysis_for(signature: tuple) -> _TopologyAnalysis:
    entry = _ANALYSIS_CACHE.get(signature)
    if entry is None:
        entry = _TopologyAnalysis()
        _ANALYSIS_CACHE[signature] = entry
        while len(_ANALYSIS_CACHE) > _ANALYSIS_CACHE_ENTRIES:
            _ANALYSIS_CACHE.popitem(last=False)
    else:
        _ANALYSIS_CACHE.move_to_end(signature)
    return entry


def clear_analysis_cache() -> None:
    """Drop every cached per-topology analysis (test isolation hook)."""
    _ANALYSIS_CACHE.clear()


@dataclass(frozen=True)
class SparseStampMaps:
    """Frozen CSC pattern plus O(nnz) scatter maps for one topology.

    The pattern is the union of every value the assembled system can
    ever hold — linear stamps (``g_lin``), node diagonals (gmin
    stepping), capacitor companion positions and MOSFET Jacobian fill —
    so it is fixed across time steps, Newton iterations and gmin stages;
    only the ``data`` vector changes.  The index maps let each producer
    stamp straight into a preallocated nnz vector:

    ``lin_data``
        ``g_lin`` scattered onto the pattern (the constant base).
    ``diag_pos``
        Data positions of the node diagonals (``extra_gmin`` stepping).
    ``cap_pos`` / ``cap_sign`` / ``cap_idx``
        One entry per capacitor stamp position: ``data[cap_pos] +=
        cap_sign · geq[cap_idx]`` applies the trapezoidal companion
        conductances for any step size (``np.add.at`` — shared-node
        capacitors hit duplicate positions).
    ``mos_pos`` / ``mos_pos_uniq``
        Data positions of the device Jacobian entries, aligned with the
        scalar scatter layout (``MnaSystem._mos_flat``) and with the
        deduplicated batch layout (``MnaSystem._mos_flat_uniq``).
    """

    size: int
    indptr: np.ndarray = field(repr=False)
    indices: np.ndarray = field(repr=False)
    lin_data: np.ndarray = field(repr=False)
    diag_pos: np.ndarray = field(repr=False)
    cap_pos: np.ndarray = field(repr=False)
    cap_sign: np.ndarray = field(repr=False)
    cap_idx: np.ndarray = field(repr=False)
    mos_pos: np.ndarray = field(repr=False)
    mos_pos_uniq: np.ndarray = field(repr=False)

    @property
    def nnz(self) -> int:
        """Structural nonzero count of the frozen pattern."""
        return int(self.indices.size)


@dataclass(frozen=True)
class NewtonPartition:
    """Core/border split of a MOSFET system for the bordered kernel.

    ``border`` holds the MNA indices every MOSFET Jacobian entry can
    touch (device terminal nodes, plus voltage-source branch rows whose
    every non-ground terminal is such a node — leaving them in the core
    would give the core a structurally zero row); ``core`` is the rest,
    with ``core_structure`` its own RCM pattern analysis.
    """

    border: np.ndarray = field(repr=False)
    core: np.ndarray = field(repr=False)
    core_structure: MatrixStructure = field(repr=False)


class MnaSystem:
    """Compiled MNA view of a circuit.

    Parameters
    ----------
    circuit:
        The netlist to compile.
    gmin:
        Leak conductance to ground on every node (default ``1e-9`` S).
    """

    def __init__(self, circuit: Circuit, gmin: float = DEFAULT_GMIN):
        require(gmin >= 0.0, "gmin must be non-negative")
        self.circuit = circuit
        self.gmin = gmin
        self._signature: tuple | None = None
        self._analysis_entry: _TopologyAnalysis | None = None
        self.node_names = list(circuit.nodes)
        self.node_index = {name: i for i, name in enumerate(self.node_names)}
        self.n_nodes = len(self.node_names)
        self.n_branches = len(circuit.vsources)
        self.size = self.n_nodes + self.n_branches
        require(self.size > 0, "empty circuit")
        self.branch_index = {v.name: self.n_nodes + k for k, v in enumerate(circuit.vsources)}

        # --- constant linear conductance matrix -----------------------
        g = np.zeros((self.size, self.size))
        for i in range(self.n_nodes):
            g[i, i] += gmin
        for r in circuit.resistors:
            self._stamp_conductance(g, self.index_of(r.node_a), self.index_of(r.node_b),
                                    r.conductance)
        for k, v in enumerate(circuit.vsources):
            row = self.n_nodes + k
            ip = self.index_of(v.node_pos)
            im = self.index_of(v.node_neg)
            if ip >= 0:
                g[ip, row] += 1.0
                g[row, ip] += 1.0
            if im >= 0:
                g[im, row] -= 1.0
                g[row, im] -= 1.0
        self.g_lin = g

        # --- capacitors (terminal indices + values) -------------------
        self.cap_i = np.array([self.index_of(c.node_a) for c in circuit.capacitors], dtype=int)
        self.cap_j = np.array([self.index_of(c.node_b) for c in circuit.capacitors], dtype=int)
        self.cap_c = np.array([c.capacitance for c in circuit.capacitors], dtype=float)
        self.n_caps = self.cap_c.size
        self._cap_incidence: np.ndarray | None = None

        # --- MOSFET device arrays --------------------------------------
        mos = circuit.mosfets
        self.mos_d = np.array([self.index_of(m.drain) for m in mos], dtype=int)
        self.mos_g = np.array([self.index_of(m.gate) for m in mos], dtype=int)
        self.mos_s = np.array([self.index_of(m.source) for m in mos], dtype=int)
        self.mos_pol = np.array([m.params.polarity for m in mos], dtype=int)
        self.mos_beta = np.array([m.beta for m in mos], dtype=float)
        self.mos_vth = np.array([m.params.vth for m in mos], dtype=float)
        self.mos_lam = np.array([m.params.lam for m in mos], dtype=float)
        self.n_mosfets = len(mos)

        # --- sources ---------------------------------------------------
        self._vsource_fns = [v.source for v in circuit.vsources]
        self._isource_stamps = [
            (self.index_of(i.node_pos), self.index_of(i.node_neg), i.source)
            for i in circuit.isources
        ]

        # --- precomputed scatter indices for vectorised MOSFET stamping
        # Six Jacobian entries per device: rows (d,d,d,s,s,s) against
        # columns (d,g,s,d,g,s), the source row negated.
        if self.n_mosfets:
            rows = np.stack([self.mos_d, self.mos_d, self.mos_d,
                             self.mos_s, self.mos_s, self.mos_s])
            cols = np.stack([self.mos_d, self.mos_g, self.mos_s,
                             self.mos_d, self.mos_g, self.mos_s])
            valid = (rows >= 0) & (cols >= 0)
            self._mos_flat = (rows * self.size + cols)[valid]
            self._mos_valid = valid
            self._mos_sign = np.array([1.0, 1.0, 1.0, -1.0, -1.0, -1.0])[:, None]
            self._mos_d_ok = self.mos_d >= 0
            self._mos_s_ok = self.mos_s >= 0

            # Dense scatter operators for the batched path: duplicate
            # Jacobian/rhs destinations are folded by a one-hot matmul
            # (one BLAS call per Newton iteration instead of np.add.at).
            uniq, inv = np.unique(self._mos_flat, return_inverse=True)
            onehot = np.zeros((self._mos_flat.size, uniq.size))
            onehot[np.arange(self._mos_flat.size), inv] = 1.0
            self._mos_flat_uniq = uniq
            self._mos_jac_scatter = onehot
            rhs_rows = np.concatenate([self.mos_d[self._mos_d_ok],
                                       self.mos_s[self._mos_s_ok]])
            uniq_r, inv_r = np.unique(rhs_rows, return_inverse=True)
            onehot_r = np.zeros((rhs_rows.size, uniq_r.size))
            onehot_r[np.arange(rhs_rows.size), inv_r] = 1.0
            self._mos_rhs_uniq = uniq_r
            self._mos_rhs_scatter = onehot_r

    # ------------------------------------------------------------------
    def index_of(self, node: str) -> int:
        """MNA index of a node name; ``-1`` for ground."""
        if node == GROUND:
            return -1
        return self.node_index[node]

    def seed_vector(self, initial_voltages: "Mapping[str, float] | None" = None,
                    out: np.ndarray | None = None) -> np.ndarray:
        """MNA-sized solution vector with node seeds applied.

        Ground entries are ignored; unknown node names raise ``KeyError``.
        ``out`` fills an existing vector (e.g. one row of a stacked
        batch) in place instead of allocating.
        """
        x = np.zeros(self.size) if out is None else out
        for node, v in (initial_voltages or {}).items():
            idx = self.index_of(node)
            if idx >= 0:
                x[idx] = v
        return x

    @staticmethod
    def _stamp_conductance(a: np.ndarray, i: int, j: int, g: float) -> None:
        """Stamp a two-terminal conductance between indices ``i`` and ``j``."""
        if i >= 0:
            a[i, i] += g
        if j >= 0:
            a[j, j] += g
        if i >= 0 and j >= 0:
            a[i, j] -= g
            a[j, i] -= g

    def source_rhs(self, t: float) -> np.ndarray:
        """Right-hand side from independent sources at time ``t``."""
        rhs = np.zeros(self.size)
        for k, fn in enumerate(self._vsource_fns):
            rhs[self.n_nodes + k] = fn.value_at(t)
        for ip, im, fn in self._isource_stamps:
            cur = fn.value_at(t)
            if ip >= 0:
                rhs[ip] -= cur
            if im >= 0:
                rhs[im] += cur
        return rhs

    def cap_incidence(self) -> np.ndarray:
        """Capacitor → node incidence matrix, shape ``(n_caps, size)``.

        Row ``k`` holds ``+1`` at the capacitor's positive terminal and
        ``-1`` at its negative terminal (ground omitted), so a batch of
        companion currents scatters onto the right-hand side with one
        matmul: ``rhs += i_eq @ cap_incidence()``.
        """
        if self._cap_incidence is None:
            m = np.zeros((self.n_caps, self.size))
            for k in range(self.n_caps):
                i, j = int(self.cap_i[k]), int(self.cap_j[k])
                if i >= 0:
                    m[k, i] += 1.0
                if j >= 0:
                    m[k, j] -= 1.0
            self._cap_incidence = m
        return self._cap_incidence

    def source_rhs_columns(self) -> np.ndarray:
        """MNA rows that receive independent-source contributions (sorted).

        The source right-hand side is structurally sparse: only voltage
        -source branch rows and current-source terminal nodes are ever
        nonzero.  Storing a transient's source series on these columns
        alone keeps the precompute O(T · n_sources) instead of
        O(T · size).
        """
        rows = set(range(self.n_nodes, self.size))
        for ip, im, _ in self._isource_stamps:
            if ip >= 0:
                rows.add(ip)
            if im >= 0:
                rows.add(im)
        return np.array(sorted(rows), dtype=int)

    def source_rhs_series_compact(
        self, times: np.ndarray, cols: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Compact source series: ``(columns, values)`` with values
        shaped ``(T, len(columns))``.

        ``rhs[t][columns] = values[t]`` (all other entries zero)
        reproduces :meth:`source_rhs` at every sample time — branch rows
        hold exactly one voltage source each and current sources
        accumulate in stamp order, so the values are bitwise identical
        to the dense assembly.
        """
        times = np.asarray(times, dtype=np.float64)
        if cols is None:
            cols = self.source_rhs_columns()
        pos = {int(c): k for k, c in enumerate(cols)}
        vals = np.zeros((times.size, cols.size))
        for k, fn in enumerate(self._vsource_fns):
            vals[:, pos[self.n_nodes + k]] = fn(times)
        for ip, im, fn in self._isource_stamps:
            cur = np.asarray(fn(times), dtype=np.float64)
            if ip >= 0:
                vals[:, pos[ip]] -= cur
            if im >= 0:
                vals[:, pos[im]] += cur
        return cols, vals

    def source_breakpoints(self) -> np.ndarray:
        """Union of all source corner times (sorted, unique)."""
        pts: list[float] = []
        for fn in self._vsource_fns:
            pts.extend(fn.breakpoints)
        for _, _, fn in self._isource_stamps:
            pts.extend(fn.breakpoints)
        return np.unique(np.asarray(pts)) if pts else np.empty(0)

    def node_voltage(self, x: np.ndarray, index: int) -> float:
        """Voltage at MNA index ``index`` in solution ``x`` (0 for ground)."""
        return 0.0 if index < 0 else float(x[index])

    def _terminal_voltages(self, x: np.ndarray, idx: np.ndarray) -> np.ndarray:
        """Gather node voltages for an index array, 0.0 where ground."""
        v = np.zeros(idx.size)
        mask = idx >= 0
        v[mask] = x[idx[mask]]
        return v

    def _terminal_voltages_batch(self, x: np.ndarray, idx: np.ndarray) -> np.ndarray:
        """Batched :meth:`_terminal_voltages`: ``x`` is ``(B, size)``."""
        return self._pad_ground(x)[:, idx]

    @staticmethod
    def _pad_ground(x: np.ndarray) -> np.ndarray:
        """Append a zero column so ground's ``-1`` index gathers 0 V."""
        return np.concatenate([x, np.zeros((x.shape[0], 1))], axis=1)

    def topology_signature(self) -> tuple:
        """Structural fingerprint of the compiled system, excluding sources.

        Two circuits with equal signatures have byte-identical linear
        matrices, capacitor companions and MOSFET device arrays, so their
        transient analyses can share one stacked Newton loop — only the
        source *values* (evaluated per variant) may differ.  Used by
        :func:`~repro.circuit.transient.simulate_transient_many` to group
        compatible jobs.

        The fingerprint is taken from the element lists and node order
        (which fully determine every compiled matrix, given ``gmin``) —
        not from the matrices themselves, whose serialisation would cost
        O(size²) per variant on large interconnect systems.
        """
        if self._signature is None:
            c = self.circuit
            self._signature = (
                self.size, self.n_nodes, self.n_branches, self.n_caps,
                self.n_mosfets, self.gmin,
                tuple(self.node_names),
                tuple((r.node_a, r.node_b, r.resistance) for r in c.resistors),
                tuple((cp.node_a, cp.node_b, cp.capacitance)
                      for cp in c.capacitors),
                tuple((v.node_pos, v.node_neg) for v in c.vsources),
                tuple((i.node_pos, i.node_neg) for i in c.isources),
                tuple((m.drain, m.gate, m.source, m.params, m.w, m.length)
                      for m in c.mosfets),
            )
        return self._signature

    def system_pattern(self, include_caps: bool = True) -> np.ndarray:
        """Boolean nonzero pattern of the assembled system matrix.

        Covers the constant linear stamps (``g_lin``), optionally the
        capacitor companion-conductance positions (whose *values* depend
        on the time step, but whose positions are fixed per topology),
        and the MOSFET Jacobian fill.  This is the input to the solver
        backend selection in :mod:`repro.circuit.solvers`.
        """
        pat = self.g_lin != 0.0
        if include_caps:
            for k in range(self.n_caps):
                i, j = int(self.cap_i[k]), int(self.cap_j[k])
                if i >= 0:
                    pat[i, i] = True
                if j >= 0:
                    pat[j, j] = True
                if i >= 0 and j >= 0:
                    pat[i, j] = True
                    pat[j, i] = True
        if self.n_mosfets:
            pat.reshape(-1)[self._mos_flat] = True
        return pat

    def _analysis(self) -> _TopologyAnalysis:
        """This topology's shared analysis slot (global, LRU-bounded)."""
        if self._analysis_entry is None:
            self._analysis_entry = _analysis_for(self.topology_signature())
        return self._analysis_entry

    def structure(self, include_caps: bool = True) -> MatrixStructure:
        """Sparsity-pattern signature of the system matrix, cached.

        Computed once per *topology signature* (RCM reordering included)
        and shared by every analysis of every system compiled from that
        topology — wide experiment fronts compile one ``MnaSystem`` per
        job, so the cache is global, not per instance.  The transient
        engine selects its per-step solver from
        ``structure(include_caps=True)``, the DC solver from
        ``structure(include_caps=False)`` (capacitors are open in DC).
        """
        shared = self._analysis()
        cached = shared.structures.get(include_caps)
        if cached is None:
            cached = analyze_pattern(self.system_pattern(include_caps))
            shared.structures[include_caps] = cached
        return cached

    def sparse_maps(self) -> SparseStampMaps:
        """The frozen CSC pattern and scatter maps, cached per topology."""
        shared = self._analysis()
        if shared.maps is None:
            shared.maps = self._build_sparse_maps()
        return shared.maps

    def _build_sparse_maps(self) -> SparseStampMaps:
        n = self.size
        pat = self.system_pattern(include_caps=True)
        # gmin stepping stamps every node diagonal; freeze them into the
        # pattern so the DC kernel works even at gmin = 0.
        nd = np.arange(self.n_nodes)
        pat[nd, nd] = True
        rows, cols = np.nonzero(pat)
        order = np.lexsort((rows, cols))  # CSC: column-major, rows sorted
        rows = rows[order]
        cols = cols[order]
        nnz = rows.size
        counts = np.bincount(cols, minlength=n)
        indptr = np.concatenate(([0], np.cumsum(counts)))
        # Dense position lookup, build-time only (discarded with scope).
        pos = np.full((n, n), -1, dtype=np.int64)
        pos[rows, cols] = np.arange(nnz)

        lin_data = np.zeros(nnz)
        lr, lc = np.nonzero(self.g_lin)
        lin_data[pos[lr, lc]] = self.g_lin[lr, lc]
        diag_pos = pos[nd, nd]

        cap_pos: list[int] = []
        cap_sign: list[float] = []
        cap_idx: list[int] = []
        for k in range(self.n_caps):
            i, j = int(self.cap_i[k]), int(self.cap_j[k])
            if i >= 0:
                cap_pos.append(pos[i, i]); cap_sign.append(1.0); cap_idx.append(k)
            if j >= 0:
                cap_pos.append(pos[j, j]); cap_sign.append(1.0); cap_idx.append(k)
            if i >= 0 and j >= 0:
                cap_pos.extend((pos[i, j], pos[j, i]))
                cap_sign.extend((-1.0, -1.0))
                cap_idx.extend((k, k))

        if self.n_mosfets:
            mos_pos = pos[self._mos_flat // n, self._mos_flat % n]
            mos_pos_uniq = pos[self._mos_flat_uniq // n,
                               self._mos_flat_uniq % n]
        else:
            mos_pos = np.empty(0, dtype=np.int64)
            mos_pos_uniq = np.empty(0, dtype=np.int64)
        return SparseStampMaps(
            size=n, indptr=indptr, indices=rows, lin_data=lin_data,
            diag_pos=diag_pos,
            cap_pos=np.asarray(cap_pos, dtype=np.int64),
            cap_sign=np.asarray(cap_sign),
            cap_idx=np.asarray(cap_idx, dtype=np.int64),
            mos_pos=mos_pos, mos_pos_uniq=mos_pos_uniq)

    def sparse_base_data(self, maps: SparseStampMaps, h: "float | None" = None,
                         extra_gmin: float = 0.0) -> np.ndarray:
        """Numeric CSC data of the device-free system, O(nnz).

        The linear stamps plus, for a transient step of size ``h``, the
        trapezoidal companion conductances ``2C/h`` (``h=None`` is the DC
        form) plus an optional gmin-stepping leak on the node diagonals.
        """
        data = maps.lin_data.copy()
        if extra_gmin:
            data[maps.diag_pos] += extra_gmin
        if h is not None and self.n_caps:
            geq = 2.0 * self.cap_c / h
            np.add.at(data, maps.cap_pos, maps.cap_sign * geq[maps.cap_idx])
        return data

    def newton_partition(self) -> "NewtonPartition | None":
        """Core/border split for the bordered Newton kernel, or ``None``.

        ``None`` means no viable partition exists — the circuit is
        MOSFET-free, the border would outgrow its ceiling, the remaining
        core is too small to be worth structuring, or the core does not
        permute to a narrow band.  Cached per topology signature.
        """
        shared = self._analysis()
        if shared.partition is _UNCOMPUTED:
            shared.partition = self._build_newton_partition()
        return shared.partition

    def _build_newton_partition(self) -> "NewtonPartition | None":
        if self.n_mosfets == 0 or not HAVE_SCIPY:
            return None
        border_mask = np.zeros(self.size, dtype=bool)
        for idx in (self.mos_d, self.mos_g, self.mos_s):
            border_mask[idx[idx >= 0]] = True
        for k, v in enumerate(self.circuit.vsources):
            terms = [t for t in (self.index_of(v.node_pos),
                                 self.index_of(v.node_neg)) if t >= 0]
            if terms and all(border_mask[t] for t in terms):
                border_mask[self.n_nodes + k] = True
        border = np.nonzero(border_mask)[0]
        core = np.nonzero(~border_mask)[0]
        if (core.size < _MIN_STRUCTURED_SIZE or border.size > _MAX_BORDER
                or border.size >= core.size):
            return None
        pat = self.system_pattern(include_caps=True)
        core_structure = analyze_pattern(pat[np.ix_(core, core)])
        if core_structure.bandwidth > _BANDED_MAX_BANDWIDTH:
            return None
        return NewtonPartition(border=border, core=core,
                               core_structure=core_structure)

    def sparse_newton_step(self, h: "float | None" = None,
                           extra_gmin: float = 0.0) -> "SparseNewtonStep":
        """Pattern-frozen sparse Newton operator (``h=None``: DC form)."""
        maps = self.sparse_maps()
        return SparseNewtonStep(self, maps,
                                self.sparse_base_data(maps, h, extra_gmin))

    def bordered_newton_step(self, a_base: np.ndarray) -> "BorderedNewtonStep":
        """Bordered Newton operator for a companion-stamped base matrix.

        Raises :class:`numpy.linalg.LinAlgError` when the banded core
        factorization fails (callers degrade to the sparse kernel) and
        :class:`ValueError` when no viable partition exists.
        """
        partition = self.newton_partition()
        require(partition is not None,
                "no viable core/border partition for this topology")
        return BorderedNewtonStep(self, partition, a_base)

    def device_arrays(self) -> DeviceArrays:
        """The MOSFET population as flat kernel-ready arrays (cached).

        The seam the kernel backends consume: contiguous int64 terminal
        indices (``-1`` = ground) and float64 parameter vectors, with no
        reference back to this system — see
        :class:`repro.circuit.kernels.step_kernels.DeviceArrays`.
        """
        dev = getattr(self, "_device_arrays", None)
        if dev is None:
            dev = DeviceArrays(
                d=np.ascontiguousarray(self.mos_d, dtype=np.int64),
                g=np.ascontiguousarray(self.mos_g, dtype=np.int64),
                s=np.ascontiguousarray(self.mos_s, dtype=np.int64),
                pol=np.ascontiguousarray(self.mos_pol, dtype=np.float64),
                beta=np.ascontiguousarray(self.mos_beta, dtype=np.float64),
                vth=np.ascontiguousarray(self.mos_vth, dtype=np.float64),
                lam=np.ascontiguousarray(self.mos_lam, dtype=np.float64))
            self._device_arrays = dev
        return dev

    def _mos_lin(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Newton linearisation of every MOSFET at operating point ``x``.

        Returns the six signed Jacobian entries per device — rows
        (d,d,d,s,s,s) against columns (d,g,s,d,g,s), shape
        ``(6, n_mosfets)`` in the scalar scatter layout — and the
        equivalent Newton currents ``ieq = J·x0 − ids0`` (stamped
        positive at the drain, negative at the source).

        The scalar linearisation *is* the batched one applied to a batch
        of one — the elementwise device math is identical, so the
        results are bit-equal to the historical dedicated scalar path.
        """
        vals, ieq = self._mos_lin_batch(x[None, :])
        return vals[0], ieq[0]

    def _stamp_mos_rhs(self, rhs: np.ndarray, ieq: np.ndarray) -> None:
        """Scatter the Newton companion currents onto a scalar rhs."""
        np.add.at(rhs, self.mos_d[self._mos_d_ok], ieq[self._mos_d_ok])
        np.add.at(rhs, self.mos_s[self._mos_s_ok], -ieq[self._mos_s_ok])

    def stamp_mosfets(self, a: np.ndarray, rhs: np.ndarray, x: np.ndarray) -> None:
        """Stamp Newton-linearised MOSFETs at operating point ``x``.

        Adds the Jacobian of the drain currents to ``a`` and the companion
        current terms to ``rhs`` so that solving ``a · x_new = rhs`` performs
        one Newton step of the nonlinear system.
        """
        if self.n_mosfets == 0:
            return
        vals, ieq = self._mos_lin(x)
        np.add.at(a.reshape(-1), self._mos_flat, vals[self._mos_valid])
        self._stamp_mos_rhs(rhs, ieq)

    def stamp_mosfets_data(self, data: np.ndarray, rhs: np.ndarray,
                           x: np.ndarray, maps: SparseStampMaps) -> None:
        """Pattern-frozen :meth:`stamp_mosfets`: stamp into a CSC data
        vector through the precomputed index maps — O(nnz device fill),
        no dense matrix."""
        if self.n_mosfets == 0:
            return
        vals, ieq = self._mos_lin(x)
        np.add.at(data, maps.mos_pos, vals[self._mos_valid])
        self._stamp_mos_rhs(rhs, ieq)

    def stamp_mosfets_batch(self, a: np.ndarray, rhs: np.ndarray, x: np.ndarray) -> None:
        """Batched :meth:`stamp_mosfets` over ``B`` operating points.

        Parameters
        ----------
        a:
            Stacked system matrices, shape ``(B, size, size)``; modified in
            place.
        rhs:
            Stacked right-hand sides, shape ``(B, size)``; modified in place.
        x:
            Stacked operating points, shape ``(B, size)``.

        One vectorised :func:`~repro.circuit.mosfet.mosfet_eval` pass covers
        every device of every variant, so the cost of a Newton iteration is
        independent of the batch size at the Python level.
        """
        if self.n_mosfets == 0:
            return
        vals, ieq = self._mos_lin_batch(x)
        a_flat = a.reshape(x.shape[0], -1)
        a_flat[:, self._mos_flat_uniq] += vals[:, self._mos_valid] @ self._mos_jac_scatter
        self._stamp_mos_rhs_batch(rhs, ieq)

    def _mos_lin_batch(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`_mos_lin`: ``(B, 6, n_mosfets)`` Jacobian
        entries and ``(B, n_mosfets)`` companion currents."""
        xp = self._pad_ground(x)
        vd = xp[:, self.mos_d]
        vg = xp[:, self.mos_g]
        vs = xp[:, self.mos_s]
        ids, did_dvd, did_dvg, did_dvs = mosfet_eval(
            vd, vg, vs, self.mos_pol, self.mos_beta, self.mos_vth, self.mos_lam
        )
        ieq = did_dvd * vd + did_dvg * vg + did_dvs * vs - ids
        vals = self._mos_sign[None, :, :] * np.stack(
            [did_dvd, did_dvg, did_dvs, did_dvd, did_dvg, did_dvs], axis=1
        )
        return vals, ieq

    def _stamp_mos_rhs_batch(self, rhs: np.ndarray, ieq: np.ndarray) -> None:
        """Scatter companion currents onto stacked right-hand sides."""
        contrib = np.concatenate([ieq[:, self._mos_d_ok], -ieq[:, self._mos_s_ok]],
                                 axis=1)
        rhs[:, self._mos_rhs_uniq] += contrib @ self._mos_rhs_scatter

    def stamp_mosfets_data_batch(self, data: np.ndarray, rhs: np.ndarray,
                                 x: np.ndarray, maps: SparseStampMaps) -> None:
        """Batched :meth:`stamp_mosfets_data`: ``data`` is ``(B, nnz)``,
        the device fill of every variant folded through the shared
        one-hot scatter (one BLAS call, shared symbolic pattern)."""
        if self.n_mosfets == 0:
            return
        vals, ieq = self._mos_lin_batch(x)
        data[:, maps.mos_pos_uniq] += vals[:, self._mos_valid] @ self._mos_jac_scatter
        self._stamp_mos_rhs_batch(rhs, ieq)

    def mosfet_currents(self, x: np.ndarray) -> np.ndarray:
        """Drain currents of every MOSFET at solution ``x`` (amperes)."""
        if self.n_mosfets == 0:
            return np.empty(0)
        vd = self._terminal_voltages(x, self.mos_d)
        vg = self._terminal_voltages(x, self.mos_g)
        vs = self._terminal_voltages(x, self.mos_s)
        ids, _, _, _ = mosfet_eval(
            vd, vg, vs, self.mos_pol, self.mos_beta, self.mos_vth, self.mos_lam
        )
        return ids


class SparseNewtonStep:
    """Pattern-frozen sparse Newton linear operator (one topology, one
    base system).

    Each solve stamps the linearised devices into a fresh copy of the
    base CSC data vector — O(nnz) through the frozen scatter maps — and
    pays one numeric SuperLU refactorization
    (:class:`~repro.circuit.solvers.PatternFrozenLu`), replacing the
    dense O(n²) re-stamp + O(n³) LU of the dense Newton path.  The
    symbolic pattern is shared across iterations, steps and batch
    variants.  Singular refactorizations raise
    :class:`numpy.linalg.LinAlgError`; the Newton loops respond by
    finishing the solve on the dense path.
    """

    kind = "sparse"

    def __init__(self, mna: "MnaSystem", maps: SparseStampMaps,
                 base_data: np.ndarray):
        self._mna = mna
        self._maps = maps
        self._base = base_data
        self._lu = PatternFrozenLu(maps.size, maps.indptr, maps.indices)

    def solve(self, rhs_base: np.ndarray, x: np.ndarray) -> np.ndarray:
        """One Newton linear solve at operating point ``x`` (``rhs_base``
        is copied, never mutated)."""
        data = self._base.copy()
        rhs = rhs_base.copy()
        self._mna.stamp_mosfets_data(data, rhs, x, self._maps)
        return self._lu.refactor(data).solve(rhs)

    def solve_batch(self, rhs: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Stacked solve over ``B`` operating points; ``rhs`` ``(B, n)``
        is owned by this call (overwritten with companion terms).

        Device evaluation and stamping are vectorised across the batch;
        the numeric refactorizations — whose factors genuinely differ
        per variant — run per variant against the shared symbolic
        pattern.
        """
        batch = x.shape[0]
        data = np.repeat(self._base[None, :], batch, axis=0)
        self._mna.stamp_mosfets_data_batch(data, rhs, x, self._maps)
        out = np.empty_like(rhs)
        for b in range(batch):
            out[b] = self._lu.refactor(data[b]).solve(rhs[b])
        return out


class BorderedNewtonStep:
    """Block-bordered Newton linear operator (banded core + device border).

    Wraps :class:`~repro.circuit.solvers.BorderedBanded` — core factor,
    coupling solve and constant Schur part are built once per step size —
    with the border-local device scatter: each Newton iteration only
    assembles the ``(nb, nb)`` device delta and refactorises the
    border-sized Schur complement.
    """

    kind = "banded"

    def __init__(self, mna: "MnaSystem", partition: NewtonPartition,
                 a_base: np.ndarray):
        self._mna = mna
        self._bb = BorderedBanded(a_base, partition.border, partition.core,
                                  partition.core_structure)
        nb = int(partition.border.size)
        self._nb = nb
        lookup = np.full(mna.size, -1, dtype=np.int64)
        lookup[partition.border] = np.arange(nb)
        n = mna.size
        # Device fill lands entirely inside the border block, so every
        # lookup is valid by construction of the partition.
        self._flat = lookup[mna._mos_flat // n] * nb + lookup[mna._mos_flat % n]
        self._flat_uniq = (lookup[mna._mos_flat_uniq // n] * nb
                           + lookup[mna._mos_flat_uniq % n])
        self._lookup = lookup
        self._fused_state: "tuple | None | bool" = False  # False = unbuilt

    def flat_state(self) -> "tuple | None":
        """Kernel-ready flat arrays ``(core, border, y, s0, lookup)``.

        The device-array seam of the fused bordered Newton kernel; every
        piece is a plain contiguous ndarray (built once, cached).
        ``None`` when a device terminal unexpectedly falls outside the
        border — callers then keep the reference path.
        """
        if self._fused_state is False:
            mna = self._mna
            terms = np.concatenate([mna.mos_d, mna.mos_g, mna.mos_s])
            terms = terms[terms >= 0]
            if terms.size and (self._lookup[terms] < 0).any():
                self._fused_state = None
            else:
                core, border, f, y, s0 = self._bb.schur_state()
                self._fused_state = (
                    np.ascontiguousarray(core, dtype=np.int64),
                    np.ascontiguousarray(border, dtype=np.int64),
                    np.ascontiguousarray(y),
                    np.ascontiguousarray(s0),
                    self._lookup)
        return self._fused_state

    def prepare_fused(self, rhs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Iteration-constant pieces of a fused solve for stacked ``rhs``.

        Device stamps only touch border rows, so the core sweep ``w1 =
        B⁻¹·r₁`` (one batched banded substitution) and the reduced rhs
        ``t₀ = r₂ − F·w1`` hold for every Newton iteration of the step.
        ``rhs`` is read, never mutated.
        """
        core, border, f, _, _ = self._bb.schur_state()
        w1 = self._bb.core_sweep(rhs[:, core])
        return w1, rhs[:, border] - w1 @ f.T

    def solve(self, rhs_base: np.ndarray, x: np.ndarray) -> np.ndarray:
        """One Newton linear solve at ``x`` (``rhs_base`` copied)."""
        mna = self._mna
        vals, ieq = mna._mos_lin(x)
        delta = np.zeros(self._nb * self._nb)
        np.add.at(delta, self._flat, vals[mna._mos_valid])
        rhs = rhs_base.copy()
        mna._stamp_mos_rhs(rhs, ieq)
        return self._bb.solve(rhs, delta.reshape(self._nb, self._nb))

    def solve_batch(self, rhs: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Stacked solve; ``rhs`` ``(B, n)`` is owned by this call.

        Fully vectorised across the batch: the border deltas fold
        through the shared one-hot scatter and the Schur complements
        factor through one stacked ``numpy.linalg.solve``.
        """
        mna = self._mna
        batch = x.shape[0]
        vals, ieq = mna._mos_lin_batch(x)
        delta = np.zeros((batch, self._nb * self._nb))
        delta[:, self._flat_uniq] += vals[:, mna._mos_valid] @ mna._mos_jac_scatter
        mna._stamp_mos_rhs_batch(rhs, ieq)
        return self._bb.solve(rhs, delta.reshape(batch, self._nb, self._nb))


def _fused_stacked(
    mna: MnaSystem,
    a_base: np.ndarray,
    rhs_base: np.ndarray,
    x0: np.ndarray,
    abstol: float,
    max_iter: int,
    v_limit: float,
    require_unlimited: bool,
    stats: dict | None,
    kernel,
    backend,
) -> "tuple[np.ndarray, np.ndarray] | None":
    """Dispatch one stacked Newton solve to a fused kernel backend.

    Covers the dense path (no structured kernel) and the bordered
    structured path; returns ``None`` whenever the backend cannot take
    this solve — sparse structured kernels, a partition the fused state
    rejects, or a singular Schur complement mid-solve (counted as a
    ``newton_fallbacks``) — and the caller runs the reference loop.
    """
    timers = stats.get("phase_seconds") if stats is not None else None
    t_solve = perf_counter() if timers is not None else 0.0
    if kernel is None:
        x, converged, iters = backend.newton_dense(
            mna.device_arrays(), a_base, rhs_base, x0, mna.n_nodes,
            abstol, max_iter, v_limit, require_unlimited)
    elif getattr(kernel, "kind", None) == "banded":
        state = kernel.flat_state()
        if state is None:
            return None
        try:
            w1, t0 = kernel.prepare_fused(rhs_base)
            x, converged, iters = backend.newton_bordered(
                mna.device_arrays(), state, w1, t0, x0, mna.n_nodes,
                abstol, max_iter, v_limit, require_unlimited)
        except np.linalg.LinAlgError:
            if stats is not None:
                stats["newton_fallbacks"] = \
                    stats.get("newton_fallbacks", 0) + 1
            return None
    else:
        return None
    if timers is not None:
        # Fused kernels interleave device evaluation and solving, so the
        # whole call lands in "solve".
        timers["solve"] = timers.get("solve", 0.0) \
            + (perf_counter() - t_solve)
    if stats is not None:
        stats["newton_iters"] += int(iters)
    return x, converged


def stacked_newton(
    mna: MnaSystem,
    a_base: np.ndarray,
    rhs_base: np.ndarray,
    x0: np.ndarray,
    abstol: float,
    max_iter: int,
    v_limit: float,
    require_unlimited: bool = False,
    catch_singular: bool = False,
    stats: dict | None = None,
    kernel: "SparseNewtonStep | BorderedNewtonStep | None" = None,
    backend=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Damped Newton over ``B`` stacked operating points; ``(x, converged)``.

    The one stacked-Newton loop shared by the transient and DC batch
    engines: per iteration the MOSFETs of every *active* variant are
    stamped onto broadcast copies of ``a_base``/``rhs_base``, solved
    together, damped to ``v_limit`` per variant, and variants whose worst
    node-voltage update drops below ``abstol`` are frozen — so each
    variant reproduces the scalar iteration sequence.

    Parameters
    ----------
    a_base, rhs_base:
        Shared system matrix ``(size, size)`` and per-variant right-hand
        sides ``(B, size)`` (MOSFET companion terms are stamped on top).
    x0:
        Stacked Newton seeds ``(B, size)``.
    abstol, max_iter, v_limit:
        Convergence threshold on node-voltage updates, iteration cap and
        per-iteration update clamp.
    require_unlimited:
        Additionally require the accepted update to be unclamped before
        declaring a variant converged (the transient engine's test; a
        no-op whenever ``abstol < v_limit``).
    catch_singular:
        Return the still-unconverged state on a singular stacked solve
        (the DC engine's per-variant-fallback contract) instead of
        propagating :class:`numpy.linalg.LinAlgError`.
    stats:
        Optional counter dict whose ``"newton_iters"`` entry is bumped
        per iteration (and ``"newton_fallbacks"`` when a structured
        kernel degrades to dense mid-solve).
    kernel:
        Optional pattern-frozen Newton operator (one of the step
        objects above) replacing the dense stamp-and-solve.  A singular
        structured refactorization drops back to the dense path for the
        remainder of the solve.
    backend:
        Optional :class:`~repro.circuit.kernels.backend.KernelBackend`.
        A fused backend (numba) runs the whole solve in one compiled
        call — dense, or bordered with the banded core sweep hoisted out
        of the iteration; the NumPy backend (or ``None``) keeps the
        vectorised reference loop below.  ``catch_singular`` solves
        always take the reference loop (its mid-state contract).
    """
    if backend is not None and backend.fused and not catch_singular:
        fused = _fused_stacked(mna, a_base, rhs_base, x0, abstol, max_iter,
                               v_limit, require_unlimited, stats, kernel,
                               backend)
        if fused is not None:
            return fused
    x = x0.copy()
    m = x.shape[0]
    n_nodes = mna.n_nodes
    converged = np.zeros(m, dtype=bool)
    active = np.arange(m)
    timers = stats.get("phase_seconds") if stats is not None else None
    for _ in range(max_iter):
        sub = x[active]
        x_new = None
        if kernel is not None:
            t0 = perf_counter() if timers is not None else 0.0
            try:
                x_new = kernel.solve_batch(rhs_base[active].copy(), sub)
            except np.linalg.LinAlgError:
                if stats is not None:
                    stats["newton_fallbacks"] = \
                        stats.get("newton_fallbacks", 0) + 1
                kernel = None
            if timers is not None:
                timers["solve"] = timers.get("solve", 0.0) \
                    + (perf_counter() - t0)
        if x_new is None:
            t0 = perf_counter() if timers is not None else 0.0
            a = np.broadcast_to(a_base, (active.size, *a_base.shape)).copy()
            rhs = rhs_base[active].copy()
            mna.stamp_mosfets_batch(a, rhs, sub)
            if timers is not None:
                t1 = perf_counter()
                timers["device_eval"] = timers.get("device_eval", 0.0) \
                    + (t1 - t0)
                t0 = t1
            try:
                x_new = np.linalg.solve(a, rhs[..., None])[..., 0]
            except np.linalg.LinAlgError:
                if catch_singular:
                    return x, converged
                raise
            finally:
                if timers is not None:
                    timers["solve"] = timers.get("solve", 0.0) \
                        + (perf_counter() - t0)
        dx = x_new - sub
        dv = dx[:, :n_nodes]
        worst = np.max(np.abs(dv), axis=1) if n_nodes else np.zeros(active.size)
        limited = worst > v_limit
        scale = np.where(limited, v_limit / np.maximum(worst, 1e-300), 1.0)
        x[active] = sub + dx * scale[:, None]
        if stats is not None:
            stats["newton_iters"] += 1
        ok = worst < abstol
        if require_unlimited:
            ok &= ~limited
        converged[active[ok]] = True
        active = active[~ok]
        if active.size == 0:
            break
    return x, converged
