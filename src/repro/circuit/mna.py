"""Modified nodal analysis (MNA) assembly.

The unknown vector is ``x = [node voltages | voltage-source branch
currents]``.  :class:`MnaSystem` compiles a :class:`~repro.circuit.netlist.Circuit`
into the constant matrices and per-device arrays the analyses need:

* ``g_lin`` — conductances of resistors, voltage-source incidence rows and
  a small ``gmin`` to ground on every node diagonal,
* ``cap_*`` — capacitor terminal indices and values (companion models are
  applied by the transient analysis, which owns the time step),
* MOSFET terminal-index and parameter arrays for vectorised evaluation.

Ground is index ``-1`` throughout; stamping helpers skip it.
"""

from __future__ import annotations

import numpy as np

from collections.abc import Mapping

from .._util import require
from .mosfet import mosfet_eval
from .netlist import GROUND, Circuit
from .solvers import MatrixStructure, analyze_pattern

__all__ = ["MnaSystem", "stacked_newton"]

#: Conductance to ground added on every node diagonal for matrix robustness.
DEFAULT_GMIN = 1e-9


class MnaSystem:
    """Compiled MNA view of a circuit.

    Parameters
    ----------
    circuit:
        The netlist to compile.
    gmin:
        Leak conductance to ground on every node (default ``1e-9`` S).
    """

    def __init__(self, circuit: Circuit, gmin: float = DEFAULT_GMIN):
        require(gmin >= 0.0, "gmin must be non-negative")
        self.circuit = circuit
        self.gmin = gmin
        self._signature: tuple | None = None
        self._structures: dict[bool, MatrixStructure] = {}
        self.node_names = list(circuit.nodes)
        self.node_index = {name: i for i, name in enumerate(self.node_names)}
        self.n_nodes = len(self.node_names)
        self.n_branches = len(circuit.vsources)
        self.size = self.n_nodes + self.n_branches
        require(self.size > 0, "empty circuit")
        self.branch_index = {v.name: self.n_nodes + k for k, v in enumerate(circuit.vsources)}

        # --- constant linear conductance matrix -----------------------
        g = np.zeros((self.size, self.size))
        for i in range(self.n_nodes):
            g[i, i] += gmin
        for r in circuit.resistors:
            self._stamp_conductance(g, self.index_of(r.node_a), self.index_of(r.node_b),
                                    r.conductance)
        for k, v in enumerate(circuit.vsources):
            row = self.n_nodes + k
            ip = self.index_of(v.node_pos)
            im = self.index_of(v.node_neg)
            if ip >= 0:
                g[ip, row] += 1.0
                g[row, ip] += 1.0
            if im >= 0:
                g[im, row] -= 1.0
                g[row, im] -= 1.0
        self.g_lin = g

        # --- capacitors (terminal indices + values) -------------------
        self.cap_i = np.array([self.index_of(c.node_a) for c in circuit.capacitors], dtype=int)
        self.cap_j = np.array([self.index_of(c.node_b) for c in circuit.capacitors], dtype=int)
        self.cap_c = np.array([c.capacitance for c in circuit.capacitors], dtype=float)
        self.n_caps = self.cap_c.size
        self._cap_incidence: np.ndarray | None = None

        # --- MOSFET device arrays --------------------------------------
        mos = circuit.mosfets
        self.mos_d = np.array([self.index_of(m.drain) for m in mos], dtype=int)
        self.mos_g = np.array([self.index_of(m.gate) for m in mos], dtype=int)
        self.mos_s = np.array([self.index_of(m.source) for m in mos], dtype=int)
        self.mos_pol = np.array([m.params.polarity for m in mos], dtype=int)
        self.mos_beta = np.array([m.beta for m in mos], dtype=float)
        self.mos_vth = np.array([m.params.vth for m in mos], dtype=float)
        self.mos_lam = np.array([m.params.lam for m in mos], dtype=float)
        self.n_mosfets = len(mos)

        # --- sources ---------------------------------------------------
        self._vsource_fns = [v.source for v in circuit.vsources]
        self._isource_stamps = [
            (self.index_of(i.node_pos), self.index_of(i.node_neg), i.source)
            for i in circuit.isources
        ]

        # --- precomputed scatter indices for vectorised MOSFET stamping
        # Six Jacobian entries per device: rows (d,d,d,s,s,s) against
        # columns (d,g,s,d,g,s), the source row negated.
        if self.n_mosfets:
            rows = np.stack([self.mos_d, self.mos_d, self.mos_d,
                             self.mos_s, self.mos_s, self.mos_s])
            cols = np.stack([self.mos_d, self.mos_g, self.mos_s,
                             self.mos_d, self.mos_g, self.mos_s])
            valid = (rows >= 0) & (cols >= 0)
            self._mos_flat = (rows * self.size + cols)[valid]
            self._mos_valid = valid
            self._mos_sign = np.array([1.0, 1.0, 1.0, -1.0, -1.0, -1.0])[:, None]
            self._mos_d_ok = self.mos_d >= 0
            self._mos_s_ok = self.mos_s >= 0

            # Dense scatter operators for the batched path: duplicate
            # Jacobian/rhs destinations are folded by a one-hot matmul
            # (one BLAS call per Newton iteration instead of np.add.at).
            uniq, inv = np.unique(self._mos_flat, return_inverse=True)
            onehot = np.zeros((self._mos_flat.size, uniq.size))
            onehot[np.arange(self._mos_flat.size), inv] = 1.0
            self._mos_flat_uniq = uniq
            self._mos_jac_scatter = onehot
            rhs_rows = np.concatenate([self.mos_d[self._mos_d_ok],
                                       self.mos_s[self._mos_s_ok]])
            uniq_r, inv_r = np.unique(rhs_rows, return_inverse=True)
            onehot_r = np.zeros((rhs_rows.size, uniq_r.size))
            onehot_r[np.arange(rhs_rows.size), inv_r] = 1.0
            self._mos_rhs_uniq = uniq_r
            self._mos_rhs_scatter = onehot_r

    # ------------------------------------------------------------------
    def index_of(self, node: str) -> int:
        """MNA index of a node name; ``-1`` for ground."""
        if node == GROUND:
            return -1
        return self.node_index[node]

    def seed_vector(self, initial_voltages: "Mapping[str, float] | None" = None,
                    out: np.ndarray | None = None) -> np.ndarray:
        """MNA-sized solution vector with node seeds applied.

        Ground entries are ignored; unknown node names raise ``KeyError``.
        ``out`` fills an existing vector (e.g. one row of a stacked
        batch) in place instead of allocating.
        """
        x = np.zeros(self.size) if out is None else out
        for node, v in (initial_voltages or {}).items():
            idx = self.index_of(node)
            if idx >= 0:
                x[idx] = v
        return x

    @staticmethod
    def _stamp_conductance(a: np.ndarray, i: int, j: int, g: float) -> None:
        """Stamp a two-terminal conductance between indices ``i`` and ``j``."""
        if i >= 0:
            a[i, i] += g
        if j >= 0:
            a[j, j] += g
        if i >= 0 and j >= 0:
            a[i, j] -= g
            a[j, i] -= g

    def source_rhs(self, t: float) -> np.ndarray:
        """Right-hand side from independent sources at time ``t``."""
        rhs = np.zeros(self.size)
        for k, fn in enumerate(self._vsource_fns):
            rhs[self.n_nodes + k] = fn.value_at(t)
        for ip, im, fn in self._isource_stamps:
            cur = fn.value_at(t)
            if ip >= 0:
                rhs[ip] -= cur
            if im >= 0:
                rhs[im] += cur
        return rhs

    def cap_incidence(self) -> np.ndarray:
        """Capacitor → node incidence matrix, shape ``(n_caps, size)``.

        Row ``k`` holds ``+1`` at the capacitor's positive terminal and
        ``-1`` at its negative terminal (ground omitted), so a batch of
        companion currents scatters onto the right-hand side with one
        matmul: ``rhs += i_eq @ cap_incidence()``.
        """
        if self._cap_incidence is None:
            m = np.zeros((self.n_caps, self.size))
            for k in range(self.n_caps):
                i, j = int(self.cap_i[k]), int(self.cap_j[k])
                if i >= 0:
                    m[k, i] += 1.0
                if j >= 0:
                    m[k, j] -= 1.0
            self._cap_incidence = m
        return self._cap_incidence

    def source_rhs_columns(self) -> np.ndarray:
        """MNA rows that receive independent-source contributions (sorted).

        The source right-hand side is structurally sparse: only voltage
        -source branch rows and current-source terminal nodes are ever
        nonzero.  Storing a transient's source series on these columns
        alone keeps the precompute O(T · n_sources) instead of
        O(T · size).
        """
        rows = set(range(self.n_nodes, self.size))
        for ip, im, _ in self._isource_stamps:
            if ip >= 0:
                rows.add(ip)
            if im >= 0:
                rows.add(im)
        return np.array(sorted(rows), dtype=int)

    def source_rhs_series_compact(
        self, times: np.ndarray, cols: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Compact source series: ``(columns, values)`` with values
        shaped ``(T, len(columns))``.

        ``rhs[t][columns] = values[t]`` (all other entries zero)
        reproduces :meth:`source_rhs` at every sample time — branch rows
        hold exactly one voltage source each and current sources
        accumulate in stamp order, so the values are bitwise identical
        to the dense assembly.
        """
        times = np.asarray(times, dtype=np.float64)
        if cols is None:
            cols = self.source_rhs_columns()
        pos = {int(c): k for k, c in enumerate(cols)}
        vals = np.zeros((times.size, cols.size))
        for k, fn in enumerate(self._vsource_fns):
            vals[:, pos[self.n_nodes + k]] = fn(times)
        for ip, im, fn in self._isource_stamps:
            cur = np.asarray(fn(times), dtype=np.float64)
            if ip >= 0:
                vals[:, pos[ip]] -= cur
            if im >= 0:
                vals[:, pos[im]] += cur
        return cols, vals

    def source_breakpoints(self) -> np.ndarray:
        """Union of all source corner times (sorted, unique)."""
        pts: list[float] = []
        for fn in self._vsource_fns:
            pts.extend(fn.breakpoints)
        for _, _, fn in self._isource_stamps:
            pts.extend(fn.breakpoints)
        return np.unique(np.asarray(pts)) if pts else np.empty(0)

    def node_voltage(self, x: np.ndarray, index: int) -> float:
        """Voltage at MNA index ``index`` in solution ``x`` (0 for ground)."""
        return 0.0 if index < 0 else float(x[index])

    def _terminal_voltages(self, x: np.ndarray, idx: np.ndarray) -> np.ndarray:
        """Gather node voltages for an index array, 0.0 where ground."""
        v = np.zeros(idx.size)
        mask = idx >= 0
        v[mask] = x[idx[mask]]
        return v

    def _terminal_voltages_batch(self, x: np.ndarray, idx: np.ndarray) -> np.ndarray:
        """Batched :meth:`_terminal_voltages`: ``x`` is ``(B, size)``."""
        return self._pad_ground(x)[:, idx]

    @staticmethod
    def _pad_ground(x: np.ndarray) -> np.ndarray:
        """Append a zero column so ground's ``-1`` index gathers 0 V."""
        return np.concatenate([x, np.zeros((x.shape[0], 1))], axis=1)

    def topology_signature(self) -> tuple:
        """Structural fingerprint of the compiled system, excluding sources.

        Two circuits with equal signatures have byte-identical linear
        matrices, capacitor companions and MOSFET device arrays, so their
        transient analyses can share one stacked Newton loop — only the
        source *values* (evaluated per variant) may differ.  Used by
        :func:`~repro.circuit.transient.simulate_transient_many` to group
        compatible jobs.

        The fingerprint is taken from the element lists and node order
        (which fully determine every compiled matrix, given ``gmin``) —
        not from the matrices themselves, whose serialisation would cost
        O(size²) per variant on large interconnect systems.
        """
        if self._signature is None:
            c = self.circuit
            self._signature = (
                self.size, self.n_nodes, self.n_branches, self.n_caps,
                self.n_mosfets, self.gmin,
                tuple(self.node_names),
                tuple((r.node_a, r.node_b, r.resistance) for r in c.resistors),
                tuple((cp.node_a, cp.node_b, cp.capacitance)
                      for cp in c.capacitors),
                tuple((v.node_pos, v.node_neg) for v in c.vsources),
                tuple((i.node_pos, i.node_neg) for i in c.isources),
                tuple((m.drain, m.gate, m.source, m.params, m.w, m.length)
                      for m in c.mosfets),
            )
        return self._signature

    def system_pattern(self, include_caps: bool = True) -> np.ndarray:
        """Boolean nonzero pattern of the assembled system matrix.

        Covers the constant linear stamps (``g_lin``), optionally the
        capacitor companion-conductance positions (whose *values* depend
        on the time step, but whose positions are fixed per topology),
        and the MOSFET Jacobian fill.  This is the input to the solver
        backend selection in :mod:`repro.circuit.solvers`.
        """
        pat = self.g_lin != 0.0
        if include_caps:
            for k in range(self.n_caps):
                i, j = int(self.cap_i[k]), int(self.cap_j[k])
                if i >= 0:
                    pat[i, i] = True
                if j >= 0:
                    pat[j, j] = True
                if i >= 0 and j >= 0:
                    pat[i, j] = True
                    pat[j, i] = True
        if self.n_mosfets:
            pat.reshape(-1)[self._mos_flat] = True
        return pat

    def structure(self, include_caps: bool = True) -> MatrixStructure:
        """Sparsity-pattern signature of the system matrix, cached.

        Computed once per topology (RCM reordering included) and shared
        by every analysis of this system: the transient engine selects
        its per-step solver from ``structure(include_caps=True)``, the DC
        solver from ``structure(include_caps=False)`` (capacitors are
        open in DC).
        """
        cached = self._structures.get(include_caps)
        if cached is None:
            cached = analyze_pattern(self.system_pattern(include_caps))
            self._structures[include_caps] = cached
        return cached

    def stamp_mosfets(self, a: np.ndarray, rhs: np.ndarray, x: np.ndarray) -> None:
        """Stamp Newton-linearised MOSFETs at operating point ``x``.

        Adds the Jacobian of the drain currents to ``a`` and the companion
        current terms to ``rhs`` so that solving ``a · x_new = rhs`` performs
        one Newton step of the nonlinear system.
        """
        if self.n_mosfets == 0:
            return
        vd = self._terminal_voltages(x, self.mos_d)
        vg = self._terminal_voltages(x, self.mos_g)
        vs = self._terminal_voltages(x, self.mos_s)
        ids, did_dvd, did_dvg, did_dvs = mosfet_eval(
            vd, vg, vs, self.mos_pol, self.mos_beta, self.mos_vth, self.mos_lam
        )
        # Equivalent Newton current: rhs gets J·x0 - ids0 at the drain,
        # the negative at the source.
        ieq = did_dvd * vd + did_dvg * vg + did_dvs * vs - ids
        vals = self._mos_sign * np.stack(
            [did_dvd, did_dvg, did_dvs, did_dvd, did_dvg, did_dvs]
        )
        np.add.at(a.reshape(-1), self._mos_flat, vals[self._mos_valid])
        np.add.at(rhs, self.mos_d[self._mos_d_ok], ieq[self._mos_d_ok])
        np.add.at(rhs, self.mos_s[self._mos_s_ok], -ieq[self._mos_s_ok])

    def stamp_mosfets_batch(self, a: np.ndarray, rhs: np.ndarray, x: np.ndarray) -> None:
        """Batched :meth:`stamp_mosfets` over ``B`` operating points.

        Parameters
        ----------
        a:
            Stacked system matrices, shape ``(B, size, size)``; modified in
            place.
        rhs:
            Stacked right-hand sides, shape ``(B, size)``; modified in place.
        x:
            Stacked operating points, shape ``(B, size)``.

        One vectorised :func:`~repro.circuit.mosfet.mosfet_eval` pass covers
        every device of every variant, so the cost of a Newton iteration is
        independent of the batch size at the Python level.
        """
        if self.n_mosfets == 0:
            return
        batch = x.shape[0]
        xp = self._pad_ground(x)
        vd = xp[:, self.mos_d]
        vg = xp[:, self.mos_g]
        vs = xp[:, self.mos_s]
        ids, did_dvd, did_dvg, did_dvs = mosfet_eval(
            vd, vg, vs, self.mos_pol, self.mos_beta, self.mos_vth, self.mos_lam
        )
        ieq = did_dvd * vd + did_dvg * vg + did_dvs * vs - ids
        # (B, 6, n_mosfets) Jacobian entries, same layout as the scalar path.
        vals = self._mos_sign[None, :, :] * np.stack(
            [did_dvd, did_dvg, did_dvs, did_dvd, did_dvg, did_dvs], axis=1
        )
        a_flat = a.reshape(batch, -1)
        a_flat[:, self._mos_flat_uniq] += vals[:, self._mos_valid] @ self._mos_jac_scatter
        contrib = np.concatenate([ieq[:, self._mos_d_ok], -ieq[:, self._mos_s_ok]],
                                 axis=1)
        rhs[:, self._mos_rhs_uniq] += contrib @ self._mos_rhs_scatter

    def mosfet_currents(self, x: np.ndarray) -> np.ndarray:
        """Drain currents of every MOSFET at solution ``x`` (amperes)."""
        if self.n_mosfets == 0:
            return np.empty(0)
        vd = self._terminal_voltages(x, self.mos_d)
        vg = self._terminal_voltages(x, self.mos_g)
        vs = self._terminal_voltages(x, self.mos_s)
        ids, _, _, _ = mosfet_eval(
            vd, vg, vs, self.mos_pol, self.mos_beta, self.mos_vth, self.mos_lam
        )
        return ids


def stacked_newton(
    mna: MnaSystem,
    a_base: np.ndarray,
    rhs_base: np.ndarray,
    x0: np.ndarray,
    abstol: float,
    max_iter: int,
    v_limit: float,
    require_unlimited: bool = False,
    catch_singular: bool = False,
    stats: dict | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Damped Newton over ``B`` stacked operating points; ``(x, converged)``.

    The one stacked-Newton loop shared by the transient and DC batch
    engines: per iteration the MOSFETs of every *active* variant are
    stamped onto broadcast copies of ``a_base``/``rhs_base``, solved
    together, damped to ``v_limit`` per variant, and variants whose worst
    node-voltage update drops below ``abstol`` are frozen — so each
    variant reproduces the scalar iteration sequence.

    Parameters
    ----------
    a_base, rhs_base:
        Shared system matrix ``(size, size)`` and per-variant right-hand
        sides ``(B, size)`` (MOSFET companion terms are stamped on top).
    x0:
        Stacked Newton seeds ``(B, size)``.
    abstol, max_iter, v_limit:
        Convergence threshold on node-voltage updates, iteration cap and
        per-iteration update clamp.
    require_unlimited:
        Additionally require the accepted update to be unclamped before
        declaring a variant converged (the transient engine's test; a
        no-op whenever ``abstol < v_limit``).
    catch_singular:
        Return the still-unconverged state on a singular stacked solve
        (the DC engine's per-variant-fallback contract) instead of
        propagating :class:`numpy.linalg.LinAlgError`.
    stats:
        Optional counter dict whose ``"newton_iters"`` entry is bumped
        per iteration.
    """
    x = x0.copy()
    m = x.shape[0]
    n_nodes = mna.n_nodes
    converged = np.zeros(m, dtype=bool)
    active = np.arange(m)
    for _ in range(max_iter):
        sub = x[active]
        a = np.broadcast_to(a_base, (active.size, *a_base.shape)).copy()
        rhs = rhs_base[active].copy()
        mna.stamp_mosfets_batch(a, rhs, sub)
        try:
            x_new = np.linalg.solve(a, rhs[..., None])[..., 0]
        except np.linalg.LinAlgError:
            if catch_singular:
                return x, converged
            raise
        dx = x_new - sub
        dv = dx[:, :n_nodes]
        worst = np.max(np.abs(dv), axis=1) if n_nodes else np.zeros(active.size)
        limited = worst > v_limit
        scale = np.where(limited, v_limit / np.maximum(worst, 1e-300), 1.0)
        x[active] = sub + dx * scale[:, None]
        if stats is not None:
            stats["newton_iters"] += 1
        ok = worst < abstol
        if require_unlimited:
            ok &= ~limited
        converged[active[ok]] = True
        active = active[~ok]
        if active.size == 0:
            break
    return x, converged
