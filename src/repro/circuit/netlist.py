"""Circuit construction: a named-node netlist builder.

A :class:`Circuit` collects elements against string node names.  The ground
node is ``"0"`` (``"gnd"`` is accepted as an alias).  Builders for the
common composites (MOSFET with parasitics, CMOS inverter) live here so
every analysis sees only primitive elements.
"""

from __future__ import annotations

from collections.abc import Iterable

from .._util import require
from .elements import Capacitor, CurrentSource, Element, Mosfet, Resistor, VoltageSource
from .mosfet import MosfetParams, NMOS_013, PMOS_013
from .sources import SourceFunction, as_source

__all__ = ["Circuit", "GROUND"]

GROUND = "0"
_GROUND_ALIASES = {"0", "gnd", "GND", "vss", "VSS"}


def _canon(node: str) -> str:
    """Canonicalise a node name (fold ground aliases)."""
    return GROUND if node in _GROUND_ALIASES else node


class Circuit:
    """A flat netlist of primitive elements.

    Parameters
    ----------
    name:
        Identifier used in diagnostics.

    Examples
    --------
    >>> c = Circuit("divider")
    >>> _ = c.vsource("Vin", "in", "0", 1.0)
    >>> _ = c.resistor("R1", "in", "mid", 1e3)
    >>> _ = c.resistor("R2", "mid", "0", 1e3)
    >>> sorted(c.nodes)
    ['in', 'mid']
    """

    def __init__(self, name: str = "circuit"):
        self.name = name
        self.resistors: list[Resistor] = []
        self.capacitors: list[Capacitor] = []
        self.vsources: list[VoltageSource] = []
        self.isources: list[CurrentSource] = []
        self.mosfets: list[Mosfet] = []
        self._names: set[str] = set()
        self._nodes: list[str] = []
        self._node_set: set[str] = set()

    # ------------------------------------------------------------------
    # Node / name bookkeeping
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> list[str]:
        """All non-ground node names, in first-use order."""
        return list(self._nodes)

    @property
    def elements(self) -> list[Element]:
        """Every element in the circuit."""
        return [*self.resistors, *self.capacitors, *self.vsources,
                *self.isources, *self.mosfets]

    def _register_name(self, name: str) -> None:
        require(name not in self._names, f"duplicate element name {name!r}")
        self._names.add(name)

    def _touch_nodes(self, nodes: Iterable[str]) -> None:
        for node in nodes:
            if node != GROUND and node not in self._node_set:
                self._node_set.add(node)
                self._nodes.append(node)

    def has_node(self, node: str) -> bool:
        """True if ``node`` is ground or appears in the netlist."""
        node = _canon(node)
        return node == GROUND or node in self._node_set

    # ------------------------------------------------------------------
    # Primitive elements
    # ------------------------------------------------------------------
    def resistor(self, name: str, node_a: str, node_b: str, resistance: float) -> Resistor:
        """Add a resistor and return it."""
        self._register_name(name)
        r = Resistor(name, _canon(node_a), _canon(node_b), resistance)
        require(r.node_a != r.node_b, f"{name}: resistor terminals must differ")
        self.resistors.append(r)
        self._touch_nodes(r.nodes)
        return r

    def capacitor(self, name: str, node_a: str, node_b: str, capacitance: float) -> Capacitor:
        """Add a capacitor and return it."""
        self._register_name(name)
        c = Capacitor(name, _canon(node_a), _canon(node_b), capacitance)
        require(c.node_a != c.node_b, f"{name}: capacitor terminals must differ")
        self.capacitors.append(c)
        self._touch_nodes(c.nodes)
        return c

    def vsource(self, name: str, node_pos: str, node_neg: str,
                source: "float | SourceFunction") -> VoltageSource:
        """Add an ideal voltage source (DC number, PWL pairs, SourceFunction
        or Waveform accepted) and return it."""
        self._register_name(name)
        v = VoltageSource(name, _canon(node_pos), _canon(node_neg), as_source(source))
        self.vsources.append(v)
        self._touch_nodes(v.nodes)
        return v

    def isource(self, name: str, node_pos: str, node_neg: str,
                source: "float | SourceFunction") -> CurrentSource:
        """Add an ideal current source and return it."""
        self._register_name(name)
        i = CurrentSource(name, _canon(node_pos), _canon(node_neg), as_source(source))
        self.isources.append(i)
        self._touch_nodes(i.nodes)
        return i

    def mosfet(self, name: str, drain: str, gate: str, source: str,
               params: MosfetParams, w: float, length: float,
               with_parasitics: bool = True) -> Mosfet:
        """Add a MOSFET, optionally with its geometric parasitic capacitors.

        Parasitics (as explicit linear capacitors):

        * ``Cgs = 2/3 · Cox·W·L`` gate-to-source,
        * ``Cgd = 1/3 · Cox·W·L`` gate-to-drain (Miller coupling),
        * ``Cdb = cj · W`` drain-to-ground.
        """
        self._register_name(name)
        m = Mosfet(name, _canon(drain), _canon(gate), _canon(source), params, w, length)
        self.mosfets.append(m)
        self._touch_nodes(m.nodes)
        if with_parasitics:
            cg = params.gate_capacitance(w, length)
            cdb = params.drain_capacitance(w)
            if m.gate != m.source:
                self.capacitor(f"{name}.cgs", m.gate, m.source, (2.0 / 3.0) * cg)
            if m.gate != m.drain:
                self.capacitor(f"{name}.cgd", m.gate, m.drain, (1.0 / 3.0) * cg)
            if m.drain != GROUND:
                self.capacitor(f"{name}.cdb", m.drain, GROUND, cdb)
        return m

    # ------------------------------------------------------------------
    # Composite builders
    # ------------------------------------------------------------------
    def inverter(self, name: str, inp: str, out: str, vdd_node: str,
                 wn: float, wp: float, length: float = 0.13e-6,
                 nmos_params: MosfetParams = NMOS_013,
                 pmos_params: MosfetParams = PMOS_013) -> None:
        """Add a static CMOS inverter between ``inp`` and ``out``.

        The PMOS source ties to ``vdd_node``; the NMOS source to ground.
        """
        self.mosfet(f"{name}.mp", drain=out, gate=inp, source=vdd_node,
                    params=pmos_params, w=wp, length=length)
        self.mosfet(f"{name}.mn", drain=out, gate=inp, source=GROUND,
                    params=nmos_params, w=wn, length=length)

    def stats(self) -> dict[str, int]:
        """Element and node counts, for reports and sanity checks."""
        return {
            "nodes": len(self._nodes),
            "resistors": len(self.resistors),
            "capacitors": len(self.capacitors),
            "vsources": len(self.vsources),
            "isources": len(self.isources),
            "mosfets": len(self.mosfets),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (f"Circuit({self.name!r}, nodes={s['nodes']}, R={s['resistors']}, "
                f"C={s['capacitors']}, V={s['vsources']}, M={s['mosfets']})")
