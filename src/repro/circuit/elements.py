"""Circuit element records.

Elements are plain data: they name their terminals and hold their values.
All electrical behaviour lives in the analyses (:mod:`repro.circuit.mna`,
:mod:`repro.circuit.transient`), which read these records and stamp the
system matrices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .._util import require
from .mosfet import MosfetParams
from .sources import SourceFunction

__all__ = ["Resistor", "Capacitor", "VoltageSource", "CurrentSource", "Mosfet", "Element"]


@dataclass(frozen=True)
class Resistor:
    """A linear resistor between ``node_a`` and ``node_b``."""

    name: str
    node_a: str
    node_b: str
    resistance: float

    def __post_init__(self) -> None:
        require(self.resistance > 0.0, f"{self.name}: resistance must be positive")

    @property
    def conductance(self) -> float:
        """1 / R."""
        return 1.0 / self.resistance

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.node_a, self.node_b)


@dataclass(frozen=True)
class Capacitor:
    """A linear capacitor between ``node_a`` and ``node_b``."""

    name: str
    node_a: str
    node_b: str
    capacitance: float

    def __post_init__(self) -> None:
        require(self.capacitance > 0.0, f"{self.name}: capacitance must be positive")

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.node_a, self.node_b)


@dataclass(frozen=True)
class VoltageSource:
    """An ideal voltage source; ``node_pos`` is held at ``source(t)`` above
    ``node_neg``.  Adds one branch-current unknown to the MNA system."""

    name: str
    node_pos: str
    node_neg: str
    source: SourceFunction

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.node_pos, self.node_neg)


@dataclass(frozen=True)
class CurrentSource:
    """An ideal current source pushing ``source(t)`` amperes from
    ``node_pos`` through the source into ``node_neg`` (SPICE convention:
    positive current flows out of the positive terminal externally)."""

    name: str
    node_pos: str
    node_neg: str
    source: SourceFunction

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.node_pos, self.node_neg)


@dataclass(frozen=True)
class Mosfet:
    """A MOSFET instance.

    The bulk terminal is implicit (tied to the appropriate rail by the
    model; body effect is not modelled).  Fixed linear capacitances derived
    from geometry — gate-to-source, gate-to-drain (Miller) and
    drain-to-bulk — are added by the netlist builder as explicit
    :class:`Capacitor` elements so all analyses see them uniformly.
    """

    name: str
    drain: str
    gate: str
    source: str
    params: MosfetParams
    w: float
    length: float

    def __post_init__(self) -> None:
        require(self.w > 0.0 and self.length > 0.0, f"{self.name}: W, L must be positive")

    @property
    def beta(self) -> float:
        """Transconductance factor ``kp · W / L``."""
        return self.params.beta(self.w, self.length)

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.drain, self.gate, self.source)


Element = Resistor | Capacitor | VoltageSource | CurrentSource | Mosfet
