"""Nonlinear transient analysis.

Fixed-step trapezoidal integration with Newton–Raphson at every step, the
workhorse of this reproduction: it plays the role Hspice plays in the
paper.  Capacitors use trapezoidal companion models (second-order
accurate); MOSFETs are linearised per Newton iteration via
:meth:`~repro.circuit.mna.MnaSystem.stamp_mosfets`.  When a step fails to
converge it is retried with recursive step halving.

The step size is chosen by the caller; the experiments use 1–2 ps, which
resolves 150 ps slews and crosstalk pulses comfortably (validated against
analytic RC responses and ``scipy`` reference integrations in the tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import require
from ..core.waveform import Waveform
from .dc import dc_operating_point
from .mna import MnaSystem
from .netlist import Circuit

__all__ = ["TransientResult", "simulate_transient", "TransientOptions", "ConvergenceError"]


class ConvergenceError(RuntimeError):
    """Raised when Newton iteration fails even after step halving."""


@dataclass(frozen=True)
class TransientOptions:
    """Knobs of the transient solver.

    Attributes
    ----------
    abstol:
        Newton convergence threshold on voltage updates (volts).
    max_newton:
        Maximum Newton iterations per (sub)step.
    max_halvings:
        Maximum recursive step halvings on non-convergence.
    v_limit:
        Per-iteration clamp on voltage updates (volts); damps overshoot.
    """

    abstol: float = 1e-6
    max_newton: int = 60
    max_halvings: int = 10
    v_limit: float = 0.6


class TransientResult:
    """Simulation output: node voltages (and branch currents) over time.

    Access node waveforms with :meth:`waveform` or dictionary-style with
    :meth:`voltage_samples`.
    """

    def __init__(self, mna: MnaSystem, times: np.ndarray, solutions: np.ndarray):
        self._mna = mna
        self.times = times
        self._x = solutions  # shape (n_steps, size)

    @property
    def node_names(self) -> list[str]:
        """Names of all non-ground nodes."""
        return list(self._mna.node_names)

    def voltage_samples(self, node: str) -> np.ndarray:
        """Raw sampled voltages at ``node`` (zeros for ground)."""
        idx = self._mna.index_of(node)
        if idx < 0:
            return np.zeros_like(self.times)
        return self._x[:, idx]

    def waveform(self, node: str) -> Waveform:
        """The voltage at ``node`` as a :class:`~repro.core.waveform.Waveform`."""
        return Waveform(self.times, self.voltage_samples(node))

    def branch_current(self, vsource_name: str) -> np.ndarray:
        """Current through a voltage source (positive into its + terminal)."""
        row = self._mna.branch_index[vsource_name]
        return self._x[:, row]

    def final_voltages(self) -> dict[str, float]:
        """Node → final voltage map (useful as the next run's initial state)."""
        return {name: float(self._x[-1, self._mna.node_index[name]])
                for name in self._mna.node_names}


def _cap_stamp_matrix(mna: MnaSystem, a: np.ndarray, h: float) -> np.ndarray:
    """Add trapezoidal capacitor companion conductances ``2C/h`` to ``a``."""
    geq = 2.0 * mna.cap_c / h
    for k in range(mna.n_caps):
        MnaSystem._stamp_conductance(a, int(mna.cap_i[k]), int(mna.cap_j[k]), float(geq[k]))
    return a


def _cap_voltages(mna: MnaSystem, x: np.ndarray) -> np.ndarray:
    """Voltage across every capacitor at solution ``x``."""
    vi = mna._terminal_voltages(x, mna.cap_i)
    vj = mna._terminal_voltages(x, mna.cap_j)
    return vi - vj


def _newton_solve(
    mna: MnaSystem,
    a_base: np.ndarray,
    rhs_base: np.ndarray,
    x0: np.ndarray,
    opts: TransientOptions,
) -> np.ndarray | None:
    """Newton iteration for ``a_base``-plus-MOSFETs; ``None`` on failure."""
    x = x0.copy()
    if mna.n_mosfets == 0:
        return np.linalg.solve(a_base, rhs_base)
    for _ in range(opts.max_newton):
        a = a_base.copy()
        rhs = rhs_base.copy()
        mna.stamp_mosfets(a, rhs, x)
        x_new = np.linalg.solve(a, rhs)
        dx = x_new - x
        dv = dx[: mna.n_nodes]
        worst = float(np.max(np.abs(dv))) if dv.size else 0.0
        limited = worst > opts.v_limit
        if limited:
            dx = dx * (opts.v_limit / worst)
        x = x + dx
        if not limited and worst < opts.abstol:
            return x
    return None


def simulate_transient(
    circuit: Circuit,
    t_stop: float,
    dt: float,
    t_start: float = 0.0,
    initial_voltages: dict[str, float] | None = None,
    use_ic: bool = False,
    options: TransientOptions | None = None,
    record_branches: bool = True,
) -> TransientResult:
    """Run a transient analysis and return sampled node voltages.

    Parameters
    ----------
    circuit:
        The netlist to simulate.
    t_stop:
        End time (seconds); must exceed ``t_start``.
    dt:
        Output/base time step.  The solver subdivides internally when
        Newton struggles, but reports results on this uniform grid.
    t_start:
        Start time of the analysis window.
    initial_voltages:
        Optional node → voltage seed.  By default a DC operating point at
        ``t_start`` (seeded with these values) sets the initial state.
    use_ic:
        When ``True``, skip the DC solve and start *exactly* from
        ``initial_voltages`` (unset nodes start at 0 V) — SPICE's ``UIC``.
    options:
        Solver tolerances; defaults are fine for the experiments.
    record_branches:
        Kept for API clarity; branch currents are always solved, this flag
        is reserved for future trimming of the result payload.

    Returns
    -------
    TransientResult

    Raises
    ------
    ConvergenceError
        If a time step cannot be converged even after step halving.
    """
    require(t_stop > t_start, "t_stop must exceed t_start")
    require(dt > 0.0, "dt must be positive")
    opts = options or TransientOptions()
    mna = MnaSystem(circuit)

    # --- initial state -------------------------------------------------
    if use_ic:
        x = np.zeros(mna.size)
        for node, v in (initial_voltages or {}).items():
            idx = mna.index_of(node)
            if idx >= 0:
                x[idx] = v
    else:
        x = dc_operating_point(circuit, at_time=t_start, initial_voltages=initial_voltages,
                               mna=mna).solution

    n_steps = int(round((t_stop - t_start) / dt))
    require(n_steps >= 1, "simulation window shorter than one step")
    times = t_start + dt * np.arange(n_steps + 1)

    solutions = np.empty((n_steps + 1, mna.size))
    solutions[0] = x

    # Trapezoidal history: capacitor currents at the previous accepted point.
    # Starting from DC (or UIC) the capacitor currents are zero.
    i_cap = np.zeros(mna.n_caps)

    # Matrix with companion conductances is constant per step size; cache
    # the common full-step matrix and rebuild only for halved substeps.
    a_cache: dict[float, np.ndarray] = {}

    def base_matrix(h: float) -> np.ndarray:
        if h not in a_cache:
            a_cache[h] = _cap_stamp_matrix(mna, mna.g_lin.copy(), h)
        return a_cache[h]

    def advance(x_prev: np.ndarray, i_cap_prev: np.ndarray, t_prev: float, h: float,
                depth: int) -> tuple[np.ndarray, np.ndarray]:
        """One trapezoidal step from ``t_prev`` to ``t_prev + h``."""
        geq = 2.0 * mna.cap_c / h
        vcap_prev = _cap_voltages(mna, x_prev)
        ieq = geq * vcap_prev + i_cap_prev
        rhs = mna.source_rhs(t_prev + h)
        for k in range(mna.n_caps):
            i, j = int(mna.cap_i[k]), int(mna.cap_j[k])
            if i >= 0:
                rhs[i] += ieq[k]
            if j >= 0:
                rhs[j] -= ieq[k]
        x_new = _newton_solve(mna, base_matrix(h), rhs, x_prev, opts)
        if x_new is None:
            if depth >= opts.max_halvings:
                raise ConvergenceError(
                    f"Newton failed at t={t_prev + h:.4e}s even at dt={h:.2e}s"
                )
            x_mid, i_mid = advance(x_prev, i_cap_prev, t_prev, h / 2, depth + 1)
            return advance(x_mid, i_mid, t_prev + h / 2, h / 2, depth + 1)
        i_cap_new = geq * _cap_voltages(mna, x_new) - ieq
        return x_new, i_cap_new

    for step in range(n_steps):
        x, i_cap = advance(x, i_cap, float(times[step]), dt, 0)
        solutions[step + 1] = x

    return TransientResult(mna, times, solutions)
