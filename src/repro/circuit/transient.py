"""Nonlinear transient analysis — scalar and batched.

Fixed-step trapezoidal integration with Newton–Raphson at every step, the
workhorse of this reproduction: it plays the role Hspice plays in the
paper.  Capacitors use trapezoidal companion models (second-order
accurate); MOSFETs are linearised per Newton iteration via
:meth:`~repro.circuit.mna.MnaSystem.stamp_mosfets`.  When a step fails to
converge it is retried with recursive step halving.

The step size is chosen by the caller; the experiments use 1–2 ps, which
resolves 150 ps slews and crosstalk pulses comfortably (validated against
analytic RC responses and ``scipy`` reference integrations in the tests).

Batched simulation
------------------
The experiments run the *same topology* under many stimuli (noise-case
sweeps, one circuit per aggressor alignment; technique evaluation, one
receiver fixture per Γ_eff).  Two entry points amortise the per-step
Python cost across those variants:

* :func:`simulate_transient_batch` — B variants of one circuit, given as
  :class:`BatchStimulus` source/initial-state overrides, advanced through
  a single Newton loop over stacked ``(B, n, n)`` matrices with batched
  ``np.linalg.solve``.
* :func:`simulate_transient_many` — a list of independent
  :class:`TransientJob` simulations.  Jobs are grouped by
  :meth:`~repro.circuit.mna.MnaSystem.topology_signature` (plus time grid
  and solver options); each compatible group runs through the batched
  engine, singleton groups fall back to the scalar path.

In fixed-grid mode both return results numerically equivalent to running
:func:`simulate_transient` per variant: the batched Newton iteration
freezes converged variants and applies the same per-variant convergence
and voltage-limiting tests as the scalar loop, and a variant whose step
fails to converge falls back to the scalar recursive step-halving path on
its own.  Variants may have different ``t_stop`` values (sharing
``t_start``/``dt``); each result is truncated to its own window.  (For
the adaptive mode's batched-vs-scalar contract see *Adaptive time
stepping* below.)

Adaptive time stepping
----------------------
``TransientOptions(adaptive=True)`` switches both engines to
local-truncation-error-controlled step selection.  The solver still
*lives on* the caller's base grid — every accepted time point is
``t_start + k·dt`` for an integer ``k``, so adaptive results are a
sub-grid of the fixed-grid reference — but in quiet stretches it takes
strides of ``2**level`` base steps at a time.  Acceptance is governed by
a predictor/corrector difference: the trapezoidal solution of each trial
step is compared against the linear extrapolation of the two previous
accepted points, weighted by ``lte_atol + lte_rtol·|v|`` per node.  A
trial stride whose estimate exceeds the tolerance is rejected and
retried shorter (shrink is immediate and proportional); strides grow one
rung at a time only after ``_GROW_AFTER`` consecutive accepted steps
whose estimate stayed below ``_GROW_FRACTION`` of the tolerance — a
PI-flavoured controller: proportional shrink, integrating growth.

Base-``dt`` steps are always accepted (the fixed grid is the accuracy
reference; adaptive mode must never be *worse* than it): up to the
first grown stride the adaptive run is bit-identical to the fixed grid,
and later base-stepped stretches apply the identical per-step Newton
recursion from a state within the LTE tolerance of the fixed-grid one.  Growth is additionally fenced by *source barriers* —
base-grid indices of every significant stimulus corner (PWL/ramp
corners, the active span of sampled-waveform sources) — which a stride
may never cross: landing on a barrier resets the ladder, so a late
aggressor can never be stepped over and sharp activity onsets always
restart at base resolution.  Between corners the LTE tests alone govern
the stride — a long, gentle slew whose response passes them may be
strided over (still within tolerance) — while the fast transitions of
the experiments hold the engine at base ``dt``, and the grown strides
concentrate in the settled tails that dominate ``t_stop ≫ transition``
windows.

In the batched engine the whole group advances in lockstep on the
minimum accepted stride (one variant's rejection shrinks the step for
all), which keeps the stacked solves and the step-matrix cache shared.
Consequence: a job's accepted grid depends on its group membership, so
batched-vs-scalar equivalence in adaptive mode is "both within the LTE
tolerance of the golden fixed grid" (pinned by the golden-grid harness
in ``tests/test_adaptive_stepping.py``) rather than the fixed-grid
engines' <1e-9 V contract.  The shard scheduler keeps adaptive groups
whole for the same reason, which preserves the sharded ≡ serial
equivalence bit for bit.

Matrix caching
--------------
The linear system matrix with capacitor companion conductances is constant
per step size.  It is cached keyed on the *quantised step value*: every
step the engines take is ``dt·m`` for a small integer or ``dt/2**depth``
from halving — exact binary/ladder scalings of the base step, so equal
steps produce bit-identical keys and repeated halvings (or repeated
strides at one ladder rung) hit the cache deterministically.  The cache
is a bounded LRU (``_STEP_CACHE_ENTRIES``), since the adaptive ladder
plus barrier-clamped strides can visit more step sizes than the
fixed-grid engine's halving depths.  For MOSFET-free circuits
(RC/interconnect networks) the cached entry also carries a factorisation
that is reused across all steps and variants.

Solver backends
---------------
The per-step linear solves are pluggable (:mod:`repro.circuit.solvers`).
A sparsity-pattern signature of the companion-stamped system matrix —
size, density and reverse-Cuthill–McKee bandwidth, computed once per
topology and cached on :class:`~repro.circuit.mna.MnaSystem` — selects
the backend when ``TransientOptions.backend`` is ``"auto"``:

* ``dense`` — stacked LAPACK LU; small systems (including the
  paper-scale MOSFET testbenches, whose Newton loops beat any
  structured overhead at ~30 unknowns).
* ``banded`` — RCM reordering plus banded LU sweeps: pure RC lines from
  :mod:`repro.interconnect.rcline` permute to tridiagonal form (the
  Thomas recursion), coupled bundles to block-tridiagonal; O(n·b) per
  step instead of O(n²).  This is what lifts the node-count ceiling of
  line-dominated netlists.
* ``sparse`` — SuperLU factor reuse; large low-density systems that do
  not flatten to a narrow band (meshes, many-line bundles).

MOSFET circuits take the *pattern-frozen Newton* interpretation of the
same names: the Jacobian's sparsity pattern — linear stamps plus device
fill — is fixed per topology, so each Newton iteration updates a
preallocated nnz vector through precomputed scatter maps
(O(nnz), :meth:`~repro.circuit.mna.MnaSystem.sparse_maps`) and pays only
a *numeric* refactorization.  ``sparse`` refactorises with SuperLU
against the frozen symbolic pattern; ``banded`` is the block-bordered
kernel for gate-plus-interconnect topologies — the banded interconnect
core is factored once per step size and each iteration refactorises only
the border-sized Schur complement of the device block
(:meth:`~repro.circuit.mna.MnaSystem.newton_partition`).  ``auto``
engages them past ~64 unknowns; singular structured refactorizations
fall back to the dense Newton path mid-solve (counted in
``stats["newton_fallbacks"]``).  This is what extends the node-count
ceiling to gate-plus-interconnect netlists, not just passive lines.

DC operating points of batched groups take the same treatment:
:func:`~repro.circuit.dc.dc_operating_point_batch` solves every
variant's initial state in one stacked pass, sharing this backend
selection.  Linear (MOSFET-free) groups additionally thread their
trapezoidal capacitor history in node space — ``r' = 2·S·x' − r`` with
``S`` the sparse companion-conductance matrix — so the whole per-step
cost outside the solve is one sparse matvec, independent of the
capacitor count.
"""

from __future__ import annotations

import copy
import math
from collections import OrderedDict
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from dataclasses import replace as _dc_replace

import numpy as np

from time import perf_counter

from .._knobs import knob
from .._util import require
from ..core.waveform import Waveform
from .dc import dc_operating_point, dc_operating_point_batch
from .kernels.backend import resolve_kernel
from .kernels.step_kernels import companion_rhs
from .mna import MnaSystem, stacked_newton
from .netlist import Circuit
from .solvers import BACKENDS, factorize, select_backend, sparse_csr
from .sources import as_source

__all__ = [
    "TransientResult",
    "simulate_transient",
    "TransientOptions",
    "ConvergenceError",
    "TransientJob",
    "BatchStimulus",
    "simulate_transient_batch",
    "simulate_transient_many",
    "job_group_key",
    "resolve_adaptive",
]


class ConvergenceError(RuntimeError):
    """Raised when Newton iteration fails even after step halving."""


def resolve_adaptive(flag: "bool | None" = None) -> bool:
    """Resolve an adaptive-stepping request against the environment.

    ``True``/``False`` pass through; ``None`` means "let the environment
    decide": the ``REPRO_ADAPTIVE`` knob (``1``/``true``/``yes``/``on``;
    declared in :mod:`repro._knobs`) enables LTE-controlled stepping for
    every driver that did not pin a mode explicitly.  Read per call so
    tests can monkeypatch the environment.
    """
    if flag is not None:
        return bool(flag)
    return knob("REPRO_ADAPTIVE")


@dataclass(frozen=True)
class TransientOptions:
    """Knobs of the transient solver.

    Attributes
    ----------
    abstol:
        Newton convergence threshold on voltage updates (volts).
    max_newton:
        Maximum Newton iterations per (sub)step.
    max_halvings:
        Maximum recursive step halvings on non-convergence.
    v_limit:
        Per-iteration clamp on voltage updates (volts); damps overshoot.
    backend:
        Linear-solver backend for the per-step solves: ``"auto"``
        (default — selected from the topology's sparsity pattern, see
        the module docstring), or force ``"dense"`` / ``"sparse"`` /
        ``"banded"``.  On MOSFET circuits the structured names select
        the pattern-frozen Newton kernels (sparse refactorization /
        block-bordered banded).
    adaptive:
        ``True`` enables LTE-controlled adaptive time stepping (see the
        module docstring).  The result then lives on a non-uniform
        sub-grid of the base ``dt`` grid.
    lte_rtol, lte_atol:
        Per-node weight of the local-truncation-error test: a trial
        stride is accepted when the predictor/corrector difference stays
        below ``lte_atol + lte_rtol·|v|`` everywhere.  The defaults keep
        adaptive runs within ~1e-6·Vdd of the fixed grid.
    max_step:
        Upper bound on a grown step (seconds); ``0.0`` (default) means
        ``dt · 2**_DEFAULT_GROWTH_RUNGS``.  The base ``dt`` is the floor
        of every step, so a positive value below ``dt`` is rejected at
        simulation time.
    min_step:
        Lower bound on Newton-failure step halving (seconds); ``0.0``
        (default) leaves ``max_halvings`` as the only floor.
    """

    abstol: float = 1e-6
    max_newton: int = 60
    max_halvings: int = 10
    v_limit: float = 0.6
    backend: str = "auto"
    adaptive: bool = False
    lte_rtol: float = 5e-7
    lte_atol: float = 2e-7
    max_step: float = 0.0
    min_step: float = 0.0

    def __post_init__(self) -> None:
        require(self.backend in BACKENDS,
                f"unknown solver backend {self.backend!r}; "
                f"expected one of {BACKENDS}")
        require(self.lte_rtol >= 0.0, "lte_rtol must be non-negative")
        require(self.lte_atol > 0.0, "lte_atol must be positive")
        require(self.max_step >= 0.0, "max_step must be non-negative")
        require(self.min_step >= 0.0, "min_step must be non-negative")


class TransientResult:
    """Simulation output: node voltages (and branch currents) over time.

    Access node waveforms with :meth:`waveform` or dictionary-style with
    :meth:`voltage_samples`.  ``stats`` carries solver diagnostics
    (``newton_iters``, ``halvings``, ``matrix_builds``, ``batch_size``;
    adaptive runs add ``adaptive``/``lte_rejects``).

    The time axis is *not* necessarily uniform: LTE-controlled runs
    (``TransientOptions.adaptive``) report the accepted non-uniform
    sub-grid of the base step.  Every accessor is grid-agnostic —
    :meth:`waveform` returns a piecewise-linear record over the actual
    sample times, :meth:`final_voltages` and :meth:`branch_current` read
    rows directly, and :meth:`voltages_at` resamples a node onto any
    axis.  Consumers that assume a constant spacing should consult
    :attr:`uniform_grid` / :meth:`step_sizes` first.
    """

    def __init__(self, mna: MnaSystem, times: np.ndarray, solutions: np.ndarray,
                 stats: dict | None = None):
        self._mna = mna
        self.times = times
        self._x = solutions  # shape (n_steps, size)
        self.stats = dict(stats) if stats else {}

    @property
    def node_names(self) -> list[str]:
        """Names of all non-ground nodes."""
        return list(self._mna.node_names)

    def voltage_samples(self, node: str) -> np.ndarray:
        """Raw sampled voltages at ``node`` (zeros for ground)."""
        idx = self._mna.index_of(node)
        if idx < 0:
            return np.zeros_like(self.times)
        return self._x[:, idx]

    def waveform(self, node: str) -> Waveform:
        """The voltage at ``node`` as a :class:`~repro.core.waveform.Waveform`."""
        return Waveform(self.times, self.voltage_samples(node))

    def branch_current(self, vsource_name: str) -> np.ndarray:
        """Current through a voltage source (positive into its + terminal)."""
        row = self._mna.branch_index[vsource_name]
        return self._x[:, row]

    def final_voltages(self) -> dict[str, float]:
        """Node → final voltage map (useful as the next run's initial state)."""
        return {name: float(self._x[-1, self._mna.node_index[name]])
                for name in self._mna.node_names}

    @property
    def uniform_grid(self) -> bool:
        """True when all sample spacings are (numerically) equal."""
        steps = self.step_sizes()
        if steps.size <= 1:
            return True
        return bool(np.allclose(steps, steps[0], rtol=1e-9, atol=0.0))

    def step_sizes(self) -> np.ndarray:
        """The accepted step sizes (``np.diff`` of the time axis)."""
        return np.diff(self.times)

    def voltages_at(self, node: str, times: np.ndarray) -> np.ndarray:
        """Node voltages linearly resampled onto an arbitrary time axis.

        The common-axis accessor of the golden-grid comparisons: adaptive
        and fixed-grid results of the same circuit can be differenced on
        any shared grid regardless of their native sampling.
        """
        return np.interp(np.asarray(times, dtype=np.float64),
                         self.times, self.voltage_samples(node))


@dataclass(frozen=True)
class TransientJob:
    """One independent transient simulation, for :func:`simulate_transient_many`.

    Mirrors the parameters of :func:`simulate_transient`; jobs whose
    circuits share a topology (and whose ``t_start``/``dt``/``options``
    agree) are solved together through the batched engine.
    """

    circuit: Circuit
    t_stop: float
    dt: float
    t_start: float = 0.0
    initial_voltages: Mapping[str, float] | None = None
    use_ic: bool = False
    options: TransientOptions | None = None

    def run(self) -> "TransientResult":
        """Run this job alone through the sequential engine.

        Forwards every field, so ``job.run()`` is the per-job sequential
        baseline equivalent to batching the job through
        :func:`simulate_transient_many`.
        """
        return simulate_transient(
            self.circuit, t_stop=self.t_stop, dt=self.dt, t_start=self.t_start,
            initial_voltages=dict(self.initial_voltages)
            if self.initial_voltages is not None else None,
            use_ic=self.use_ic, options=self.options)


@dataclass(frozen=True)
class BatchStimulus:
    """Per-variant overrides for :func:`simulate_transient_batch`.

    Attributes
    ----------
    sources:
        Source-name → stimulus map (anything
        :func:`~repro.circuit.sources.as_source` accepts).  Named voltage
        and current sources of the base circuit are replaced; unnamed ones
        keep their base stimulus.
    initial_voltages:
        Node → volts seed for this variant's DC solve (or exact initial
        state with ``use_ic``).
    use_ic:
        Skip the DC solve and start exactly from ``initial_voltages``.
    t_stop:
        Optional per-variant end time (defaults to the batch ``t_stop``).
        Must share the batch ``t_start`` and ``dt`` grid.
    """

    sources: Mapping[str, object] = field(default_factory=dict)
    initial_voltages: Mapping[str, float] | None = None
    use_ic: bool = False
    t_stop: float | None = None


def _cap_stamp_matrix(mna: MnaSystem, a: np.ndarray, h: float) -> np.ndarray:
    """Add trapezoidal capacitor companion conductances ``2C/h`` to ``a``."""
    geq = 2.0 * mna.cap_c / h
    for k in range(mna.n_caps):
        MnaSystem._stamp_conductance(a, int(mna.cap_i[k]), int(mna.cap_j[k]), float(geq[k]))
    return a


def _cap_voltages(mna: MnaSystem, x: np.ndarray) -> np.ndarray:
    """Voltage across every capacitor at solution ``x``."""
    vi = mna._terminal_voltages(x, mna.cap_i)
    vj = mna._terminal_voltages(x, mna.cap_j)
    return vi - vj


#: Above this many pattern cells (``n_caps × size``) the batched capacitor
#: gather/scatter goes through a CSR incidence matrix instead of a dense
#: matmul (the dense product costs O(n_caps · size · B) per step and
#: dominates large RC bundles; tiny circuits keep the cheaper dense path).
_SPARSE_CAP_CELLS = 32768


#: Bound on live `_StepMatrixCache` entries.  The fixed-grid engine only
#: ever visits `max_halvings + 1` step sizes; the adaptive ladder plus
#: barrier-clamped strides can visit more, so entries are LRU-evicted
#: past this count (factorisations for revisited rungs rebuild cheaply).
_STEP_CACHE_ENTRIES = 16


def _phase_timers() -> "dict | None":
    """A fresh phase-timer dict, or ``None`` when timing is disabled.

    ``REPRO_PHASE_TIMERS=1`` (declared in :mod:`repro._knobs`) turns it
    on; the engines then publish ``stats["phase_seconds"]`` with
    ``factor`` (matrix builds and factorizations), ``stamp``
    (companion/rhs assembly), ``device_eval`` (MOSFET linearisation and
    stamping), ``solve`` (linear solves, and whole fused kernel calls),
    ``overhead`` (everything else) and ``total``.  Disabled runs pay
    exactly one environment lookup per engine invocation — every timing
    site is guarded by a ``None`` check.
    """
    return {} if knob("REPRO_PHASE_TIMERS") else None


def _phase_add(timers: "dict | None", key: str, dt: float) -> None:
    if timers is not None:
        timers[key] = timers.get(key, 0.0) + dt


def _phase_close(timers: "dict | None", stats: dict, t_start: float) -> None:
    """Finalise a timer dict into ``stats["phase_seconds"]``."""
    if timers is None:
        return
    total = perf_counter() - t_start
    known = sum(timers.values())
    timers["overhead"] = max(0.0, total - known)
    timers["total"] = total
    stats["phase_seconds"] = timers


class _StepMatrixCache:
    """Companion-stamped matrices keyed on the quantised step value.

    Every step either engine takes is an exact scaling of the base step
    — ``dt·m`` for an integer stride of the adaptive ladder, ``dt/2**k``
    from Newton-failure halving — so equal steps reproduce bit-identical
    ``h`` floats and the float key is deterministic (the pre-adaptive
    cache keyed on the integer halving depth, which the growth ladder
    cannot express).  Entries are LRU-bounded at
    :data:`_STEP_CACHE_ENTRIES`.  For MOSFET-free circuits each entry
    carries a factorisation — dense, banded or sparse LU, resolved once
    per topology from the sparsity pattern (see the module docstring) —
    reused by every step (and every batch variant) at that step size.
    """

    def __init__(self, mna: MnaSystem, dt: float, backend: str = "auto",
                 kernel=None, timers: "dict | None" = None):
        self.mna = mna
        self._dt = dt
        # The array-kernel backend every Newton solve of this run
        # dispatches through (resolved once — REPRO_KERNEL / installed
        # default); orthogonal to the linear-solver ``backend`` ladder.
        self.kernel = kernel if kernel is not None else resolve_kernel()
        self.timers = timers
        self._factorize = mna.n_mosfets == 0
        # The pattern/RCM analysis is only consulted where selection (or
        # the banded factorization) needs it — forced dense/sparse runs
        # (e.g. the benchmark baselines) skip it.  MOSFET circuits
        # additionally consult the core/border partition: "auto" and
        # "banded" requests resolve to the block-bordered Newton kernel
        # when a viable one exists.
        need_structure = (backend in ("auto", "banded") if self._factorize
                          else backend == "auto")
        self._structure = mna.structure(include_caps=True) \
            if need_structure else None
        self._partition = mna.newton_partition() \
            if mna.n_mosfets and backend in ("auto", "banded") else None
        self.backend = select_backend(self._structure, mna.n_mosfets, backend,
                                      partition=self._partition)
        self._entries: "OrderedDict[float, tuple[np.ndarray, object | None, float]]" \
            = OrderedDict()
        self._kernels: "OrderedDict[float, object]" = OrderedDict()
        self.builds = 0
        # Padded-gather indices: ground terminals read the zero pad column.
        self._gi = np.where(mna.cap_i >= 0, mna.cap_i, mna.size)
        self._gj = np.where(mna.cap_j >= 0, mna.cap_j, mna.size)
        self._xpad: np.ndarray | None = None
        self._cap_csr_t = None
        self._cap_csr_t_built = False
        self._cap_s: object | None = None

    def cap_s_matvec(self, x: np.ndarray) -> np.ndarray:
        """``(B, size) → (B, size)`` product with the full-step companion
        conductance matrix ``S = Incᵀ·diag(2C/dt)·Inc``.

        The linear (MOSFET-free) engine threads its capacitor history
        entirely in node space — ``r' = 2·S·x' − r`` — so the per-step
        cost is one sparse matvec regardless of the capacitor count,
        instead of a gather + scale + scatter over every capacitor.
        """
        if self._cap_s is None:
            mna = self.mna
            geq = 2.0 * mna.cap_c / self._dt
            s = np.zeros((mna.size, mna.size))
            for k in range(mna.n_caps):
                MnaSystem._stamp_conductance(s, int(mna.cap_i[k]),
                                             int(mna.cap_j[k]), float(geq[k]))
            csr = sparse_csr(s) \
                if mna.n_caps * mna.size >= _SPARSE_CAP_CELLS else None
            self._cap_s = csr if csr is not None else s
        if isinstance(self._cap_s, np.ndarray):
            return x @ self._cap_s  # S is symmetric
        return (self._cap_s @ x.T).T

    @property
    def base_dt(self) -> float:
        """The caller's base step (the quantisation unit of the ladder)."""
        return self._dt

    def get_h(self, h: float) -> tuple[np.ndarray, object | None, float]:
        """Return ``(a_base, solver_or_None, h)`` for a step value."""
        entry = self._entries.get(h)
        if entry is None:
            t0 = perf_counter() if self.timers is not None else 0.0
            a = _cap_stamp_matrix(self.mna, self.mna.g_lin.copy(), h)
            solver = factorize(a, self.backend, self._structure) \
                if self._factorize else None
            if self.timers is not None:
                _phase_add(self.timers, "factor", perf_counter() - t0)
            entry = (a, solver, h)
            self._entries[h] = entry
            self.builds += 1
            while len(self._entries) > _STEP_CACHE_ENTRIES:
                self._entries.popitem(last=False)
        else:
            self._entries.move_to_end(h)
        return entry

    def newton_kernel(self, h: float):
        """The pattern-frozen Newton operator for step value ``h``.

        ``None`` for linear systems and for the dense Newton backend.
        The per-``h`` operators (the bordered kernel re-factors its
        banded core per step size, the sparse kernel re-scatters its
        companion conductances) are LRU-bounded alongside the matrix
        entries.  A bordered kernel whose core factorization fails at
        this step size degrades to the sparse kernel.
        """
        mna = self.mna
        if mna.n_mosfets == 0 or self.backend == "dense":
            return None
        kernel = self._kernels.get(h)
        if kernel is None:
            a_base = self.get_h(h)[0] if self.backend == "banded" else None
            t0 = perf_counter() if self.timers is not None else 0.0
            if self.backend == "banded":
                try:
                    kernel = mna.bordered_newton_step(a_base)
                except np.linalg.LinAlgError:
                    kernel = mna.sparse_newton_step(h)
            else:
                kernel = mna.sparse_newton_step(h)
            if self.timers is not None:
                _phase_add(self.timers, "factor", perf_counter() - t0)
            self._kernels[h] = kernel
            while len(self._kernels) > _STEP_CACHE_ENTRIES:
                self._kernels.popitem(last=False)
        else:
            self._kernels.move_to_end(h)
        return kernel

    def cap_gather(self, x: np.ndarray) -> np.ndarray:
        """Voltage across every capacitor for stacked solutions ``(B, size)``.

        A padded index gather (``v_i − v_j``) — bitwise identical to both
        the scalar per-terminal gather and the incidence matmul (each
        incidence row holds exactly one +1 and one −1), without the
        O(n_caps · size · B) dense product or per-call sparse dispatch.
        """
        size = self.mna.size
        if self._xpad is None or self._xpad.shape[0] != x.shape[0]:
            self._xpad = np.zeros((x.shape[0], size + 1))
        self._xpad[:, :size] = x
        return self._xpad[:, self._gi] - self._xpad[:, self._gj]

    def cap_scatter(self, ieq: np.ndarray) -> np.ndarray:
        """Companion currents ``(B, n_caps)`` scattered onto ``(B, size)``."""
        if not self._cap_csr_t_built:
            # Built on first use only (the linear engine never scatters —
            # it threads node-space state through cap_s_matvec instead):
            # a pre-transposed CSR of the incidence, since `.T` per step
            # would rebuild it and the dense matmul costs
            # O(n_caps · size · B) on large RC bundles.
            mna = self.mna
            if mna.n_caps and mna.n_caps * mna.size >= _SPARSE_CAP_CELLS:
                csr = sparse_csr(mna.cap_incidence())
                if csr is not None:
                    self._cap_csr_t = csr.T.tocsr()
            self._cap_csr_t_built = True
        if self._cap_csr_t is not None:
            return (self._cap_csr_t @ ieq.T).T
        return ieq @ self.mna.cap_incidence()


def _newton_solve(
    mna: MnaSystem,
    a_base: np.ndarray,
    rhs_base: np.ndarray,
    x0: np.ndarray,
    opts: TransientOptions,
    stats: dict,
    kernel=None,
    backend=None,
) -> np.ndarray | None:
    """Newton iteration for ``a_base``-plus-MOSFETs; ``None`` on failure.

    ``kernel`` optionally supplies a pattern-frozen structured linear
    operator (sparse refactorization or bordered-banded Schur solve); a
    singular structured refactorization falls back to the dense path for
    the remainder of the solve.  A fused kernel ``backend`` takes the
    whole solve as a stacked batch of one (the damped iteration
    sequences are identical); the NumPy reference loop below remains the
    scalar path otherwise.
    """
    if backend is not None and backend.fused:
        x, ok = stacked_newton(mna, a_base, rhs_base[None, :], x0[None, :],
                               abstol=opts.abstol, max_iter=opts.max_newton,
                               v_limit=opts.v_limit, require_unlimited=True,
                               stats=stats, kernel=kernel, backend=backend)
        return x[0] if ok[0] else None
    timers = stats.get("phase_seconds")
    x = x0.copy()
    for _ in range(opts.max_newton):
        x_new = None
        t0 = perf_counter() if timers is not None else 0.0
        if kernel is not None:
            try:
                x_new = kernel.solve(rhs_base, x)
            except np.linalg.LinAlgError:
                stats["newton_fallbacks"] = \
                    stats.get("newton_fallbacks", 0) + 1
                kernel = None
        if x_new is None:
            a = a_base.copy()
            rhs = rhs_base.copy()
            mna.stamp_mosfets(a, rhs, x)
            if timers is not None:
                _phase_add(timers, "device_eval", perf_counter() - t0)
                t0 = perf_counter()
            x_new = np.linalg.solve(a, rhs)
        if timers is not None:
            _phase_add(timers, "solve", perf_counter() - t0)
        dx = x_new - x
        dv = dx[: mna.n_nodes]
        worst = float(np.max(np.abs(dv))) if dv.size else 0.0
        limited = worst > opts.v_limit
        if limited:
            dx = dx * (opts.v_limit / worst)
        x = x + dx
        stats["newton_iters"] += 1
        if not limited and worst < opts.abstol:
            return x
    return None


def _newton_solve_batch(
    mna: MnaSystem,
    a_base: np.ndarray,
    rhs_base: np.ndarray,
    x0: np.ndarray,
    opts: TransientOptions,
    stats: dict,
    kernel=None,
    backend=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched Newton over stacked variants; returns ``(x, converged)``.

    :func:`~repro.circuit.mna.stacked_newton` with the scalar transient
    loop's convergence and voltage-limit tests; converged variants are
    frozen, so each variant reproduces the scalar iteration sequence.
    """
    return stacked_newton(mna, a_base, rhs_base, x0, abstol=opts.abstol,
                          max_iter=opts.max_newton, v_limit=opts.v_limit,
                          require_unlimited=True, stats=stats, kernel=kernel,
                          backend=backend)


def _advance_scalar(
    mna: MnaSystem,
    cache: _StepMatrixCache,
    x_prev: np.ndarray,
    i_cap_prev: np.ndarray,
    t_prev: float,
    h: float,
    opts: TransientOptions,
    stats: dict,
    halvings_left: "int | None" = None,
) -> tuple[np.ndarray, np.ndarray]:
    """One trapezoidal step of size ``h`` from ``t_prev``.

    ``halvings_left`` budgets the recursive Newton-failure halving
    (defaults to ``opts.max_halvings``); ``opts.min_step`` additionally
    floors the halved step size.
    """
    if halvings_left is None:
        halvings_left = opts.max_halvings
    a_base, solver, h = cache.get_h(h)
    timers = cache.timers
    t0 = perf_counter() if timers is not None else 0.0
    geq = 2.0 * mna.cap_c / h
    vcap_prev = _cap_voltages(mna, x_prev)
    ieq = geq * vcap_prev + i_cap_prev
    rhs = mna.source_rhs(t_prev + h)
    companion_rhs(rhs, mna.cap_i, mna.cap_j, ieq)
    if timers is not None:
        _phase_add(timers, "stamp", perf_counter() - t0)
    if solver is not None:
        t0 = perf_counter() if timers is not None else 0.0
        x_new = solver.solve(rhs)
        if timers is not None:
            _phase_add(timers, "solve", perf_counter() - t0)
    else:
        x_new = _newton_solve(mna, a_base, rhs, x_prev, opts, stats,
                              kernel=cache.newton_kernel(h),
                              backend=cache.kernel)
    if x_new is None:
        if halvings_left <= 0 or (opts.min_step > 0.0
                                  and h / 2 < opts.min_step):
            raise ConvergenceError(
                f"Newton failed at t={t_prev + h:.4e}s even at dt={h:.2e}s"
            )
        stats["halvings"] += 1
        x_mid, i_mid = _advance_scalar(mna, cache, x_prev, i_cap_prev, t_prev,
                                       h / 2, opts, stats, halvings_left - 1)
        return _advance_scalar(mna, cache, x_mid, i_mid, t_prev + h / 2,
                               h / 2, opts, stats, halvings_left - 1)
    i_cap_new = geq * _cap_voltages(mna, x_new) - ieq
    return x_new, i_cap_new


def _initial_state(
    circuit: Circuit,
    mna: MnaSystem,
    t_start: float,
    initial_voltages: Mapping[str, float] | None,
    use_ic: bool,
    backend: str = "auto",
) -> np.ndarray:
    """Initial MNA solution: exact ``UIC`` state or a seeded DC solve."""
    if use_ic:
        return mna.seed_vector(initial_voltages)
    return dc_operating_point(circuit, at_time=t_start,
                              initial_voltages=dict(initial_voltages or {}),
                              mna=mna, backend=backend).solution


def _new_stats(**extra) -> dict:
    stats = {"newton_iters": 0, "halvings": 0, "matrix_builds": 0,
             "batch_size": 1, "backend": "dense", "newton_fallbacks": 0,
             "kernel": "numpy"}
    stats.update(extra)
    return stats


def _simulate_scalar(
    circuit: Circuit,
    mna: MnaSystem,
    t_stop: float,
    dt: float,
    t_start: float,
    initial_voltages: Mapping[str, float] | None,
    use_ic: bool,
    opts: TransientOptions,
) -> TransientResult:
    """The sequential engine behind :func:`simulate_transient`."""
    require(t_stop > t_start, "t_stop must exceed t_start")
    require(dt > 0.0, "dt must be positive")

    x = _initial_state(circuit, mna, t_start, initial_voltages, use_ic,
                       backend=opts.backend)

    n_steps = int(round((t_stop - t_start) / dt))
    require(n_steps >= 1, "simulation window shorter than one step")
    times = t_start + dt * np.arange(n_steps + 1)

    solutions = np.empty((n_steps + 1, mna.size))
    solutions[0] = x

    # Trapezoidal history: capacitor currents at the previous accepted point.
    # Starting from DC (or UIC) the capacitor currents are zero.
    i_cap = np.zeros(mna.n_caps)
    timers = _phase_timers()
    t_engine = perf_counter() if timers is not None else 0.0
    cache = _StepMatrixCache(mna, dt, backend=opts.backend, timers=timers)
    stats = _new_stats(backend=cache.backend, kernel=cache.kernel.name)
    if timers is not None:
        stats["phase_seconds"] = timers

    for step in range(n_steps):
        x, i_cap = _advance_scalar(mna, cache, x, i_cap, float(times[step]),
                                   dt, opts, stats)
        solutions[step + 1] = x

    stats["matrix_builds"] = cache.builds
    _phase_close(timers, stats, t_engine)
    return TransientResult(mna, times, solutions, stats=stats)


def simulate_transient(
    circuit: Circuit,
    t_stop: float,
    dt: float,
    t_start: float = 0.0,
    initial_voltages: dict[str, float] | None = None,
    use_ic: bool = False,
    options: TransientOptions | None = None,
) -> TransientResult:
    """Run a transient analysis and return sampled node voltages.

    Parameters
    ----------
    circuit:
        The netlist to simulate.
    t_stop:
        End time (seconds); must exceed ``t_start``.
    dt:
        Output/base time step.  The solver subdivides internally when
        Newton struggles, but reports results on this uniform grid.
    t_start:
        Start time of the analysis window.
    initial_voltages:
        Optional node → voltage seed.  By default a DC operating point at
        ``t_start`` (seeded with these values) sets the initial state.
    use_ic:
        When ``True``, skip the DC solve and start *exactly* from
        ``initial_voltages`` (unset nodes start at 0 V) — SPICE's ``UIC``.
    options:
        Solver tolerances; defaults are fine for the experiments.

    Returns
    -------
    TransientResult

    Raises
    ------
    ConvergenceError
        If a time step cannot be converged even after step halving.
    """
    opts = options or TransientOptions()
    mna = MnaSystem(circuit)
    if opts.adaptive:
        job = TransientJob(circuit=circuit, t_stop=t_stop, dt=dt,
                           t_start=t_start, initial_voltages=initial_voltages,
                           use_ic=use_ic, options=opts)
        return _simulate_adaptive([job], [mna])[0]
    return _simulate_scalar(circuit, mna, t_stop, dt, t_start,
                            initial_voltages, use_ic, opts)


def _advance_batch(
    mnas: Sequence[MnaSystem],
    cache: _StepMatrixCache,
    x_prev: np.ndarray,
    ieq_prev: np.ndarray,
    t_prev: float,
    rhs: np.ndarray,
    opts: TransientOptions,
    stats: dict,
) -> tuple[np.ndarray, np.ndarray]:
    """One stacked trapezoidal Newton step for every variant in ``mnas``.

    The *nonlinear* (MOSFET) batch step — linear groups take the
    node-space recursion inside :func:`_simulate_group` instead.
    ``rhs`` carries the source right-hand sides at the step's end time
    (one row per variant); it is owned by this call and overwritten with
    the capacitor companion currents.  ``ieq_prev`` is the threaded
    companion-current state ``geq·v_cap + i_cap`` at ``x_prev``: the
    trapezoidal identity ``ieq_new = 2·geq·v_cap_new − ieq_prev`` makes
    it the only capacitor history the full-step recursion needs (one
    gather and one fused multiply-add per step, instead of maintaining
    ``i_cap`` and ``v_cap`` separately).  Variants whose Newton iteration
    fails at the full step fall back, individually, to the scalar
    recursive step-halving path; the rest advance together.  Returns
    ``(x_new, ieq_new)``.
    """
    mna0 = cache.mna
    a_base, _, h = cache.get_h(cache.base_dt)
    geq = 2.0 * mna0.cap_c / h
    timers = cache.timers
    t0 = perf_counter() if timers is not None else 0.0
    if mna0.n_caps:
        rhs += cache.cap_scatter(ieq_prev)
    if timers is not None:
        _phase_add(timers, "stamp", perf_counter() - t0)

    fallback: list[tuple[int, np.ndarray]] = []
    x_new, ok = _newton_solve_batch(mna0, a_base, rhs, x_prev, opts, stats,
                                    kernel=cache.newton_kernel(h),
                                    backend=cache.kernel)

    if not ok.all():
        if opts.max_halvings < 1:
            raise ConvergenceError(
                f"Newton failed at t={t_prev + h:.4e}s even at dt={h:.2e}s"
            )
        for pos in np.nonzero(~ok)[0]:
            stats["halvings"] += 1
            # Recover the scalar-path state (i_cap) from the threaded ieq.
            i_cap_pos = ieq_prev[pos] - geq * _cap_voltages(mna0, x_prev[pos])
            x_mid, i_mid = _advance_scalar(mnas[pos], cache, x_prev[pos],
                                           i_cap_pos, t_prev, h / 2, opts,
                                           stats, opts.max_halvings - 1)
            x_fin, i_fin = _advance_scalar(mnas[pos], cache, x_mid, i_mid,
                                           t_prev + h / 2, h / 2, opts,
                                           stats, opts.max_halvings - 1)
            x_new[pos] = x_fin
            fallback.append((int(pos), i_fin))
    t0 = perf_counter() if timers is not None else 0.0
    ieq_new = 2.0 * geq * cache.cap_gather(x_new) - ieq_prev
    if timers is not None:
        _phase_add(timers, "stamp", perf_counter() - t0)
    # Fallback variants integrated at half steps: their trapezoidal
    # history comes from the scalar recursion, not the full-step identity.
    for pos, i_fin in fallback:
        ieq_new[pos] = geq * _cap_voltages(mna0, x_new[pos]) + i_fin
    return x_new, ieq_new


def _group_setup(jobs: Sequence[TransientJob], mnas: Sequence[MnaSystem]):
    """Shared preamble of the fixed-grid and adaptive group engines.

    Validates every job's window, solves the group's initial states in
    one stacked DC pass (or applies UIC seeds — grouping guarantees a
    uniform ``use_ic`` flag), and precomputes the compact source series
    for every full base step — on the structurally nonzero rhs rows only
    (the full ``(B, T, size)`` series would be O(T · size) mostly-zero
    memory).  Returns ``(opts, steps_arr, times, x, src_cols,
    src_vals)``.
    """
    job0 = jobs[0]
    mna0 = mnas[0]
    dt = job0.dt
    t_start = job0.t_start
    opts = job0.options or TransientOptions()
    require(dt > 0.0, "dt must be positive")

    n_steps = []
    for job in jobs:
        require(job.t_stop > t_start, "t_stop must exceed t_start")
        n = int(round((job.t_stop - t_start) / dt))
        require(n >= 1, "simulation window shorter than one step")
        n_steps.append(n)
    steps_arr = np.asarray(n_steps)
    n_max = int(steps_arr.max())
    times = t_start + dt * np.arange(n_max + 1)

    batch = len(jobs)
    if job0.use_ic:
        x = np.zeros((batch, mna0.size))
        for b, job in enumerate(jobs):
            mna0.seed_vector(job.initial_voltages, out=x[b])
    else:
        dc = dc_operating_point_batch(
            [job.circuit for job in jobs], at_time=t_start,
            initial_voltages=[job.initial_voltages for job in jobs],
            mnas=mnas, backend=opts.backend)
        x = np.stack([r.solution for r in dc])

    src_cols = mna0.source_rhs_columns()
    src_vals = np.empty((batch, n_max, src_cols.size))
    for b, mna in enumerate(mnas):
        src_vals[b] = mna.source_rhs_series_compact(times[1:], src_cols)[1]
    return opts, steps_arr, times, x, src_cols, src_vals


def _simulate_group(jobs: Sequence[TransientJob],
                    mnas: Sequence[MnaSystem]) -> list[TransientResult]:
    """Batched engine for topology-compatible jobs (shared t_start/dt/options)."""
    job0 = jobs[0]
    mna0 = mnas[0]
    opts0 = job0.options or TransientOptions()
    if opts0.adaptive:
        return _simulate_adaptive(jobs, mnas)
    dt = job0.dt
    opts, steps_arr, times, x, src_cols, src_vals = _group_setup(jobs, mnas)
    n_steps = steps_arr.tolist()
    n_max = int(steps_arr.max())

    batch = len(jobs)
    solutions = np.empty((batch, n_max + 1, mna0.size))
    solutions[:, 0] = x
    timers = _phase_timers()
    t_engine = perf_counter() if timers is not None else 0.0
    cache = _StepMatrixCache(mna0, dt, backend=opts.backend, timers=timers)
    stats = _new_stats(batch_size=batch, backend=cache.backend,
                       kernel=cache.kernel.name)
    if timers is not None:
        stats["phase_seconds"] = timers

    # Halved substeps (rare) evaluate their intermediate source times on
    # demand; full steps read the precomputed compact series.
    def step_rhs(rows: np.ndarray | None, step: int) -> np.ndarray:
        vals = src_vals[:, step] if rows is None else src_vals[rows, step]
        rhs = np.zeros((vals.shape[0], mna0.size))
        rhs[:, src_cols] = vals
        return rhs

    # Trapezoidal history starts from DC (or UIC): i_cap = 0.  Linear
    # (MOSFET-free) groups thread it in node space — r₀ = S·x₀, stepped
    # as r' = 2·S·x' − r — so the per-step cost is one sparse matvec
    # regardless of the capacitor count.  Nonlinear groups thread the
    # per-capacitor companion currents ieq₀ = geq·v_cap(x₀) instead,
    # which the scalar step-halving fallback needs.
    _, solver0, h0 = cache.get_h(cache.base_dt)
    linear = solver0 is not None
    if linear:
        state = cache.cap_s_matvec(x)
    else:
        state = (2.0 * mna0.cap_c / h0) * cache.cap_gather(x)

    def advance(sub_mnas, x_sub, state_sub, t, rhs):
        if linear:
            rhs += state_sub
            t0 = perf_counter() if timers is not None else 0.0
            x_new = solver0.solve(rhs)
            if timers is not None:
                _phase_add(timers, "solve", perf_counter() - t0)
            return x_new, 2.0 * cache.cap_s_matvec(x_new) - state_sub
        return _advance_batch(sub_mnas, cache, x_sub, state_sub, t, rhs,
                              opts, stats)

    if int(steps_arr.min()) == n_max:
        # Uniform windows (the common case): every variant lives through
        # every step, so the per-step alive-set gathers (four fancy-index
        # copies each) are skipped entirely.
        for step in range(n_max):
            x, state = advance(mnas, x, state, float(times[step]),
                               step_rhs(None, step))
            solutions[:, step + 1] = x
    else:
        alive = np.arange(batch)
        for step in range(n_max):
            if alive.size and steps_arr[alive].min() <= step:
                alive = alive[steps_arr[alive] > step]
            sub_mnas = [mnas[b] for b in alive]
            x_new, state_new = advance(sub_mnas, x[alive], state[alive],
                                       float(times[step]), step_rhs(alive, step))
            x[alive] = x_new
            state[alive] = state_new
            solutions[alive, step + 1] = x_new

    stats["matrix_builds"] = cache.builds
    _phase_close(timers, stats, t_engine)
    return [
        TransientResult(mnas[b], times[: n_steps[b] + 1],
                        solutions[b, : n_steps[b] + 1], stats=stats)
        for b in range(batch)
    ]


# ----------------------------------------------------------------------
# Adaptive (LTE-controlled) stepping
# ----------------------------------------------------------------------

#: Consecutive calm accepted steps before the stride ladder climbs a rung.
_GROW_AFTER = 2
#: "Calm" growth margins per estimator order: the curvature (sag) term
#: scales ~quadratically with the stride (1/4 → at most the full weight
#: after one doubling), the truncation term ~cubically (1/20 → ~2.5x
#: margin after one doubling).
_GROW_FRACTION_SAG = 0.25
_GROW_FRACTION_LTE = 0.05
#: Ladder cap when ``TransientOptions.max_step`` is unset: dt · 2**8.
_DEFAULT_GROWTH_RUNGS = 8


def _source_barrier_steps(
    jobs: Sequence[TransientJob], t_start: float, dt: float, n_max: int,
    opts: TransientOptions,
) -> set[int]:
    """Base-grid step indices a grown stride may not cross.

    Every corner of every stimulus whose adjacent segment actually moves
    the value (beyond a tolerance *relative to that source's own span*)
    is a barrier: the engine lands on it and resumes at base resolution,
    so a stride can never skip a stimulus edge the LTE estimator — which
    only sees the *solution* history — has not noticed yet.  The
    relative form keeps the test unit-free: a microampere current glitch
    into a high-impedance node is as significant as a volt-scale ramp,
    so both fence off their active span.  Dense sampled-record sources
    (quiet leads, settled tails) compress automatically: their
    sub-tolerance segments mark nothing.
    """
    marks: set[int] = set()
    for job in jobs:
        for elem in list(job.circuit.vsources) + list(job.circuit.isources):
            src = elem.source
            bps = src.breakpoints
            if not bps:
                continue
            t = np.asarray(bps, dtype=np.float64)
            v = np.asarray(src(t), dtype=np.float64)
            span = float(v.max() - v.min())
            if span <= 0.0:
                continue
            tol = (opts.lte_atol + opts.lte_rtol) * span
            moving = np.abs(np.diff(v)) > tol
            keep = np.zeros(t.size, dtype=bool)
            keep[:-1] |= moving
            keep[1:] |= moving
            for tb in t[keep]:
                k = int(round((tb - t_start) / dt))
                if 0 < k <= n_max:
                    marks.add(k)
    return marks


def _simulate_adaptive(jobs: Sequence[TransientJob],
                       mnas: Sequence[MnaSystem]) -> list[TransientResult]:
    """LTE-controlled engine for one batch-compatible group (B ≥ 1).

    Accepted time points are a sub-grid of the fixed base grid
    (``t_start + k·dt``); in lockstep the whole group advances on the
    minimum accepted stride.  See the module docstring for the
    controller and barrier rules.
    """
    job0 = jobs[0]
    mna0 = mnas[0]
    dt = job0.dt
    t_start = job0.t_start
    batch = len(jobs)
    opts0 = job0.options or TransientOptions()
    require(opts0.max_step == 0.0 or opts0.max_step >= dt,
            f"max_step ({opts0.max_step:.3e}s) below the base step "
            f"({dt:.3e}s) cannot bound anything: the base grid is the "
            f"floor of every step")

    # Shared preamble (validation, stacked initial states, compact source
    # series on the full base grid — the engine only ever lands on
    # base-grid points, so accepted strides index into that series).
    opts, steps_arr, times, x, src_cols, src_vals = _group_setup(jobs, mnas)
    n_steps = steps_arr.tolist()
    n_max = int(steps_arr.max())

    timers = _phase_timers()
    t_engine = perf_counter() if timers is not None else 0.0
    cache = _StepMatrixCache(mna0, dt, backend=opts.backend, timers=timers)
    stats = _new_stats(batch_size=batch, backend=cache.backend,
                       kernel=cache.kernel.name,
                       adaptive=True, lte_rejects=0, newton_rejects=0)
    if timers is not None:
        stats["phase_seconds"] = timers

    if opts.max_step > 0.0:
        rung_cap = 0 if opts.max_step < 2.0 * dt else \
            int(math.floor(math.log2(opts.max_step / dt)))
    else:
        rung_cap = _DEFAULT_GROWTH_RUNGS

    source_marks = _source_barrier_steps(jobs, t_start, dt, n_max, opts)
    barrier_arr = np.array(sorted(source_marks | set(n_steps) | {n_max}),
                           dtype=np.int64)

    n_nodes = mna0.n_nodes
    i_cap = np.zeros((batch, mna0.n_caps))
    accepted = [0]
    sols = [x.copy()]
    alive = np.arange(batch)
    idx = 0          # current base-grid position
    level = 0        # stride ladder rung: stride target is 2**level steps
    calm = 0         # consecutive calm accepted steps (growth integrator)
    # Two accepted history points back the third-order LTE estimate:
    # (solution before the last stride, its length) and the pair before.
    hist1: "tuple[np.ndarray, float] | None" = None
    hist2: "tuple[np.ndarray, float] | None" = None
    bpos = 0

    while idx < n_max:
        if steps_arr[alive].min() <= idx:
            alive = alive[steps_arr[alive] > idx]
            hist1 = hist2 = None  # membership changed: history invalid
        while barrier_arr[bpos] <= idx:
            bpos += 1
        nb = int(barrier_arr[bpos])
        # Without two history points (start, barrier landing, membership
        # change) there is no LTE estimate: take base steps to rebuild.
        m = 1 if hist2 is None else min(1 << level, nb - idx)
        t_prev = float(times[idx])
        full = alive.size == batch
        x_al = x if full else x[alive]
        ic_al = i_cap if full else i_cap[alive]

        while True:
            h = dt * m if m > 1 else dt
            a_base, solver, h = cache.get_h(h)
            geq = 2.0 * mna0.cap_c / h
            ieq = geq * cache.cap_gather(x_al) + ic_al
            rhs = np.zeros((alive.size, mna0.size))
            rhs[:, src_cols] = src_vals[:, idx + m - 1] if full \
                else src_vals[alive, idx + m - 1]
            if mna0.n_caps:
                rhs += cache.cap_scatter(ieq)
            fallback: list[tuple[int, np.ndarray]] = []
            if solver is not None:
                x_cand = solver.solve(rhs)
                ok_all = True
            elif alive.size == 1:
                # Scalar Newton for singleton groups: same iterates as
                # the stacked loop without its broadcasting overhead.
                x_one = _newton_solve(mna0, a_base, rhs[0], x_al[0], opts,
                                      stats, kernel=cache.newton_kernel(h),
                                      backend=cache.kernel)
                ok_all = x_one is not None
                ok = np.array([ok_all])
                x_cand = x_one[None, :] if ok_all else x_al.copy()
            else:
                x_cand, ok = _newton_solve_batch(mna0, a_base, rhs, x_al,
                                                 opts, stats,
                                                 kernel=cache.newton_kernel(h),
                                                 backend=cache.kernel)
                ok_all = bool(ok.all())
            if not ok_all and m > 1:
                # Newton trouble on a grown stride: shrink it rather than
                # recursing below the base grid.  Counted apart from the
                # LTE rejections — convergence robustness and truncation
                # control are different failure modes to tune for.
                stats["newton_rejects"] += 1
                m = max(1, m >> 1)
                level = min(level, max(m.bit_length() - 1, 0))
                continue
            if not ok_all:
                if opts.max_halvings < 1 or (opts.min_step > 0.0
                                             and h / 2 < opts.min_step):
                    raise ConvergenceError(
                        f"Newton failed at t={t_prev + h:.4e}s even at "
                        f"dt={h:.2e}s")
                for pos in np.nonzero(~ok)[0]:
                    stats["halvings"] += 1
                    x_mid, i_mid = _advance_scalar(
                        mnas[alive[pos]], cache, x_al[pos], ic_al[pos],
                        t_prev, h / 2, opts, stats, opts.max_halvings - 1)
                    x_fin, i_fin = _advance_scalar(
                        mnas[alive[pos]], cache, x_mid, i_mid, t_prev + h / 2,
                        h / 2, opts, stats, opts.max_halvings - 1)
                    x_cand[pos] = x_fin
                    fallback.append((int(pos), i_fin))

            if hist2 is not None:
                # Two predictor/corrector differences, one per error
                # mechanism.  (a) Truncation: quadratic extrapolation
                # through the last three accepted points deviates from
                # the trapezoidal solution by ~x'''·h(h+h1)(h+h1+h2)/6,
                # which Milne-scales to the trapezoidal truncation error
                # h³·x'''/12 — the SPICE LTE test.  (b) Sag: the *linear*
                # extrapolation difference ~x''·h(h+h1)/2 bounds how far
                # the solution bows away from the chord between accepted
                # samples — what piecewise-linear consumers (waveform
                # resampling, the golden-grid comparison) actually see.
                x1, h1 = hist1
                x2, h2 = hist2
                d1 = (x_al - x1) / h1
                dd = (d1 - (x1 - x2) / h2) / (h1 + h2)
                diff_lin = x_cand - (x_al + h * d1)
                diff_quad = diff_lin - (h * (h + h1)) * dd
                fac = h * h / (2.0 * (h + h1) * (h + h1 + h2))
                ref = np.maximum(np.abs(x_cand), np.abs(x_al))[:, :n_nodes]
                weight = opts.lte_atol + opts.lte_rtol * ref
                if ref.size:
                    e_sag = float(np.max(np.abs(diff_lin)[:, :n_nodes] / weight))
                    e_lte = float(np.max(np.abs(diff_quad)[:, :n_nodes] * fac
                                         / weight))
                else:
                    e_sag = e_lte = 0.0
                e = max(e_sag, e_lte)
            else:
                e_sag = e_lte = e = math.inf
            if m == 1 or e <= 1.0:
                # Base steps are always accepted: the fixed grid is the
                # accuracy reference, adaptive mode only decides growth.
                break
            stats["lte_rejects"] += 1
            # Proportional shrink: aim the retried stride at e' ≈ 1/2
            # (the binding estimate scales at least quadratically).
            rungs_down = max(1, int(math.ceil(0.5 * math.log2(2.0 * e))))
            m = max(1, m >> rungs_down)
            level = min(level, max(m.bit_length() - 1, 0))

        ic_new = geq * cache.cap_gather(x_cand) - ieq
        for pos, i_fin in fallback:
            # Halved variants carry the scalar recursion's history, not
            # the full-stride identity.
            ic_new[pos] = i_fin
        hist2 = hist1
        hist1 = (x_al, h)
        if full:
            # Rebind instead of writing in place: ``x_al``/``hist`` still
            # reference the pre-step array.
            x = x_cand
            i_cap = ic_new
        else:
            x[alive] = x_cand
            i_cap[alive] = ic_new
        idx += m
        accepted.append(idx)
        sols.append(x.copy())
        if idx == nb and nb in source_marks:
            # Landed on a stimulus corner: resolve the upcoming activity
            # at base resolution and rebuild the history first.
            level = 0
            calm = 0
            hist1 = hist2 = None
        elif math.isfinite(e) and e_sag <= _GROW_FRACTION_SAG \
                and e_lte <= _GROW_FRACTION_LTE:
            calm += 1
            if calm >= _GROW_AFTER and level < rung_cap:
                level += 1
                calm = 0
        else:
            calm = 0

    stats["matrix_builds"] = cache.builds
    stats["steps_accepted"] = len(accepted) - 1
    _phase_close(timers, stats, t_engine)
    acc = np.asarray(accepted)
    t_acc = times[acc]
    sol_arr = np.stack(sols)  # (n_accepted + 1, batch, size)
    results = []
    for b in range(batch):
        # Every job's window end is a barrier, so it was landed exactly.
        pos = int(np.searchsorted(acc, n_steps[b]))
        results.append(TransientResult(mnas[b], t_acc[:pos + 1],
                                       sol_arr[:pos + 1, b], stats=stats))
    return results


def job_group_key(job: TransientJob, mna: MnaSystem) -> tuple:
    """Batch-compatibility key of a job: equal keys may share one stacked
    Newton loop.

    Shared by :func:`simulate_transient_many` (in-process grouping) and
    the shard scheduler of :mod:`repro.exec.pool` (process-level
    partitioning), so both layers agree on what "compatible" means.
    """
    return (mna.topology_signature(), job.t_start, job.dt, job.use_ic,
            job.options or TransientOptions())


def simulate_transient_many(
    jobs: Sequence[TransientJob],
    mnas: "Sequence[MnaSystem] | None" = None,
) -> list[TransientResult]:
    """Simulate many independent jobs, batching compatible ones.

    Jobs are grouped by circuit topology
    (:meth:`~repro.circuit.mna.MnaSystem.topology_signature`), start time,
    step and solver options.  Each group of two or more runs through the
    stacked batched engine; singleton groups use the scalar path.  Results
    come back in input order and are numerically equivalent to calling
    :func:`simulate_transient` per job.

    ``mnas`` optionally supplies the jobs' pre-compiled systems (one per
    job, in order) so callers that already compiled them for their own
    bookkeeping — the execution layer keys its result store off them —
    don't pay the compilation twice.
    """
    jobs = list(jobs)
    if mnas is None:
        mnas = [MnaSystem(job.circuit) for job in jobs]
    else:
        mnas = list(mnas)
        require(len(mnas) == len(jobs), "one pre-compiled system per job")
    groups: dict[tuple, list[int]] = {}
    for k, (job, mna) in enumerate(zip(jobs, mnas)):
        groups.setdefault(job_group_key(job, mna), []).append(k)

    results: list[TransientResult | None] = [None] * len(jobs)
    for idxs in groups.values():
        if len(idxs) == 1:
            k = idxs[0]
            job = jobs[k]
            opts_k = job.options or TransientOptions()
            if opts_k.adaptive:
                results[k] = _simulate_adaptive([job], [mnas[k]])[0]
            else:
                results[k] = _simulate_scalar(
                    job.circuit, mnas[k], job.t_stop, job.dt, job.t_start,
                    job.initial_voltages, job.use_ic, opts_k)
        else:
            for k, res in zip(idxs, _simulate_group([jobs[k] for k in idxs],
                                                    [mnas[k] for k in idxs])):
                results[k] = res
    return results  # type: ignore[return-value]


def _with_sources(circuit: Circuit, overrides: Mapping[str, object]) -> Circuit:
    """A shallow variant of ``circuit`` with named sources replaced.

    Topology (nodes, element order) is untouched, so every variant
    compiles to the same :meth:`~repro.circuit.mna.MnaSystem.topology_signature`.
    """
    variant = copy.copy(circuit)
    variant.vsources = [
        _dc_replace(v, source=as_source(overrides[v.name])) if v.name in overrides else v
        for v in circuit.vsources
    ]
    variant.isources = [
        _dc_replace(i, source=as_source(overrides[i.name])) if i.name in overrides else i
        for i in circuit.isources
    ]
    return variant


def simulate_transient_batch(
    circuit: Circuit,
    stimuli: Sequence[BatchStimulus],
    t_stop: float,
    dt: float,
    t_start: float = 0.0,
    options: TransientOptions | None = None,
) -> list[TransientResult]:
    """Simulate ``B`` variants of one circuit through the batched engine.

    Parameters
    ----------
    circuit:
        The shared topology.
    stimuli:
        One :class:`BatchStimulus` per variant: source overrides plus
        initial state.  Every variant shares the ``t_start``/``dt`` grid;
        a variant may end earlier via ``BatchStimulus.t_stop``.
    t_stop, dt, t_start, options:
        As in :func:`simulate_transient`.

    Returns
    -------
    list[TransientResult]
        One result per stimulus, in order, numerically equivalent to
        running :func:`simulate_transient` on each variant separately.
    """
    require(len(stimuli) >= 1, "need at least one stimulus")
    known = {v.name for v in circuit.vsources} | {i.name for i in circuit.isources}
    jobs = []
    for stim in stimuli:
        unknown = set(stim.sources) - known
        require(not unknown, f"unknown source override(s): {sorted(unknown)}")
        jobs.append(TransientJob(
            circuit=_with_sources(circuit, stim.sources),
            t_stop=t_stop if stim.t_stop is None else stim.t_stop,
            dt=dt,
            t_start=t_start,
            initial_voltages=stim.initial_voltages,
            use_ic=stim.use_ic,
            options=options,
        ))
    return simulate_transient_many(jobs)
