"""Nonlinear transient analysis — scalar and batched.

Fixed-step trapezoidal integration with Newton–Raphson at every step, the
workhorse of this reproduction: it plays the role Hspice plays in the
paper.  Capacitors use trapezoidal companion models (second-order
accurate); MOSFETs are linearised per Newton iteration via
:meth:`~repro.circuit.mna.MnaSystem.stamp_mosfets`.  When a step fails to
converge it is retried with recursive step halving.

The step size is chosen by the caller; the experiments use 1–2 ps, which
resolves 150 ps slews and crosstalk pulses comfortably (validated against
analytic RC responses and ``scipy`` reference integrations in the tests).

Batched simulation
------------------
The experiments run the *same topology* under many stimuli (noise-case
sweeps, one circuit per aggressor alignment; technique evaluation, one
receiver fixture per Γ_eff).  Two entry points amortise the per-step
Python cost across those variants:

* :func:`simulate_transient_batch` — B variants of one circuit, given as
  :class:`BatchStimulus` source/initial-state overrides, advanced through
  a single Newton loop over stacked ``(B, n, n)`` matrices with batched
  ``np.linalg.solve``.
* :func:`simulate_transient_many` — a list of independent
  :class:`TransientJob` simulations.  Jobs are grouped by
  :meth:`~repro.circuit.mna.MnaSystem.topology_signature` (plus time grid
  and solver options); each compatible group runs through the batched
  engine, singleton groups fall back to the scalar path.

Both return results numerically equivalent to running
:func:`simulate_transient` per variant: the batched Newton iteration
freezes converged variants and applies the same per-variant convergence
and voltage-limiting tests as the scalar loop, and a variant whose step
fails to converge falls back to the scalar recursive step-halving path on
its own.  Variants may have different ``t_stop`` values (sharing
``t_start``/``dt``); each result is truncated to its own window.

Matrix caching
--------------
The linear system matrix with capacitor companion conductances is constant
per step size.  It is cached *keyed on the halving depth* (``h = dt /
2**depth``) — not on the floating-point step value, which drifts under
repeated halving and can miss the cache.  For MOSFET-free circuits
(RC/interconnect networks) the cached entry also carries a factorisation
that is reused across all steps and variants.

Solver backends
---------------
The per-step linear solves are pluggable (:mod:`repro.circuit.solvers`).
A sparsity-pattern signature of the companion-stamped system matrix —
size, density and reverse-Cuthill–McKee bandwidth, computed once per
topology and cached on :class:`~repro.circuit.mna.MnaSystem` — selects
the backend when ``TransientOptions.backend`` is ``"auto"``:

* ``dense`` — stacked LAPACK LU; small systems, and the only choice for
  MOSFET circuits (Newton re-stamps dense Jacobians every iteration).
* ``banded`` — RCM reordering plus banded LU sweeps: pure RC lines from
  :mod:`repro.interconnect.rcline` permute to tridiagonal form (the
  Thomas recursion), coupled bundles to block-tridiagonal; O(n·b) per
  step instead of O(n²).  This is what lifts the node-count ceiling of
  line-dominated netlists.
* ``sparse`` — SuperLU factor reuse; large low-density systems that do
  not flatten to a narrow band (meshes, many-line bundles).

DC operating points of batched groups take the same treatment:
:func:`~repro.circuit.dc.dc_operating_point_batch` solves every
variant's initial state in one stacked pass, sharing this backend
selection.  Linear (MOSFET-free) groups additionally thread their
trapezoidal capacitor history in node space — ``r' = 2·S·x' − r`` with
``S`` the sparse companion-conductance matrix — so the whole per-step
cost outside the solve is one sparse matvec, independent of the
capacitor count.
"""

from __future__ import annotations

import copy
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from dataclasses import replace as _dc_replace

import numpy as np

from .._util import require
from ..core.waveform import Waveform
from .dc import dc_operating_point, dc_operating_point_batch
from .mna import MnaSystem, stacked_newton
from .netlist import Circuit
from .solvers import BACKENDS, factorize, select_backend, sparse_csr
from .sources import as_source

__all__ = [
    "TransientResult",
    "simulate_transient",
    "TransientOptions",
    "ConvergenceError",
    "TransientJob",
    "BatchStimulus",
    "simulate_transient_batch",
    "simulate_transient_many",
    "job_group_key",
]


class ConvergenceError(RuntimeError):
    """Raised when Newton iteration fails even after step halving."""


@dataclass(frozen=True)
class TransientOptions:
    """Knobs of the transient solver.

    Attributes
    ----------
    abstol:
        Newton convergence threshold on voltage updates (volts).
    max_newton:
        Maximum Newton iterations per (sub)step.
    max_halvings:
        Maximum recursive step halvings on non-convergence.
    v_limit:
        Per-iteration clamp on voltage updates (volts); damps overshoot.
    backend:
        Linear-solver backend for the per-step solves: ``"auto"``
        (default — selected from the topology's sparsity pattern, see
        the module docstring), or force ``"dense"`` / ``"sparse"`` /
        ``"banded"``.  MOSFET circuits always solve dense.
    """

    abstol: float = 1e-6
    max_newton: int = 60
    max_halvings: int = 10
    v_limit: float = 0.6
    backend: str = "auto"

    def __post_init__(self) -> None:
        require(self.backend in BACKENDS,
                f"unknown solver backend {self.backend!r}; "
                f"expected one of {BACKENDS}")


class TransientResult:
    """Simulation output: node voltages (and branch currents) over time.

    Access node waveforms with :meth:`waveform` or dictionary-style with
    :meth:`voltage_samples`.  ``stats`` carries solver diagnostics
    (``newton_iters``, ``halvings``, ``matrix_builds``, ``batch_size``).
    """

    def __init__(self, mna: MnaSystem, times: np.ndarray, solutions: np.ndarray,
                 stats: dict | None = None):
        self._mna = mna
        self.times = times
        self._x = solutions  # shape (n_steps, size)
        self.stats = dict(stats) if stats else {}

    @property
    def node_names(self) -> list[str]:
        """Names of all non-ground nodes."""
        return list(self._mna.node_names)

    def voltage_samples(self, node: str) -> np.ndarray:
        """Raw sampled voltages at ``node`` (zeros for ground)."""
        idx = self._mna.index_of(node)
        if idx < 0:
            return np.zeros_like(self.times)
        return self._x[:, idx]

    def waveform(self, node: str) -> Waveform:
        """The voltage at ``node`` as a :class:`~repro.core.waveform.Waveform`."""
        return Waveform(self.times, self.voltage_samples(node))

    def branch_current(self, vsource_name: str) -> np.ndarray:
        """Current through a voltage source (positive into its + terminal)."""
        row = self._mna.branch_index[vsource_name]
        return self._x[:, row]

    def final_voltages(self) -> dict[str, float]:
        """Node → final voltage map (useful as the next run's initial state)."""
        return {name: float(self._x[-1, self._mna.node_index[name]])
                for name in self._mna.node_names}


@dataclass(frozen=True)
class TransientJob:
    """One independent transient simulation, for :func:`simulate_transient_many`.

    Mirrors the parameters of :func:`simulate_transient`; jobs whose
    circuits share a topology (and whose ``t_start``/``dt``/``options``
    agree) are solved together through the batched engine.
    """

    circuit: Circuit
    t_stop: float
    dt: float
    t_start: float = 0.0
    initial_voltages: Mapping[str, float] | None = None
    use_ic: bool = False
    options: TransientOptions | None = None

    def run(self) -> "TransientResult":
        """Run this job alone through the sequential engine.

        Forwards every field, so ``job.run()`` is the per-job sequential
        baseline equivalent to batching the job through
        :func:`simulate_transient_many`.
        """
        return simulate_transient(
            self.circuit, t_stop=self.t_stop, dt=self.dt, t_start=self.t_start,
            initial_voltages=dict(self.initial_voltages)
            if self.initial_voltages is not None else None,
            use_ic=self.use_ic, options=self.options)


@dataclass(frozen=True)
class BatchStimulus:
    """Per-variant overrides for :func:`simulate_transient_batch`.

    Attributes
    ----------
    sources:
        Source-name → stimulus map (anything
        :func:`~repro.circuit.sources.as_source` accepts).  Named voltage
        and current sources of the base circuit are replaced; unnamed ones
        keep their base stimulus.
    initial_voltages:
        Node → volts seed for this variant's DC solve (or exact initial
        state with ``use_ic``).
    use_ic:
        Skip the DC solve and start exactly from ``initial_voltages``.
    t_stop:
        Optional per-variant end time (defaults to the batch ``t_stop``).
        Must share the batch ``t_start`` and ``dt`` grid.
    """

    sources: Mapping[str, object] = field(default_factory=dict)
    initial_voltages: Mapping[str, float] | None = None
    use_ic: bool = False
    t_stop: float | None = None


def _cap_stamp_matrix(mna: MnaSystem, a: np.ndarray, h: float) -> np.ndarray:
    """Add trapezoidal capacitor companion conductances ``2C/h`` to ``a``."""
    geq = 2.0 * mna.cap_c / h
    for k in range(mna.n_caps):
        MnaSystem._stamp_conductance(a, int(mna.cap_i[k]), int(mna.cap_j[k]), float(geq[k]))
    return a


def _cap_voltages(mna: MnaSystem, x: np.ndarray) -> np.ndarray:
    """Voltage across every capacitor at solution ``x``."""
    vi = mna._terminal_voltages(x, mna.cap_i)
    vj = mna._terminal_voltages(x, mna.cap_j)
    return vi - vj


#: Above this many pattern cells (``n_caps × size``) the batched capacitor
#: gather/scatter goes through a CSR incidence matrix instead of a dense
#: matmul (the dense product costs O(n_caps · size · B) per step and
#: dominates large RC bundles; tiny circuits keep the cheaper dense path).
_SPARSE_CAP_CELLS = 32768


class _StepMatrixCache:
    """Companion-stamped matrices per halving depth (``h = dt / 2**depth``).

    Keying on the integer depth instead of the floating-point step value
    makes repeated halvings hit the cache deterministically.  For
    MOSFET-free circuits each entry carries a factorisation — dense,
    banded or sparse LU, resolved once per topology from the sparsity
    pattern (see the module docstring) — reused by every step (and every
    batch variant) at that depth.
    """

    def __init__(self, mna: MnaSystem, dt: float, backend: str = "auto"):
        self.mna = mna
        self._dt = dt
        self._factorize = mna.n_mosfets == 0
        # The pattern/RCM analysis is only consulted by auto selection
        # and the banded factorization — MOSFET circuits and forced
        # dense/sparse runs (e.g. the benchmark baseline) skip it.
        self._structure = mna.structure(include_caps=True) \
            if self._factorize and backend in ("auto", "banded") else None
        self.backend = select_backend(self._structure, mna.n_mosfets, backend)
        self._entries: dict[int, tuple[np.ndarray, object | None, float]] = {}
        self.builds = 0
        # Padded-gather indices: ground terminals read the zero pad column.
        self._gi = np.where(mna.cap_i >= 0, mna.cap_i, mna.size)
        self._gj = np.where(mna.cap_j >= 0, mna.cap_j, mna.size)
        self._xpad: np.ndarray | None = None
        self._cap_csr_t = None
        self._cap_csr_t_built = False
        self._cap_s: object | None = None

    def cap_s_matvec(self, x: np.ndarray) -> np.ndarray:
        """``(B, size) → (B, size)`` product with the full-step companion
        conductance matrix ``S = Incᵀ·diag(2C/dt)·Inc``.

        The linear (MOSFET-free) engine threads its capacitor history
        entirely in node space — ``r' = 2·S·x' − r`` — so the per-step
        cost is one sparse matvec regardless of the capacitor count,
        instead of a gather + scale + scatter over every capacitor.
        """
        if self._cap_s is None:
            mna = self.mna
            geq = 2.0 * mna.cap_c / self._dt
            s = np.zeros((mna.size, mna.size))
            for k in range(mna.n_caps):
                MnaSystem._stamp_conductance(s, int(mna.cap_i[k]),
                                             int(mna.cap_j[k]), float(geq[k]))
            csr = sparse_csr(s) \
                if mna.n_caps * mna.size >= _SPARSE_CAP_CELLS else None
            self._cap_s = csr if csr is not None else s
        if isinstance(self._cap_s, np.ndarray):
            return x @ self._cap_s  # S is symmetric
        return (self._cap_s @ x.T).T

    def get(self, depth: int) -> tuple[np.ndarray, object | None, float]:
        """Return ``(a_base, solver_or_None, h)`` for a halving depth."""
        entry = self._entries.get(depth)
        if entry is None:
            h = self._dt * (0.5 ** depth)  # exact: equals repeated halving
            a = _cap_stamp_matrix(self.mna, self.mna.g_lin.copy(), h)
            solver = factorize(a, self.backend, self._structure) \
                if self._factorize else None
            entry = (a, solver, h)
            self._entries[depth] = entry
            self.builds += 1
        return entry

    def cap_gather(self, x: np.ndarray) -> np.ndarray:
        """Voltage across every capacitor for stacked solutions ``(B, size)``.

        A padded index gather (``v_i − v_j``) — bitwise identical to both
        the scalar per-terminal gather and the incidence matmul (each
        incidence row holds exactly one +1 and one −1), without the
        O(n_caps · size · B) dense product or per-call sparse dispatch.
        """
        size = self.mna.size
        if self._xpad is None or self._xpad.shape[0] != x.shape[0]:
            self._xpad = np.zeros((x.shape[0], size + 1))
        self._xpad[:, :size] = x
        return self._xpad[:, self._gi] - self._xpad[:, self._gj]

    def cap_scatter(self, ieq: np.ndarray) -> np.ndarray:
        """Companion currents ``(B, n_caps)`` scattered onto ``(B, size)``."""
        if not self._cap_csr_t_built:
            # Built on first use only (the linear engine never scatters —
            # it threads node-space state through cap_s_matvec instead):
            # a pre-transposed CSR of the incidence, since `.T` per step
            # would rebuild it and the dense matmul costs
            # O(n_caps · size · B) on large RC bundles.
            mna = self.mna
            if mna.n_caps and mna.n_caps * mna.size >= _SPARSE_CAP_CELLS:
                csr = sparse_csr(mna.cap_incidence())
                if csr is not None:
                    self._cap_csr_t = csr.T.tocsr()
            self._cap_csr_t_built = True
        if self._cap_csr_t is not None:
            return (self._cap_csr_t @ ieq.T).T
        return ieq @ self.mna.cap_incidence()


def _newton_solve(
    mna: MnaSystem,
    a_base: np.ndarray,
    rhs_base: np.ndarray,
    x0: np.ndarray,
    opts: TransientOptions,
    stats: dict,
) -> np.ndarray | None:
    """Newton iteration for ``a_base``-plus-MOSFETs; ``None`` on failure."""
    x = x0.copy()
    for _ in range(opts.max_newton):
        a = a_base.copy()
        rhs = rhs_base.copy()
        mna.stamp_mosfets(a, rhs, x)
        x_new = np.linalg.solve(a, rhs)
        dx = x_new - x
        dv = dx[: mna.n_nodes]
        worst = float(np.max(np.abs(dv))) if dv.size else 0.0
        limited = worst > opts.v_limit
        if limited:
            dx = dx * (opts.v_limit / worst)
        x = x + dx
        stats["newton_iters"] += 1
        if not limited and worst < opts.abstol:
            return x
    return None


def _newton_solve_batch(
    mna: MnaSystem,
    a_base: np.ndarray,
    rhs_base: np.ndarray,
    x0: np.ndarray,
    opts: TransientOptions,
    stats: dict,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched Newton over stacked variants; returns ``(x, converged)``.

    :func:`~repro.circuit.mna.stacked_newton` with the scalar transient
    loop's convergence and voltage-limit tests; converged variants are
    frozen, so each variant reproduces the scalar iteration sequence.
    """
    return stacked_newton(mna, a_base, rhs_base, x0, abstol=opts.abstol,
                          max_iter=opts.max_newton, v_limit=opts.v_limit,
                          require_unlimited=True, stats=stats)


def _advance_scalar(
    mna: MnaSystem,
    cache: _StepMatrixCache,
    x_prev: np.ndarray,
    i_cap_prev: np.ndarray,
    t_prev: float,
    depth: int,
    opts: TransientOptions,
    stats: dict,
) -> tuple[np.ndarray, np.ndarray]:
    """One trapezoidal step from ``t_prev`` over ``dt / 2**depth``."""
    a_base, solver, h = cache.get(depth)
    geq = 2.0 * mna.cap_c / h
    vcap_prev = _cap_voltages(mna, x_prev)
    ieq = geq * vcap_prev + i_cap_prev
    rhs = mna.source_rhs(t_prev + h)
    for k in range(mna.n_caps):
        i, j = int(mna.cap_i[k]), int(mna.cap_j[k])
        if i >= 0:
            rhs[i] += ieq[k]
        if j >= 0:
            rhs[j] -= ieq[k]
    if solver is not None:
        x_new = solver.solve(rhs)
    else:
        x_new = _newton_solve(mna, a_base, rhs, x_prev, opts, stats)
    if x_new is None:
        if depth >= opts.max_halvings:
            raise ConvergenceError(
                f"Newton failed at t={t_prev + h:.4e}s even at dt={h:.2e}s"
            )
        stats["halvings"] += 1
        x_mid, i_mid = _advance_scalar(mna, cache, x_prev, i_cap_prev, t_prev,
                                       depth + 1, opts, stats)
        return _advance_scalar(mna, cache, x_mid, i_mid, t_prev + h / 2,
                               depth + 1, opts, stats)
    i_cap_new = geq * _cap_voltages(mna, x_new) - ieq
    return x_new, i_cap_new


def _initial_state(
    circuit: Circuit,
    mna: MnaSystem,
    t_start: float,
    initial_voltages: Mapping[str, float] | None,
    use_ic: bool,
) -> np.ndarray:
    """Initial MNA solution: exact ``UIC`` state or a seeded DC solve."""
    if use_ic:
        return mna.seed_vector(initial_voltages)
    return dc_operating_point(circuit, at_time=t_start,
                              initial_voltages=dict(initial_voltages or {}),
                              mna=mna).solution


def _new_stats(**extra) -> dict:
    stats = {"newton_iters": 0, "halvings": 0, "matrix_builds": 0,
             "batch_size": 1, "backend": "dense"}
    stats.update(extra)
    return stats


def _simulate_scalar(
    circuit: Circuit,
    mna: MnaSystem,
    t_stop: float,
    dt: float,
    t_start: float,
    initial_voltages: Mapping[str, float] | None,
    use_ic: bool,
    opts: TransientOptions,
) -> TransientResult:
    """The sequential engine behind :func:`simulate_transient`."""
    require(t_stop > t_start, "t_stop must exceed t_start")
    require(dt > 0.0, "dt must be positive")

    x = _initial_state(circuit, mna, t_start, initial_voltages, use_ic)

    n_steps = int(round((t_stop - t_start) / dt))
    require(n_steps >= 1, "simulation window shorter than one step")
    times = t_start + dt * np.arange(n_steps + 1)

    solutions = np.empty((n_steps + 1, mna.size))
    solutions[0] = x

    # Trapezoidal history: capacitor currents at the previous accepted point.
    # Starting from DC (or UIC) the capacitor currents are zero.
    i_cap = np.zeros(mna.n_caps)
    cache = _StepMatrixCache(mna, dt, backend=opts.backend)
    stats = _new_stats(backend=cache.backend)

    for step in range(n_steps):
        x, i_cap = _advance_scalar(mna, cache, x, i_cap, float(times[step]),
                                   0, opts, stats)
        solutions[step + 1] = x

    stats["matrix_builds"] = cache.builds
    return TransientResult(mna, times, solutions, stats=stats)


def simulate_transient(
    circuit: Circuit,
    t_stop: float,
    dt: float,
    t_start: float = 0.0,
    initial_voltages: dict[str, float] | None = None,
    use_ic: bool = False,
    options: TransientOptions | None = None,
) -> TransientResult:
    """Run a transient analysis and return sampled node voltages.

    Parameters
    ----------
    circuit:
        The netlist to simulate.
    t_stop:
        End time (seconds); must exceed ``t_start``.
    dt:
        Output/base time step.  The solver subdivides internally when
        Newton struggles, but reports results on this uniform grid.
    t_start:
        Start time of the analysis window.
    initial_voltages:
        Optional node → voltage seed.  By default a DC operating point at
        ``t_start`` (seeded with these values) sets the initial state.
    use_ic:
        When ``True``, skip the DC solve and start *exactly* from
        ``initial_voltages`` (unset nodes start at 0 V) — SPICE's ``UIC``.
    options:
        Solver tolerances; defaults are fine for the experiments.

    Returns
    -------
    TransientResult

    Raises
    ------
    ConvergenceError
        If a time step cannot be converged even after step halving.
    """
    return _simulate_scalar(circuit, MnaSystem(circuit), t_stop, dt, t_start,
                            initial_voltages, use_ic,
                            options or TransientOptions())


def _advance_batch(
    mnas: Sequence[MnaSystem],
    cache: _StepMatrixCache,
    x_prev: np.ndarray,
    ieq_prev: np.ndarray,
    t_prev: float,
    rhs: np.ndarray,
    opts: TransientOptions,
    stats: dict,
) -> tuple[np.ndarray, np.ndarray]:
    """One stacked trapezoidal Newton step for every variant in ``mnas``.

    The *nonlinear* (MOSFET) batch step — linear groups take the
    node-space recursion inside :func:`_simulate_group` instead.
    ``rhs`` carries the source right-hand sides at the step's end time
    (one row per variant); it is owned by this call and overwritten with
    the capacitor companion currents.  ``ieq_prev`` is the threaded
    companion-current state ``geq·v_cap + i_cap`` at ``x_prev``: the
    trapezoidal identity ``ieq_new = 2·geq·v_cap_new − ieq_prev`` makes
    it the only capacitor history the full-step recursion needs (one
    gather and one fused multiply-add per step, instead of maintaining
    ``i_cap`` and ``v_cap`` separately).  Variants whose Newton iteration
    fails at the full step fall back, individually, to the scalar
    recursive step-halving path; the rest advance together.  Returns
    ``(x_new, ieq_new)``.
    """
    mna0 = cache.mna
    a_base, _, h = cache.get(0)
    geq = 2.0 * mna0.cap_c / h
    if mna0.n_caps:
        rhs += cache.cap_scatter(ieq_prev)

    fallback: list[tuple[int, np.ndarray]] = []
    x_new, ok = _newton_solve_batch(mna0, a_base, rhs, x_prev, opts, stats)

    if not ok.all():
        if opts.max_halvings < 1:
            raise ConvergenceError(
                f"Newton failed at t={t_prev + h:.4e}s even at dt={h:.2e}s"
            )
        for pos in np.nonzero(~ok)[0]:
            stats["halvings"] += 1
            # Recover the scalar-path state (i_cap) from the threaded ieq.
            i_cap_pos = ieq_prev[pos] - geq * _cap_voltages(mna0, x_prev[pos])
            x_mid, i_mid = _advance_scalar(mnas[pos], cache, x_prev[pos],
                                           i_cap_pos, t_prev, 1, opts, stats)
            x_fin, i_fin = _advance_scalar(mnas[pos], cache, x_mid, i_mid,
                                           t_prev + h / 2, 1, opts, stats)
            x_new[pos] = x_fin
            fallback.append((int(pos), i_fin))
    ieq_new = 2.0 * geq * cache.cap_gather(x_new) - ieq_prev
    # Fallback variants integrated at half steps: their trapezoidal
    # history comes from the scalar recursion, not the full-step identity.
    for pos, i_fin in fallback:
        ieq_new[pos] = geq * _cap_voltages(mna0, x_new[pos]) + i_fin
    return x_new, ieq_new


def _simulate_group(jobs: Sequence[TransientJob],
                    mnas: Sequence[MnaSystem]) -> list[TransientResult]:
    """Batched engine for topology-compatible jobs (shared t_start/dt/options)."""
    job0 = jobs[0]
    mna0 = mnas[0]
    dt = job0.dt
    t_start = job0.t_start
    opts = job0.options or TransientOptions()
    require(dt > 0.0, "dt must be positive")

    n_steps = []
    for job in jobs:
        require(job.t_stop > t_start, "t_stop must exceed t_start")
        n = int(round((job.t_stop - t_start) / dt))
        require(n >= 1, "simulation window shorter than one step")
        n_steps.append(n)
    steps_arr = np.asarray(n_steps)
    n_max = int(steps_arr.max())
    times = t_start + dt * np.arange(n_max + 1)

    batch = len(jobs)
    # Initial states: one stacked DC pass over the whole group (grouping
    # guarantees a uniform use_ic flag across the jobs).
    if job0.use_ic:
        x = np.zeros((batch, mna0.size))
        for b, job in enumerate(jobs):
            mna0.seed_vector(job.initial_voltages, out=x[b])
    else:
        dc = dc_operating_point_batch(
            [job.circuit for job in jobs], at_time=t_start,
            initial_voltages=[job.initial_voltages for job in jobs],
            mnas=mnas, backend=opts.backend)
        x = np.stack([r.solution for r in dc])

    solutions = np.empty((batch, n_max + 1, mna0.size))
    solutions[:, 0] = x
    cache = _StepMatrixCache(mna0, dt, backend=opts.backend)
    stats = _new_stats(batch_size=batch, backend=cache.backend)

    # Source values for every full step, vectorised over time up front —
    # compactly, on the structurally nonzero rhs rows only (the full
    # (B, T, size) series would be O(T · size) mostly-zero memory);
    # halved substeps (rare) evaluate their intermediate times on demand.
    src_cols = mna0.source_rhs_columns()
    src_vals = np.empty((batch, n_max, src_cols.size))
    for b, mna in enumerate(mnas):
        src_vals[b] = mna.source_rhs_series_compact(times[1:], src_cols)[1]

    def step_rhs(rows: np.ndarray | None, step: int) -> np.ndarray:
        vals = src_vals[:, step] if rows is None else src_vals[rows, step]
        rhs = np.zeros((vals.shape[0], mna0.size))
        rhs[:, src_cols] = vals
        return rhs

    # Trapezoidal history starts from DC (or UIC): i_cap = 0.  Linear
    # (MOSFET-free) groups thread it in node space — r₀ = S·x₀, stepped
    # as r' = 2·S·x' − r — so the per-step cost is one sparse matvec
    # regardless of the capacitor count.  Nonlinear groups thread the
    # per-capacitor companion currents ieq₀ = geq·v_cap(x₀) instead,
    # which the scalar step-halving fallback needs.
    _, solver0, h0 = cache.get(0)
    linear = solver0 is not None
    if linear:
        state = cache.cap_s_matvec(x)
    else:
        state = (2.0 * mna0.cap_c / h0) * cache.cap_gather(x)

    def advance(sub_mnas, x_sub, state_sub, t, rhs):
        if linear:
            rhs += state_sub
            x_new = solver0.solve(rhs)
            return x_new, 2.0 * cache.cap_s_matvec(x_new) - state_sub
        return _advance_batch(sub_mnas, cache, x_sub, state_sub, t, rhs,
                              opts, stats)

    if int(steps_arr.min()) == n_max:
        # Uniform windows (the common case): every variant lives through
        # every step, so the per-step alive-set gathers (four fancy-index
        # copies each) are skipped entirely.
        for step in range(n_max):
            x, state = advance(mnas, x, state, float(times[step]),
                               step_rhs(None, step))
            solutions[:, step + 1] = x
    else:
        alive = np.arange(batch)
        for step in range(n_max):
            if alive.size and steps_arr[alive].min() <= step:
                alive = alive[steps_arr[alive] > step]
            sub_mnas = [mnas[b] for b in alive]
            x_new, state_new = advance(sub_mnas, x[alive], state[alive],
                                       float(times[step]), step_rhs(alive, step))
            x[alive] = x_new
            state[alive] = state_new
            solutions[alive, step + 1] = x_new

    stats["matrix_builds"] = cache.builds
    return [
        TransientResult(mnas[b], times[: n_steps[b] + 1],
                        solutions[b, : n_steps[b] + 1], stats=stats)
        for b in range(batch)
    ]


def job_group_key(job: TransientJob, mna: MnaSystem) -> tuple:
    """Batch-compatibility key of a job: equal keys may share one stacked
    Newton loop.

    Shared by :func:`simulate_transient_many` (in-process grouping) and
    the shard scheduler of :mod:`repro.exec.pool` (process-level
    partitioning), so both layers agree on what "compatible" means.
    """
    return (mna.topology_signature(), job.t_start, job.dt, job.use_ic,
            job.options or TransientOptions())


def simulate_transient_many(
    jobs: Sequence[TransientJob],
    mnas: "Sequence[MnaSystem] | None" = None,
) -> list[TransientResult]:
    """Simulate many independent jobs, batching compatible ones.

    Jobs are grouped by circuit topology
    (:meth:`~repro.circuit.mna.MnaSystem.topology_signature`), start time,
    step and solver options.  Each group of two or more runs through the
    stacked batched engine; singleton groups use the scalar path.  Results
    come back in input order and are numerically equivalent to calling
    :func:`simulate_transient` per job.

    ``mnas`` optionally supplies the jobs' pre-compiled systems (one per
    job, in order) so callers that already compiled them for their own
    bookkeeping — the execution layer keys its result store off them —
    don't pay the compilation twice.
    """
    jobs = list(jobs)
    if mnas is None:
        mnas = [MnaSystem(job.circuit) for job in jobs]
    else:
        mnas = list(mnas)
        require(len(mnas) == len(jobs), "one pre-compiled system per job")
    groups: dict[tuple, list[int]] = {}
    for k, (job, mna) in enumerate(zip(jobs, mnas)):
        groups.setdefault(job_group_key(job, mna), []).append(k)

    results: list[TransientResult | None] = [None] * len(jobs)
    for idxs in groups.values():
        if len(idxs) == 1:
            k = idxs[0]
            job = jobs[k]
            results[k] = _simulate_scalar(
                job.circuit, mnas[k], job.t_stop, job.dt, job.t_start,
                job.initial_voltages, job.use_ic,
                job.options or TransientOptions())
        else:
            for k, res in zip(idxs, _simulate_group([jobs[k] for k in idxs],
                                                    [mnas[k] for k in idxs])):
                results[k] = res
    return results  # type: ignore[return-value]


def _with_sources(circuit: Circuit, overrides: Mapping[str, object]) -> Circuit:
    """A shallow variant of ``circuit`` with named sources replaced.

    Topology (nodes, element order) is untouched, so every variant
    compiles to the same :meth:`~repro.circuit.mna.MnaSystem.topology_signature`.
    """
    variant = copy.copy(circuit)
    variant.vsources = [
        _dc_replace(v, source=as_source(overrides[v.name])) if v.name in overrides else v
        for v in circuit.vsources
    ]
    variant.isources = [
        _dc_replace(i, source=as_source(overrides[i.name])) if i.name in overrides else i
        for i in circuit.isources
    ]
    return variant


def simulate_transient_batch(
    circuit: Circuit,
    stimuli: Sequence[BatchStimulus],
    t_stop: float,
    dt: float,
    t_start: float = 0.0,
    options: TransientOptions | None = None,
) -> list[TransientResult]:
    """Simulate ``B`` variants of one circuit through the batched engine.

    Parameters
    ----------
    circuit:
        The shared topology.
    stimuli:
        One :class:`BatchStimulus` per variant: source overrides plus
        initial state.  Every variant shares the ``t_start``/``dt`` grid;
        a variant may end earlier via ``BatchStimulus.t_stop``.
    t_stop, dt, t_start, options:
        As in :func:`simulate_transient`.

    Returns
    -------
    list[TransientResult]
        One result per stimulus, in order, numerically equivalent to
        running :func:`simulate_transient` on each variant separately.
    """
    require(len(stimuli) >= 1, "need at least one stimulus")
    known = {v.name for v in circuit.vsources} | {i.name for i in circuit.isources}
    jobs = []
    for stim in stimuli:
        unknown = set(stim.sources) - known
        require(not unknown, f"unknown source override(s): {sorted(unknown)}")
        jobs.append(TransientJob(
            circuit=_with_sources(circuit, stim.sources),
            t_stop=t_stop if stim.t_stop is None else stim.t_stop,
            dt=dt,
            t_start=t_start,
            initial_voltages=stim.initial_voltages,
            use_ic=stim.use_ic,
            options=options,
        ))
    return simulate_transient_many(jobs)
