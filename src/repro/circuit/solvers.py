"""Pluggable linear-solver backends for MNA systems.

The transient and DC analyses repeatedly solve linear systems whose
*matrix* is fixed while the right-hand side varies — per time step, per
batch variant, per Newton stage of a linear (MOSFET-free) network.  Every
backend here therefore follows one factor-once / solve-many contract:
:func:`factorize` turns a dense ``(n, n)`` matrix into a solver object
whose ``solve`` accepts a single right-hand side ``(n,)`` or a stacked
batch ``(B, n)`` and returns the solution in the same shape.

Three backends cover the workloads of this reproduction:

``dense``
    LAPACK LU (``getrf``/``getrs`` via :func:`scipy.linalg.lu_factor`,
    with a plain :func:`numpy.linalg.solve` fallback when SciPy is
    unavailable).  O(n³) factor, O(n²) per solve.  Right for small
    systems and the only choice for MOSFET circuits, whose Newton
    iterations re-stamp dense stacked Jacobians every pass.

``banded``
    The structured path for the RC-line topologies emitted by
    :mod:`repro.interconnect.rcline`.  A reverse Cuthill–McKee reordering
    (computed once per sparsity pattern) permutes a pure line — including
    its voltage-source border rows — to *tridiagonal* form (bandwidth 1:
    the classical Thomas recursion), and a coupled bundle of k lines to
    block-tridiagonal form with k×k blocks (bandwidth ≈ k).  The permuted
    system is factored once with LAPACK's banded LU (``gbtrf``, partial
    pivoting — required because voltage-source branch rows carry zero
    diagonals) and every subsequent solve is a ``gbtrs`` sweep: O(n·b²)
    factor, O(n·b) per solve for bandwidth b.

``sparse``
    SuperLU on the CSC form (:func:`scipy.sparse.linalg.splu`).  Wins on
    large low-density systems whose graph does not flatten to a narrow
    band — star/mesh interconnect, bundles with many mutually coupled
    lines.

MOSFET circuits — whose Jacobian *values* change every Newton iteration
but whose sparsity *pattern* is fixed per topology (linear stamps plus
device fill) — take the pattern-frozen Newton kernels instead of the
factor-once contract:

:class:`PatternFrozenLu`
    The ``"sparse"`` Newton path.  The CSC pattern of the union fill is
    frozen once; every Newton iteration supplies a fresh numeric ``data``
    vector (updated in O(nnz) via the scatter maps on
    :class:`~repro.circuit.mna.MnaSystem`) and pays one numeric SuperLU
    factorization — never a dense O(n²) re-stamp or O(n³) dense LU.

:class:`BorderedBanded`
    The ``"banded"`` Newton path for gate-plus-interconnect topologies:
    the device fill is confined to a small dense *border* while the
    interconnect core permutes to a narrow band.  The banded core is
    factored once per step size; each Newton iteration refactorises only
    the border-sized Schur complement.

Backend selection (:func:`select_backend`) is driven by a structural
analysis of the matrix sparsity pattern (:func:`analyze_pattern`) —
size, density and post-RCM bandwidth — computed once per circuit
topology and cached per topology signature (see
:meth:`~repro.circuit.mna.MnaSystem.structure`); MOSFET circuits
additionally consult the core/border partition
(:meth:`~repro.circuit.mna.MnaSystem.newton_partition`).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from .._util import require
from ..faults import maybe_fault

try:  # SciPy is optional; every structured backend degrades to dense LU.
    from scipy.linalg import LinAlgWarning as _LinAlgWarning
    from scipy.linalg import lapack as _lapack
    from scipy.linalg import lu_factor as _lu_factor
    from scipy.linalg import lu_solve as _lu_solve
    from scipy.sparse import csc_matrix as _csc_matrix
    from scipy.sparse import csr_matrix as _csr_matrix
    from scipy.sparse.csgraph import reverse_cuthill_mckee as _rcm
    from scipy.sparse.linalg import splu as _splu

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover - the container ships scipy
    _LinAlgWarning = Warning
    _lapack = None
    _lu_factor = None
    _lu_solve = None
    _csc_matrix = None
    _csr_matrix = None
    _rcm = None
    _splu = None
    HAVE_SCIPY = False

__all__ = [
    "BACKENDS",
    "MatrixStructure",
    "analyze_pattern",
    "select_backend",
    "factorize",
    "sparse_csr",
    "PatternFrozenLu",
    "BorderedBanded",
    "HAVE_SCIPY",
]

#: Accepted backend requests; ``"auto"`` resolves via :func:`select_backend`.
BACKENDS = ("auto", "dense", "sparse", "banded")

#: Systems smaller than this never leave the dense path (per-call overhead
#: of the structured solvers exceeds the dense solve itself).
_MIN_STRUCTURED_SIZE = 24
#: Post-RCM bandwidth above which a system stops being "line-like" and the
#: banded storage/factor loses to sparse LU (a bundle of k coupled lines
#: permutes to bandwidth ≈ 2k; this admits bundles up to ~6 lines).
_BANDED_MAX_BANDWIDTH = 12
#: Density ceiling for the sparse backend.
_SPARSE_MAX_DENSITY = 0.25
#: MOSFET systems below this size keep the dense Newton path: stacked
#: dense LU on a paper-scale testbench (~20–30 unknowns) beats the
#: per-iteration overhead of a structured refactorization, and keeping
#: the paper-scale experiments on the historical path pins their
#: waveforms bit for bit.
_MIN_NEWTON_SIZE = 64
#: Border-size ceiling of the block-bordered Newton kernel: the Schur
#: complement is refactorised dense every Newton iteration, so the
#: border must stay gate-sized while the core carries the interconnect.
_MAX_BORDER = 64


@dataclass(frozen=True)
class MatrixStructure:
    """Structural summary of a sparsity pattern, for backend selection.

    Attributes
    ----------
    size:
        Matrix dimension ``n``.
    nnz:
        Number of structurally nonzero entries.
    density:
        ``nnz / n²``.
    bandwidth:
        Half-bandwidth after applying ``perm`` (``max |i - j|`` over the
        permuted nonzeros); the raw pattern's bandwidth when ``perm`` is
        ``None``.
    perm:
        Reverse Cuthill–McKee ordering that achieves ``bandwidth``, or
        ``None`` when the natural ordering is already at least as narrow
        (or SciPy is unavailable).
    """

    size: int
    nnz: int
    density: float
    bandwidth: int
    perm: np.ndarray | None


def analyze_pattern(pattern: np.ndarray) -> MatrixStructure:
    """Analyze a boolean ``(n, n)`` sparsity pattern.

    Computes the density and the reverse Cuthill–McKee bandwidth (on the
    symmetrised pattern, so structurally unsymmetric inputs are safe).
    The result is what :func:`select_backend` consumes; callers should
    compute it once per topology and reuse it.
    """
    pattern = np.asarray(pattern, dtype=bool)
    require(pattern.ndim == 2 and pattern.shape[0] == pattern.shape[1],
            "pattern must be a square matrix")
    n = pattern.shape[0]
    rows, cols = np.nonzero(pattern)
    nnz = int(rows.size)
    density = nnz / float(n * n) if n else 0.0
    natural_bw = int(np.max(np.abs(rows - cols))) if nnz else 0
    if not HAVE_SCIPY or n == 0 or nnz == 0:
        return MatrixStructure(size=n, nnz=nnz, density=density,
                               bandwidth=natural_bw, perm=None)

    sym = pattern | pattern.T
    perm = np.asarray(_rcm(_csr_matrix(sym), symmetric_mode=True))
    # Post-RCM bandwidth straight from the index lists (O(nnz)) — no
    # need to materialise the permuted dense pattern.
    inv = np.empty(n, dtype=np.intp)
    inv[perm] = np.arange(n)
    si, sj = np.nonzero(sym)
    rcm_bw = int(np.max(np.abs(inv[si] - inv[sj]))) if si.size else 0
    if natural_bw <= rcm_bw:
        # The natural MNA ordering is already as narrow — skip the gather.
        return MatrixStructure(size=n, nnz=nnz, density=density,
                               bandwidth=natural_bw, perm=None)
    return MatrixStructure(size=n, nnz=nnz, density=density,
                           bandwidth=rcm_bw, perm=perm)


def select_backend(structure: MatrixStructure | None, n_mosfets: int = 0,
                   requested: str = "auto", partition=None) -> str:
    """Resolve a backend request to a concrete backend name.

    Parameters
    ----------
    structure:
        Pattern analysis of the system matrix.  ``None`` is accepted
        whenever the resolution does not consult it (non-``"auto"``
        requests, and the no-SciPy degradation).
    n_mosfets:
        With MOSFETs present the names resolve to the *pattern-frozen
        Newton* kernels instead of the factor-once linear solvers:
        ``"sparse"`` is the frozen-pattern SuperLU refactorization
        (:class:`PatternFrozenLu`), ``"banded"`` the block-bordered
        kernel (:class:`BorderedBanded`, needs a viable ``partition``;
        degrades to ``"sparse"`` without one).
    requested:
        One of :data:`BACKENDS`.  Non-``"auto"`` requests are honoured
        verbatim (benchmarks and tests force specific paths), except
        that structured backends degrade to ``"dense"`` without SciPy
        and a ``"banded"`` Newton request without a viable partition
        degrades to ``"sparse"``.
    partition:
        The circuit's core/border split
        (:meth:`~repro.circuit.mna.MnaSystem.newton_partition`), or
        ``None`` when no viable one exists.  Only consulted for MOSFET
        circuits.
    """
    require(requested in BACKENDS,
            f"unknown solver backend {requested!r}; expected one of {BACKENDS}")
    if not HAVE_SCIPY:
        return "dense"
    if n_mosfets > 0:
        if requested == "banded":
            return "banded" if partition is not None else "sparse"
        if requested != "auto":
            return requested
        require(structure is not None,
                "auto backend selection needs a structure")
        if structure.size < _MIN_NEWTON_SIZE:
            return "dense"
        if partition is not None:
            return "banded"
        if structure.density <= _SPARSE_MAX_DENSITY:
            return "sparse"
        return "dense"
    if requested != "auto":
        return requested
    require(structure is not None, "auto backend selection needs a structure")
    n = structure.size
    if n >= _MIN_STRUCTURED_SIZE:
        if (structure.bandwidth <= _BANDED_MAX_BANDWIDTH
                and 4 * (2 * structure.bandwidth + 1) <= n):
            return "banded"
        if structure.density <= _SPARSE_MAX_DENSITY:
            return "sparse"
    return "dense"


def _solve_columns(solve_cols, rhs: np.ndarray) -> np.ndarray:
    """Adapt a columns-of-(n, k) solver to ``(n,)`` / ``(B, n)`` inputs."""
    rhs = np.asarray(rhs, dtype=np.float64)
    if rhs.ndim == 1:
        return solve_cols(rhs[:, None])[:, 0]
    return solve_cols(rhs.T).T


class DenseLu:
    """Dense LAPACK LU with factor reuse (NumPy fallback without SciPy)."""

    name = "dense"

    def __init__(self, a: np.ndarray):
        if _lu_factor is not None:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", _LinAlgWarning)
                self._lu = _lu_factor(a)
            # lu_factor only *warns* on exact singularity (zero U pivot)
            # and would let NaNs cascade through every solve; normalise
            # to the LinAlgError contract numpy.linalg.solve honours.
            if np.any(np.diag(self._lu[0]) == 0.0):
                raise np.linalg.LinAlgError(
                    "dense LU factorization hit an exactly zero pivot "
                    "(singular matrix)")
            self._a = None
        else:  # pragma: no cover - exercised only without scipy
            self._lu = None
            self._a = a.copy()

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        if self._lu is not None:
            return _solve_columns(lambda cols: _lu_solve(self._lu, cols), rhs)
        return _solve_columns(  # pragma: no cover - no-scipy fallback
            lambda cols: np.linalg.solve(self._a, cols), rhs)


class SparseLu:
    """SuperLU factorization of the CSC form; O(nnz)-ish solves."""

    name = "sparse"

    def __init__(self, a: np.ndarray):
        require(HAVE_SCIPY, "sparse backend requires scipy")
        try:
            self._lu = _splu(_csc_matrix(a))
        except RuntimeError as exc:  # SuperLU signals singularity this way.
            raise np.linalg.LinAlgError(str(exc)) from exc

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        return _solve_columns(
            lambda cols: self._lu.solve(np.ascontiguousarray(cols)), rhs)


class BandedThomas:
    """(Block-)tridiagonal solve: RCM reordering + banded LU sweeps.

    Bandwidth-1 systems (pure RC lines) reduce to the classical Thomas
    recursion; small-bandwidth systems (coupled line bundles) to its
    block-tridiagonal generalisation.  Both are realised through LAPACK's
    pivoting banded LU (``gbtrf``/``gbtrs``) — partial pivoting is
    mandatory because voltage-source branch rows have zero diagonals, so
    the textbook no-pivot recursion would divide by zero.
    """

    name = "banded"

    def __init__(self, a: np.ndarray, structure: MatrixStructure | None = None):
        require(HAVE_SCIPY, "banded backend requires scipy")
        if structure is None or structure.size != a.shape[0]:
            structure = analyze_pattern(a != 0.0)
        self._perm = structure.perm
        ap = a if self._perm is None else a[np.ix_(self._perm, self._perm)]
        n = ap.shape[0]
        kl = ku = max(1, structure.bandwidth)
        # LAPACK banded storage: row kl+ku+i-j holds entry (i, j); the top
        # kl rows are workspace for the pivoting fill-in.
        ab = np.zeros((2 * kl + ku + 1, n))
        rows, cols = np.nonzero(ap)
        ab[kl + ku + rows - cols, cols] = ap[rows, cols]
        lu, ipiv, info = _lapack.dgbtrf(ab, kl=kl, ku=ku)
        if info != 0:
            raise np.linalg.LinAlgError(
                f"banded LU factorization failed (gbtrf info={info})")
        self._lu, self._ipiv, self._kl, self._ku = lu, ipiv, kl, ku
        self._n = n

    def factor_state(self) -> tuple:
        """Flat factor arrays ``(lu, ipiv, kl, ku, perm)``.

        The banded-LU state in LAPACK's storage convention, for kernel
        backends that run the substitution sweeps themselves (see
        ``kernels._loops.banded_trs``); ``perm`` is the RCM permutation
        or ``None``.
        """
        return self._lu, self._ipiv, self._kl, self._ku, self._perm

    def _sweep(self, cols: np.ndarray, overwrite: bool) -> np.ndarray:
        x, info = _lapack.dgbtrs(self._lu, self._kl, self._ku, cols,
                                 self._ipiv, overwrite_b=overwrite)
        if info != 0:  # pragma: no cover - gbtrs only fails on bad args
            raise np.linalg.LinAlgError(
                f"banded LU solve failed (gbtrs info={info})")
        return x

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        rhs = np.asarray(rhs, dtype=np.float64)
        if rhs.ndim == 1:
            cols = rhs[self._perm, None] if self._perm is not None \
                else rhs[:, None]
            x = self._sweep(cols, overwrite=self._perm is not None)
            if self._perm is None:
                return x[:, 0]
            out = np.empty(self._n)
            out[self._perm] = x[:, 0]
            return out
        if self._perm is not None:
            # Permute on the row side first: the fancy index yields a
            # fresh C-contiguous (B, n) array whose transpose is the
            # F-contiguous view gbtrs wants — one copy total, which the
            # solve is then free to overwrite in place.
            x = self._sweep(rhs[:, self._perm].T, overwrite=True)
            out = np.empty((self._n, rhs.shape[0]))
            out[self._perm] = x
            return out.T
        return self._sweep(rhs.T, overwrite=False).T


def factorize(a: np.ndarray, backend: str,
              structure: MatrixStructure | None = None):
    """Factor ``a`` with a concrete backend; returns a solver object.

    Parameters
    ----------
    a:
        Dense square system matrix.
    backend:
        A concrete name from :func:`select_backend` (``"auto"`` is not
        accepted here — resolve it first).
    structure:
        Pattern analysis (supplies the RCM permutation to the banded
        backend; recomputed from ``a`` when omitted).

    Raises
    ------
    numpy.linalg.LinAlgError
        When the matrix is singular (all backends normalise their
        factorization failures to this type).
    """
    require(backend in BACKENDS and backend != "auto",
            f"factorize needs a concrete backend, got {backend!r}")
    if not HAVE_SCIPY:
        return DenseLu(a)
    if backend == "sparse":
        return SparseLu(a)
    if backend == "banded":
        return BandedThomas(a, structure)
    return DenseLu(a)


def sparse_csr(m: np.ndarray):
    """CSR view of a dense matrix, or ``None`` when SciPy is missing."""
    if not HAVE_SCIPY:
        return None
    return _csr_matrix(m)


class PatternFrozenLu:
    """Numeric refactorisation over a frozen CSC sparsity pattern.

    The linear engine of the sparse-Jacobian Newton path: the symbolic
    pattern — the union of linear MNA stamps, capacitor companion
    positions and MOSFET device fill, fixed per topology — is frozen at
    construction; each :meth:`refactor` call takes only a fresh numeric
    ``data`` vector (the caller updates it in O(nnz) through the scatter
    maps of :class:`~repro.circuit.mna.SparseStampMaps`) and pays one
    numeric SuperLU factorization.  No dense matrix is ever assembled.
    """

    def __init__(self, size: int, indptr: np.ndarray, indices: np.ndarray):
        require(HAVE_SCIPY, "pattern-frozen sparse Newton requires scipy")
        self._shape = (int(size), int(size))
        self._indptr = np.asarray(indptr)
        self._indices = np.asarray(indices)

    def refactor(self, data: np.ndarray):
        """Factor the matrix whose CSC data vector is ``data``.

        Returns a SuperLU object (``.solve(rhs)``); raises
        :class:`numpy.linalg.LinAlgError` on a singular matrix (SuperLU
        signals it as ``RuntimeError``).  The ``solver.refactor``
        injection point forces that singular path, driving the stacked
        Newton engine down its backend ladder exactly as a numerically
        singular iterate would.
        """
        if maybe_fault("solver.refactor") is not None:
            raise np.linalg.LinAlgError("injected singular refactorization")
        a = _csc_matrix((data, self._indices, self._indptr),
                        shape=self._shape)
        try:
            return _splu(a)
        except RuntimeError as exc:
            raise np.linalg.LinAlgError(str(exc)) from exc


class BorderedBanded:
    """Block-bordered solve: banded core plus a small dense device border.

    For gate-plus-interconnect topologies the MOSFET Jacobian fill is
    confined to a small *border* (device terminal rows/columns plus the
    voltage-source branch rows that live entirely among them) while the
    remaining core — the RC interconnect — permutes to a narrow band.
    Writing the permuted system as::

        [B  E] [x1]   [r1]      B: banded core, constant per step size
        [F  C] [x2] = [r2]      C: border block, device entries change
                                   every Newton iteration

    the core factor, the coupling solve ``Y = B⁻¹E`` and the constant
    Schur part ``S₀ = C₀ − F·Y`` are computed once at construction (once
    per step size); every :meth:`solve` only assembles the device delta
    ``ΔC``, factors the border-sized dense ``S₀ + ΔC`` and
    back-substitutes — O(n·b) banded sweeps plus O(n_border³) dense work
    per Newton iteration instead of an O(n³) dense refactorization.

    Raises :class:`numpy.linalg.LinAlgError` at construction when the
    core is singular, and from :meth:`solve` when a Schur complement is.
    """

    def __init__(self, a: np.ndarray, border: np.ndarray, core: np.ndarray,
                 core_structure: MatrixStructure):
        require(HAVE_SCIPY, "bordered-banded Newton requires scipy")
        require(border.size > 0 and core.size > 0,
                "bordered solve needs non-empty border and core")
        self._n = a.shape[0]
        self._border = border
        self._core = core
        self._core_solver = BandedThomas(a[np.ix_(core, core)],
                                         core_structure)
        self._f = a[np.ix_(border, core)]
        # Y = B⁻¹E, one multi-rhs banded sweep over the border columns.
        self._y = self._core_solver.solve(a[np.ix_(core, border)].T).T
        self._s0 = a[np.ix_(border, border)] - self._f @ self._y

    @property
    def n_border(self) -> int:
        """Size of the dense border block."""
        return int(self._border.size)

    def schur_state(self) -> tuple:
        """Flat blocks ``(core, border, f, y, s0)`` for kernel backends.

        Together with :meth:`core_sweep` this is everything a fused
        Newton kernel needs: with the device fill confined to the
        border, the per-iteration update is fully determined by
        border-sized arithmetic on these arrays.
        """
        return self._core, self._border, self._f, self._y, self._s0

    def core_sweep(self, rhs: np.ndarray) -> np.ndarray:
        """Core solve ``B⁻¹·rhs`` (``(n_core,)`` or stacked ``(B, n_core)``)."""
        return self._core_solver.solve(rhs)

    def solve(self, rhs: np.ndarray, delta_c: np.ndarray) -> np.ndarray:
        """Solve with the border block perturbed by ``delta_c``.

        ``rhs`` is ``(n,)`` with ``delta_c`` ``(nb, nb)``, or a stacked
        ``(B, n)`` with ``(B, nb, nb)``; the result has the same leading
        shape.
        """
        rhs = np.asarray(rhs, dtype=np.float64)
        if rhs.ndim == 1:
            w1 = self._core_solver.solve(rhs[self._core])
            z2 = np.linalg.solve(self._s0 + delta_c,
                                 rhs[self._border] - self._f @ w1)
            x = np.empty(self._n)
            x[self._core] = w1 - self._y @ z2
            x[self._border] = z2
            return x
        w1 = self._core_solver.solve(rhs[:, self._core])
        t = rhs[:, self._border] - w1 @ self._f.T
        z2 = np.linalg.solve(self._s0[None, :, :] + delta_c,
                             t[..., None])[..., 0]
        x = np.empty_like(rhs)
        x[:, self._core] = w1 - z2 @ self._y.T
        x[:, self._border] = z2
        return x
