"""A from-scratch nonlinear circuit simulator (the paper's Hspice stand-in).

Public surface:

* :class:`~repro.circuit.netlist.Circuit` — netlist builder
* :func:`~repro.circuit.transient.simulate_transient` — trapezoidal/Newton
  transient analysis
* :func:`~repro.circuit.transient.simulate_transient_batch` /
  :func:`~repro.circuit.transient.simulate_transient_many` — batched
  transient analysis over stacked matrices (many stimuli, one Newton loop)
* :func:`~repro.circuit.dc.dc_operating_point` /
  :func:`~repro.circuit.dc.dc_operating_point_batch` — DC solves with gmin
  stepping (stacked over topology-sharing variants in the batch form)
* Pluggable linear-solver backends (:mod:`repro.circuit.solvers`):
  dense LU, banded/(block-)tridiagonal Thomas, sparse LU — selected per
  topology from the MNA sparsity pattern; MOSFET circuits take the
  pattern-frozen Newton kernels (frozen-pattern SuperLU
  refactorization / block-bordered banded Schur) under the same names
* Source functions (:class:`Dc`, :class:`Pwl`, :class:`RampSource`, …)
* MOSFET parameter sets (:data:`NMOS_013`, :data:`PMOS_013`)
* Array-kernel backends (:mod:`repro.circuit.kernels`): NumPy reference
  vs numba-compiled flat-array hot loops, selected process-wide via
  :func:`set_default_kernel` / ``REPRO_KERNEL``
"""

from .dc import (DcConvergenceError, DcResult, dc_operating_point,
                 dc_operating_point_batch)
from .elements import Capacitor, CurrentSource, Mosfet, Resistor, VoltageSource
from .kernels import (HAVE_NUMBA, KernelBackend, available_kernels,
                      resolve_kernel, set_default_kernel)
from .mna import MnaSystem
from .mosfet import MosfetParams, NMOS_013, PMOS_013, mosfet_eval
from .netlist import Circuit, GROUND
from .solvers import BACKENDS, MatrixStructure, analyze_pattern, select_backend
from .sources import Dc, Pwl, PulseSource, RampSource, SourceFunction, WaveformSource
from .transient import (
    BatchStimulus,
    ConvergenceError,
    TransientJob,
    TransientOptions,
    TransientResult,
    simulate_transient,
    simulate_transient_batch,
    simulate_transient_many,
)

__all__ = [
    "Circuit",
    "GROUND",
    "MnaSystem",
    "MosfetParams",
    "NMOS_013",
    "PMOS_013",
    "mosfet_eval",
    "Resistor",
    "Capacitor",
    "VoltageSource",
    "CurrentSource",
    "Mosfet",
    "Dc",
    "Pwl",
    "RampSource",
    "PulseSource",
    "WaveformSource",
    "SourceFunction",
    "simulate_transient",
    "simulate_transient_batch",
    "simulate_transient_many",
    "TransientJob",
    "BatchStimulus",
    "TransientResult",
    "TransientOptions",
    "ConvergenceError",
    "dc_operating_point",
    "dc_operating_point_batch",
    "DcResult",
    "DcConvergenceError",
    "BACKENDS",
    "MatrixStructure",
    "analyze_pattern",
    "select_backend",
    "HAVE_NUMBA",
    "KernelBackend",
    "available_kernels",
    "resolve_kernel",
    "set_default_kernel",
]
