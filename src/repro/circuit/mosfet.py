"""A smoothed level-1 (Shichman–Hodges) MOSFET model with analytic derivatives.

The golden reference in the paper is Hspice with a foundry 0.13 µm library;
here the device physics only needs to provide the *qualitative* nonlinear
switching behaviour of CMOS gates (threshold, triode/saturation, drive
strength scaling with W/L).  The classic square-law model with
channel-length modulation does that, and a C∞ smoothing of the
``max(vgs - vth, 0)`` overdrive keeps Newton–Raphson happy.

All evaluation is vectorised over devices so the transient loop costs one
NumPy pass per Newton iteration regardless of device count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import require
from .kernels.step_kernels import SMOOTH_EPS as _SMOOTH_EPS
from .kernels.step_kernels import mos_eval as _mos_eval
from .kernels.step_kernels import square_law as _square_law

__all__ = ["MosfetParams", "NMOS_013", "PMOS_013", "mosfet_eval"]


@dataclass(frozen=True)
class MosfetParams:
    """Electrical parameters of a square-law MOSFET.

    Attributes
    ----------
    polarity:
        ``+1`` for NMOS, ``-1`` for PMOS.
    kp:
        Process transconductance ``µ·Cox`` in A/V².
    vth:
        Threshold voltage *magnitude* in volts.
    lam:
        Channel-length modulation coefficient in 1/V.
    cox:
        Gate-oxide capacitance per area, F/m² (used for gate capacitance).
    cj:
        Junction capacitance per drain width, F/m (used for drain loading).
    """

    polarity: int
    kp: float
    vth: float
    lam: float
    cox: float
    cj: float

    def __post_init__(self) -> None:
        require(self.polarity in (1, -1), "polarity must be +1 (NMOS) or -1 (PMOS)")
        require(self.kp > 0.0, "kp must be positive")
        require(self.vth > 0.0, "vth magnitude must be positive")
        require(self.lam >= 0.0, "lambda must be non-negative")

    def beta(self, w: float, length: float) -> float:
        """Device transconductance factor ``kp · W / L``."""
        require(w > 0 and length > 0, "W and L must be positive")
        return self.kp * w / length

    def gate_capacitance(self, w: float, length: float) -> float:
        """Total (simplified) gate capacitance ``Cox · W · L``."""
        return self.cox * w * length

    def drain_capacitance(self, w: float) -> float:
        """Drain junction capacitance ``cj · W``."""
        return self.cj * w


#: 0.13 µm-class NMOS parameters (substitute for the TSMC library device).
NMOS_013 = MosfetParams(polarity=1, kp=400e-6, vth=0.32, lam=0.06, cox=0.012, cj=0.8e-9)

#: 0.13 µm-class PMOS parameters; kp is half the NMOS value so a 2:1 Wp/Wn
#: inverter has a balanced switching threshold near Vdd/2.
PMOS_013 = MosfetParams(polarity=-1, kp=200e-6, vth=0.32, lam=0.06, cox=0.012, cj=0.8e-9)

def mosfet_eval(
    vd: np.ndarray,
    vg: np.ndarray,
    vs: np.ndarray,
    polarity: np.ndarray,
    beta: np.ndarray,
    vth: np.ndarray,
    lam: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised drain current and partial derivatives for a device array.

    Handles both polarities (PMOS via voltage mirroring) and both drain
    bias signs (``vds < 0`` via source/drain swap — the square-law device
    is symmetric).

    Parameters
    ----------
    vd, vg, vs:
        Terminal voltages per device.
    polarity:
        ``+1`` / ``-1`` per device.
    beta, vth, lam:
        Model parameters per device (``vth`` is the magnitude).

    Returns
    -------
    (ids, d_ids/d_vd, d_ids/d_vg, d_ids/d_vs)
        ``ids`` is the current flowing *into* the drain terminal and out of
        the source terminal.  Derivatives are with respect to the original
        (un-mirrored) node voltages, ready for Jacobian stamping.

    Notes
    -----
    This is a thin alias of the flat kernel primitive
    :func:`repro.circuit.kernels.step_kernels.mos_eval` — the scalar and
    batched engines, and every kernel backend, share that one
    implementation (a scalar operating point is a batch of one).
    """
    return _mos_eval(vd, vg, vs, polarity, beta, vth, lam)
