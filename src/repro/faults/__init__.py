"""Deterministic, seeded fault injection (see :mod:`repro.faults.registry`).

Production seams call :func:`maybe_fault` with a literal point name
declared in :data:`POINTS`; chaos tests activate a :class:`FaultPlan`
(via the ``REPRO_FAULTS`` knob, :func:`install_plan`, or the
:func:`injected` context manager) and reconcile what fired against the
plan with :func:`fault_stats` / :func:`would_fire`.
"""

from .registry import (POINTS, FaultError, FaultInjector, FaultPlan,
                       FaultRule, FaultSpecError, active_plan, fault_stats,
                       injected, install_plan, maybe_fault, reset,
                       would_fire)

__all__ = [
    "POINTS",
    "FaultError",
    "FaultSpecError",
    "FaultRule",
    "FaultPlan",
    "FaultInjector",
    "maybe_fault",
    "would_fire",
    "install_plan",
    "active_plan",
    "fault_stats",
    "reset",
    "injected",
]
