"""Deterministic, seeded fault injection for the execution/service stack.

The resilience claims of this repo — crash/timeout shard fallback,
corrupt-store self-healing, admission control, the Newton backend
ladder — were each tested by hand-crafted monkeypatches.  This registry
replaces those ad-hoc seams with one declared mechanism:

* every place production code can be made to fail is a **named
  injection point**, declared in :data:`POINTS` with the fault kinds it
  honours (``reprolint``'s ``fault-seam`` rule statically forbids any
  other failure hook in ``src/``);
* a **fault plan** (:class:`FaultPlan`) — parsed from the
  ``REPRO_FAULTS`` knob or installed programmatically — says which
  points fire, with what kind, probability, and trigger window;
* every fire decision is a **pure function** of
  ``(plan.seed, point, rule index, token)``, hashed through
  :func:`zlib.crc32` into a dedicated :class:`random.Random` stream —
  stable across processes, Python runs and ``PYTHONHASHSEED`` — so a
  storm replays bit-identically and a parent process can *predict*
  which worker-side tokens fired without sharing state
  (:func:`would_fire`).

Seams call :func:`maybe_fault` with their literal point name.  With no
plan active the call is a near-free ``None`` check, so the seams cost
nothing in production.  Tokens address a decision: sequence-addressed
points (store I/O, service sends) default to the per-process call
ordinal; token-addressed points (pool shards) pass a stable identifier
such as the shard index, which is what makes the parent-side prediction
line up with what the worker actually did.

The module is deliberately stdlib-only (like :mod:`repro._knobs`, which
it reads ``REPRO_FAULTS`` through): it is imported by the circuit,
exec and service layers alike, below the numeric stack.
"""

from __future__ import annotations

import random
import warnings
import zlib
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass

from .._knobs import knob

__all__ = [
    "POINTS",
    "FaultError",
    "FaultSpecError",
    "FaultRule",
    "FaultPlan",
    "FaultInjector",
    "maybe_fault",
    "would_fire",
    "install_plan",
    "active_plan",
    "fault_stats",
    "reset",
    "injected",
]

#: Every injection point production code declares, with the fault kinds
#: its seam honours.  A plan naming an unknown point or kind is invalid;
#: ``reprolint``'s ``fault-seam`` rule cross-checks that every
#: ``maybe_fault("...")`` call site in ``src/`` names an entry here.
#:
#: ``pool.worker``     worker entry of a :func:`~repro.exec.pool.run_jobs`
#:                     shard (token = shard index): ``crash`` raises in
#:                     the worker, ``wedge``/``slow`` sleep — exercising
#:                     the crash-fallback and shard-deadline paths.
#: ``pool.indexed``    worker entry of a :func:`~repro.exec.pool.run_indexed`
#:                     chunk (token = first index).  No ``wedge``:
#:                     ``run_indexed`` carries no deadline, so a wedge
#:                     there would hang the run rather than test it.
#: ``store.read``      entry decode in :class:`~repro.exec.store.ResultStore`
#:                     — ``corrupt`` makes a present entry unreadable,
#:                     exercising the count/delete/self-heal path.
#: ``store.write``     entry insert — ``fail`` raises before the write,
#:                     ``partial`` leaves a torn temp file, ``enospc``
#:                     raises ``OSError(ENOSPC)``; all three exercise the
#:                     miss-only write-failure degradation.
#: ``store.unlink``    corrupt-entry healing — ``fail`` makes the delete
#:                     fail, exercising the undeletable-entry memo.
#: ``service.send``    one event write in :class:`~repro.service.server.StaService`
#:                     — ``disconnect`` drops the client mid-stream,
#:                     ``slow`` stalls the write.
#: ``service.frame``   :func:`repro.service.protocol.encode` — ``truncate``
#:                     emits half a frame with no newline terminator.
#: ``solver.refactor`` sparse Newton refactorisation in
#:                     :class:`~repro.circuit.solvers.PatternFrozenLu` —
#:                     ``singular`` forces ``LinAlgError``, exercising
#:                     the backend-ladder degradation.
POINTS: dict[str, tuple[str, ...]] = {
    "pool.worker": ("crash", "wedge", "slow"),
    "pool.indexed": ("crash", "slow"),
    "store.read": ("corrupt",),
    "store.write": ("fail", "partial", "enospc"),
    "store.unlink": ("fail",),
    "service.send": ("disconnect", "slow"),
    "service.frame": ("truncate",),
    "solver.refactor": ("singular",),
}

#: Default sleep (seconds) of the delay kinds when a rule has no ``arg``.
#: ``wedge`` must outlast any realistic shard deadline (the point is to
#: trip it); ``slow`` only perturbs timing.
_DEFAULT_DELAY = {"wedge": 120.0, "slow": 0.05}


class FaultError(RuntimeError):
    """An injected failure (the ``crash``/``fail`` kinds raise this)."""


class FaultSpecError(ValueError):
    """A ``REPRO_FAULTS`` spec string that does not parse or validate."""


@dataclass(frozen=True)
class FaultRule:
    """One clause of a plan: fire ``kind`` at ``point``.

    Attributes
    ----------
    point / kind:
        A declared :data:`POINTS` entry and one of its kinds.
    probability:
        Chance each eligible token fires (1.0 = always).
    count:
        Size of the eligible token window: only tokens in
        ``[after, after + count)`` can fire (``None`` = unbounded).
        With ``probability`` 1 this is exactly the trigger count; the
        window form keeps the decision a pure function of the token, so
        storms replay and parents can predict worker fires.
    after:
        First eligible token ordinal (0-based).
    arg:
        Kind parameter: sleep seconds for ``wedge``/``slow``
        (:meth:`delay`), unused otherwise.
    """

    point: str
    kind: str
    probability: float = 1.0
    count: "int | None" = None
    after: int = 0
    arg: "float | None" = None

    def __post_init__(self) -> None:
        kinds = POINTS.get(self.point)
        if kinds is None:
            raise FaultSpecError(
                f"unknown injection point {self.point!r}; "
                f"declared points: {sorted(POINTS)}")
        if self.kind not in kinds:
            raise FaultSpecError(
                f"point {self.point!r} has no kind {self.kind!r}; "
                f"it honours {kinds}")
        if not 0.0 <= self.probability <= 1.0:
            raise FaultSpecError(
                f"probability must be in [0, 1], got {self.probability}")
        if self.count is not None and self.count < 1:
            raise FaultSpecError(f"count must be >= 1, got {self.count}")
        if self.after < 0:
            raise FaultSpecError(f"after must be >= 0, got {self.after}")

    def delay(self) -> float:
        """Sleep seconds of a ``wedge``/``slow`` fire (``arg`` or default)."""
        if self.arg is not None:
            return float(self.arg)
        return _DEFAULT_DELAY.get(self.kind, 0.0)


def _parse_clause(clause: str) -> FaultRule:
    head, _, opts = clause.partition(":")
    point, sep, kind = head.partition("=")
    if not sep or not point.strip() or not kind.strip():
        raise FaultSpecError(
            f"clause {clause!r} is not '<point>=<kind>[:p=..][:n=..]"
            f"[:after=..][:arg=..]'")
    kwargs: dict = {}
    if opts:
        for item in opts.split(":"):
            name, sep, value = item.partition("=")
            if not sep:
                raise FaultSpecError(f"bad option {item!r} in {clause!r}")
            name = name.strip()
            try:
                if name == "p":
                    kwargs["probability"] = float(value)
                elif name == "n":
                    kwargs["count"] = int(value)
                elif name == "after":
                    kwargs["after"] = int(value)
                elif name == "arg":
                    kwargs["arg"] = float(value)
                else:
                    raise FaultSpecError(
                        f"unknown option {name!r} in {clause!r} "
                        f"(knowns: p, n, after, arg)")
            except ValueError as exc:
                raise FaultSpecError(
                    f"bad value for {name!r} in {clause!r}: {exc}") from exc
    return FaultRule(point=point.strip(), kind=kind.strip(), **kwargs)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded storm: the parsed form of ``REPRO_FAULTS``.

    The spec grammar is ``;``-separated clauses::

        seed=42; pool.worker=crash; store.read=corrupt:p=0.5:n=2

    ``seed=<int>`` seeds every rule's decision stream (default 0); each
    other clause is ``<point>=<kind>`` with optional ``:p=<float>``
    (probability), ``:n=<int>`` (eligible-token window size),
    ``:after=<int>`` (first eligible token) and ``:arg=<float>``
    (kind parameter, e.g. wedge seconds).
    """

    seed: int = 0
    rules: tuple[FaultRule, ...] = ()

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a spec string; raises :class:`FaultSpecError` on garbage."""
        seed = 0
        rules: list[FaultRule] = []
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            if clause.startswith("seed="):
                try:
                    seed = int(clause[len("seed="):])
                except ValueError as exc:
                    raise FaultSpecError(
                        f"bad seed in {clause!r}: {exc}") from exc
                continue
            rules.append(_parse_clause(clause))
        if not rules:
            raise FaultSpecError(f"no fault clauses in spec {spec!r}")
        return cls(seed=seed, rules=tuple(rules))


def _draw(seed: int, point: str, rule_index: int, token: int) -> float:
    """The pure uniform draw of one (rule, token) decision.

    ``crc32`` (not ``hash``) keys the stream: stable across processes,
    runs and ``PYTHONHASHSEED``, so the decision a worker makes is the
    decision the parent predicts.
    """
    material = f"{point}|{rule_index}|{token}".encode()
    return random.Random((int(seed) << 32) ^ zlib.crc32(material)).random()


def would_fire(plan: FaultPlan, point: str, token: int) -> "FaultRule | None":
    """The rule that fires for ``token`` at ``point``, or ``None``.

    Stateless and pure — the prediction half of the replayability
    contract: a parent can reconcile its fallback counters against the
    plan by evaluating this over the tokens it handed out, even though
    the firing processes (crashed workers) never report back.
    """
    for idx, rule in enumerate(plan.rules):
        if rule.point != point:
            continue
        if token < rule.after:
            continue
        if rule.count is not None and token >= rule.after + rule.count:
            continue
        if rule.probability >= 1.0 or \
                _draw(plan.seed, point, idx, token) < rule.probability:
            return rule
    return None


class FaultInjector:
    """Plan + per-process accounting (calls per point, fires per kind)."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._calls: dict[str, int] = {}
        self._fired: dict[tuple[str, str], int] = {}

    def fire(self, point: str, token: "int | None") -> "FaultRule | None":
        """Decide one call; counts the call and any fire."""
        ordinal = self._calls.get(point, 0)
        self._calls[point] = ordinal + 1
        rule = would_fire(self.plan, point,
                          ordinal if token is None else int(token))
        if rule is not None:
            key = (point, rule.kind)
            self._fired[key] = self._fired.get(key, 0) + 1
        return rule

    def stats(self) -> dict:
        """Per-point calls and per-kind fires of *this process*.

        Fires inside crashed workers die with them; reconcile those via
        :func:`would_fire` over the tokens the parent handed out.
        """
        points: dict[str, dict] = {}
        for point, calls in sorted(self._calls.items()):
            points[point] = {"calls": calls, "fired": {}}
        for (point, kind), n in sorted(self._fired.items()):
            points.setdefault(point, {"calls": 0, "fired": {}})
            points[point]["fired"][kind] = n
        return {"seed": self.plan.seed,
                "rules": len(self.plan.rules),
                "points": points}


#: Module state: ``_UNSET`` = resolve ``REPRO_FAULTS`` on first use,
#: ``None`` = no plan (the production fast path), else the injector.
_UNSET = object()
_injector: object = _UNSET


def _resolve_env() -> "FaultInjector | None":
    """Resolve the knob once; garbage degrades to no-faults with a warning
    (the knob contract: a typo in the environment must not crash a run)."""
    global _injector
    spec = knob("REPRO_FAULTS")
    if not spec:
        _injector = None
        return None
    try:
        plan = FaultPlan.parse(spec)
    except FaultSpecError as exc:
        warnings.warn(f"ignoring REPRO_FAULTS: {exc}", RuntimeWarning,
                      stacklevel=3)
        _injector = None
        return None
    inj = FaultInjector(plan)
    _injector = inj
    return inj


def maybe_fault(point: str, token: "int | None" = None) -> "FaultRule | None":
    """The fault to inject at ``point`` for this call, or ``None``.

    The one call production seams make.  With no plan active this is a
    single ``None`` check; with one, the decision is pure in
    ``(seed, point, rule index, token)`` where ``token`` defaults to the
    point's per-process call ordinal.  Unknown points raise — seams are
    code, not environment, so they validate strictly.
    """
    inj = _injector
    if inj is None:
        return None
    if inj is _UNSET:
        inj = _resolve_env()
        if inj is None:
            return None
    if point not in POINTS:
        raise ValueError(f"undeclared injection point {point!r}; "
                         f"declare it in repro.faults.POINTS")
    return inj.fire(point, token)  # type: ignore[union-attr]


def install_plan(plan: "FaultPlan | str | None") -> "FaultInjector | None":
    """Activate ``plan`` (a :class:`FaultPlan`, a spec string, or ``None``
    to deactivate); returns the new injector.  Programmatic specs
    validate strictly — :class:`FaultSpecError` propagates."""
    global _injector
    if plan is None:
        _injector = None
        return None
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    inj = FaultInjector(plan)
    _injector = inj
    return inj


def active_plan() -> "FaultPlan | None":
    """The currently active plan (resolving ``REPRO_FAULTS`` if pending)."""
    inj = _injector
    if inj is _UNSET:
        inj = _resolve_env()
    return inj.plan if inj is not None else None  # type: ignore[union-attr]


def fault_stats() -> "dict | None":
    """This process's injector accounting, or ``None`` when inactive."""
    inj = _injector
    if inj is None or inj is _UNSET:
        return None
    return inj.stats()  # type: ignore[union-attr]


def reset() -> None:
    """Forget any installed plan and re-resolve ``REPRO_FAULTS`` on next
    use (tests monkeypatching the environment call this)."""
    global _injector
    _injector = _UNSET


@contextmanager
def injected(plan: "FaultPlan | str") -> Iterator[FaultInjector]:
    """Scoped :func:`install_plan`: activate for the block, then restore
    whatever was active before (including the unresolved-env state)."""
    global _injector
    previous = _injector
    inj = install_plan(plan)
    try:
        yield inj
    finally:
        _injector = previous
