"""Small shared helpers used across the :mod:`repro` packages.

These utilities deliberately stay tiny: argument coercion/validation and a
couple of numeric helpers that several subsystems need but that do not
belong to any one of them.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

__all__ = [
    "as_float_array",
    "require",
    "is_strictly_increasing",
    "linear_interp_crossings",
]


def as_float_array(data: Iterable[float], name: str = "array") -> np.ndarray:
    """Coerce ``data`` to a contiguous 1-D ``float64`` array.

    Parameters
    ----------
    data:
        Any iterable of numbers (list, tuple, ndarray, generator).
    name:
        Name used in error messages.

    Raises
    ------
    ValueError
        If the result is not one-dimensional or contains non-finite values.
    """
    arr = np.ascontiguousarray(data, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size and not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite values")
    return arr


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def is_strictly_increasing(arr: np.ndarray) -> bool:
    """Return ``True`` when ``arr`` is strictly increasing (or has < 2 items)."""
    if arr.size < 2:
        return True
    return bool(np.all(np.diff(arr) > 0.0))


def linear_interp_crossings(
    times: np.ndarray, values: np.ndarray, level: float
) -> np.ndarray:
    """Return every time at which the piecewise-linear curve crosses ``level``.

    The curve is the linear interpolation of ``(times, values)``.  Crossings
    are returned in increasing time order.  A sample exactly equal to
    ``level`` counts as a crossing only when the curve actually passes
    through the level there (a tangential touch from one side counts once; a
    flat segment sitting on the level contributes its start point only), so
    the result never contains duplicate times.

    Parameters
    ----------
    times, values:
        Sample coordinates; ``times`` must be strictly increasing.
    level:
        Voltage level to intersect.
    """
    if times.size == 0:
        return np.empty(0)
    diff = values - level
    crossings: list[float] = []
    # Sign of each sample relative to the level: -1 below, 0 on, +1 above.
    sign = np.sign(diff)
    prev_nonzero = 0.0  # sign of the most recent off-level sample
    for i in range(times.size):
        s = sign[i]
        if s == 0.0:
            # The sample sits exactly on the level.  Record it unless the
            # previous recorded crossing is this same instant.
            if not crossings or crossings[-1] != times[i]:
                # Avoid recording consecutive on-level samples (flat segment).
                if i == 0 or sign[i - 1] != 0.0:
                    crossings.append(float(times[i]))
            continue
        if prev_nonzero != 0.0 and s != prev_nonzero and i > 0 and sign[i - 1] != 0.0:
            # Strict sign change across this segment: interpolate.
            t0, t1 = times[i - 1], times[i]
            v0, v1 = diff[i - 1], diff[i]
            t_cross = t0 + (t1 - t0) * (-v0) / (v1 - v0)
            crossings.append(float(t_cross))
        prev_nonzero = s
    return np.asarray(crossings)
