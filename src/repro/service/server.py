"""The long-running noise-aware STA job service.

One :class:`StaService` owns the three things a batch script re-pays on
every invocation and a daemon pays once:

* the **process-wide analysis caches** — frozen sparsity patterns,
  Newton partitions and structure signatures
  (:func:`repro.circuit.mna.clear_analysis_cache`'s LRU) stay warm
  across requests because the process never exits;
* a persistent :class:`~repro.exec.ExecutionConfig` — the same worker
  pool + content-keyed :class:`~repro.exec.ResultStore` stack every
  batch entry point uses, shared by all requests (per-tenant store
  namespaces keep clients from aliasing each other's entries);
* an :class:`~repro.service.queue.AdmissionQueue` in front of it all —
  bounded depth, per-client quotas, reject-with-retry-after — so
  overload degrades into early refusals instead of unbounded latency.

Transport is the JSON-lines protocol of :mod:`repro.service.protocol`
over asyncio TCP (stdlib only).  Jobs execute on a small thread pool
(the solvers are numpy-bound and release the GIL; the event loop stays
free for admission and streaming), and partial results stream to the
submitting connection as the job produces them — a Table-1 submission
yields each configuration's rows while later configurations still
solve.  A client that disconnects mid-job is dropped from streaming but
the job completes: its solves warm the store for the retry.
"""

from __future__ import annotations

import asyncio
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace

from .._knobs import knob
from ..exec import ExecutionConfig, default_execution, fleet_stats
from ..faults import maybe_fault
from .jobs import JobSpecError, ServiceJob, build_job
from .protocol import (MAX_LINE_BYTES, PROTOCOL_VERSION, ProtocolError,
                       decode, encode)
from .queue import AdmissionQueue, QueuedJob, Rejected

__all__ = ["ServiceSettings", "StaService", "serve_in_thread"]


@dataclass(frozen=True)
class ServiceSettings:
    """How a :class:`StaService` listens and queues.

    Attributes
    ----------
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (read it back
        from :attr:`StaService.port` after start).
    queue_depth / quota:
        Admission control (see :class:`~repro.service.queue.AdmissionQueue`).
    concurrency:
        Jobs executed at once (worker tasks, each on its own executor
        thread).  The per-job parallelism inside a run stays with the
        execution config's ``workers``.
    execution:
        Base :class:`~repro.exec.ExecutionConfig` for every job;
        ``None`` resolves :func:`~repro.exec.default_execution` at
        start (the ``REPRO_WORKERS`` / ``REPRO_STORE`` /
        ``REPRO_SHARD_TIMEOUT`` environment).
    """

    host: str = "127.0.0.1"
    port: int = 8472
    queue_depth: int = 64
    quota: int = 16
    concurrency: int = 1
    execution: "ExecutionConfig | None" = None

    @classmethod
    def from_env(cls, env: "os._Environ | dict | None" = None) -> "ServiceSettings":
        """Settings from the declared ``REPRO_SERVICE_*`` knobs."""
        return cls(host=knob("REPRO_SERVICE_HOST", env),
                   port=knob("REPRO_SERVICE_PORT", env),
                   queue_depth=knob("REPRO_SERVICE_QUEUE_DEPTH", env),
                   quota=knob("REPRO_SERVICE_QUOTA", env))


@dataclass
class _Pending:
    """One admitted submission: runnable job + streaming destination."""

    job_id: int
    job: ServiceJob
    tenant: str
    writer: asyncio.StreamWriter
    client_gone: bool = False
    events: "asyncio.Queue[object]" = field(default_factory=asyncio.Queue)


_SENTINEL = object()


class StaService:
    """Asyncio STA job service; see the module docstring.

    Lifecycle: :meth:`start` binds and spawns workers,
    :meth:`serve_forever` blocks until a ``shutdown`` op (or
    :meth:`stop`), :meth:`stop` drains the queue, finishes in-flight
    jobs, and tears the listener down.
    """

    def __init__(self, settings: "ServiceSettings | None" = None):
        self.settings = settings if settings is not None else ServiceSettings()
        self.queue = AdmissionQueue(max_depth=self.settings.queue_depth,
                                    quota=self.settings.quota,
                                    concurrency=self.settings.concurrency)
        self._execution: ExecutionConfig | None = self.settings.execution
        self._tenant_execution: dict[str, ExecutionConfig] = {}
        self._server: asyncio.base_events.Server | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._workers: list[asyncio.Task] = []
        self._connections: dict[asyncio.Task, asyncio.StreamWriter] = {}
        self._work_available = asyncio.Event()
        self._stopping = False
        self._stopped = asyncio.Event()
        self._next_id = 1
        self.jobs_done = 0
        self.job_errors = 0
        self.bad_requests = 0
        self.dropped_clients = 0

    # -- lifecycle -------------------------------------------------------
    @property
    def host(self) -> str:
        return self.settings.host

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is not None and self._server.sockets:
            return self._server.sockets[0].getsockname()[1]
        return self.settings.port

    async def start(self) -> None:
        """Bind the listener and spawn the worker tasks."""
        if self._execution is None:
            self._execution = default_execution()
        self._executor = ThreadPoolExecutor(
            max_workers=self.settings.concurrency,
            thread_name_prefix="repro-service")
        self._server = await asyncio.start_server(
            self._handle, host=self.settings.host, port=self.settings.port,
            limit=MAX_LINE_BYTES)
        self._workers = [asyncio.create_task(self._worker())
                         for _ in range(self.settings.concurrency)]

    async def serve_forever(self) -> None:
        """Block until the service stops (``shutdown`` op or :meth:`stop`)."""
        await self._stopped.wait()

    async def stop(self) -> None:
        """Drain queued jobs, finish in-flight ones, close the listener."""
        if self._stopping:
            await self._stopped.wait()
            return
        self._stopping = True
        self._work_available.set()  # wake idle workers so they can exit
        if self._workers:
            await asyncio.gather(*self._workers)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Wake idle connection handlers with an EOF so their tasks can
        # finish before the loop goes away (otherwise their transports
        # are garbage-collected against a closed loop).
        for writer in self._connections.values():
            try:
                writer.close()
            except (ConnectionError, OSError):
                self.dropped_clients += 1
        if self._connections:
            await asyncio.gather(*self._connections,
                                 return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        self._stopped.set()

    # -- connection handling ----------------------------------------------
    async def _send(self, writer: asyncio.StreamWriter, message: dict) -> bool:
        """Write one event line; ``False`` when the client is gone.

        The ``service.send`` injection point fires inside the existing
        failure path: ``disconnect`` raises the same ``ConnectionError``
        a mid-stream client death produces (counted in
        ``dropped_clients``; the job keeps running), ``slow`` stalls the
        write like a congested client.
        """
        try:
            rule = maybe_fault("service.send")
            if rule is not None:
                if rule.kind == "slow":
                    await asyncio.sleep(rule.delay())
                elif rule.kind == "disconnect":
                    raise ConnectionResetError(
                        "injected mid-stream client disconnect")
            writer.write(encode(message))
            await writer.drain()
            return True
        except (ConnectionError, RuntimeError, OSError):
            self.dropped_clients += 1
            return False

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._connections[task] = writer
        await self._send(writer, {"event": "hello",
                                  "version": PROTOCOL_VERSION})
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    self.bad_requests += 1
                    await self._send(writer, {
                        "event": "error",
                        "error": f"request line over {MAX_LINE_BYTES} bytes"})
                    break
                if not line:
                    break  # EOF: client closed
                if not line.strip():
                    continue
                try:
                    request = decode(line)
                except ProtocolError as exc:
                    self.bad_requests += 1
                    if not await self._send(writer, {"event": "error",
                                                     "error": str(exc)}):
                        break
                    continue
                if not await self._dispatch(request, writer):
                    break
        finally:
            self._connections.pop(task, None)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                self.dropped_clients += 1

    async def _dispatch(self, request: dict,
                        writer: asyncio.StreamWriter) -> bool:
        """Handle one request; ``False`` closes the connection."""
        op = request.get("op")
        if op == "ping":
            return await self._send(writer, {"event": "pong",
                                             "version": PROTOCOL_VERSION})
        if op == "stats":
            return await self._send(writer, {"event": "stats",
                                             "stats": self.stats()})
        if op == "shutdown":
            await self._send(writer, {"event": "bye"})
            asyncio.create_task(self.stop())
            return False
        if op == "submit":
            return await self._submit(request, writer)
        self.bad_requests += 1
        return await self._send(writer, {"event": "error",
                                         "error": f"unknown op {op!r}"})

    async def _submit(self, request: dict,
                      writer: asyncio.StreamWriter) -> bool:
        if self._stopping:
            return await self._send(writer, {
                "event": "rejected", "reason": "shutting down",
                "retry_after": self.queue.retry_after()})
        try:
            job = build_job(request.get("job"))
        except JobSpecError as exc:
            self.bad_requests += 1
            return await self._send(writer, {"event": "error",
                                             "error": str(exc)})
        tenant = str(request.get("client", ""))
        priority = request.get("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool):
            self.bad_requests += 1
            return await self._send(writer, {
                "event": "error", "error": "'priority' must be an integer"})
        job_id = self._next_id
        self._next_id += 1
        pending = _Pending(job_id=job_id, job=job, tenant=tenant,
                           writer=writer)
        try:
            self.queue.submit(pending, priority=priority, client=tenant)
        except Rejected as exc:
            return await self._send(writer, {
                "event": "rejected", "reason": exc.reason,
                "retry_after": exc.retry_after})
        self._work_available.set()
        return await self._send(writer, {
            "event": "accepted", "id": job_id, "kind": job.kind,
            "queue_depth": self.queue.depth + self.queue.running})

    # -- execution ---------------------------------------------------------
    def _execution_for(self, tenant: str) -> ExecutionConfig:
        """The tenant's execution config: base, with a namespaced store.

        Cached per tenant so its store counters accumulate across
        requests (the ``stats`` op reports them) instead of resetting
        per job.
        """
        base = self._execution
        if not tenant or base.store is None:
            return base
        cfg = self._tenant_execution.get(tenant)
        if cfg is None:
            cfg = replace(base, store=base.store.namespaced(tenant))
            self._tenant_execution[tenant] = cfg
        return cfg

    async def _worker(self) -> None:
        while True:
            item = self.queue.pop()
            if item is None:
                if self._stopping:
                    return
                # No await between pop() and clear(): the loop is
                # single-threaded, so a submit cannot slip in between
                # and be lost to the cleared event.
                self._work_available.clear()
                await self._work_available.wait()
                continue
            await self._execute(item)

    async def _execute(self, item: QueuedJob) -> None:
        pending: _Pending = item.payload
        loop = asyncio.get_running_loop()
        events = pending.events

        def emit(event: dict) -> None:
            # Called from the executor thread.
            loop.call_soon_threadsafe(events.put_nowait, event)

        execution = self._execution_for(pending.tenant)
        job = pending.job

        def runner() -> None:
            try:
                result = job.run(execution, emit)
                emit({"event": "done", "result": result})
            except Exception as exc:
                # A failing job must not take the worker down; the
                # client gets the reason, the service counts it.
                self.job_errors += 1
                emit({"event": "error", "error": f"{type(exc).__name__}: {exc}"})
            finally:
                loop.call_soon_threadsafe(events.put_nowait, _SENTINEL)

        t0 = loop.time()
        loop.run_in_executor(self._executor, runner)
        while True:
            event = await events.get()
            if event is _SENTINEL:
                break
            message = dict(event)
            message["id"] = pending.job_id
            if not pending.client_gone:
                # A gone client stops the streaming, never the solve:
                # the store stays warm for the client's retry.
                pending.client_gone = not await self._send(pending.writer,
                                                           message)
        self.queue.finish(item, seconds=loop.time() - t0)
        self.jobs_done += 1

    # -- introspection -----------------------------------------------------
    def stats(self) -> dict:
        """Queue, store (base + per-tenant), and fleet statistics."""
        base = self._execution
        store_stats = None
        if base is not None and base.store is not None:
            store_stats = base.store.stats()
        return {
            "queue": self.queue.stats(),
            "jobs_done": self.jobs_done,
            "job_errors": self.job_errors,
            "bad_requests": self.bad_requests,
            "dropped_clients": self.dropped_clients,
            "store": store_stats,
            "tenants": {name: cfg.store.stats()
                        for name, cfg in sorted(self._tenant_execution.items())},
            "fleet": fleet_stats(),
        }


def serve_in_thread(settings: "ServiceSettings | None" = None):
    """Run a service on a fresh event loop in a daemon thread.

    For tests and embedders: returns ``(service, shutdown)`` once the
    listener is bound (so ``service.port`` is final); ``shutdown()``
    drains and joins.  The daemon entry point
    (:mod:`repro.service.__main__`) runs the loop in the main thread
    instead.
    """
    import threading

    loop = asyncio.new_event_loop()
    service = StaService(settings)
    started = threading.Event()

    async def _main() -> None:
        await service.start()
        started.set()
        await service.serve_forever()

    def _run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(_main())
        finally:
            loop.close()

    thread = threading.Thread(target=_run, name="repro-service-loop",
                              daemon=True)
    thread.start()
    started.wait(timeout=30.0)

    def shutdown(timeout: float = 30.0) -> None:
        # Don't wait on the scheduled coroutine's future: if the service
        # already stopped (a client's ``shutdown`` op), the loop may be
        # exiting run_until_complete right now and never run the
        # callback — the future would simply never resolve.  The loop
        # thread exits exactly when the service has stopped, so joining
        # it is the race-free wait in both cases.
        if thread.is_alive() and not loop.is_closed():
            try:
                asyncio.run_coroutine_threadsafe(service.stop(), loop)
            except RuntimeError:
                pass  # loop closed between the check and the call
        thread.join(timeout=timeout)
        if thread.is_alive():
            raise RuntimeError("service did not stop within "
                               f"{timeout:.0f}s")

    return service, shutdown
