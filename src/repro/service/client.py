"""Blocking client for the STA job service.

A thin synchronous wrapper over the JSON-lines protocol — plain
``socket`` + ``json``, importable from scripts and tests without any
asyncio plumbing.  One client holds one connection and runs one
submission at a time (the server itself multiplexes fine; this class
just keeps the common case simple).

Typical use::

    from repro.service.client import ServiceClient

    with ServiceClient(port=port, client="tenant-a") as svc:
        result = svc.submit({"kind": "transient", ...},
                            on_event=print)        # streamed partials
        stats = svc.stats()

``submit`` raises :class:`~repro.service.queue.Rejected` when admission
control refuses the job; :meth:`ServiceClient.submit_with_retry` turns
that into decorrelated-jitter exponential backoff (seeded and
injectable for tests) so a fleet of refused clients spreads out instead
of thundering back in lockstep.
"""

from __future__ import annotations

import random
import socket
import time
from collections.abc import Callable, Iterator

from .._knobs import knob
from .protocol import PROTOCOL_VERSION, ProtocolError, decode, encode
from .queue import Rejected

__all__ = ["ServiceError", "ServiceClient"]


class ServiceError(RuntimeError):
    """The service reported an ``error`` event for our request."""


class ServiceClient:
    """One blocking connection to a running :class:`~repro.service.server.StaService`.

    Parameters
    ----------
    host / port:
        Where the service listens; default to the ``REPRO_SERVICE_HOST``
        / ``REPRO_SERVICE_PORT`` knobs so a client and a default daemon
        agree without configuration.
    client:
        Tenant name sent with every submission — admission quota bucket
        and result-store namespace.
    timeout:
        Socket timeout in seconds for connect and reads; ``None`` waits
        forever (jobs can legitimately take minutes).
    """

    def __init__(self, host: "str | None" = None, port: "int | None" = None,
                 *, client: str = "", timeout: "float | None" = None):
        self.host = host if host is not None else knob("REPRO_SERVICE_HOST")
        self.port = port if port is not None else knob("REPRO_SERVICE_PORT")
        self.client = client
        self._sock = socket.create_connection((self.host, self.port),
                                              timeout=timeout)
        self._file = self._sock.makefile("rwb")
        hello = self._read()
        if hello.get("event") != "hello":
            raise ServiceError(f"expected hello, got {hello!r}")
        if hello.get("version") != PROTOCOL_VERSION:
            raise ServiceError(
                f"protocol version mismatch: server speaks "
                f"{hello.get('version')}, client speaks {PROTOCOL_VERSION}")

    # -- plumbing ----------------------------------------------------------
    def _write(self, message: dict) -> None:
        self._file.write(encode(message))
        self._file.flush()

    def _read(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ConnectionError("service closed the connection")
        try:
            return decode(line)
        except ProtocolError as exc:
            raise ServiceError(f"bad line from service: {exc}") from exc

    def close(self) -> None:
        try:
            self._file.close()
            self._sock.close()
        except OSError:
            pass  # already torn down is fine for close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- simple ops ----------------------------------------------------------
    def ping(self) -> dict:
        """Liveness probe; returns the ``pong`` event."""
        self._write({"op": "ping"})
        return self._read()

    def stats(self) -> dict:
        """Queue / store / fleet statistics snapshot."""
        self._write({"op": "stats"})
        reply = self._read()
        if reply.get("event") != "stats":
            raise ServiceError(f"expected stats, got {reply!r}")
        return reply["stats"]

    def shutdown(self) -> None:
        """Ask the service to drain and stop."""
        self._write({"op": "shutdown"})
        reply = self._read()
        if reply.get("event") != "bye":
            raise ServiceError(f"expected bye, got {reply!r}")

    # -- submissions -----------------------------------------------------
    def iter_submit(self, job: dict, *, priority: int = 0) -> Iterator[dict]:
        """Submit ``job`` and yield every event as it streams.

        Yields the ``accepted`` event, then partial-result events, and
        finally the ``done`` event.  Raises
        :class:`~repro.service.queue.Rejected` on refusal and
        :class:`ServiceError` when the job (or spec) fails server-side.
        """
        self._write({"op": "submit", "job": job, "priority": priority,
                     "client": self.client})
        first = self._read()
        event = first.get("event")
        if event == "rejected":
            raise Rejected(first.get("reason", "rejected"),
                           float(first.get("retry_after", 0.0)))
        if event == "error":
            raise ServiceError(first.get("error", "unknown error"))
        if event != "accepted":
            raise ServiceError(f"expected accepted, got {first!r}")
        yield first
        job_id = first.get("id")
        while True:
            message = self._read()
            if message.get("id") != job_id:
                continue  # stray event from a previous stream
            if message.get("event") == "error":
                raise ServiceError(message.get("error", "unknown error"))
            yield message
            if message.get("event") == "done":
                return

    def submit(self, job: dict, *, priority: int = 0,
               on_event: "Callable[[dict], None] | None" = None) -> dict:
        """Submit ``job``, stream partials to ``on_event``, return the result.

        The return value is the ``done`` event's ``result`` payload.
        """
        result: dict = {}
        for message in self.iter_submit(job, priority=priority):
            if on_event is not None:
                on_event(message)
            if message.get("event") == "done":
                result = message.get("result", {})
        return result

    def submit_with_retry(self, job: dict, *, priority: int = 0,
                          on_event: "Callable[[dict], None] | None" = None,
                          attempts: int = 8, max_wait: float = 5.0,
                          base_wait: float = 0.05,
                          rng: "random.Random | None" = None,
                          sleep: "Callable[[float], None]" = time.sleep) -> dict:
        """:meth:`submit` with decorrelated-jitter backoff on refusal.

        On :class:`~repro.service.queue.Rejected` the client waits and
        resubmits, up to ``attempts`` tries; the last refusal
        propagates.  The wait is a *decorrelated-jitter* exponential
        backoff: a uniform draw from ``[base_wait, max(hint, 3 × last
        wait, base_wait)]``, capped at ``max_wait`` — never below the
        service's ``retry_after`` floor semantics, never synchronised
        across clients.  (Honouring the hint verbatim, as this method
        originally did, herds every refused client back on the same
        tick: the service rejects them all again, repeat — a thundering
        herd that can starve admission indefinitely at high client
        counts.)

        ``rng`` (default: a fresh OS-seeded :class:`random.Random`) and
        ``sleep`` are injectable, so tests can pin the jitter sequence
        and capture the waits without real sleeping.
        """
        if rng is None:
            rng = random.Random()
        wait = 0.0
        for attempt in range(attempts):
            try:
                return self.submit(job, priority=priority, on_event=on_event)
            except Rejected as exc:
                if attempt == attempts - 1:
                    raise
                hint = max(0.0, exc.retry_after)
                target = max(hint, wait * 3.0, base_wait)
                wait = min(max_wait, rng.uniform(base_wait, target))
                sleep(wait)
        raise AssertionError("unreachable")  # pragma: no cover
