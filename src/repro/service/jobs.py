"""Job specifications the STA service accepts, and their runners.

A submission's ``job`` field is a JSON object with a ``kind``; each kind
maps to a :class:`ServiceJob` whose :meth:`~ServiceJob.run` executes on
a service worker against the service's warm
:class:`~repro.exec.ExecutionConfig` (persistent store, long-lived
per-topology analysis caches) and streams partial results through an
``emit`` callback.  The registry (:data:`JOB_KINDS` /
:func:`register_job_kind`) is open so deployments and tests can add
kinds without editing this module.

Built-in kinds
--------------
``transient``
    A netlist + stimulus described inline (JSON elements: ``resistor``,
    ``capacitor``, ``vsource``, ``isource``; sources: ``dc``, ``ramp``,
    ``pwl``), solved through :func:`repro.exec.run_jobs`.  Streams one
    ``waveform`` event per probed node; the final result repeats the
    probe list and solver stats.
``table1``
    A paper Table-1 accuracy sweep (configuration ``"I"``/``"II"`` or a
    list of them).  Configurations run as separate groups so their rows
    stream as each group completes — a long multi-configuration sweep
    shows its first table while the second still solves.
``sta_mc``
    Monte-Carlo statistical STA over an inline design: structural
    Verilog + Liberty text, σ-parameterised variation, seeded sample
    sweep through :func:`repro.sta.statistical.run_sta_monte_carlo`.
    Streams one ``sample`` event per Monte-Carlo sample; the final
    result carries the arrival/slack quantiles.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

from .._util import require
from ..circuit.netlist import Circuit
from ..circuit.sources import Dc, Pwl, RampSource, SourceFunction
from ..circuit.transient import TransientJob, TransientOptions
from ..exec import ExecutionConfig, run_jobs

__all__ = ["JobSpecError", "ServiceJob", "JOB_KINDS", "register_job_kind",
           "build_job"]


class JobSpecError(ValueError):
    """A submission's job spec is malformed (client error, not server)."""


#: kind -> builder(spec dict) -> ServiceJob.  Open registry.
JOB_KINDS: "dict[str, Callable[[dict], ServiceJob]]" = {}


def register_job_kind(name: str,
                      builder: "Callable[[dict], ServiceJob]") -> None:
    """Register (or replace) a job kind under ``name``."""
    require(isinstance(name, str) and name, "job kind needs a name")
    JOB_KINDS[name] = builder


def build_job(spec: object) -> "ServiceJob":
    """Validate a submission's ``job`` field into a runnable job.

    Raises
    ------
    JobSpecError
        On anything malformed — the server reports it to the client and
        carries on; a bad spec must never take a worker down.
    """
    if not isinstance(spec, dict):
        raise JobSpecError("job spec must be a JSON object")
    kind = spec.get("kind")
    builder = JOB_KINDS.get(kind)
    if builder is None:
        raise JobSpecError(
            f"unknown job kind {kind!r}; known: {sorted(JOB_KINDS)}")
    return builder(spec)


class ServiceJob:
    """One unit of service work.

    Subclasses implement :meth:`run`, which executes synchronously on a
    worker thread; ``emit(event_dict)`` streams a partial-result event
    to the submitting client (the server stamps the job id and forwards
    it), and the return value becomes the ``done`` event's ``result``.
    """

    kind = "abstract"

    def describe(self) -> str:
        """One-line label for logs and ``stats``."""
        return self.kind

    def run(self, execution: ExecutionConfig,
            emit: "Callable[[dict], None]") -> dict:
        raise NotImplementedError


# ----------------------------------------------------------------------
# helpers shared by the built-in kinds
# ----------------------------------------------------------------------
def _require_spec(cond: bool, message: str) -> None:
    if not cond:
        raise JobSpecError(message)


def _float_field(obj: dict, name: str, default: "float | None" = None) -> float:
    value = obj.get(name, default)
    _require_spec(isinstance(value, (int, float))
                  and not isinstance(value, bool),
                  f"field {name!r} must be a number")
    return float(value)


def _decode_source(obj: object) -> SourceFunction:
    """JSON stimulus → :class:`SourceFunction` (dc / ramp / pwl)."""
    if isinstance(obj, (int, float)) and not isinstance(obj, bool):
        return Dc(float(obj))
    _require_spec(isinstance(obj, dict), "source must be a number or object")
    kind = obj.get("kind")
    if kind == "dc":
        return Dc(_float_field(obj, "value"))
    if kind == "ramp":
        return RampSource(_float_field(obj, "t_start"),
                          _float_field(obj, "slew"),
                          _float_field(obj, "v_from"),
                          _float_field(obj, "v_to"))
    if kind == "pwl":
        points = obj.get("points")
        _require_spec(isinstance(points, list) and len(points) >= 1,
                      "pwl source needs a non-empty 'points' list")
        try:
            return Pwl([(float(t), float(v)) for t, v in points])
        except (TypeError, ValueError) as exc:
            raise JobSpecError(f"bad pwl points: {exc}") from exc
    raise JobSpecError(f"unknown source kind {kind!r} (dc/ramp/pwl)")


def _decode_circuit(obj: object) -> Circuit:
    """JSON netlist → :class:`Circuit` (R / C / V / I elements)."""
    _require_spec(isinstance(obj, dict), "netlist must be a JSON object")
    elements = obj.get("elements")
    _require_spec(isinstance(elements, list) and elements,
                  "netlist needs a non-empty 'elements' list")
    circuit = Circuit(str(obj.get("name", "service")))
    for el in elements:
        _require_spec(isinstance(el, dict), "each element must be an object")
        kind = el.get("kind")
        name = el.get("name")
        _require_spec(isinstance(name, str) and name,
                      f"element of kind {kind!r} needs a 'name'")
        a, b = str(el.get("a", "")), str(el.get("b", ""))
        _require_spec(bool(a) and bool(b),
                      f"element {name!r} needs nodes 'a' and 'b'")
        try:
            if kind == "resistor":
                circuit.resistor(name, a, b, _float_field(el, "value"))
            elif kind == "capacitor":
                circuit.capacitor(name, a, b, _float_field(el, "value"))
            elif kind == "vsource":
                circuit.vsource(name, a, b, _decode_source(el.get("source")))
            elif kind == "isource":
                circuit.isource(name, a, b, _decode_source(el.get("source")))
            else:
                raise JobSpecError(
                    f"unknown element kind {kind!r} "
                    f"(resistor/capacitor/vsource/isource)")
        except JobSpecError:
            raise
        except (TypeError, ValueError) as exc:
            raise JobSpecError(f"bad element {name!r}: {exc}") from exc
    return circuit


def _decode_options(obj: object) -> "TransientOptions | None":
    if obj is None:
        return None
    _require_spec(isinstance(obj, dict), "'options' must be a JSON object")
    valid = {f.name for f in dataclasses.fields(TransientOptions)}
    unknown = set(obj) - valid
    _require_spec(not unknown,
                  f"unknown option(s) {sorted(unknown)}; valid: {sorted(valid)}")
    try:
        return TransientOptions(**obj)
    except (TypeError, ValueError) as exc:
        raise JobSpecError(f"bad options: {exc}") from exc


# ----------------------------------------------------------------------
# kind: transient
# ----------------------------------------------------------------------
class TransientServiceJob(ServiceJob):
    """Solve one inline netlist and stream its node waveforms."""

    kind = "transient"

    def __init__(self, spec: dict):
        self.circuit = _decode_circuit(spec.get("netlist"))
        t_stop = _float_field(spec, "t_stop")
        dt = _float_field(spec, "dt")
        t_start = _float_field(spec, "t_start", 0.0)
        _require_spec(dt > 0 and t_stop > t_start,
                      "need dt > 0 and t_stop > t_start")
        self.job = TransientJob(
            self.circuit, t_stop=t_stop, dt=dt, t_start=t_start,
            initial_voltages=spec.get("initial_voltages"),
            use_ic=bool(spec.get("use_ic", False)),
            options=_decode_options(spec.get("options")))
        probes = spec.get("probes")
        if probes is not None:
            _require_spec(isinstance(probes, list)
                          and all(isinstance(p, str) for p in probes),
                          "'probes' must be a list of node names")
            missing = [p for p in probes if not self.circuit.has_node(p)]
            _require_spec(not missing, f"unknown probe node(s) {missing}")
        self.probes = probes

    def describe(self) -> str:
        return f"transient({self.circuit.name})"

    def run(self, execution: ExecutionConfig,
            emit: "Callable[[dict], None]") -> dict:
        diag: dict = {}
        result = run_jobs([self.job], execution, diag=diag)[0]
        nodes = self.probes if self.probes is not None else result.node_names
        times = result.times.tolist()
        for node in nodes:
            emit({"event": "waveform", "node": node, "times": times,
                  "voltages": result.voltage_samples(node).tolist()})
        stats = {k: v for k, v in result.stats.items()
                 if isinstance(v, (bool, int, float, str))}
        return {"nodes": list(nodes), "n_steps": len(times) - 1,
                "t_stop": times[-1], "stats": stats,
                "store_hits": diag.get("store_hits", 0),
                "store_misses": diag.get("store_misses", 0)}


# ----------------------------------------------------------------------
# kind: table1
# ----------------------------------------------------------------------
def _error_stats_payload(stats) -> dict:
    return {"count": stats.count, "failures": stats.failures,
            "max_abs": stats.max_abs, "mean_abs": stats.mean_abs,
            "rms": stats.rms, "mean_signed": stats.mean_signed}


def _row_payload(config_name: str, row) -> dict:
    return {"config": config_name, "technique": row.technique,
            "delay": _error_stats_payload(row.delay),
            "arrival": _error_stats_payload(row.arrival)}


class Table1ServiceJob(ServiceJob):
    """Run the paper's Table-1 sweep, streaming rows per configuration."""

    kind = "table1"

    def __init__(self, spec: dict):
        # Import at build time, not module import: the service core
        # must not drag the experiment stack in for netlist-only use.
        from ..experiments.setup import CONFIG_I, CONFIG_II
        by_name = {"I": CONFIG_I, "II": CONFIG_II}
        raw = spec.get("config", "I")
        names = [raw] if isinstance(raw, str) else raw
        _require_spec(isinstance(names, list) and names
                      and all(isinstance(n, str) for n in names),
                      "'config' must be \"I\", \"II\", or a list of those")
        unknown = [n for n in names if n not in by_name]
        _require_spec(not unknown, f"unknown configuration(s) {unknown}")
        self.configs = [by_name[n] for n in names]
        n_cases = spec.get("n_cases")
        if n_cases is not None:
            _require_spec(isinstance(n_cases, int) and n_cases >= 2,
                          "'n_cases' must be an integer >= 2")
        self.n_cases = n_cases
        polarity = spec.get("polarity", "both")
        _require_spec(polarity in ("both", "opposing", "same"),
                      "'polarity' must be both/opposing/same")
        self.polarity = polarity
        self.solver_backend = str(spec.get("solver_backend", "auto"))
        adaptive = spec.get("adaptive")
        _require_spec(adaptive is None or isinstance(adaptive, bool),
                      "'adaptive' must be a boolean when given")
        self.adaptive = adaptive
        dt = spec.get("dt")
        self.dt = None if dt is None else _float_field(spec, "dt")

    def describe(self) -> str:
        names = ",".join(c.name for c in self.configs)
        return f"table1({names})"

    def run(self, execution: ExecutionConfig,
            emit: "Callable[[dict], None]") -> dict:
        from ..experiments.noise_injection import SweepTiming
        from ..experiments.table1 import run_table1
        timing = SweepTiming(dt=self.dt) if self.dt is not None else None
        tables = []
        for idx, config in enumerate(self.configs):
            emit({"event": "progress", "phase": "config",
                  "config": config.name, "index": idx,
                  "total": len(self.configs)})
            table = run_table1(
                config, n_cases=self.n_cases, timing=timing,
                polarity=self.polarity, solver_backend=self.solver_backend,
                adaptive=self.adaptive, execution=execution)
            rows = []
            for row in table.rows:
                payload = _row_payload(table.config_name, row)
                emit(dict(payload, event="row"))
                rows.append(payload)
            tables.append({"config": table.config_name,
                           "n_cases": table.n_cases,
                           "polarity": table.polarity, "rows": rows})
        return {"tables": tables}


# ----------------------------------------------------------------------
# kind: sta_mc
# ----------------------------------------------------------------------
class StaMonteCarloServiceJob(ServiceJob):
    """Monte-Carlo statistical STA over an inline Verilog + Liberty design."""

    kind = "sta_mc"

    def __init__(self, spec: dict):
        # Import at build time, not module import: the service core
        # must not drag the STA stack in for netlist-only use.
        from ..library.liberty import LibertyParseError, parse_liberty
        from ..sta.netlist import NetlistError, parse_structural_verilog

        verilog = spec.get("verilog")
        liberty = spec.get("liberty")
        _require_spec(isinstance(verilog, str) and bool(verilog),
                      "field 'verilog' must be structural-Verilog text")
        _require_spec(isinstance(liberty, str) and bool(liberty),
                      "field 'liberty' must be Liberty library text")
        try:
            self.netlist = parse_structural_verilog(verilog)
        except NetlistError as exc:
            raise JobSpecError(f"bad verilog: {exc}") from exc
        try:
            self.library = parse_liberty(liberty)
        except LibertyParseError as exc:
            raise JobSpecError(f"bad liberty: {exc}") from exc

        self.required = None
        if spec.get("required") is not None:
            self.required = _float_field(spec, "required")
        self.input_slew = _float_field(spec, "input_slew", 50e-12)
        _require_spec(self.input_slew > 0, "'input_slew' must be > 0")
        samples = spec.get("samples")
        _require_spec(samples is None
                      or (isinstance(samples, int) and samples >= 1),
                      "'samples' must be an integer >= 1")
        self.samples = samples
        seed = spec.get("seed")
        _require_spec(seed is None or isinstance(seed, int),
                      "'seed' must be an integer")
        self.seed = seed
        self.sigma_cell = _float_field(spec, "sigma_cell", 0.05)
        self.sigma_wire = _float_field(spec, "sigma_wire", 0.10)
        _require_spec(self.sigma_cell >= 0 and self.sigma_wire >= 0,
                      "variation sigmas must be >= 0")
        watch = spec.get("watch")
        if watch is not None:
            _require_spec(isinstance(watch, list)
                          and all(isinstance(w, str) for w in watch),
                          "'watch' must be a list of net names")
        self.watch = watch

    def describe(self) -> str:
        return f"sta_mc({self.netlist.name})"

    def run(self, execution: ExecutionConfig,
            emit: "Callable[[dict], None]") -> dict:
        from ..sta.analysis import InputSpec
        from ..sta.statistical import McVariation, run_sta_monte_carlo

        inputs = {net: InputSpec(slew=self.input_slew)
                  for net in self.netlist.primary_inputs}
        required = None
        if self.required is not None:
            required = {net: self.required
                        for net in self.netlist.primary_outputs}
        try:
            result = run_sta_monte_carlo(
                self.netlist, self.library, inputs=inputs,
                required_times=required,
                variation=McVariation(sigma_cell=self.sigma_cell,
                                      sigma_wire=self.sigma_wire),
                samples=self.samples, seed=self.seed, watch=self.watch,
                execution=execution,
                on_sample=lambda row: emit(dict(row, event="sample")))
        except (KeyError, ValueError) as exc:
            # Netlist/library mismatches (missing cells or arcs) surface
            # at analysis time; they are client errors, not server bugs.
            raise JobSpecError(f"cannot analyze design: {exc}") from exc
        return {"design": self.netlist.name, "samples": result.samples,
                "seed": result.seed, "quantiles": result.quantiles,
                "diag": dict(result.diag)}


register_job_kind(TransientServiceJob.kind, TransientServiceJob)
register_job_kind(Table1ServiceJob.kind, Table1ServiceJob)
register_job_kind(StaMonteCarloServiceJob.kind, StaMonteCarloServiceJob)
