"""Priority job queue with admission control.

The synchronous core of the service's queueing discipline — pure data
structure, no asyncio, so the policy is unit-testable on its own and
the server (:mod:`repro.service.server`) stays a thin I/O wrapper.

Admission control
-----------------
A queue that accepts everything converts overload into unbounded memory
and unbounded latency; this one refuses early instead:

* **bounded depth** — at most ``max_depth`` jobs queued + running; the
  excess is rejected with a ``retry_after`` hint derived from observed
  job durations, so clients back off proportionally to the actual
  backlog instead of hammering a loaded service;
* **per-client quotas** — one client may hold at most ``quota``
  queued + running slots, so a single noisy tenant cannot starve the
  rest of the fleet even while the queue has room.

Ordering is by ``priority`` (higher first), FIFO within a priority —
deterministic for a given submission sequence.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from .._util import require

__all__ = ["Rejected", "QueuedJob", "AdmissionQueue"]

#: Seed for the duration estimate before any job has completed (s).
_INITIAL_JOB_SECONDS = 1.0

#: Exponential-moving-average weight of the newest completed duration.
_EMA_ALPHA = 0.3

#: Floor on the retry-after hint (s): even an empty-looking queue asks
#: clients to wait one beat rather than busy-spin.
_MIN_RETRY_AFTER = 0.05


class Rejected(Exception):
    """Admission control refused a submission.

    Attributes
    ----------
    reason:
        Human-readable refusal (``"queue full"``, ``"client quota
        exceeded"``) — stable strings, part of the wire protocol.
    retry_after:
        Suggested wait in seconds before retrying.
    """

    def __init__(self, reason: str, retry_after: float):
        super().__init__(f"{reason} (retry after {retry_after:.2f}s)")
        self.reason = reason
        self.retry_after = float(retry_after)


@dataclass(order=True)
class QueuedJob:
    """One admitted job; heap-ordered by (-priority, seq) = FIFO within
    a priority."""

    sort_key: tuple = field(init=False, repr=False)
    priority: int = field(compare=False)
    seq: int = field(compare=False)
    client: str = field(compare=False)
    payload: object = field(compare=False)
    #: Set by :meth:`AdmissionQueue.finish`; makes release idempotent so
    #: a job finished twice (abrupt-disconnect cleanup racing normal
    #: completion) cannot release another job's quota slot.
    finished: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        self.sort_key = (-self.priority, self.seq)


class AdmissionQueue:
    """Bounded priority queue with per-client quotas (not thread-safe;
    the server serialises access on its event loop).

    Parameters
    ----------
    max_depth:
        Cap on jobs queued + running.
    quota:
        Per-client cap on jobs queued + running.
    concurrency:
        How many jobs the owner executes at once — scales the
        ``retry_after`` backlog estimate.
    """

    def __init__(self, max_depth: int = 64, quota: int = 16,
                 concurrency: int = 1):
        require(max_depth >= 1, "max_depth must be at least 1")
        require(quota >= 1, "quota must be at least 1")
        require(concurrency >= 1, "concurrency must be at least 1")
        self.max_depth = int(max_depth)
        self.quota = int(quota)
        self.concurrency = int(concurrency)
        self._heap: list[QueuedJob] = []
        self._seq = 0
        self._held: dict[str, int] = {}  # client -> queued + running
        self._running = 0
        self._ema_seconds = _INITIAL_JOB_SECONDS
        self.submitted = 0
        self.completed = 0
        self.rejected_full = 0
        self.rejected_quota = 0

    # -- admission -------------------------------------------------------
    def submit(self, payload, *, priority: int = 0,
               client: str = "") -> QueuedJob:
        """Admit a job or raise :class:`Rejected`.

        The quota check runs first: an over-quota client is told so even
        when the queue also happens to be full, because *its* remedy
        (wait for its own jobs) differs from the fleet-wide one.
        """
        held = self._held.get(client, 0)
        if held >= self.quota:
            self.rejected_quota += 1
            raise Rejected("client quota exceeded",
                           self.retry_after(backlog=held))
        if self.depth + self._running >= self.max_depth:
            self.rejected_full += 1
            raise Rejected("queue full", self.retry_after())
        job = QueuedJob(priority=int(priority), seq=self._seq,
                        client=client, payload=payload)
        self._seq += 1
        heapq.heappush(self._heap, job)
        self._held[client] = held + 1
        self.submitted += 1
        return job

    # -- consumption -----------------------------------------------------
    def pop(self) -> "QueuedJob | None":
        """Highest-priority job (marked running), or ``None`` when idle."""
        if not self._heap:
            return None
        job = heapq.heappop(self._heap)
        self._running += 1
        return job

    def finish(self, job: QueuedJob, seconds: "float | None" = None) -> None:
        """Release a popped job's slots and fold its duration into the
        retry-after estimate.

        Idempotent per job: the second and later calls are no-ops.  A
        client that disconnects mid-stream leaves its job racing between
        the normal completion path and any cleanup path; releasing the
        same slot twice would hand the client's quota to whoever asks
        next and skew the depth accounting negative.
        """
        if job.finished:
            return
        job.finished = True
        self._running = max(0, self._running - 1)
        held = self._held.get(job.client, 0)
        if held <= 1:
            self._held.pop(job.client, None)
        else:
            self._held[job.client] = held - 1
        self.completed += 1
        if seconds is not None and seconds >= 0.0:
            self._ema_seconds = (_EMA_ALPHA * float(seconds)
                                 + (1.0 - _EMA_ALPHA) * self._ema_seconds)

    # -- introspection ---------------------------------------------------
    @property
    def depth(self) -> int:
        """Jobs waiting (excluding running)."""
        return len(self._heap)

    @property
    def running(self) -> int:
        """Jobs popped but not yet finished."""
        return self._running

    def retry_after(self, backlog: "int | None" = None) -> float:
        """Suggested client wait: the backlog's expected drain time.

        ``backlog`` defaults to the whole queue (queue-full rejections);
        quota rejections pass the client's own held count instead —
        their wait ends when *their* jobs finish, not the fleet's.
        """
        n = (self.depth + self._running) if backlog is None else backlog
        return max(_MIN_RETRY_AFTER,
                   self._ema_seconds * n / self.concurrency)

    def stats(self) -> dict:
        """Counters + current occupancy (the service's ``stats`` op)."""
        return {
            "depth": self.depth,
            "running": self._running,
            "max_depth": self.max_depth,
            "quota": self.quota,
            "clients": len(self._held),
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected_full": self.rejected_full,
            "rejected_quota": self.rejected_quota,
            "ema_job_seconds": self._ema_seconds,
        }
