"""Run the STA job service as a daemon: ``python -m repro.service``.

Flags override the ``REPRO_SERVICE_*`` knobs; the execution stack
(workers, result store, shard timeout) comes from the usual
``REPRO_*`` environment via :func:`repro.exec.default_execution`.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import sys

from .server import ServiceSettings, StaService


def main(argv: "list[str] | None" = None) -> int:
    defaults = ServiceSettings.from_env()
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Noise-aware STA job service (JSON-lines over TCP).")
    parser.add_argument("--host", default=defaults.host,
                        help=f"bind address (default {defaults.host})")
    parser.add_argument("--port", type=int, default=defaults.port,
                        help=f"bind port, 0 for ephemeral "
                             f"(default {defaults.port})")
    parser.add_argument("--queue-depth", type=int,
                        default=defaults.queue_depth,
                        help="admission queue depth "
                             f"(default {defaults.queue_depth})")
    parser.add_argument("--quota", type=int, default=defaults.quota,
                        help="per-client queued+running cap "
                             f"(default {defaults.quota})")
    parser.add_argument("--concurrency", type=int,
                        default=defaults.concurrency,
                        help="jobs executed at once "
                             f"(default {defaults.concurrency})")
    args = parser.parse_args(argv)

    settings = ServiceSettings(host=args.host, port=args.port,
                               queue_depth=args.queue_depth,
                               quota=args.quota,
                               concurrency=args.concurrency)
    service = StaService(settings)

    async def _run() -> None:
        await service.start()
        # One parseable line so wrappers (smoke test, shell scripts) can
        # discover an ephemeral port without racing the listener.
        print(f"repro-service listening on {service.host}:{service.port}",
              flush=True)
        await service.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        with contextlib.suppress(Exception):
            asyncio.run(service.stop())
    return 0


if __name__ == "__main__":
    sys.exit(main())
