"""Long-running noise-aware STA job service (stdlib-only).

The batch entry points (:mod:`repro.exec`, the experiment drivers) pay
process start-up on every run: analysis caches rebuild, the worker pool
respawns, the result store re-walks.  This package keeps all of that
warm behind a small JSON-lines-over-TCP daemon:

* :mod:`~repro.service.protocol` — the wire format;
* :mod:`~repro.service.queue` — admission control (bounded depth,
  per-client quotas, retry-after hints);
* :mod:`~repro.service.jobs` — job kinds (``transient``, ``table1``)
  and the open registry for new ones;
* :mod:`~repro.service.server` — the asyncio daemon
  (``python -m repro.service``);
* :mod:`~repro.service.client` — a blocking client for scripts/tests.
"""

from .client import ServiceClient, ServiceError
from .jobs import (JOB_KINDS, JobSpecError, ServiceJob, build_job,
                   register_job_kind)
from .protocol import PROTOCOL_VERSION, ProtocolError, decode, encode
from .queue import AdmissionQueue, QueuedJob, Rejected
from .server import ServiceSettings, StaService, serve_in_thread

__all__ = [
    "PROTOCOL_VERSION", "ProtocolError", "encode", "decode",
    "AdmissionQueue", "QueuedJob", "Rejected",
    "JOB_KINDS", "JobSpecError", "ServiceJob", "build_job",
    "register_job_kind",
    "ServiceSettings", "StaService", "serve_in_thread",
    "ServiceClient", "ServiceError",
]
