"""JSON-lines wire protocol of the noise-aware STA job service.

One UTF-8 JSON object per ``\\n``-terminated line, in both directions —
mirroring the repo's dependency-free tooling style (stdlib ``json`` +
sockets, no framing library).  Numbers survive the wire *exactly*:
``json`` serialises finite doubles via ``repr``, which round-trips every
finite IEEE-754 value, so a timing row fetched through the service is
bit-for-bit the row the batch path computes.

Requests (client → server) carry an ``op``:

``{"op": "submit", "job": {...}, "priority": 0, "client": "tenant-a"}``
    Enqueue a job (see :mod:`repro.service.jobs` for job specs).
    ``priority`` (higher runs earlier) and ``client`` (admission quota
    + store namespace) are optional.
``{"op": "stats"}``
    Queue/store/fleet statistics snapshot.
``{"op": "ping"}``
    Liveness probe.
``{"op": "shutdown"}``
    Stop the service after the in-flight job set drains (the service is
    a trusted-network daemon, like the rest of the repo's tooling).

Responses (server → client) carry an ``event``.  A submission streams::

    {"event": "accepted", "id": 7, "queue_depth": 3}
    {"event": "progress", "id": 7, ...}     zero or more
    {"event": "row", "id": 7, ...}          zero or more (partial results)
    {"event": "done", "id": 7, "result": {...}}

or is refused up front::

    {"event": "rejected", "reason": "queue full", "retry_after": 1.5}

Failures end a stream with ``{"event": "error", "id": 7, "error": "..."}``.
"""

from __future__ import annotations

import json

from ..faults import maybe_fault

__all__ = ["PROTOCOL_VERSION", "MAX_LINE_BYTES", "ProtocolError",
           "encode", "decode"]

#: Bumped on incompatible wire changes; carried in ``hello``/``pong``.
PROTOCOL_VERSION = 1

#: Upper bound on one request line (admission control for the parser:
#: a malformed client must not buffer unbounded garbage server-side).
#: Responses (waveform payloads) may be longer; the bound is on requests.
MAX_LINE_BYTES = 4 * 1024 * 1024


class ProtocolError(ValueError):
    """A line that is not one JSON object, or an over-long request."""


def encode(message: dict) -> bytes:
    """One message as a ``\\n``-terminated JSON line.

    The ``service.frame`` injection point can truncate the frame
    mid-line (no terminator), standing in for a sender that died with a
    half-written buffer — the receiver must treat the stitched-together
    line as one malformed request, not hang on it.
    """
    data = json.dumps(message, separators=(",", ":"),
                      allow_nan=True).encode("utf-8") + b"\n"
    rule = maybe_fault("service.frame")
    if rule is not None and rule.kind == "truncate":
        return data[:max(1, len(data) // 2)]
    return data


def decode(line: "bytes | str") -> dict:
    """Parse one line into a message dict.

    Raises
    ------
    ProtocolError
        When the line is not valid JSON or not a JSON object.
    """
    try:
        obj = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"not a JSON line: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"expected a JSON object, got {type(obj).__name__}")
    return obj
