"""Declared environment knobs — the single place ``REPRO_*`` is read.

Every environment variable the package consults is declared in
:data:`KNOBS` as a :class:`Knob` (name, parser, default, one-line doc)
and read through :func:`knob`.  Scattering ``os.environ.get("REPRO_…")``
calls through the tree gave each knob its own ad-hoc parse-and-fallback
logic (``int(...)`` that raised on garbage here, silently defaulted
there); the registry gives all of them one contract:

* **unset** → the declared default;
* **garbage** (unparseable, out of range, unknown choice) → the declared
  default, never an exception — a typo in the environment must not crash
  a run that would otherwise succeed (programmatic APIs taking the same
  values still validate strictly; leniency is for the environment only);
* **valid** → the parsed value.

``reprolint``'s ``env-knob`` rule statically forbids raw ``REPRO_*``
environment reads outside this module, and the README's knob table is
generated from :data:`KNOBS` by ``tools/gen_knob_docs.py`` — declaring a
knob here is what makes it exist, documents it, and keeps it lintable.

This module must stay dependency-free (stdlib only): it is imported by
the circuit, exec and experiment layers alike, and the doc generator
loads it without the rest of the package.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Mapping
from dataclasses import dataclass

__all__ = ["DEFAULT_STORE_MAX_BYTES", "Knob", "KNOBS", "knob",
           "knob_table_markdown"]

#: Default size budget of the on-disk result store (bytes); re-exported
#: by :mod:`repro.exec.store` as ``DEFAULT_MAX_BYTES``.
DEFAULT_STORE_MAX_BYTES = 512 * 1024 * 1024


@dataclass(frozen=True)
class Knob:
    """One declared environment variable.

    Attributes
    ----------
    name:
        The environment variable, always ``REPRO_*``.
    parse:
        Raw string → value; raises ``ValueError`` on garbage (the reader
        then falls back to ``default``).
    default:
        Value when the variable is unset or unparseable.
    doc:
        One-line meaning, used for the generated README table.
    default_doc:
        How the effective default renders in that table (some knobs use
        sentinel defaults — e.g. ``REPRO_CASES`` defaults to ``None``
        here and each harness supplies its own fallback).
    """

    name: str
    parse: Callable[[str], object]
    default: object
    doc: str
    default_doc: str


def _int_at_least(lo: int) -> Callable[[str], int]:
    def parse(raw: str) -> int:
        value = int(raw)
        if value < lo:
            raise ValueError(f"must be >= {lo}, got {value}")
        return value
    return parse


def _flag(raw: str) -> bool:
    return raw.strip().lower() in ("1", "true", "yes", "on")


def _float_at_least(lo: float) -> Callable[[str], float]:
    def parse(raw: str) -> float:
        value = float(raw)
        if value < lo:
            raise ValueError(f"must be >= {lo}, got {value}")
        return value
    return parse


def _choice(*names: str) -> Callable[[str], str]:
    def parse(raw: str) -> str:
        value = raw.strip()
        if value not in names:
            raise ValueError(f"expected one of {names}, got {value!r}")
        return value
    return parse


def _string(raw: str) -> str:
    return raw


#: The declaration table.  Insertion order is the order of the generated
#: documentation table.
KNOBS: dict[str, Knob] = {k.name: k for k in (
    Knob("REPRO_WORKERS", _int_at_least(1), 1,
         "worker processes for the shard scheduler", "`1`"),
    Knob("REPRO_STORE", _string, "",
         "directory of the on-disk result store", "unset (off)"),
    Knob("REPRO_STORE_MAX_BYTES", _int_at_least(1), DEFAULT_STORE_MAX_BYTES,
         "store size budget (LRU eviction)", "512 MiB"),
    Knob("REPRO_CASES", _int_at_least(2), None,
         "sweep density of the experiment harnesses", "`24`"),
    Knob("REPRO_ADAPTIVE", _flag, False,
         "LTE-controlled adaptive stepping for drivers that don't pin a mode",
         "unset (off)"),
    Knob("REPRO_KERNEL", _choice("auto", "numpy", "numba"), "auto",
         "array-kernel backend for the hot loops (`auto`/`numpy`/`numba`)",
         "`auto`"),
    Knob("REPRO_PHASE_TIMERS", _flag, False,
         "per-phase wall-clock breakdown in `stats[\"phase_seconds\"]`",
         "unset (off)"),
    Knob("REPRO_SHARD_TIMEOUT", _float_at_least(0.0), 0.0,
         "per-shard worker deadline in seconds, scaled by the shard's "
         "estimated cost; a shard past its deadline is abandoned and "
         "re-solved inline (`0` = wait forever)",
         "`0` (off)"),
    Knob("REPRO_SERVICE_HOST", _string, "127.0.0.1",
         "interface `python -m repro.service` binds", "`127.0.0.1`"),
    Knob("REPRO_SERVICE_PORT", _int_at_least(0), 8472,
         "TCP port of the service (`0` = ephemeral, printed at startup)",
         "`8472`"),
    Knob("REPRO_SERVICE_QUEUE_DEPTH", _int_at_least(1), 64,
         "admission control: queued+running jobs beyond this are "
         "rejected with a retry-after hint", "`64`"),
    Knob("REPRO_SERVICE_QUOTA", _int_at_least(1), 16,
         "admission control: per-client cap on queued+running jobs",
         "`16`"),
    Knob("REPRO_MC_SAMPLES", _int_at_least(1), 32,
         "Monte-Carlo sample count of the statistical STA drivers", "`32`"),
    Knob("REPRO_MC_SEED", _int_at_least(0), 0,
         "base seed of the statistical STA sample streams "
         "(per-sample streams are derived, so results are "
         "worker-count-independent)", "`0`"),
    Knob("REPRO_FAULTS", _string, "",
         "seeded fault-injection plan for the chaos harness "
         "(`seed=S;point=kind[:p=..][:n=..][:after=..][:arg=..];…` — "
         "see `repro.faults`); an invalid spec warns and injects "
         "nothing", "unset (off)"),
    Knob("REPRO_JOURNAL", _flag, False,
         "write-ahead run journal under the store root: long sweeps "
         "record completed samples and a rerun after `kill -9` resumes "
         "at the first unfinished one (needs `REPRO_STORE`)",
         "unset (off)"),
)}


def knob(name: str, env: "Mapping[str, str] | None" = None):
    """The parsed value of declared knob ``name``.

    ``env`` defaults to ``os.environ`` (read per call, so tests can
    monkeypatch the environment); pass any mapping to resolve against a
    snapshot instead.  Unset and unparseable values both yield the
    knob's declared default — see the module docstring for why garbage
    never raises.
    """
    spec = KNOBS[name]
    mapping: Mapping[str, str] = os.environ if env is None else env
    raw = mapping.get(spec.name)
    if raw is None:
        return spec.default
    try:
        return spec.parse(raw)
    except (TypeError, ValueError):
        return spec.default


def knob_table_markdown() -> str:
    """The README's knob table, generated from :data:`KNOBS`."""
    lines = ["| Knob | Meaning | Default |",
             "|------|---------|---------|"]
    for spec in KNOBS.values():
        lines.append(f"| `{spec.name}` | {spec.doc} | {spec.default_doc} |")
    return "\n".join(lines)
