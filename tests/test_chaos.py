"""Chaos harness: seeded fault storms through the real production seams.

Each test installs a :class:`repro.faults.FaultPlan` and drives the
actual layer — pool workers, store I/O, service connections, Newton
refactorisation — asserting the documented degradation *and* that
results stay bit-identical (or within the backend ladder's <1e-9 V
contract, for the solver seam).  Counters reconcile against the plan
via :func:`repro.faults.would_fire`, the prediction half of the
replayability contract.
"""

import time

import numpy as np
import pytest

from repro.circuit.netlist import Circuit
from repro.circuit.sources import RampSource
from repro.circuit.transient import (TransientJob, TransientOptions,
                                     simulate_transient,
                                     simulate_transient_many)
from repro.exec import ExecutionConfig, ResultStore, run_jobs
from repro.faults import FaultPlan, install_plan, injected, would_fire
from repro.library.cells import make_inverter
from repro.service import ServiceClient, ServiceSettings, serve_in_thread
from repro.service.protocol import encode


@pytest.fixture(autouse=True)
def _clean_registry():
    install_plan(None)
    yield
    install_plan(None)


def rc_job(start: float = 50e-12) -> TransientJob:
    c = Circuit("rc")
    c.vsource("Vin", "in", "0", RampSource(start, 1e-10, 0.0, 1.2))
    c.resistor("R1", "in", "out", 1e3)
    c.capacitor("C1", "out", "0", 2e-14)
    return TransientJob(c, t_stop=5e-10, dt=2e-12)


def _jobs(n: int) -> list:
    return [rc_job(start=20e-12 + 10e-12 * k) for k in range(n)]


def _assert_identical(results, baseline):
    assert len(results) == len(baseline)
    for res, ref in zip(results, baseline):
        np.testing.assert_array_equal(res.times, ref.times)
        np.testing.assert_array_equal(res._x, ref._x)


# ----------------------------------------------------------------------
# pool seams
# ----------------------------------------------------------------------
class TestPoolChaos:
    def test_all_workers_crash_results_bit_identical(self):
        jobs = _jobs(8)
        baseline = simulate_transient_many(_jobs(8))
        diag: dict = {}
        with injected("seed=1; pool.worker=crash"):
            results = run_jobs(jobs,
                               ExecutionConfig(workers=2, min_pool_jobs=2),
                               diag=diag)
        _assert_identical(results, baseline)
        # Every shard's worker died; every shard fell back inline.
        assert diag["fallback_shards"] >= 1
        if diag["mode"] == "sharded":
            assert diag["fallback_shards"] == diag["shards"]

    def test_crash_counters_reconcile_with_plan(self):
        # p=0.5: the parent can predict exactly which shard indices
        # crashed (the token is the shard index) without hearing from
        # the dead workers.
        spec = "seed=7; pool.worker=crash:p=0.5"
        jobs = _jobs(8)
        baseline = simulate_transient_many(_jobs(8))
        diag: dict = {}
        with injected(spec):
            results = run_jobs(jobs,
                               ExecutionConfig(workers=4, min_pool_jobs=2),
                               diag=diag)
        _assert_identical(results, baseline)
        if diag["mode"] == "sharded":
            plan = FaultPlan.parse(spec)
            predicted = sum(
                1 for s in range(diag["shards"])
                if would_fire(plan, "pool.worker", s) is not None)
            assert diag["fallback_shards"] == predicted

    def test_wedged_workers_hit_the_deadline_not_the_wall_clock(self):
        jobs = _jobs(6)
        baseline = simulate_transient_many(_jobs(6))
        diag: dict = {}
        t0 = time.monotonic()
        with injected("pool.worker=wedge:arg=30"):
            results = run_jobs(
                jobs, ExecutionConfig(workers=2, min_pool_jobs=2,
                                      shard_timeout=0.3),
                diag=diag)
        elapsed = time.monotonic() - t0
        _assert_identical(results, baseline)
        assert elapsed < 20.0, "wedge outlived the shard deadline"
        if diag["mode"] == "sharded":
            assert diag["timeout_shards"] == diag["shards"]
            assert diag["fallback_shards"] == diag["shards"]


# ----------------------------------------------------------------------
# store seams
# ----------------------------------------------------------------------
class TestStoreChaos:
    def test_corrupt_reads_heal_and_stay_bit_identical(self, tmp_path):
        store = ResultStore(tmp_path)
        cfg = ExecutionConfig(store=store)
        job = rc_job()
        warm = run_jobs([job], cfg)[0]
        with injected("seed=3; store.read=corrupt:n=2"):
            first = run_jobs([rc_job()], cfg)[0]   # corrupt -> resolve
            second = run_jobs([rc_job()], cfg)[0]  # corrupt -> resolve
            third = run_jobs([rc_job()], cfg)[0]   # window over -> hit
        assert store.corrupt == 2
        for res in (first, second, third):
            np.testing.assert_array_equal(res._x, warm._x)
        assert third.stats["source"] == "store"
        assert not store.miss_only  # read faults never poison writes

    @pytest.mark.parametrize("kind", ["fail", "partial", "enospc"])
    def test_write_failures_degrade_to_miss_only(self, tmp_path, kind):
        store = ResultStore(tmp_path)
        cfg = ExecutionConfig(store=store)
        baseline = rc_job().run()
        with injected(f"store.write={kind}:n=1"):
            with pytest.warns(RuntimeWarning, match="miss-only"):
                res = run_jobs([rc_job()], cfg)[0]
        np.testing.assert_array_equal(res._x, baseline._x)
        assert store.miss_only and store.write_failures == 1
        assert store.stores == 0 and len(store) == 0
        # No torn temp files survive the failed write.
        assert not list(tmp_path.glob("*.tmp"))

    def test_unlink_failure_memoises_the_undeletable_entry(self, tmp_path):
        store = ResultStore(tmp_path)
        cfg = ExecutionConfig(store=store)
        run_jobs([rc_job()], cfg)
        with injected("store.read=corrupt:n=1; store.unlink=fail:n=1"):
            res = run_jobs([rc_job()], cfg)[0]
        # Healing failed: counted corrupt once, remembered, and the
        # fresh re-store supersedes the memo.
        assert store.corrupt == 1
        np.testing.assert_array_equal(res._x, rc_job().run()._x)
        assert run_jobs([rc_job()], cfg)[0].stats["source"] == "store"


# ----------------------------------------------------------------------
# service seams
# ----------------------------------------------------------------------
class TestServiceChaos:
    def test_mid_stream_disconnect_drops_one_client_not_the_service(self):
        svc, shutdown = serve_in_thread(ServiceSettings(port=0))
        try:
            # Ordinal 0 is the hello; ordinal 1 — the pong — is the
            # send injected to die mid-stream.
            with injected("service.send=disconnect:after=1:n=1"):
                with ServiceClient(port=svc.port, timeout=10.0) as victim:
                    with pytest.raises((ConnectionError, OSError)):
                        victim.ping()
            assert svc.dropped_clients >= 1
            # The service survives: a fresh client round-trips fine.
            with ServiceClient(port=svc.port, timeout=10.0) as healthy:
                assert healthy.ping()["event"] == "pong"
        finally:
            shutdown()

    def test_truncated_frame_is_one_bad_request_not_a_hang(self):
        svc, shutdown = serve_in_thread(ServiceSettings(port=0))
        try:
            with ServiceClient(port=svc.port, timeout=10.0) as client:
                with injected("service.frame=truncate:n=1"):
                    torn = encode({"op": "ping"})
                assert not torn.endswith(b"\n")
                # The torn frame stitches onto the next line; the server
                # must parse the combination as one malformed request.
                client._file.write(torn)
                client._file.write(encode({"op": "ping"}))
                client._file.flush()
                reply = client._read()
                assert reply["event"] == "error"
                # The connection (and the service) remain usable.
                assert client.ping()["event"] == "pong"
            assert svc.bad_requests == 1
        finally:
            shutdown()

    def test_slow_send_delays_but_delivers(self):
        svc, shutdown = serve_in_thread(ServiceSettings(port=0))
        try:
            with ServiceClient(port=svc.port, timeout=10.0) as client:
                with injected("service.send=slow:arg=0.2:n=1"):
                    t0 = time.monotonic()
                    assert client.ping()["event"] == "pong"
                    assert time.monotonic() - t0 >= 0.2
        finally:
            shutdown()


# ----------------------------------------------------------------------
# solver seam
# ----------------------------------------------------------------------
def _inverter() -> Circuit:
    c = Circuit("inv")
    c.vsource("Vdd", "vdd", "0", 1.2)
    c.vsource("Vin", "in", "0", RampSource(0.1e-9, 100e-12, 0.0, 1.2))
    make_inverter(4).instantiate(c, "u0", "in", "out", "vdd")
    c.capacitor("cl", "out", "0", 20e-15)
    return c


INV_INITIAL = {"in": 0.0, "out": 1.2, "vdd": 1.2}


class TestSolverChaos:
    def test_singular_refactorization_rides_the_backend_ladder(self):
        ref = simulate_transient(
            _inverter(), t_stop=0.3e-9, dt=5e-12,
            initial_voltages=dict(INV_INITIAL),
            options=TransientOptions(backend="dense"))
        # Unlimited storm: the DC operating-point solve has its own
        # (uncounted) dense fallback and would eat a one-shot fault
        # before the transient Newton loop ever saw it.
        with injected("solver.refactor=singular"):
            res = simulate_transient(
                _inverter(), t_stop=0.3e-9, dt=5e-12,
                initial_voltages=dict(INV_INITIAL),
                options=TransientOptions(backend="sparse"))
        assert res.stats["newton_fallbacks"] >= 1
        worst = max(float(np.max(np.abs(res.voltages_at(n, ref.times)
                                        - ref.voltage_samples(n))))
                    for n in ref.node_names)
        assert worst < 1e-9
