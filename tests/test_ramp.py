"""Tests for SaturatedRamp (the Γ_eff representation)."""

import numpy as np
import pytest

from repro.core.ramp import SaturatedRamp
from repro.core.waveform import TransitionPolarity

from tests.helpers import VDD


class TestConstruction:
    def test_rejects_zero_slope(self):
        with pytest.raises(ValueError):
            SaturatedRamp(a=0.0, b=0.0, vdd=VDD)

    def test_rejects_nonpositive_vdd(self):
        with pytest.raises(ValueError):
            SaturatedRamp(a=1e9, b=0.0, vdd=0.0)

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            SaturatedRamp(a=float("nan"), b=0.0, vdd=VDD)

    def test_from_arrival_slew_roundtrip(self):
        r = SaturatedRamp.from_arrival_slew(arrival=1e-9, slew=150e-12, vdd=VDD)
        assert r.arrival_time() == pytest.approx(1e-9)
        assert r.slew() == pytest.approx(150e-12)
        assert r.rising

    def test_from_arrival_slew_falling(self):
        r = SaturatedRamp.from_arrival_slew(arrival=1e-9, slew=150e-12, vdd=VDD,
                                            rising=False)
        assert not r.rising
        assert r.polarity == TransitionPolarity.FALLING
        assert r.slew() == pytest.approx(150e-12)

    def test_from_points(self):
        r = SaturatedRamp.from_points(0.0, 0.0, 1e-9, VDD, VDD)
        assert r.a == pytest.approx(VDD / 1e-9)
        assert r.time_at(0.6) == pytest.approx(0.5e-9)

    def test_from_points_equal_times_rejected(self):
        with pytest.raises(ValueError):
            SaturatedRamp.from_points(1.0, 0.0, 1.0, 1.0, VDD)


class TestEvaluation:
    def test_clamps_to_rails(self):
        r = SaturatedRamp.from_arrival_slew(arrival=1e-9, slew=100e-12, vdd=VDD)
        assert r(0.0) == 0.0
        assert r(5e-9) == VDD

    def test_midpoint_value(self):
        r = SaturatedRamp.from_arrival_slew(arrival=1e-9, slew=100e-12, vdd=VDD)
        assert r(1e-9) == pytest.approx(0.5 * VDD)

    def test_rail_times_ordered(self):
        r = SaturatedRamp.from_arrival_slew(arrival=1e-9, slew=100e-12, vdd=VDD)
        assert r.t_begin < r.arrival_time() < r.t_finish
        assert r.t_begin == pytest.approx(r.t_low_rail)

    def test_rail_times_falling(self):
        r = SaturatedRamp.from_arrival_slew(arrival=1e-9, slew=100e-12, vdd=VDD,
                                            rising=False)
        assert r.t_begin == pytest.approx(r.t_high_rail)
        assert r.t_begin < r.t_finish

    def test_vectorised(self):
        r = SaturatedRamp.from_arrival_slew(arrival=1e-9, slew=100e-12, vdd=VDD)
        out = r(np.array([0.0, 1e-9, 5e-9]))
        assert out.shape == (3,)


class TestConversions:
    def test_to_waveform_exact_breakpoints(self):
        r = SaturatedRamp.from_arrival_slew(arrival=1e-9, slew=100e-12, vdd=VDD)
        w = r.to_waveform(0.0, 3e-9)
        assert w.v_initial == 0.0 and w.v_final == VDD
        # Breakpoint representation reproduces the ramp exactly.
        assert w(r.arrival_time()) == pytest.approx(0.5 * VDD, abs=1e-9)
        assert w.slew(VDD) == pytest.approx(100e-12, rel=1e-6)

    def test_to_waveform_sampled(self):
        r = SaturatedRamp.from_arrival_slew(arrival=1e-9, slew=100e-12, vdd=VDD)
        w = r.to_waveform(0.0, 3e-9, n=301)
        assert len(w) == 301

    def test_to_pwl_pairs(self):
        r = SaturatedRamp.from_arrival_slew(arrival=1e-9, slew=100e-12, vdd=VDD)
        pts = r.to_pwl(0.0, 3e-9)
        assert pts[0] == (0.0, 0.0)
        assert pts[-1][1] == pytest.approx(VDD)

    def test_shifted_moves_arrival(self):
        r = SaturatedRamp.from_arrival_slew(arrival=1e-9, slew=100e-12, vdd=VDD)
        s = r.shifted(25e-12)
        assert s.arrival_time() == pytest.approx(1e-9 + 25e-12)
        assert s.slew() == pytest.approx(r.slew())

    def test_slew_custom_thresholds(self):
        r = SaturatedRamp.from_arrival_slew(arrival=1e-9, slew=100e-12, vdd=VDD)
        # 20-80 measurement spans 60% of the swing vs 80% for 10-90.
        assert r.slew(0.2, 0.8) == pytest.approx(100e-12 * 0.6 / 0.8)
