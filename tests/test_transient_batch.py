"""Batched transient engine: equivalence with the sequential path.

The contract of :func:`repro.circuit.transient.simulate_transient_many` /
``simulate_transient_batch`` is numerical equivalence with running
:func:`simulate_transient` per variant — these tests pin it to <1e-9 V on
every node for the Table-1 testbench, a coupled noisy stage, and the
recursive step-halving path (which previously had no coverage at all).
"""

import numpy as np
import pytest

from repro.circuit.netlist import Circuit
from repro.circuit.sources import Dc, RampSource
from repro.circuit.transient import (
    BatchStimulus,
    ConvergenceError,
    TransientJob,
    TransientOptions,
    simulate_transient,
    simulate_transient_batch,
    simulate_transient_many,
)
from repro.experiments.noise_injection import SweepTiming
from repro.experiments.setup import CONFIG_I, build_testbench
from repro.library.cells import make_inverter

VOLTAGE_TOL = 1e-9


def _worst_dv(seq, bat):
    return max(
        float(np.max(np.abs(seq.voltage_samples(n) - bat.voltage_samples(n))))
        for n in seq.node_names
    )


def _assert_equivalent(seq_results, bat_results):
    assert len(seq_results) == len(bat_results)
    for seq, bat in zip(seq_results, bat_results):
        assert len(seq.times) == len(bat.times)
        np.testing.assert_allclose(seq.times, bat.times, rtol=0, atol=0)
        assert _worst_dv(seq, bat) < VOLTAGE_TOL


class TestTable1FixtureEquivalence:
    """Batched vs sequential on the paper's Figure 1 testbench."""

    @pytest.fixture(scope="class")
    def timing(self):
        return SweepTiming(dt=4e-12, t_stop=2.2e-9)

    def test_noise_sweep_matches_sequential(self, timing):
        offsets = [-0.2e-9, 0.0, 0.15e-9]
        benches = [
            build_testbench(CONFIG_I, victim_start=timing.victim_start,
                            aggressor_starts=[timing.victim_start + off],
                            aggressor_active=True)
            for off in offsets
        ]
        jobs = [TransientJob(b.circuit, t_stop=timing.t_stop, dt=timing.dt,
                             initial_voltages=b.initial_voltages)
                for b in benches]
        seq = [simulate_transient(b.circuit, t_stop=timing.t_stop, dt=timing.dt,
                                  initial_voltages=b.initial_voltages)
               for b in benches]
        bat = simulate_transient_many(jobs)
        assert bat[0].stats["batch_size"] == len(offsets)
        _assert_equivalent(seq, bat)

    def test_quiet_reference_joins_the_batch(self, timing):
        # The noiseless run differs only in source functions, not topology.
        quiet = build_testbench(CONFIG_I, victim_start=timing.victim_start,
                                aggressor_starts=[timing.victim_start],
                                aggressor_active=False)
        noisy = build_testbench(CONFIG_I, victim_start=timing.victim_start,
                                aggressor_starts=[timing.victim_start],
                                aggressor_active=True)
        jobs = [TransientJob(b.circuit, t_stop=timing.t_stop, dt=timing.dt,
                             initial_voltages=b.initial_voltages)
                for b in (quiet, noisy)]
        bat = simulate_transient_many(jobs)
        assert bat[0].stats["batch_size"] == 2
        seq = [simulate_transient(b.circuit, t_stop=timing.t_stop, dt=timing.dt,
                                  initial_voltages=b.initial_voltages)
               for b in (quiet, noisy)]
        _assert_equivalent(seq, bat)


class TestCoupledStageEquivalence:
    """Batched vs sequential on a coupled noisy stage (sta layer circuit)."""

    def test_stage_with_aggressor(self):
        from repro.core.ramp import SaturatedRamp
        from repro.interconnect.rcline import RcLineSpec
        from repro.sta.noise_aware import (AggressorSpec, NoisyStage,
                                           _build_stage_circuit, _stage_initial)

        vdd = 1.2
        agg = AggressorSpec(coupling=100e-15, transition_start=0.35e-9,
                            rising=False, slew=150e-12, driver=make_inverter(1))
        stage = NoisyStage(driver=make_inverter(1),
                           line=RcLineSpec.from_length(500.0),
                           receiver=make_inverter(4), aggressors=(agg,))
        circuit, _, far, out = _build_stage_circuit(stage, vdd)
        ramps = [
            SaturatedRamp.from_arrival_slew(0.3e-9, 150e-12, vdd, rising=False),
            SaturatedRamp.from_arrival_slew(0.35e-9, 220e-12, vdd, rising=False),
        ]
        waves = [r.to_waveform(0.1e-9, 1.4e-9) for r in ramps]
        initial = _stage_initial(stage, vdd, vdd)
        circuit.vsource("Vin", "in", "0", waves[0])

        stimuli = [BatchStimulus(sources={"Vin": w}, initial_voltages=initial)
                   for w in waves]
        bat = simulate_transient_batch(circuit, stimuli, t_stop=1.4e-9,
                                       dt=4e-12, t_start=0.1e-9)
        assert bat[0].stats["batch_size"] == 2

        seq = []
        for w in waves:
            c, _, _, _ = _build_stage_circuit(stage, vdd)
            c.vsource("Vin", "in", "0", w)
            seq.append(simulate_transient(c, t_stop=1.4e-9, dt=4e-12,
                                          t_start=0.1e-9,
                                          initial_voltages=initial))
        _assert_equivalent(seq, bat)
        # Sanity: the two variants actually differ (distinct stimuli).
        assert _worst_dv(bat[0], bat[1]) > 1e-3
        assert bat[0].waveform(far) is not None and bat[0].waveform(out) is not None


def _sharp_inverter():
    """An inverter hit by a near-step input: Newton needs many iterations
    at the switching time step, so a small ``max_newton`` forces halving."""
    c = Circuit("inv")
    c.vsource("Vdd", "vdd", "0", 1.2)
    c.vsource("Vin", "in", "0", RampSource(0.2e-9, 20e-12, 0.0, 1.2))
    make_inverter(4).instantiate(c, "u0", "in", "out", "vdd")
    c.capacitor("cl", "out", "0", 20e-15)
    return c


INITIAL = {"in": 0.0, "out": 1.2, "vdd": 1.2}


class TestStepHalving:
    """The recursive step-halving fallback (previously untested)."""

    def test_halving_engages_and_converges(self):
        opts = TransientOptions(max_newton=4)
        res = simulate_transient(_sharp_inverter(), t_stop=1e-9, dt=20e-12,
                                 initial_voltages=INITIAL, options=opts)
        assert res.stats["halvings"] > 0
        # Output still switches rail to rail.
        out = res.voltage_samples("out")
        assert out[0] == pytest.approx(1.2, abs=0.05)
        assert out[-1] == pytest.approx(0.0, abs=0.05)

    def test_matrix_cache_keyed_on_depth(self):
        # One extra matrix build per halving depth reached — not one per
        # floating-point step value (the old cache keyed on drifting h).
        opts = TransientOptions(max_newton=3)
        res = simulate_transient(_sharp_inverter(), t_stop=1e-9, dt=20e-12,
                                 initial_voltages=INITIAL, options=opts)
        assert res.stats["halvings"] > 2
        # Many halvings, but only as many builds as distinct depths; depth
        # is bounded by max_halvings, and repeats must hit the cache.
        assert res.stats["matrix_builds"] <= opts.max_halvings + 1
        assert res.stats["matrix_builds"] < res.stats["halvings"] + 1

    def test_convergence_error_when_halving_exhausted(self):
        opts = TransientOptions(max_newton=2, max_halvings=1)
        with pytest.raises(ConvergenceError):
            simulate_transient(_sharp_inverter(), t_stop=1e-9, dt=20e-12,
                               initial_voltages=INITIAL, options=opts)

    def test_batched_halving_matches_sequential(self):
        # Two variants: a sharp edge (needs halving) and a gentle one.
        opts = TransientOptions(max_newton=4)
        base = _sharp_inverter()
        stimuli = [
            BatchStimulus(initial_voltages=INITIAL),
            BatchStimulus(sources={"Vin": RampSource(0.2e-9, 200e-12, 0.0, 1.2)},
                          initial_voltages=INITIAL),
        ]
        bat = simulate_transient_batch(base, stimuli, t_stop=1e-9, dt=20e-12,
                                       options=opts)
        assert bat[0].stats["halvings"] > 0

        seq = [simulate_transient(_sharp_inverter(), t_stop=1e-9, dt=20e-12,
                                  initial_voltages=INITIAL, options=opts)]
        gentle = _sharp_inverter()
        gentle.vsources[1] = type(gentle.vsources[1])(
            "Vin", "in", "0", RampSource(0.2e-9, 200e-12, 0.0, 1.2))
        seq.append(simulate_transient(gentle, t_stop=1e-9, dt=20e-12,
                                      initial_voltages=INITIAL, options=opts))
        _assert_equivalent(seq, bat)


class TestManyMisc:
    """Grouping, truncation and override plumbing of the batch front ends."""

    def _rc(self):
        c = Circuit("rc")
        c.vsource("Vin", "in", "0", RampSource(0.1e-9, 100e-12, 0.0, 1.0))
        c.resistor("R", "in", "out", 1e3)
        c.capacitor("C", "out", "0", 100e-15)
        return c

    def test_mixed_topologies_keep_input_order(self):
        rc_job = TransientJob(self._rc(), t_stop=1e-9, dt=10e-12)
        inv_job = TransientJob(_sharp_inverter(), t_stop=1e-9, dt=10e-12,
                               initial_voltages=INITIAL)
        rc_job2 = TransientJob(self._rc(), t_stop=1e-9, dt=10e-12)
        out = simulate_transient_many([rc_job, inv_job, rc_job2])
        assert out[0].node_names == out[2].node_names == ["in", "out"]
        assert "vdd" in out[1].node_names
        # The two RC jobs batched together; the inverter ran alone.
        assert out[0].stats["batch_size"] == 2
        assert out[1].stats["batch_size"] == 1

    def test_per_variant_t_stop_truncates(self):
        base = self._rc()
        stimuli = [BatchStimulus(), BatchStimulus(t_stop=0.5e-9)]
        full, short = simulate_transient_batch(base, stimuli, t_stop=1e-9,
                                               dt=10e-12)
        assert len(short.times) == 51
        assert len(full.times) == 101
        ref = simulate_transient(self._rc(), t_stop=0.5e-9, dt=10e-12)
        _assert_equivalent([ref], [short])

    def test_unknown_source_override_rejected(self):
        with pytest.raises(ValueError, match="unknown source"):
            simulate_transient_batch(self._rc(),
                                     [BatchStimulus(sources={"nope": Dc(1.0)})],
                                     t_stop=1e-9, dt=10e-12)

    def test_lu_reuse_matches_plain_solve(self):
        # MOSFET-free circuits take the factored-LU path; results must
        # match the reference integration regardless.
        res = simulate_transient(self._rc(), t_stop=2e-9, dt=5e-12)
        v = res.voltage_samples("out")
        assert v[-1] == pytest.approx(1.0, abs=1e-3)
        assert res.stats["matrix_builds"] == 1
