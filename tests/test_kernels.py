"""Array-kernel backends: flat primitives, loop kernels, knob, equivalence.

The contract of :mod:`repro.circuit.kernels` is that the kernel backend
changes execution speed only, never results: the flat MOSFET primitive
is *the* device evaluator (a scalar operating point is a batch of one,
bit for bit), the loop kernels mirror the vectorised reference math
op for op, the ``REPRO_KERNEL`` knob only renames which machine runs
the arithmetic, and a missing numba degrades to NumPy instead of
failing.  Kernel choice must never enter result-store keys.
"""

import os
import subprocess
import sys
import warnings

import numpy as np
import pytest

from repro.circuit.dc import dc_operating_point_batch
from repro.circuit.kernels import (HAVE_NUMBA, KernelBackend,
                                   available_kernels, resolve_kernel,
                                   set_default_kernel)
from repro.circuit.kernels._loops import make_kernels, plain_kernels
from repro.circuit.kernels.backend import NUMPY_KERNEL
from repro.circuit.kernels.step_kernels import mos_eval
from repro.circuit.mna import MnaSystem
from repro.circuit.mosfet import mosfet_eval
from repro.circuit.solvers import HAVE_SCIPY
from repro.circuit.transient import (TransientJob, TransientOptions,
                                     simulate_transient,
                                     simulate_transient_many)
from repro.exec import ExecutionConfig, fleet_stats, job_key, run_jobs
from repro.experiments.setup import (CONFIG_I, CrosstalkConfig,
                                     build_testbench)

VOLTAGE_TOL = 1e-9


@pytest.fixture
def plain_backend():
    """Install the un-jitted loop kernels as the process default.

    Runs the exact code numba would compile, interpreted — so the fused
    engine paths are exercised (and diffed against the reference loops)
    without numba installed.
    """
    backend = KernelBackend("plain", plain_kernels())
    previous = set_default_kernel(backend)
    yield backend
    set_default_kernel(previous)


def _device_grid():
    """(vd, vg, vs, pol, beta, vth, lam) covering every model region.

    Cutoff, triode, saturation, the vds == vov boundary, reversed drain
    bias (source/drain swap) and both polarities, near and away from
    the smoothing scale.
    """
    vgs = np.array([-0.3, 0.0, 0.25, 0.31, 0.32, 0.33, 0.6, 1.2])
    vds = np.array([-0.8, -0.05, 0.0, 0.005, 0.28, 0.88, 1.2])
    vg, vd = np.meshgrid(vgs, vds, indexing="ij")
    vg, vd = vg.ravel(), vd.ravel()
    vs = np.zeros_like(vd)
    n = vd.size
    rows = []
    for pol in (1.0, -1.0):
        rows.append((pol * vd, pol * vg, vs,
                     np.full(n, pol), np.full(n, 8e-4),
                     np.full(n, 0.32), np.full(n, 0.06)))
    return [np.concatenate(parts) for parts in zip(*rows)]


class TestFlatPrimitive:
    def test_scalar_is_batch_of_one_bitwise(self):
        vd, vg, vs, pol, beta, vth, lam = _device_grid()
        flat = mos_eval(vd, vg, vs, pol, beta, vth, lam)
        batched = mos_eval(vd[None, :], vg[None, :], vs[None, :],
                           pol, beta, vth, lam)
        for a, b in zip(flat, batched):
            assert b.shape == (1, vd.size)
            assert np.array_equal(a, b[0])

    def test_mosfet_eval_is_the_flat_primitive(self):
        vd, vg, vs, pol, beta, vth, lam = _device_grid()
        a = mosfet_eval(vd, vg, vs, pol, beta, vth, lam)
        b = mos_eval(vd, vg, vs, pol, beta, vth, lam)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_currents_change_sign_with_drain_bias(self):
        # The square-law device is symmetric: swapping drain bias sign
        # flips the current — a cheap sanity check that the swap frame
        # in the primitive is live, not dead code.
        ids_f, *_ = mos_eval(np.array([0.6]), np.array([1.2]),
                             np.array([0.0]), np.array([1.0]),
                             np.array([8e-4]), np.array([0.32]),
                             np.array([0.0]))
        ids_r, *_ = mos_eval(np.array([-0.6]), np.array([0.6]),
                             np.array([0.0]), np.array([1.0]),
                             np.array([8e-4]), np.array([0.32]),
                             np.array([0.0]))
        assert ids_f[0] > 0.0
        # Reverse frame: source and drain swap, gate overdrive differs,
        # but the current must be negative (flowing out of the drain).
        assert ids_r[0] < 0.0

    def test_loop_eval_matches_vectorised_bitwise(self):
        loops = plain_kernels()
        vd, vg, vs, pol, beta, vth, lam = _device_grid()
        ref = mos_eval(vd, vg, vs, pol, beta, vth, lam)
        n = vd.size
        out = np.empty((4, n))
        loops.mos_eval_flat(vd, vg, vs, pol, beta, vth, lam,
                            out[0], out[1], out[2], out[3])
        for a, b in zip(ref, out):
            assert np.array_equal(a, b)


@pytest.mark.skipif(not HAVE_SCIPY, reason="needs scipy's LAPACK wrappers")
class TestBandedTrs:
    @pytest.mark.parametrize("seed,n,kl,ku,nrhs", [(0, 12, 2, 2, 1),
                                                   (1, 25, 3, 1, 4),
                                                   (2, 40, 1, 3, 2)])
    def test_matches_lapack_gbtrs(self, seed, n, kl, ku, nrhs):
        from scipy.linalg import lapack

        rng = np.random.default_rng(seed)
        ab = np.zeros((2 * kl + ku + 1, n))
        for i in range(-kl, ku + 1):
            ab[kl + ku - i, max(i, 0):n + min(i, 0)] = \
                rng.uniform(-1.0, 1.0, n - abs(i))
        ab[kl + ku] += 4.0  # diagonally dominant: no degenerate pivots
        lu, ipiv, info = lapack.dgbtrf(ab, kl, ku)
        assert info == 0
        b = rng.uniform(-1.0, 1.0, (n, nrhs))
        ref, info = lapack.dgbtrs(lu, kl, ku, b, ipiv)
        assert info == 0
        mine = np.asfortranarray(b.copy())
        plain_kernels().banded_trs(np.ascontiguousarray(lu),
                                   np.ascontiguousarray(ipiv),
                                   kl, ku, mine)
        np.testing.assert_allclose(mine, ref, rtol=0, atol=1e-13)


def _table1_bench(off=0.0):
    return build_testbench(CONFIG_I, victim_start=0.2e-9,
                           aggressor_starts=[0.25e-9 + off],
                           aggressor_active=True)


def _deep_config(n_segments):
    return CrosstalkConfig(name=f"deep{n_segments}", n_aggressors=1,
                           line_length_um=1000.0,
                           coupling_per_aggressor=100e-15,
                           n_segments=n_segments)


def _worst_dv(a, b):
    return max(float(np.max(np.abs(b.voltages_at(n, a.times)
                                   - a.voltage_samples(n))))
               for n in a.node_names)


class TestLoopBackendEquivalence:
    """Fused plain-loop engine vs the vectorised reference, end to end."""

    def test_dense_scalar_and_batch(self, plain_backend):
        benches = [_table1_bench(off) for off in (-0.1e-9, 0.0, 0.1e-9)]
        jobs = [TransientJob(b.circuit, t_stop=1.1e-9, dt=4e-12,
                             initial_voltages=b.initial_voltages)
                for b in benches]
        set_default_kernel(NUMPY_KERNEL)
        ref_s = simulate_transient(benches[0].circuit, t_stop=1.1e-9,
                                   dt=4e-12,
                                   initial_voltages=benches[0].initial_voltages)
        ref_b = simulate_transient_many(jobs)
        set_default_kernel(plain_backend)
        res_s = simulate_transient(benches[0].circuit, t_stop=1.1e-9,
                                   dt=4e-12,
                                   initial_voltages=benches[0].initial_voltages)
        res_b = simulate_transient_many(jobs)
        assert res_s.stats["kernel"] == "plain"
        assert ref_s.stats["kernel"] == "numpy"
        assert _worst_dv(ref_s, res_s) < VOLTAGE_TOL
        # Same damping/convergence sequence, not just close waveforms.
        assert res_s.stats["newton_iters"] == ref_s.stats["newton_iters"]
        for r, f in zip(ref_b, res_b):
            assert _worst_dv(r, f) < VOLTAGE_TOL
        assert res_b[0].stats["newton_iters"] == ref_b[0].stats["newton_iters"]

    def test_bordered_banded_batch(self, plain_backend):
        tb = build_testbench(_deep_config(96), 0.05e-9, (0.06e-9,))
        opts = TransientOptions(backend="banded")
        jobs = [TransientJob(tb.circuit, t_stop=0.2e-9, dt=2e-12,
                             initial_voltages=dict(tb.initial_voltages),
                             options=opts)
                for _ in range(3)]
        set_default_kernel(NUMPY_KERNEL)
        ref = simulate_transient_many(jobs)
        set_default_kernel(plain_backend)
        res = simulate_transient_many(jobs)
        assert ref[0].stats["backend"] == res[0].stats["backend"] == "banded"
        assert res[0].stats["newton_fallbacks"] == 0
        for r, f in zip(ref, res):
            assert _worst_dv(r, f) < VOLTAGE_TOL
        assert res[0].stats["newton_iters"] == ref[0].stats["newton_iters"]

    def test_adaptive(self, plain_backend):
        tb = _table1_bench()
        opts = TransientOptions(adaptive=True)
        set_default_kernel(NUMPY_KERNEL)
        ref = simulate_transient(tb.circuit, t_stop=1.1e-9, dt=4e-12,
                                 initial_voltages=tb.initial_voltages,
                                 options=opts)
        set_default_kernel(plain_backend)
        res = simulate_transient(tb.circuit, t_stop=1.1e-9, dt=4e-12,
                                 initial_voltages=tb.initial_voltages,
                                 options=opts)
        # Identical accepted grids: the LTE controller saw identical
        # solutions.
        np.testing.assert_array_equal(ref.times, res.times)
        assert _worst_dv(ref, res) < VOLTAGE_TOL

    def test_dc_backend_invariant(self, plain_backend):
        # catch_singular solves keep the reference loop under any
        # backend, so DC results are identical by construction.
        benches = [_table1_bench(off) for off in (0.0, 0.1e-9)]
        circuits = [b.circuit for b in benches]
        initial = [dict(b.initial_voltages) for b in benches]
        set_default_kernel(NUMPY_KERNEL)
        ref = dc_operating_point_batch(circuits, initial_voltages=initial)
        set_default_kernel(plain_backend)
        res = dc_operating_point_batch(circuits, initial_voltages=initial)
        for r, f in zip(ref, res):
            np.testing.assert_array_equal(r.solution, f.solution)


class TestKernelKnob:
    def test_resolution_order(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        prev = set_default_kernel(None)
        try:
            auto = resolve_kernel()
            assert auto.name == ("numba" if HAVE_NUMBA else "numpy")
            monkeypatch.setenv("REPRO_KERNEL", "numpy")
            assert resolve_kernel().name == "numpy"
            # An installed default wins over the environment.
            set_default_kernel("auto")
            assert resolve_kernel().name == auto.name
        finally:
            set_default_kernel(prev)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_kernel("cuda")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            set_default_kernel("cuda")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            ExecutionConfig(kernel="cuda")

    def test_execution_config_installs_kernel(self):
        from repro.exec import set_default_execution

        prev_kernel = set_default_kernel(None)
        prev_exec = set_default_execution(ExecutionConfig(kernel="numpy"))
        try:
            assert resolve_kernel().name == "numpy"
        finally:
            set_default_execution(prev_exec)
            set_default_kernel(prev_kernel)

    def test_from_env_reads_kernel(self):
        cfg = ExecutionConfig.from_env({"REPRO_KERNEL": "numpy"})
        assert cfg.kernel == "numpy"
        # Malformed values degrade to auto rather than crashing the run.
        assert ExecutionConfig.from_env({"REPRO_KERNEL": "gpu"}).kernel == "auto"

    def test_available_kernels(self):
        names = available_kernels()
        assert "numpy" in names
        assert ("numba" in names) == HAVE_NUMBA

    @pytest.mark.skipif(HAVE_NUMBA, reason="covers the numba-less host")
    def test_numba_request_degrades_with_warning(self):
        import repro.circuit.kernels.backend as backend_mod

        prev = set_default_kernel(None)
        backend_mod._warned_missing = False
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                k = resolve_kernel("numba")
            assert k.name == "numpy"
            assert any(issubclass(w.category, RuntimeWarning) for w in caught)
        finally:
            backend_mod._warned_missing = False
            set_default_kernel(prev)


class TestNumbaAbsentImport:
    def test_graceful_numpy_fallback_without_numba(self):
        """Blocking numba at the import layer must leave a working engine."""
        script = r"""
import sys
class _Block:
    def find_spec(self, name, path=None, target=None):
        if name == "numba" or name.startswith("numba."):
            raise ImportError("numba blocked for this test")
        return None
sys.meta_path.insert(0, _Block())
for mod in list(sys.modules):
    if mod == "numba" or mod.startswith("numba."):
        del sys.modules[mod]

from repro.circuit.kernels import HAVE_NUMBA, available_kernels, resolve_kernel
assert not HAVE_NUMBA
assert available_kernels() == ("numpy",)
assert resolve_kernel().name == "numpy"
assert resolve_kernel("auto").name == "numpy"

from repro.circuit import Circuit, simulate_transient
c = Circuit("rc")
c.vsource("V1", "a", "0", 1.0)
c.resistor("R1", "a", "b", 1e3)
c.capacitor("C1", "b", "0", 1e-12)
r = simulate_transient(c, t_stop=5e-9, dt=0.1e-9)
assert r.stats["kernel"] == "numpy"
print("OK")
"""
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        env.pop("REPRO_KERNEL", None)
        proc = subprocess.run([sys.executable, "-c", script], env=env,
                              capture_output=True, text=True, timeout=300)
        assert proc.returncode == 0, proc.stderr
        assert "OK" in proc.stdout


@pytest.mark.skipif(not HAVE_NUMBA, reason="needs numba installed")
class TestNumbaEquivalence:
    """numpy vs numba backends on the paper fixtures, <1e-9 V."""

    @pytest.fixture(scope="class")
    def numba_backend(self):
        return resolve_kernel("numba")

    def _diff(self, run):
        prev = set_default_kernel(NUMPY_KERNEL)
        try:
            ref = run()
            set_default_kernel(resolve_kernel("numba"))
            res = run()
        finally:
            set_default_kernel(prev)
        return ref, res

    def test_table1_scalar_and_batch(self, numba_backend):
        benches = [_table1_bench(off) for off in (-0.1e-9, 0.0, 0.1e-9)]
        jobs = [TransientJob(b.circuit, t_stop=1.1e-9, dt=4e-12,
                             initial_voltages=b.initial_voltages)
                for b in benches]
        ref, res = self._diff(lambda: simulate_transient_many(jobs))
        assert res[0].stats["kernel"] == "numba"
        for r, f in zip(ref, res):
            assert _worst_dv(r, f) < VOLTAGE_TOL

    def test_gate_drives_192_segment_line(self, numba_backend):
        tb = build_testbench(_deep_config(192), 0.05e-9, (0.06e-9,))
        opts = TransientOptions(backend="banded")

        def run():
            return simulate_transient(tb.circuit, t_stop=0.2e-9, dt=2e-12,
                                      initial_voltages=dict(tb.initial_voltages),
                                      options=opts)

        ref, res = self._diff(run)
        assert res.stats["backend"] == "banded"
        assert _worst_dv(ref, res) < VOLTAGE_TOL

    def test_adaptive_and_dc(self, numba_backend):
        tb = _table1_bench()
        opts = TransientOptions(adaptive=True)

        def run():
            return simulate_transient(tb.circuit, t_stop=1.1e-9, dt=4e-12,
                                      initial_voltages=tb.initial_voltages,
                                      options=opts)

        ref, res = self._diff(run)
        np.testing.assert_array_equal(ref.times, res.times)
        assert _worst_dv(ref, res) < VOLTAGE_TOL

        def run_dc():
            return dc_operating_point_batch(
                [tb.circuit], initial_voltages=[dict(tb.initial_voltages)])

        ref_dc, res_dc = self._diff(run_dc)
        np.testing.assert_array_equal(ref_dc[0].solution, res_dc[0].solution)


class TestStoreKeyInvariance:
    def test_job_key_ignores_kernel(self, plain_backend):
        tb = _table1_bench()
        job = TransientJob(tb.circuit, t_stop=1.1e-9, dt=4e-12,
                           initial_voltages=tb.initial_voltages)
        mna = MnaSystem(tb.circuit)
        with_plain = job_key(job, mna)
        set_default_kernel(NUMPY_KERNEL)
        with_numpy = job_key(job, mna)
        assert with_plain == with_numpy

    def test_kernel_not_a_transient_option(self):
        # The knob must stay process-level: a TransientOptions field
        # would leak into job_group_key and the store keys.
        assert not hasattr(TransientOptions(), "kernel")


class TestPhaseTimers:
    def _run(self):
        tb = _table1_bench()
        return simulate_transient(tb.circuit, t_stop=0.4e-9, dt=4e-12,
                                  initial_voltages=tb.initial_voltages)

    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PHASE_TIMERS", raising=False)
        assert "phase_seconds" not in self._run().stats

    def test_enabled_by_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PHASE_TIMERS", "1")
        phases = self._run().stats["phase_seconds"]
        assert set(phases) <= {"factor", "stamp", "device_eval", "solve",
                               "overhead", "total"}
        assert all(v >= 0.0 for v in phases.values())
        known = sum(v for k, v in phases.items() if k not in ("total",))
        assert phases["total"] > 0.0
        assert known == pytest.approx(phases["total"], rel=1e-6)

    def test_off_switch_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_PHASE_TIMERS", "0")
        assert "phase_seconds" not in self._run().stats


class TestFleetStats:
    def test_serial_accumulation_and_reset(self):
        from repro.exec import reset_fleet_stats
        from repro.sta import quiet_cache_stats

        tb = _table1_bench()
        jobs = [TransientJob(tb.circuit, t_stop=0.4e-9, dt=4e-12,
                             initial_voltages=tb.initial_voltages)
                for _ in range(3)]
        reset_fleet_stats()
        run_jobs(jobs, ExecutionConfig(workers=1))
        fleet = fleet_stats()
        assert fleet["runs"] == 1
        assert fleet["jobs"] == 3
        assert fleet["newton_iters"] > 0
        assert isinstance(fleet["newton_iters"], int)
        assert fleet["matrix_builds"] >= 1
        assert quiet_cache_stats()["fleet"]["newton_iters"] \
            == fleet["newton_iters"]
        reset_fleet_stats()
        assert fleet_stats() == {}
