"""Verilog/SDF ingestion against the checked-in golden corpus.

``tests/data/`` holds a c17-style design (``c17.v``), a constant-table
Liberty library (``c17.lib``), an SDF annotation with min:typ:max
corners (``c17.sdf``) and hand-computed expectations (``golden.json``).
The library tables are constant, so every golden number is an exact
longest-path sum — any deviation is an engine bug, not interpolation.
"""

import json
from pathlib import Path

import pytest

from repro.library.liberty import parse_liberty
from repro.sta import (
    InputSpec,
    NetlistError,
    SdfDelays,
    SdfEngine,
    SdfError,
    SdfTriple,
    StaEngine,
    read_sdf,
    read_verilog,
)

DATA = Path(__file__).parent / "data"


@pytest.fixture(scope="module")
def golden():
    return json.loads((DATA / "golden.json").read_text())


@pytest.fixture(scope="module")
def netlist():
    return read_verilog((DATA / "c17.v").read_text())


@pytest.fixture(scope="module")
def library():
    return parse_liberty((DATA / "c17.lib").read_text())


@pytest.fixture(scope="module")
def sdf_delays():
    return read_sdf((DATA / "c17.sdf").read_text())


def _inputs(netlist):
    return {net: InputSpec(slew=50e-12) for net in netlist.primary_inputs}


class TestCorpusParse:
    def test_netlist_structure(self, netlist):
        assert netlist.name == "c17"
        assert sorted(netlist.primary_inputs) == ["N1", "N2", "N3", "N6", "N7"]
        assert sorted(netlist.primary_outputs) == ["N22", "N23"]
        assert len(netlist.instances) == 6
        u10 = next(i for i in netlist.instances if i.name == "u10")
        assert dict(u10.inputs) == {"A": "N1", "B": "N3"}
        assert u10.output_net == "N10"

    def test_library_arcs(self, library):
        nand = library["NAND2X1"]
        assert {a.related_pin for a in nand.timing_arcs} == {"A", "B"}
        assert all(a.inverting for a in nand.timing_arcs)
        assert nand.input_capacitance == pytest.approx(2e-15)

    def test_sdf_annotation(self, sdf_delays):
        assert sdf_delays.timescale == pytest.approx(1e-9)
        rise, fall = sdf_delays.iopath("u10", "A", "Y")
        assert rise.typ == pytest.approx(20e-12)
        assert fall.typ == pytest.approx(15e-12)
        assert rise.min == pytest.approx(10e-12)
        assert rise.max == pytest.approx(40e-12)
        wire = sdf_delays.interconnects[("u10/Y", "u22/A")]
        assert wire[0].typ == pytest.approx(5e-12)


class TestGoldenNldm:
    @pytest.fixture(scope="class")
    def result(self, netlist, library, golden):
        required = {net: golden["required_time"]
                    for net in netlist.primary_outputs}
        return StaEngine(library).analyze(netlist, inputs=_inputs(netlist),
                                          required_times=required)

    def test_arrivals_both_edges(self, result, golden):
        for net, want in golden["nldm"]["arrival_rise"].items():
            assert result.rise[net].arrival == pytest.approx(want, abs=1e-16), net
        for net, want in golden["nldm"]["arrival_fall"].items():
            assert result.fall[net].arrival == pytest.approx(want, abs=1e-16), net

    def test_slacks(self, result, golden):
        for net, want in golden["nldm"]["slack"].items():
            assert result.slack(net) == pytest.approx(want, abs=1e-16), net

    def test_per_edge_required_times(self, result, golden):
        assert result.required_rise["N16"] == pytest.approx(
            golden["nldm"]["required_rise_N16"], abs=1e-16)
        assert result.required_fall["N16"] == pytest.approx(
            golden["nldm"]["required_fall_N16"], abs=1e-16)

    def test_critical_path(self, result, golden):
        assert result.critical_path("N22") == golden["nldm"]["critical_path_N22"]


class TestGoldenSdf:
    @pytest.mark.parametrize("corner", ["min", "typ", "max"])
    def test_corner_arrivals(self, netlist, library, sdf_delays, golden, corner):
        scale = golden["sdf"]["corner_scale"].get(corner, 1.0)
        engine = SdfEngine(sdf_delays, corner=corner, library=library)
        res = engine.analyze(netlist, inputs=_inputs(netlist))
        for net, want in golden["sdf"]["arrival_rise"].items():
            assert res.rise[net].arrival == pytest.approx(want * scale,
                                                          abs=1e-16), net
        for net, want in golden["sdf"]["arrival_fall"].items():
            assert res.fall[net].arrival == pytest.approx(want * scale,
                                                          abs=1e-16), net

    def test_missing_annotation_raises(self, netlist, sdf_delays):
        pruned = SdfDelays(design=sdf_delays.design,
                           timescale=sdf_delays.timescale,
                           iopaths={k: v for k, v in sdf_delays.iopaths.items()
                                    if k[0] != "u16"},
                           interconnects=dict(sdf_delays.interconnects))
        with pytest.raises(SdfError, match="u16"):
            SdfEngine(pruned).analyze(netlist, inputs=_inputs(netlist))


class TestVerilogReaderErrors:
    def test_escaped_identifier_rejected(self):
        src = r"module m (a, y); input a; output y; wire \w[1] ; endmodule"
        with pytest.raises(NetlistError, match="escaped identifier"):
            read_verilog(src)

    def test_assign_rejected(self):
        src = "module m (a, y); input a; output y; assign y = a; endmodule"
        with pytest.raises(NetlistError, match="assign"):
            read_verilog(src)

    def test_parameter_override_rejected(self):
        src = ("module m (a, y); input a; output y; "
               "INVX1 #(.W(2)) u0 (.A(a), .Y(y)); endmodule")
        with pytest.raises(NetlistError, match=r"#"):
            read_verilog(src)

    def test_constant_connection_rejected(self):
        src = ("module m (y); output y; "
               "NAND2X1 u0 (.A(1'b0), .B(1'b1), .Y(y)); endmodule")
        with pytest.raises(NetlistError, match="constant"):
            read_verilog(src)

    def test_instance_without_output_pin_rejected(self):
        src = ("module m (a, y); input a; output y; "
               "INVX1 u0 (.A(a), .B(y)); endmodule")
        with pytest.raises(NetlistError, match="exactly one output"):
            read_verilog(src)

    def test_undeclared_header_port_rejected(self):
        src = "module m (a, y); input a; endmodule"
        with pytest.raises(NetlistError, match="no input/output declaration"):
            read_verilog(src)

    def test_output_pin_override(self):
        src = ("module m (a, y); input a; output y; "
               "CUSTOM u0 (.A(a), .ZN(y)); endmodule")
        with pytest.raises(NetlistError, match="exactly one output"):
            read_verilog(src)
        net = read_verilog(src, output_pin_of={"CUSTOM": "ZN"})
        assert net.instances[0].output_pin == "ZN"
        assert net.instances[0].output_net == "y"


class TestSdfReader:
    def test_timescale_units(self):
        sdf = '(DELAYFILE (DESIGN "x") (TIMESCALE 100 ps))'
        assert read_sdf(sdf).timescale == pytest.approx(100e-12)

    def test_single_value_triple_serves_all_corners(self):
        sdf = """(DELAYFILE (TIMESCALE 1ns)
                  (CELL (CELLTYPE "INVX1") (INSTANCE u0)
                    (DELAY (ABSOLUTE (IOPATH A Y (0.5))))))"""
        rise, fall = read_sdf(sdf).iopath("u0", "A", "Y")
        assert rise == fall == SdfTriple(0.5e-9, 0.5e-9, 0.5e-9)

    def test_malformed_triple_rejected(self):
        sdf = """(DELAYFILE (TIMESCALE 1ns)
                  (CELL (INSTANCE u0)
                    (DELAY (ABSOLUTE (IOPATH A Y (1:2))))))"""
        with pytest.raises(SdfError, match="triple"):
            read_sdf(sdf)

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(SdfError, match="[Uu]nbalanced"):
            read_sdf("(DELAYFILE (TIMESCALE 1ns)")

    def test_non_delayfile_rejected(self):
        with pytest.raises(SdfError, match="DELAYFILE"):
            read_sdf("(SPICE stuff)")

    def test_triple_pick(self):
        t = SdfTriple(1.0, 2.0, 3.0)
        assert (t.pick("min"), t.pick("typ"), t.pick("max")) == (1.0, 2.0, 3.0)
        with pytest.raises(ValueError, match="corner"):
            t.pick("worst")


class TestSdfEngineInline:
    """Library-free back-annotated run over an inline inverter chain."""

    VERILOG = """
    module chain (a, y);
      input a; output y; wire w;
      INVX1 u0 (.A(a), .Y(w));
      INVX1 u1 (.A(w), .Y(y));
    endmodule
    """
    SDF = """(DELAYFILE (DESIGN "chain") (TIMESCALE 1ns)
      (CELL (CELLTYPE "INVX1") (INSTANCE u0)
        (DELAY (ABSOLUTE (IOPATH A Y (0.100) (0.050)))))
      (CELL (CELLTYPE "INVX1") (INSTANCE u1)
        (DELAY (ABSOLUTE (IOPATH A Y (0.080) (0.040)))))
      (CELL (CELLTYPE "chain") (INSTANCE)
        (DELAY (ABSOLUTE (INTERCONNECT u0/Y u1/A (0.010) (0.020))))))"""

    def test_hand_computed_arrivals(self):
        netlist = read_verilog(self.VERILOG)
        engine = SdfEngine(read_sdf(self.SDF))
        res = engine.analyze(netlist, inputs={"a": InputSpec(slew=60e-12)})
        # w: rise 100ps (from a fall), fall 50ps (from a rise).
        assert res.rise["w"].arrival == pytest.approx(100e-12, abs=1e-16)
        assert res.fall["w"].arrival == pytest.approx(50e-12, abs=1e-16)
        # y rise: fall(w) + wire(fall edge) + iopath rise = 50+20+80.
        assert res.rise["y"].arrival == pytest.approx(150e-12, abs=1e-16)
        # y fall: rise(w) + wire(rise edge) + iopath fall = 100+10+40.
        assert res.fall["y"].arrival == pytest.approx(150e-12, abs=1e-16)
        # Slews pass through unchanged (SDF carries no transition data).
        assert res.rise["y"].slew == pytest.approx(60e-12)
        assert res.critical_path("y") == ["a", "w", "y"]
