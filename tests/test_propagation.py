"""Tests for GateFixture and the technique-evaluation driver."""

import math

import pytest

from repro.core.propagation import GateFixture, evaluate_techniques
from repro.core.ramp import SaturatedRamp
from repro.core.techniques import PropagationInputs, technique_by_name
from repro.library.cells import standard_cell

from tests.helpers import VDD, sigmoid_edge


@pytest.fixture(scope="module")
def fixture():
    return GateFixture(cell=standard_cell(4), chain=(standard_cell(16),),
                       dt=4e-12)


class TestGateFixture:
    def test_ramp_stimulus_default_window(self, fixture):
        ramp = SaturatedRamp.from_arrival_slew(0.5e-9, 150e-12, VDD)
        out = fixture.response(ramp)
        assert out.output_arrival > ramp.arrival_time()
        assert out.gate_delay > 0
        assert not math.isnan(out.output_slew)

    def test_waveform_stimulus_extends_settled_tail(self, fixture):
        wave = sigmoid_edge(0.5e-9, 150e-12, t_start=0.0, t_end=0.9e-9)
        out = fixture.response(wave, t_window=(0.0, 1.8e-9))
        # The record is extended with its settled value, so the output
        # completes even though the stimulus record ended early.
        assert out.v_out.v_final == pytest.approx(0.0, abs=0.02)

    def test_falling_stimulus(self, fixture):
        ramp = SaturatedRamp.from_arrival_slew(0.5e-9, 150e-12, VDD, rising=False)
        out = fixture.response(ramp)
        assert out.v_out.v_final == pytest.approx(VDD, abs=0.02)

    def test_extra_load_slows_gate(self):
        light = GateFixture(cell=standard_cell(4), dt=4e-12, extra_load=2e-15)
        heavy = GateFixture(cell=standard_cell(4), dt=4e-12, extra_load=60e-15)
        ramp = SaturatedRamp.from_arrival_slew(0.5e-9, 150e-12, VDD)
        assert heavy.response(ramp).gate_delay > light.response(ramp).gate_delay

    def test_gate_delay_definition(self, fixture):
        ramp = SaturatedRamp.from_arrival_slew(0.5e-9, 150e-12, VDD)
        out = fixture.response(ramp)
        assert out.gate_delay == pytest.approx(
            out.output_arrival - out.v_in.arrival_time(VDD, which="last"),
            abs=1e-15)


class TestEvaluateTechniques:
    def test_records_failures_instead_of_raising(self, fixture):
        # WLS5 without a noiseless reference must surface as `failed`.
        inputs = PropagationInputs(
            v_in_noisy=sigmoid_edge(0.5e-9, 150e-12, t_start=0.0, t_end=1.5e-9),
            vdd=VDD)
        golden, results = evaluate_techniques(
            fixture, inputs, [technique_by_name("WLS5"), technique_by_name("P2")])
        assert results["WLS5"].failed is not None
        assert results["WLS5"].delay_error is None
        assert results["P2"].failed is None
        assert results["P2"].delay_error is not None

    def test_reuses_precomputed_golden(self, fixture):
        wave = sigmoid_edge(0.5e-9, 150e-12, t_start=0.0, t_end=1.5e-9)
        inputs = PropagationInputs(v_in_noisy=wave, vdd=VDD)
        golden = fixture.response(wave)
        golden2, results = evaluate_techniques(fixture, inputs,
                                               [technique_by_name("P2")],
                                               golden=golden)
        assert golden2 is golden
        # Clean stimulus: P2's ramp reproduces the golden delay closely.
        assert abs(results["P2"].delay_error) < 30e-12

    def test_batched_matches_sequential(self, fixture):
        wave = sigmoid_edge(0.5e-9, 150e-12, t_start=0.0, t_end=1.5e-9)
        inputs = PropagationInputs(v_in_noisy=wave, vdd=VDD)
        techs = [technique_by_name("P2"), technique_by_name("E4")]
        golden_b, res_b = evaluate_techniques(fixture, inputs, techs, batch=True)
        golden_s, res_s = evaluate_techniques(fixture, inputs, techs, batch=False)
        assert golden_b.output_arrival == pytest.approx(
            golden_s.output_arrival, abs=1e-13)
        for name in ("P2", "E4"):
            assert res_b[name].delay_error == pytest.approx(
                res_s[name].delay_error, abs=1e-13)

    def test_late_ramp_window_not_truncated(self, fixture):
        # Regression: a technique whose equivalent ramp transitions *after*
        # the noisy waveform's record used to be sampled over the noisy
        # window only — the stimulus was clipped mid-transition and the
        # "output arrival" measured on a truncated record.  The window now
        # extends to ramp.t_finish + settle_margin per technique.
        wave = sigmoid_edge(0.5e-9, 150e-12, t_start=0.0, t_end=0.9e-9)

        class LateRamp:
            name = "LATE"

            def equivalent_waveform(self, inputs):
                # Transition completes ~0.9 ns after the noisy record ends,
                # well past the old window end (t_end + settle_margin).
                return SaturatedRamp.from_arrival_slew(
                    arrival=wave.t_end + 0.8e-9, slew=150e-12, vdd=VDD)

        inputs = PropagationInputs(v_in_noisy=wave, vdd=VDD)
        golden = fixture.response(wave)
        _, results = evaluate_techniques(fixture, inputs, [LateRamp()],
                                         golden=golden)
        ev = results["LATE"]
        assert ev.failed is None
        ramp = ev.ramp
        # The simulated record covers the whole ramp plus the settle
        # margin (the grid rounds t_stop to the nearest step).
        assert ev.output.v_in.t_end >= ramp.t_finish + fixture.settle_margin - fixture.dt
        # The stimulus completes its transition (not clipped mid-swing)...
        assert ev.output.v_in.v_final == pytest.approx(VDD, abs=1e-6)
        # ...and the output responds to it and settles.
        assert ev.output.output_arrival > ramp.arrival_time()
        assert ev.output.v_out.v_final == pytest.approx(0.0, abs=0.02)

    def test_early_ramp_window_not_truncated(self, fixture):
        # Mirror case: a ramp that *begins* before the noisy record would
        # be sampled from mid-transition (and the fixture's DC state
        # seeded mid-swing) if the window start were not extended too.
        wave = sigmoid_edge(0.5e-9, 150e-12, t_start=0.4e-9, t_end=1.4e-9)

        class EarlyRamp:
            name = "EARLY"

            def equivalent_waveform(self, inputs):
                # Transition starts well before the noisy record's t_start.
                return SaturatedRamp.from_arrival_slew(
                    arrival=wave.t_start - 0.1e-9, slew=150e-12, vdd=VDD)

        inputs = PropagationInputs(v_in_noisy=wave, vdd=VDD)
        golden = fixture.response(wave)
        _, results = evaluate_techniques(fixture, inputs, [EarlyRamp()],
                                         golden=golden)
        ev = results["EARLY"]
        assert ev.failed is None
        # The stimulus record starts on the pre-transition rail, covering
        # the whole ramp, not a mid-swing sample.
        assert ev.output.v_in.t_start <= ev.ramp.t_begin
        assert ev.output.v_in.v_initial == pytest.approx(0.0, abs=1e-6)
        assert ev.output.v_out.v_final == pytest.approx(0.0, abs=0.02)
