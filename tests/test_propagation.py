"""Tests for GateFixture and the technique-evaluation driver."""

import math

import pytest

from repro.core.propagation import GateFixture, evaluate_techniques
from repro.core.ramp import SaturatedRamp
from repro.core.techniques import PropagationInputs, technique_by_name
from repro.library.cells import standard_cell

from tests.helpers import VDD, sigmoid_edge


@pytest.fixture(scope="module")
def fixture():
    return GateFixture(cell=standard_cell(4), chain=(standard_cell(16),),
                       dt=4e-12)


class TestGateFixture:
    def test_ramp_stimulus_default_window(self, fixture):
        ramp = SaturatedRamp.from_arrival_slew(0.5e-9, 150e-12, VDD)
        out = fixture.response(ramp)
        assert out.output_arrival > ramp.arrival_time()
        assert out.gate_delay > 0
        assert not math.isnan(out.output_slew)

    def test_waveform_stimulus_extends_settled_tail(self, fixture):
        wave = sigmoid_edge(0.5e-9, 150e-12, t_start=0.0, t_end=0.9e-9)
        out = fixture.response(wave, t_window=(0.0, 1.8e-9))
        # The record is extended with its settled value, so the output
        # completes even though the stimulus record ended early.
        assert out.v_out.v_final == pytest.approx(0.0, abs=0.02)

    def test_falling_stimulus(self, fixture):
        ramp = SaturatedRamp.from_arrival_slew(0.5e-9, 150e-12, VDD, rising=False)
        out = fixture.response(ramp)
        assert out.v_out.v_final == pytest.approx(VDD, abs=0.02)

    def test_extra_load_slows_gate(self):
        light = GateFixture(cell=standard_cell(4), dt=4e-12, extra_load=2e-15)
        heavy = GateFixture(cell=standard_cell(4), dt=4e-12, extra_load=60e-15)
        ramp = SaturatedRamp.from_arrival_slew(0.5e-9, 150e-12, VDD)
        assert heavy.response(ramp).gate_delay > light.response(ramp).gate_delay

    def test_gate_delay_definition(self, fixture):
        ramp = SaturatedRamp.from_arrival_slew(0.5e-9, 150e-12, VDD)
        out = fixture.response(ramp)
        assert out.gate_delay == pytest.approx(
            out.output_arrival - out.v_in.arrival_time(VDD, which="last"),
            abs=1e-15)


class TestEvaluateTechniques:
    def test_records_failures_instead_of_raising(self, fixture):
        # WLS5 without a noiseless reference must surface as `failed`.
        inputs = PropagationInputs(
            v_in_noisy=sigmoid_edge(0.5e-9, 150e-12, t_start=0.0, t_end=1.5e-9),
            vdd=VDD)
        golden, results = evaluate_techniques(
            fixture, inputs, [technique_by_name("WLS5"), technique_by_name("P2")])
        assert results["WLS5"].failed is not None
        assert results["WLS5"].delay_error is None
        assert results["P2"].failed is None
        assert results["P2"].delay_error is not None

    def test_reuses_precomputed_golden(self, fixture):
        wave = sigmoid_edge(0.5e-9, 150e-12, t_start=0.0, t_end=1.5e-9)
        inputs = PropagationInputs(v_in_noisy=wave, vdd=VDD)
        golden = fixture.response(wave)
        golden2, results = evaluate_techniques(fixture, inputs,
                                               [technique_by_name("P2")],
                                               golden=golden)
        assert golden2 is golden
        # Clean stimulus: P2's ramp reproduces the golden delay closely.
        assert abs(results["P2"].delay_error) < 30e-12
