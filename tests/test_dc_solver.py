"""DC solver: gmin-stepping control flow, result lookup, batched solves.

Pins the restructured :func:`repro.circuit.dc.dc_operating_point`: each
gmin stage solves exactly once on the success path (the seed re-solved
the final gmin=0 system up to two extra times), a failed first stage
raises without pointlessly retrying the already-failed plain solve, and
:class:`DcConvergenceError` names the stage that failed.  Also covers
the cached node lookup of :class:`DcResult`, the ``None``-on-singular
contract of the MOSFET-free ``_newton_dc`` early return, and the
batched-vs-serial equivalence of :func:`dc_operating_point_batch`.
"""

import numpy as np
import pytest

import repro.circuit.dc as dc_mod
import repro.circuit.transient as transient_mod
from repro.circuit.dc import (DcConvergenceError, GMIN_STAGES,
                              dc_operating_point, dc_operating_point_batch)
from repro.circuit.mna import MnaSystem
from repro.circuit.netlist import Circuit
from repro.circuit.sources import RampSource
from repro.circuit.transient import TransientJob, simulate_transient_many
from repro.interconnect.rcline import RcLineSpec, add_rc_line
from repro.library.cells import make_inverter

VDD = 1.2


def _inverter_circuit(vin: float = 0.0) -> Circuit:
    c = Circuit("inv_dc")
    c.vsource("Vdd", "vdd", "0", VDD)
    c.vsource("Vin", "in", "0", vin)
    make_inverter(4).instantiate(c, "u0", "in", "out", "vdd")
    c.capacitor("cl", "out", "0", 20e-15)
    return c


INV_SEED = {"in": 0.0, "out": VDD, "vdd": VDD}


class _NewtonSpy:
    """Counting (and optionally failure-injecting) ``_newton_dc`` wrapper."""

    def __init__(self, fail_when=None):
        self.gmins: list[float] = []
        self._real = dc_mod._newton_dc
        self._fail_when = fail_when or (lambda idx, gmin: False)

    def __call__(self, mna, extra_gmin, rhs, x0, **kw):
        idx = len(self.gmins)
        self.gmins.append(extra_gmin)
        if self._fail_when(idx, extra_gmin):
            return None
        return self._real(mna, extra_gmin, rhs, x0, **kw)


class TestGminControlFlow:
    def test_plain_newton_success_is_one_solve(self, monkeypatch):
        spy = _NewtonSpy()
        monkeypatch.setattr(dc_mod, "_newton_dc", spy)
        res = dc_operating_point(_inverter_circuit(), initial_voltages=INV_SEED)
        assert spy.gmins == [0.0]
        assert res.voltage("out") == pytest.approx(VDD, abs=0.05)

    def test_success_path_solves_each_stage_exactly_once(self, monkeypatch):
        """Regression for the seed's redundant re-solves: a successful
        gmin-stepping run is 1 failed plain solve + one solve per stage,
        nothing more (the final gmin=0 stage result is returned as-is)."""
        reference = dc_operating_point(_inverter_circuit(),
                                       initial_voltages=INV_SEED)
        spy = _NewtonSpy(fail_when=lambda idx, gmin: idx == 0)
        monkeypatch.setattr(dc_mod, "_newton_dc", spy)
        res = dc_operating_point(_inverter_circuit(), initial_voltages=INV_SEED)
        assert spy.gmins == [0.0, *GMIN_STAGES]
        assert len(spy.gmins) == 1 + len(GMIN_STAGES)
        np.testing.assert_allclose(res.solution, reference.solution, atol=1e-8)

    def test_first_stage_failure_raises_without_plain_retry(self, monkeypatch):
        """The seed retried the already-failed plain solve from the same
        seed before raising; now the failure is immediate and named."""
        spy = _NewtonSpy(fail_when=lambda idx, gmin: idx <= 1)
        monkeypatch.setattr(dc_mod, "_newton_dc", spy)
        with pytest.raises(DcConvergenceError, match=r"first gmin stage 1/8.*0\.01"):
            dc_operating_point(_inverter_circuit(), initial_voltages=INV_SEED)
        assert spy.gmins == [0.0, 1e-2]

    def test_midstage_failure_skips_ahead_to_gmin_zero(self, monkeypatch):
        spy = _NewtonSpy(fail_when=lambda idx, gmin: idx == 0 or gmin == 1e-5)
        monkeypatch.setattr(dc_mod, "_newton_dc", spy)
        res = dc_operating_point(_inverter_circuit(), initial_voltages=INV_SEED)
        # plain, 1e-2..1e-4 good, 1e-5 fails, direct gmin=0 jump succeeds.
        assert spy.gmins == [0.0, 1e-2, 1e-3, 1e-4, 1e-5, 0.0]
        assert res.voltage("out") == pytest.approx(VDD, abs=0.05)

    def test_midstage_failure_with_failed_jump_names_stage(self, monkeypatch):
        spy = _NewtonSpy(
            fail_when=lambda idx, gmin: idx == 0 or gmin in (1e-5, 0.0))
        monkeypatch.setattr(dc_mod, "_newton_dc", spy)
        with pytest.raises(DcConvergenceError,
                           match=r"gmin stage 4/8 \(gmin=1e-05\).*direct gmin=0"):
            dc_operating_point(_inverter_circuit(), initial_voltages=INV_SEED)
        assert spy.gmins == [0.0, 1e-2, 1e-3, 1e-4, 1e-5, 0.0]

    def test_final_stage_failure_names_final_stage(self, monkeypatch):
        spy = _NewtonSpy(fail_when=lambda idx, gmin: gmin == 0.0)
        monkeypatch.setattr(dc_mod, "_newton_dc", spy)
        with pytest.raises(DcConvergenceError, match="final gmin stage 8/8"):
            dc_operating_point(_inverter_circuit(), initial_voltages=INV_SEED)
        assert spy.gmins == [0.0, *GMIN_STAGES]


class TestDcResultLookup:
    @pytest.fixture(scope="class")
    def result(self):
        return dc_operating_point(_inverter_circuit(), initial_voltages=INV_SEED)

    def test_ground_is_zero(self, result):
        assert result.voltage("0") == 0.0

    def test_voltage_matches_voltages_map(self, result):
        for name, v in result.voltages().items():
            assert result.voltage(name) == v

    def test_unknown_node_raises_keyerror_naming_node(self, result):
        with pytest.raises(KeyError, match="no_such_node"):
            result.voltage("no_such_node")

    def test_name_index_is_cached(self, result):
        assert result._name_index is result._name_index


class TestNewtonDcLinear:
    def test_singular_linear_system_returns_none_then_clean_error(self):
        # Two ideal voltage sources in parallel: duplicated branch rows
        # make the MNA matrix singular at every gmin stage.  The linear
        # early return must report None (not leak LinAlgError), and the
        # driver must surface a DcConvergenceError.
        c = Circuit("conflict")
        c.vsource("V1", "a", "0", 1.0)
        c.vsource("V2", "a", "0", 2.0)
        mna = MnaSystem(c)
        assert dc_mod._newton_dc(mna, 0.0, mna.source_rhs(0.0),
                                 np.zeros(mna.size)) is None
        with pytest.raises(DcConvergenceError, match="gmin stage"):
            dc_operating_point(c)

    def test_linear_early_return_honours_extra_gmin(self):
        # 1 Ω from a driven node to a node grounded only through the leak:
        # v_b = g / (g + extra_gmin + built-in gmin).
        c = Circuit("leak")
        c.vsource("Vin", "a", "0", 1.0)
        c.resistor("R", "a", "b", 1.0)
        mna = MnaSystem(c)
        x = dc_mod._newton_dc(mna, 0.1, mna.source_rhs(0.0), np.zeros(mna.size))
        assert x is not None
        expected = 1.0 / (1.0 + 0.1 + 1e-9)
        assert x[mna.index_of("b")] == pytest.approx(expected, rel=1e-12)


def _rc_bundle(n_lines: int = 3, n_segments: int = 8,
               ramp_starts: tuple[float, ...] | None = None) -> Circuit:
    starts = ramp_starts or tuple(0.1e-9 + 0.05e-9 * k for k in range(n_lines))
    c = Circuit("bundle_dc")
    spec = RcLineSpec(total_r=25.5, total_c=28.8e-15, n_segments=n_segments)
    for k in range(n_lines):
        c.vsource(f"V{k}", f"in{k}", "0",
                  RampSource(starts[k], 100e-12, 0.0, VDD))
        add_rc_line(c, f"l{k}", f"in{k}", f"out{k}", spec)
        c.capacitor(f"cl{k}", f"out{k}", "0", 5e-15)
    return c


class TestBatchedDc:
    def test_mosfet_batch_matches_serial(self):
        vins = [0.0, 0.3, 0.6, 0.9, VDD]
        circuits = [_inverter_circuit(v) for v in vins]
        seeds = [{"in": v, "out": VDD - v, "vdd": VDD} for v in vins]
        serial = [dc_operating_point(c, initial_voltages=s)
                  for c, s in zip(circuits, seeds)]
        batch = dc_operating_point_batch(circuits, initial_voltages=seeds)
        worst = max(float(np.max(np.abs(b.solution - s.solution)))
                    for b, s in zip(batch, serial))
        assert worst < 1e-12, f"batched DC deviates by {worst:.3e} V"

    def test_linear_batch_matches_serial(self):
        circuits = [_rc_bundle(ramp_starts=(t, t + 1e-10, t + 2e-10))
                    for t in (0.5e-9, 0.7e-9, 0.9e-9)]
        serial = [dc_operating_point(c, at_time=2.0e-9) for c in circuits]
        batch = dc_operating_point_batch(circuits, at_time=2.0e-9)
        worst = max(float(np.max(np.abs(b.solution - s.solution)))
                    for b, s in zip(batch, serial))
        assert worst < 1e-12, f"batched linear DC deviates by {worst:.3e} V"

    def test_topology_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shared topology"):
            dc_operating_point_batch([_inverter_circuit(), _rc_bundle()])

    def test_singular_linear_batch_raises_like_serial(self):
        """Regression: scipy's dense LU only *warns* on singularity, so
        the batched linear path used to return all-NaN operating points
        where the scalar path raises DcConvergenceError."""
        def conflict():
            c = Circuit("conflict")
            c.vsource("V1", "a", "0", 1.0)
            c.vsource("V2", "a", "0", 2.0)
            return c
        with pytest.raises(DcConvergenceError):
            dc_operating_point_batch([conflict(), conflict()])

    def test_batched_transient_groups_use_batched_dc(self, monkeypatch):
        """The batched driver's per-variant DC loop is gone: one stacked
        pass solves every initial state of a group."""
        calls = {"scalar": 0, "batch": 0}
        real_batch = transient_mod.dc_operating_point_batch

        def spy_scalar(*a, **k):
            calls["scalar"] += 1
            return dc_operating_point(*a, **k)

        def spy_batch(*a, **k):
            calls["batch"] += 1
            return real_batch(*a, **k)

        monkeypatch.setattr(transient_mod, "dc_operating_point", spy_scalar)
        monkeypatch.setattr(transient_mod, "dc_operating_point_batch", spy_batch)
        jobs = [TransientJob(_inverter_circuit(v), t_stop=0.2e-9, dt=10e-12,
                             initial_voltages={"in": v, "out": VDD - v,
                                               "vdd": VDD})
                for v in (0.0, 0.2, 0.4)]
        results = simulate_transient_many(jobs)
        assert results[0].stats["batch_size"] == 3
        assert calls["batch"] == 1
        assert calls["scalar"] == 0
