"""Tests for circuit netlist construction, sources and the MOSFET model."""

import numpy as np
import pytest

from repro.circuit.mosfet import MosfetParams, NMOS_013, PMOS_013, mosfet_eval
from repro.circuit.netlist import Circuit, GROUND
from repro.circuit.sources import (
    Dc,
    Pwl,
    PulseSource,
    RampSource,
    WaveformSource,
    as_source,
)
from repro.core.waveform import Waveform


class TestSources:
    def test_dc(self):
        s = Dc(1.2)
        assert s(0.0) == 1.2
        assert np.allclose(s(np.array([0.0, 1.0])), 1.2)
        assert s.breakpoints == ()

    def test_pwl_interpolates_and_clamps(self):
        s = Pwl([(0.0, 0.0), (1.0, 2.0)])
        assert s(0.5) == pytest.approx(1.0)
        assert s(-1.0) == 0.0
        assert s(2.0) == 2.0

    def test_pwl_rejects_duplicate_times(self):
        with pytest.raises(ValueError):
            Pwl([(0.0, 0.0), (0.0, 1.0)])

    def test_pwl_breakpoints_sorted(self):
        s = Pwl([(1.0, 1.0), (0.0, 0.0)])
        assert s.breakpoints == (0.0, 1.0)

    def test_ramp_source_duration(self):
        s = RampSource(0.0, 80e-12, 0.0, 1.2)
        assert s.duration == pytest.approx(100e-12)
        assert s(50e-12) == pytest.approx(0.6)

    def test_pulse_source_shape(self):
        s = PulseSource(0.0, rise=1e-10, width=2e-10, fall=1e-10,
                        v_base=0.0, v_peak=1.0)
        assert s(1.5e-10) == pytest.approx(1.0)
        assert s(5e-10) == pytest.approx(0.0)

    def test_waveform_source(self):
        w = Waveform([0.0, 1.0], [0.0, 1.0])
        s = WaveformSource(w)
        assert s(0.5) == pytest.approx(0.5)
        assert len(s.breakpoints) == 2

    def test_as_source_dispatch(self):
        assert isinstance(as_source(1.0), Dc)
        assert isinstance(as_source([(0.0, 0.0), (1.0, 1.0)]), Pwl)
        assert isinstance(as_source(Waveform([0.0, 1.0], [0.0, 1.0])), WaveformSource)
        src = Dc(2.0)
        assert as_source(src) is src


class TestCircuitBuilder:
    def test_ground_aliases_fold(self):
        c = Circuit()
        c.resistor("R1", "a", "gnd", 10.0)
        c.resistor("R2", "b", "VSS", 10.0)
        assert c.resistors[0].node_b == GROUND
        assert c.resistors[1].node_b == GROUND
        assert c.nodes == ["a", "b"]

    def test_duplicate_names_rejected(self):
        c = Circuit()
        c.resistor("R1", "a", "0", 10.0)
        with pytest.raises(ValueError, match="duplicate"):
            c.capacitor("R1", "a", "0", 1e-12)

    def test_self_loop_rejected(self):
        c = Circuit()
        with pytest.raises(ValueError):
            c.resistor("R1", "a", "a", 10.0)

    def test_negative_values_rejected(self):
        c = Circuit()
        with pytest.raises(ValueError):
            c.resistor("R1", "a", "0", -1.0)
        with pytest.raises(ValueError):
            c.capacitor("C1", "a", "0", 0.0)

    def test_mosfet_parasitics_added(self):
        c = Circuit()
        c.vsource("Vdd", "vdd", "0", 1.2)
        c.mosfet("M1", "out", "in", "0", NMOS_013, w=1e-6, length=0.13e-6)
        names = {cap.name for cap in c.capacitors}
        assert {"M1.cgs", "M1.cgd", "M1.cdb"} <= names

    def test_mosfet_without_parasitics(self):
        c = Circuit()
        c.mosfet("M1", "out", "in", "0", NMOS_013, w=1e-6, length=0.13e-6,
                 with_parasitics=False)
        assert not c.capacitors

    def test_inverter_composite(self):
        c = Circuit()
        c.vsource("Vdd", "vdd", "0", 1.2)
        c.inverter("inv", "a", "y", "vdd", wn=0.5e-6, wp=1.0e-6)
        assert len(c.mosfets) == 2
        polarities = sorted(m.params.polarity for m in c.mosfets)
        assert polarities == [-1, 1]

    def test_stats(self):
        c = Circuit()
        c.vsource("V1", "a", "0", 1.0)
        c.resistor("R1", "a", "b", 10.0)
        c.capacitor("C1", "b", "0", 1e-12)
        s = c.stats()
        assert (s["nodes"], s["resistors"], s["capacitors"], s["vsources"]) == (2, 1, 1, 1)


class TestMosfetModel:
    def test_params_validation(self):
        with pytest.raises(ValueError):
            MosfetParams(polarity=2, kp=1e-4, vth=0.3, lam=0.0, cox=0.01, cj=1e-9)
        with pytest.raises(ValueError):
            MosfetParams(polarity=1, kp=-1.0, vth=0.3, lam=0.0, cox=0.01, cj=1e-9)

    def test_beta_and_caps_scale_with_width(self):
        b1 = NMOS_013.beta(1e-6, 0.13e-6)
        b2 = NMOS_013.beta(2e-6, 0.13e-6)
        assert b2 == pytest.approx(2 * b1)
        assert NMOS_013.gate_capacitance(2e-6, 0.13e-6) == pytest.approx(
            2 * NMOS_013.gate_capacitance(1e-6, 0.13e-6))

    def _eval_single(self, vd, vg, vs, params):
        ids, dd, dg, ds = mosfet_eval(
            np.array([vd]), np.array([vg]), np.array([vs]),
            np.array([params.polarity]),
            np.array([params.beta(1e-6, 0.13e-6)]),
            np.array([params.vth]), np.array([params.lam]))
        return float(ids[0]), float(dd[0]), float(dg[0]), float(ds[0])

    def test_nmos_cutoff(self):
        ids, *_ = self._eval_single(1.2, 0.0, 0.0, NMOS_013)
        # Smoothed model leaks a little near threshold but stays tiny off.
        assert abs(ids) < 1e-6

    def test_nmos_saturation_positive_current(self):
        ids, dd, dg, ds = self._eval_single(1.2, 1.2, 0.0, NMOS_013)
        assert ids > 1e-4           # strong conduction into the drain
        assert dg > 0               # gm positive
        assert dd > 0               # gds positive (CLM)

    def test_nmos_triode_less_than_saturation(self):
        ids_tri, *_ = self._eval_single(0.05, 1.2, 0.0, NMOS_013)
        ids_sat, *_ = self._eval_single(1.2, 1.2, 0.0, NMOS_013)
        assert 0 < ids_tri < ids_sat

    def test_pmos_mirrors_nmos(self):
        # PMOS with source at vdd conducting when gate low.
        ids, *_ = self._eval_single(0.0, 0.0, 1.2, PMOS_013)
        assert ids < -1e-4          # current flows out of the drain terminal

    def test_drain_source_symmetry(self):
        # Swapping drain and source negates the current.
        f, *_ = self._eval_single(1.0, 1.2, 0.0, NMOS_013)
        r, *_ = self._eval_single(0.0, 1.2, 1.0, NMOS_013)
        assert f == pytest.approx(-r, rel=1e-9)

    def test_derivatives_match_finite_difference(self):
        rng = np.random.default_rng(7)
        for _ in range(25):
            vd, vg, vs = rng.uniform(0.0, 1.2, size=3)
            ids, dd, dg, ds = self._eval_single(vd, vg, vs, NMOS_013)
            h = 1e-7
            fd_d = (self._eval_single(vd + h, vg, vs, NMOS_013)[0] - ids) / h
            fd_g = (self._eval_single(vd, vg + h, vs, NMOS_013)[0] - ids) / h
            fd_s = (self._eval_single(vd, vg, vs + h, NMOS_013)[0] - ids) / h
            scale = max(abs(ids) * 10, 1e-5)
            assert dd == pytest.approx(fd_d, abs=scale * 2e-2)
            assert dg == pytest.approx(fd_g, abs=scale * 2e-2)
            assert ds == pytest.approx(fd_s, abs=scale * 2e-2)

    def test_current_continuity_across_vds_zero(self):
        lo, *_ = self._eval_single(-1e-6, 1.0, 0.0, NMOS_013)
        hi, *_ = self._eval_single(+1e-6, 1.0, 0.0, NMOS_013)
        assert lo == pytest.approx(hi, abs=1e-8)
