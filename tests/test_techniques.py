"""Tests for the six equivalent-waveform techniques on synthetic waveforms.

These tests pin the *defining behaviour* of each technique without any
circuit simulation: anchoring rules, slew rules, window/weighting rules,
and the contrasts the paper draws between them (WLS5's blindness to noise
outside the noiseless critical region; SGDP seeing it).
"""

import numpy as np
import pytest

from repro.core.ramp import SaturatedRamp
from repro.core.sensitivity import compute_sensitivity
from repro.core.techniques import (
    DEFAULT_SAMPLE_COUNT,
    PropagationInputs,
    TechniqueNotApplicableError,
    all_techniques,
    fit_line_weighted,
    registered_technique_names,
    technique_by_name,
)
from repro.core.techniques.base import DegenerateFitError
from repro.core.techniques.sgdp import Sgdp

from tests.helpers import VDD, bumped_edge, sigmoid_edge, synthetic_gate_pair


def make_inputs(noisy, with_reference=True, n_samples=DEFAULT_SAMPLE_COUNT):
    v_in, v_out = synthetic_gate_pair()
    return PropagationInputs(
        v_in_noisy=noisy, vdd=VDD,
        v_in_noiseless=v_in if with_reference else None,
        v_out_noiseless=v_out if with_reference else None,
        n_samples=n_samples,
    )


class TestRegistry:
    def test_all_six_registered(self):
        # Registration order follows module import order; membership is
        # what matters.
        assert set(registered_technique_names()) == {"P1", "P2", "LSF3", "E4",
                                                     "WLS5", "SGDP"}

    def test_paper_order(self):
        assert [t.name for t in all_techniques()] == ["P1", "P2", "LSF3", "E4",
                                                      "WLS5", "SGDP"]

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            technique_by_name("SGDP2")


class TestInputsValidation:
    def test_sample_count_minimum(self):
        with pytest.raises(ValueError):
            make_inputs(sigmoid_edge(1e-9, 200e-12), n_samples=2)

    def test_missing_reference_detected(self):
        inputs = make_inputs(sigmoid_edge(1e-9, 200e-12), with_reference=False)
        with pytest.raises(TechniqueNotApplicableError):
            technique_by_name("P1").equivalent_waveform(inputs)
        with pytest.raises(TechniqueNotApplicableError):
            technique_by_name("WLS5").equivalent_waveform(inputs)

    def test_anchor_is_latest_half_crossing(self):
        noisy = bumped_edge(1e-9, 150e-12, bump_at=0.85e-9, bump_height=0.75,
                            bump_width=40e-12)
        inputs = make_inputs(noisy)
        assert inputs.anchor_time() == pytest.approx(noisy.cross_time(0.6, "last"))


class TestCleanLimit:
    """On the noiseless waveform itself every technique must roughly
    recover the original ramp — the zero-noise sanity limit."""

    @pytest.mark.parametrize("name", ["P1", "P2", "LSF3", "E4", "WLS5", "SGDP"])
    def test_recovers_clean_ramp(self, name):
        v_in, _ = synthetic_gate_pair()
        inputs = make_inputs(v_in)
        ramp = technique_by_name(name).equivalent_waveform(inputs)
        assert ramp.rising
        assert ramp.arrival_time() == pytest.approx(v_in.cross_time(0.6), abs=40e-12)
        assert ramp.slew() == pytest.approx(v_in.slew(VDD), rel=0.45)

    @pytest.mark.parametrize("name", ["P2", "LSF3", "E4", "SGDP"])
    def test_falling_clean_ramp(self, name):
        v_in = sigmoid_edge(1e-9, 200e-12, rising=False, t_start=0.0, t_end=2e-9)
        v_out = sigmoid_edge(1.06e-9, 160e-12, rising=True, t_start=0.0, t_end=2e-9)
        inputs = PropagationInputs(v_in_noisy=v_in, vdd=VDD,
                                   v_in_noiseless=v_in, v_out_noiseless=v_out)
        ramp = technique_by_name(name).equivalent_waveform(inputs)
        assert not ramp.rising
        assert ramp.arrival_time() == pytest.approx(1e-9, abs=40e-12)


class TestPointBased:
    def test_p1_uses_noiseless_slew(self):
        noisy = bumped_edge(1e-9, 200e-12, bump_at=1.05e-9, bump_height=-0.4,
                            bump_width=60e-12)
        inputs = make_inputs(noisy)
        ramp = technique_by_name("P1").equivalent_waveform(inputs)
        assert ramp.slew() == pytest.approx(
            inputs.v_in_noiseless.slew(VDD, mode="clean"), rel=1e-6)
        assert ramp.arrival_time() == pytest.approx(inputs.anchor_time(), rel=1e-9)

    def test_p2_slew_stretched_by_noise(self):
        clean = sigmoid_edge(1e-9, 200e-12)
        noisy = bumped_edge(1e-9, 200e-12, bump_at=1.25e-9, bump_height=-0.5,
                            bump_width=60e-12)
        clean_ramp = technique_by_name("P2").equivalent_waveform(make_inputs(clean))
        noisy_ramp = technique_by_name("P2").equivalent_waveform(make_inputs(noisy))
        assert noisy_ramp.slew() > clean_ramp.slew()

    def test_p2_needs_no_reference(self):
        inputs = make_inputs(sigmoid_edge(1e-9, 200e-12), with_reference=False)
        ramp = technique_by_name("P2").equivalent_waveform(inputs)
        assert ramp.rising


class TestEnergy:
    def test_e4_matches_triangle_area_for_linear_ramp(self):
        # For an ideal saturated ramp the E4 slope equals the ramp slope.
        ideal = SaturatedRamp.from_arrival_slew(1e-9, 200e-12, VDD)
        wave = ideal.to_waveform(0.0, 2.5e-9, n=2001)
        inputs = PropagationInputs(v_in_noisy=wave, vdd=VDD)
        ramp = technique_by_name("E4").equivalent_waveform(inputs)
        assert ramp.slew() == pytest.approx(200e-12, rel=0.02)

    def test_e4_pessimistic_on_recrossing_noise(self):
        clean = sigmoid_edge(1e-9, 200e-12, t_end=3e-9)
        noisy = bumped_edge(1e-9, 200e-12, bump_at=1.4e-9, bump_height=-0.75,
                            bump_width=80e-12, t_end=3e-9)
        r_clean = technique_by_name("E4").equivalent_waveform(make_inputs(clean))
        r_noisy = technique_by_name("E4").equivalent_waveform(make_inputs(noisy))
        # Re-crossing adds band area, slowing the equivalent slew — the
        # pessimism the paper predicts for E4.
        assert r_noisy.slew() > 1.2 * r_clean.slew()

    def test_e4_falling_by_mirror(self):
        ideal = SaturatedRamp.from_arrival_slew(1e-9, 150e-12, VDD, rising=False)
        wave = ideal.to_waveform(0.0, 2.5e-9, n=2001)
        inputs = PropagationInputs(v_in_noisy=wave, vdd=VDD)
        ramp = technique_by_name("E4").equivalent_waveform(inputs)
        assert not ramp.rising
        assert ramp.slew() == pytest.approx(150e-12, rel=0.02)


class TestWls5VsSgdp:
    """The paper's central contrast: noise outside the noiseless critical
    region is invisible to WLS5 but shifts SGDP's Γ_eff."""

    def _early_bump_pair(self):
        # Noise bump well before the noiseless critical region begins:
        # the waveform wiggles around 0.3-0.5 Vdd at 0.3 ns while the
        # noiseless transition happens at ~1 ns.
        clean = sigmoid_edge(1e-9, 150e-12, t_start=0.0, t_end=2e-9)
        noisy = bumped_edge(1e-9, 150e-12, bump_at=0.35e-9, bump_height=0.55,
                            bump_width=50e-12, t_start=0.0, t_end=2e-9)
        return clean, noisy

    def test_wls5_ignores_early_noise(self):
        clean, noisy = self._early_bump_pair()
        r_clean = technique_by_name("WLS5").equivalent_waveform(make_inputs(clean))
        r_noisy = technique_by_name("WLS5").equivalent_waveform(make_inputs(noisy))
        # Identical inside the noiseless window ⇒ nearly identical fits.
        assert r_noisy.arrival_time() == pytest.approx(r_clean.arrival_time(),
                                                       abs=5e-12)

    def test_sgdp_sees_early_noise(self):
        clean, noisy = self._early_bump_pair()
        sgdp = technique_by_name("SGDP")
        r_clean = sgdp.equivalent_waveform(make_inputs(clean))
        r_noisy = sgdp.equivalent_waveform(make_inputs(noisy))
        # The early bump enters the noisy critical region, so SGDP's fit
        # must move (earlier: the bump advances partial switching).
        assert abs(r_noisy.arrival_time() - r_clean.arrival_time()) > 10e-12

    def test_wls5_raises_on_nonoverlapping_reference(self):
        v_in = sigmoid_edge(1.0e-9, 100e-12, t_start=0.0, t_end=4e-9)
        v_out = sigmoid_edge(3.0e-9, 100e-12, rising=False, t_start=0.0, t_end=4e-9)
        inputs = PropagationInputs(v_in_noisy=v_in, vdd=VDD,
                                   v_in_noiseless=v_in, v_out_noiseless=v_out)
        with pytest.raises(TechniqueNotApplicableError):
            technique_by_name("WLS5").equivalent_waveform(inputs)


class TestSgdp:
    def test_handles_nonoverlapping_reference_via_delta_shift(self):
        # Large intrinsic delay: input and output do not overlap; WLS5 is
        # undefined there but SGDP δ-shifts and proceeds (§3).
        v_in = sigmoid_edge(1.0e-9, 150e-12, t_start=0.0, t_end=5e-9)
        v_out = sigmoid_edge(3.0e-9, 120e-12, rising=False, t_start=0.0, t_end=5e-9)
        inputs = PropagationInputs(v_in_noisy=v_in, vdd=VDD,
                                   v_in_noiseless=v_in, v_out_noiseless=v_out)
        ramp = Sgdp().equivalent_waveform(inputs)
        assert ramp.arrival_time() == pytest.approx(1.0e-9, abs=60e-12)

    def test_paper_nonoverlap_mode_shifts_forward(self):
        v_in = sigmoid_edge(1.0e-9, 150e-12, t_start=0.0, t_end=5e-9)
        v_out = sigmoid_edge(3.0e-9, 120e-12, rising=False, t_start=0.0, t_end=5e-9)
        inputs = PropagationInputs(v_in_noisy=v_in, vdd=VDD,
                                   v_in_noiseless=v_in, v_out_noiseless=v_out)
        frame = Sgdp(nonoverlap_mode="input-frame").equivalent_waveform(inputs)
        paper = Sgdp(nonoverlap_mode="paper").equivalent_waveform(inputs)
        delta = 2.0e-9  # output lags input by 2 ns
        assert paper.arrival_time() - frame.arrival_time() == pytest.approx(
            delta, rel=0.05)

    def test_invalid_nonoverlap_mode(self):
        with pytest.raises(ValueError):
            Sgdp(nonoverlap_mode="bogus")

    def test_causal_mask_changes_post_commit_weighting(self):
        # A sag after the transition completed: the causal weight must
        # reduce its influence relative to the paper-literal remap.
        noisy = bumped_edge(1e-9, 150e-12, bump_at=1.5e-9, bump_height=-0.45,
                            bump_width=120e-12, t_end=3e-9)
        inputs = make_inputs(noisy)
        masked = Sgdp(causal_mask=True).equivalent_waveform(inputs)
        literal = Sgdp(causal_mask=False).equivalent_waveform(inputs)
        assert masked.slew() != pytest.approx(literal.slew(), rel=1e-3)

    def test_slope_sign_guard(self):
        # A waveform that is noise-only (no real transition) defeats the
        # fit; SGDP must fail loudly, not return nonsense.
        t = np.linspace(0, 2e-9, 400)
        v = 0.58 + 0.05 * np.sin(t * 2e10) + 0.35 * (t / 2e-9)
        from repro.core.waveform import Waveform
        wobble = Waveform(t, v)
        inputs = make_inputs(wobble)
        try:
            ramp = Sgdp().equivalent_waveform(inputs)
            assert ramp.rising  # if it fits anything, polarity must match
        except (DegenerateFitError, ValueError):
            pass  # failing loudly is acceptable here


class TestFitLineWeighted:
    def test_recovers_exact_line(self):
        t = np.linspace(1e-9, 2e-9, 20)
        v = 3e9 * t - 2.0
        a, b = fit_line_weighted(t, v)
        assert a == pytest.approx(3e9, rel=1e-9)
        assert b == pytest.approx(-2.0, rel=1e-6)

    def test_weights_select_segment(self):
        t = np.linspace(0.0, 1.0, 100)
        v = np.where(t < 0.5, t, 10 * t)  # kinked data
        w = (t < 0.5).astype(float)
        a, _ = fit_line_weighted(t, v, w)
        assert a == pytest.approx(1.0, rel=1e-6)

    def test_zero_weights_raise(self):
        t = np.linspace(0.0, 1.0, 10)
        with pytest.raises(DegenerateFitError):
            fit_line_weighted(t, t, np.zeros(10))

    def test_concentrated_weights_raise(self):
        t = np.linspace(0.0, 1.0, 10)
        w = np.zeros(10)
        w[3] = 1.0  # a single point cannot define a line
        with pytest.raises(DegenerateFitError):
            fit_line_weighted(t, t, w)

    def test_conditioning_at_nanosecond_offsets(self):
        # Large time offsets with tiny spans are the realistic STA case.
        t = 5e-6 + np.linspace(0, 1e-10, 35)
        v = 4e9 * (t - 5e-6) + 0.1
        a, b = fit_line_weighted(t, v)
        assert a == pytest.approx(4e9, rel=1e-6)
        assert (a * 5e-6 + b) == pytest.approx(0.1, abs=1e-6)
