"""Pattern-frozen sparse Newton for MOSFET circuits: equivalence + plumbing.

The contract of the Newton backends (PR 5) is that the structured
kernels — the frozen-pattern SuperLU refactorization and the
block-bordered banded/Schur kernel — are drop-in replacements for the
dense Newton path: <1e-9 V waveforms on every node across the scalar,
batched, adaptive and DC engines, over the Table-1 gate testbenches,
the receiver fixtures, and a gate-driving-deep-interconnect netlist.
Singular structured refactorizations must degrade to dense mid-solve,
and the per-topology analysis (pattern/RCM/partition) must be computed
once per topology signature, not once per compiled system.
"""

import numpy as np
import pytest

from repro.circuit import mna as mna_mod
from repro.circuit.dc import dc_operating_point, dc_operating_point_batch
from repro.circuit.mna import (MnaSystem, SparseNewtonStep,
                               clear_analysis_cache)
from repro.circuit.netlist import Circuit
from repro.circuit.solvers import (BorderedBanded, PatternFrozenLu,
                                   analyze_pattern, select_backend)
from repro.circuit.sources import RampSource
from repro.circuit.transient import (BatchStimulus, TransientOptions,
                                     simulate_transient,
                                     simulate_transient_batch)
from repro.experiments.setup import (CONFIG_I, CONFIG_II, CrosstalkConfig,
                                     build_testbench, receiver_fixture)
from repro.library.cells import make_inverter

from helpers import sigmoid_edge

VOLTAGE_TOL = 1e-9
NEWTON_BACKENDS = ("sparse", "banded")


def _deep_config(n_segments: int) -> CrosstalkConfig:
    """Configuration I with a deeper line discretisation: the gate +
    coupled-RC-interconnect workload the Newton kernels target."""
    return CrosstalkConfig(name=f"deep{n_segments}", n_aggressors=1,
                           line_length_um=1000.0,
                           coupling_per_aggressor=100e-15,
                           n_segments=n_segments)


def _simulate(circuit, initial, backend, t_stop=0.4e-9, dt=2e-12, **kw):
    return simulate_transient(circuit, t_stop=t_stop, dt=dt,
                              initial_voltages=dict(initial),
                              options=TransientOptions(backend=backend, **kw))


def _worst_dv(ref, other):
    return max(float(np.max(np.abs(other.voltages_at(n, ref.times)
                                   - ref.voltage_samples(n))))
               for n in ref.node_names)


class TestScalarEquivalence:
    @pytest.mark.parametrize("config", [CONFIG_I, CONFIG_II],
                             ids=["config_I", "config_II"])
    @pytest.mark.parametrize("backend", NEWTON_BACKENDS)
    def test_table1_testbenches(self, config, backend):
        tb = build_testbench(config, 0.2e-9,
                             tuple([0.25e-9] * config.n_aggressors))
        ref = _simulate(tb.circuit, tb.initial_voltages, "dense",
                        t_stop=1.1e-9)
        res = _simulate(tb.circuit, tb.initial_voltages, backend,
                        t_stop=1.1e-9)
        # Paper-scale testbenches have no viable core/border partition,
        # so both structured names resolve to the sparse kernel.
        assert res.stats["backend"] == "sparse"
        assert res.stats["newton_fallbacks"] == 0
        assert _worst_dv(ref, res) < VOLTAGE_TOL
        # The victim output actually switches — not a vacuous comparison.
        assert abs(ref.voltage_samples("out_u")[-1]
                   - ref.voltage_samples("out_u")[0]) > 0.5

    @pytest.mark.parametrize("backend", NEWTON_BACKENDS)
    def test_gate_drives_192_segment_line(self, backend):
        tb = build_testbench(_deep_config(192), 0.05e-9, (0.06e-9,))
        ref = _simulate(tb.circuit, tb.initial_voltages, "dense",
                        t_stop=0.2e-9, dt=2e-12)
        res = _simulate(tb.circuit, tb.initial_voltages, backend,
                        t_stop=0.2e-9, dt=2e-12)
        assert res.stats["backend"] == backend
        assert _worst_dv(ref, res) < VOLTAGE_TOL

    def test_auto_engages_bordered_kernel_at_depth(self):
        tb = build_testbench(_deep_config(96), 0.05e-9, (0.06e-9,))
        res = _simulate(tb.circuit, tb.initial_voltages, "auto",
                        t_stop=0.1e-9, dt=2e-12)
        assert res.stats["backend"] == "banded"

    def test_auto_keeps_paper_scale_dense(self):
        tb = build_testbench(CONFIG_I, 0.2e-9, (0.25e-9,))
        res = _simulate(tb.circuit, tb.initial_voltages, "auto",
                        t_stop=0.1e-9)
        assert res.stats["backend"] == "dense"


class TestBatchedEquivalence:
    def _stimuli(self, base=0.05e-9):
        return [BatchStimulus(sources={"Vy": RampSource(base + k * 0.01e-9,
                                                        150e-12, 1.2, 0.0)})
                for k in range(3)]

    @pytest.mark.parametrize("backend", NEWTON_BACKENDS)
    def test_batched_matches_dense_batched(self, backend):
        tb = build_testbench(_deep_config(64), 0.05e-9, (0.06e-9,))
        kw = dict(t_stop=0.25e-9, dt=2e-12)
        dense = simulate_transient_batch(
            tb.circuit,
            [BatchStimulus(sources=s.sources,
                           initial_voltages=tb.initial_voltages)
             for s in self._stimuli()],
            options=TransientOptions(backend="dense"), **kw)
        res = simulate_transient_batch(
            tb.circuit,
            [BatchStimulus(sources=s.sources,
                           initial_voltages=tb.initial_voltages)
             for s in self._stimuli()],
            options=TransientOptions(backend=backend), **kw)
        assert res[0].stats["backend"] == backend
        assert res[0].stats["batch_size"] == 3
        for d, r in zip(dense, res):
            assert _worst_dv(d, r) < VOLTAGE_TOL

    @pytest.mark.parametrize("backend", NEWTON_BACKENDS)
    def test_adaptive_matches_dense_adaptive(self, backend):
        tb = build_testbench(_deep_config(64), 0.05e-9, (0.06e-9,))
        kw = dict(t_stop=1.5e-9, dt=2e-12, adaptive=True)
        dense = _simulate(tb.circuit, tb.initial_voltages, "dense", **kw)
        res = _simulate(tb.circuit, tb.initial_voltages, backend, **kw)
        assert res.stats["backend"] == backend
        assert res.stats["adaptive"] is True
        # The controller's accept/reject decisions see only ~1e-12 V
        # solver differences, so the accepted grids coincide and the
        # waveforms agree to the fixed-grid tolerance.
        assert np.array_equal(dense.times, res.times)
        assert _worst_dv(dense, res) < VOLTAGE_TOL
        assert res.stats["steps_accepted"] < 750  # strides actually grew


class TestReceiverFixture:
    @pytest.mark.parametrize("backend", ["sparse"])
    def test_fixture_response_matches_dense(self, backend):
        edge = sigmoid_edge(0.3e-9, 150e-12)
        outs = {}
        for b in ("dense", backend):
            fixture = receiver_fixture(CONFIG_I, dt=2e-12, solver_backend=b,
                                       adaptive=False)
            outs[b] = fixture.response(edge)
        ref, res = outs["dense"], outs[backend]
        dv = np.abs(res.v_out.resampled(times=ref.v_out.times).values
                    - ref.v_out.values)
        assert float(dv.max()) < VOLTAGE_TOL
        assert abs(res.gate_delay - ref.gate_delay) < 1e-13


class TestDcEquivalence:
    @pytest.mark.parametrize("config", [CONFIG_I, CONFIG_II],
                             ids=["config_I", "config_II"])
    def test_scalar_dc(self, config):
        tb = build_testbench(config, 0.2e-9,
                             tuple([0.25e-9] * config.n_aggressors))
        ref = dc_operating_point(tb.circuit,
                                 initial_voltages=dict(tb.initial_voltages),
                                 backend="dense")
        res = dc_operating_point(tb.circuit,
                                 initial_voltages=dict(tb.initial_voltages),
                                 backend="sparse")
        assert float(np.max(np.abs(res.solution - ref.solution))) \
            < VOLTAGE_TOL

    def test_deep_line_dc_all_requests(self):
        tb = build_testbench(_deep_config(192), 0.05e-9, (0.06e-9,))
        ref = dc_operating_point(tb.circuit,
                                 initial_voltages=dict(tb.initial_voltages),
                                 backend="dense")
        for backend in ("sparse", "banded", "auto"):
            res = dc_operating_point(
                tb.circuit, initial_voltages=dict(tb.initial_voltages),
                backend=backend)
            assert float(np.max(np.abs(res.solution - ref.solution))) \
                < VOLTAGE_TOL

    def test_batched_dc_matches_scalar(self):
        tb = build_testbench(_deep_config(48), 0.05e-9, (0.06e-9,))
        circuits = [tb.circuit] * 3
        seeds = [dict(tb.initial_voltages)] * 3
        batch = dc_operating_point_batch(circuits, initial_voltages=seeds,
                                         backend="sparse")
        for res in batch:
            ref = dc_operating_point(tb.circuit,
                                     initial_voltages=dict(
                                         tb.initial_voltages),
                                     backend="dense")
            assert float(np.max(np.abs(res.solution - ref.solution))) \
                < VOLTAGE_TOL


def _inverter() -> Circuit:
    c = Circuit("inv")
    c.vsource("Vdd", "vdd", "0", 1.2)
    c.vsource("Vin", "in", "0", RampSource(0.1e-9, 100e-12, 0.0, 1.2))
    make_inverter(4).instantiate(c, "u0", "in", "out", "vdd")
    c.capacitor("cl", "out", "0", 20e-15)
    return c


INV_INITIAL = {"in": 0.0, "out": 1.2, "vdd": 1.2}


class TestFallbacks:
    def test_singular_refactorization_falls_back_to_dense(self, monkeypatch):
        """A kernel whose refactorization goes singular mid-run must
        degrade to the dense path — bitwise, since the fallback happens
        before any structured solve succeeded."""
        def boom(self, rhs_base, x):
            raise np.linalg.LinAlgError("synthetic singular refactorization")

        ref = _simulate(_inverter(), INV_INITIAL, "dense", t_stop=0.3e-9,
                        dt=5e-12)
        monkeypatch.setattr(SparseNewtonStep, "solve", boom)
        res = _simulate(_inverter(), INV_INITIAL, "sparse", t_stop=0.3e-9,
                        dt=5e-12)
        assert res.stats["newton_fallbacks"] >= 1
        assert _worst_dv(ref, res) == 0.0

    def test_pattern_frozen_lu_raises_on_singular(self):
        # 2x2 with an empty second column: SuperLU's RuntimeError is
        # normalised to the LinAlgError contract every backend honours.
        lu = PatternFrozenLu(2, np.array([0, 1, 1]), np.array([0]))
        with pytest.raises(np.linalg.LinAlgError):
            lu.refactor(np.array([1.0]))

    def test_bordered_banded_raises_on_singular_core(self):
        n = 40
        a = np.zeros((n, n))
        idx = np.arange(n - 2)
        a[idx, idx] = 2.0
        a[idx[:-1], idx[:-1] + 1] = -1.0
        a[idx[:-1] + 1, idx[:-1]] = -1.0
        a[0, 0] = 0.0  # structurally present, numerically empty row
        a[0, 1] = a[1, 0] = 0.0
        border = np.array([n - 2, n - 1])
        core = np.arange(n - 2)
        with pytest.raises(np.linalg.LinAlgError):
            BorderedBanded(a, border, core, analyze_pattern(a[:n-2, :n-2] != 0.0))

    def test_nonconvergence_still_halves_steps(self):
        """The recursive step-halving fallback stays intact under the
        structured kernels (forced by a tiny Newton iteration budget)."""
        tb = build_testbench(_deep_config(48), 0.05e-9, (0.06e-9,))
        res = _simulate(tb.circuit, tb.initial_voltages, "sparse",
                        t_stop=0.15e-9, dt=4e-12, max_newton=2)
        ref = _simulate(tb.circuit, tb.initial_voltages, "dense",
                        t_stop=0.15e-9, dt=4e-12, max_newton=2)
        assert res.stats["halvings"] >= 1
        assert _worst_dv(ref, res) < VOLTAGE_TOL


class TestTopologyAnalysisCache:
    def test_analysis_shared_across_instances(self, monkeypatch):
        """structure()/sparse_maps()/newton_partition() are computed once
        per topology signature, not once per compiled MnaSystem."""
        clear_analysis_cache()
        calls = {"n": 0}
        real = mna_mod.analyze_pattern

        def counting(pattern):
            calls["n"] += 1
            return real(pattern)

        monkeypatch.setattr(mna_mod, "analyze_pattern", counting)
        tb = build_testbench(_deep_config(24), 0.05e-9, (0.06e-9,))
        systems = [MnaSystem(tb.circuit) for _ in range(4)]
        for m in systems:
            m.structure(include_caps=True)
            m.newton_partition()
            m.sparse_maps()
        # One union-pattern analysis + one core-pattern analysis, total,
        # across all four instances.
        assert calls["n"] == 2
        assert systems[0].structure() is systems[1].structure()
        assert systems[0].sparse_maps() is systems[2].sparse_maps()
        assert systems[0].newton_partition() is systems[3].newton_partition()
        clear_analysis_cache()

    def test_partition_contract(self):
        tb = build_testbench(_deep_config(48), 0.05e-9, (0.06e-9,))
        mna = MnaSystem(tb.circuit)
        part = mna.newton_partition()
        assert part is not None
        # Every device terminal lives in the border; border and core
        # partition the index space.
        border = set(part.border.tolist())
        for arr in (mna.mos_d, mna.mos_g, mna.mos_s):
            assert all(int(i) in border for i in arr if i >= 0)
        assert sorted(part.border.tolist() + part.core.tolist()) \
            == list(range(mna.size))
        assert part.core_structure.bandwidth <= 12
        # Selection consumes it: auto resolves to the bordered kernel.
        assert select_backend(mna.structure(), mna.n_mosfets, "auto",
                              partition=part) == "banded"
