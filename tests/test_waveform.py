"""Tests for the Waveform data type."""

import numpy as np
import pytest

from repro.core.waveform import TransitionPolarity, Waveform

from tests.helpers import VDD, bumped_edge, sigmoid_edge


class TestConstruction:
    def test_basic(self):
        w = Waveform([0.0, 1.0, 2.0], [0.0, 0.5, 1.0])
        assert len(w) == 3
        assert w.t_start == 0.0 and w.t_end == 2.0

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="same length"):
            Waveform([0.0, 1.0], [0.0])

    def test_rejects_single_sample(self):
        with pytest.raises(ValueError, match="two samples"):
            Waveform([0.0], [1.0])

    def test_rejects_unsorted_times(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Waveform([0.0, 2.0, 1.0], [0.0, 1.0, 2.0])

    def test_immutable_arrays(self):
        w = Waveform([0.0, 1.0], [0.0, 1.0])
        with pytest.raises(ValueError):
            w.times[0] = 5.0

    def test_ramp_constructor_slew(self):
        w = Waveform.ramp(t_start=0.0, slew=100e-12, vdd=VDD)
        assert w.slew(VDD) == pytest.approx(100e-12, rel=1e-9)

    def test_ramp_falling(self):
        w = Waveform.ramp(t_start=0.0, slew=100e-12, vdd=VDD, rising=False)
        assert w.polarity() == TransitionPolarity.FALLING
        assert w.v_initial == VDD and w.v_final == 0.0

    def test_constant(self):
        w = Waveform.constant(0.7, 0.0, 1e-9)
        assert w(0.5e-9) == pytest.approx(0.7)
        assert w.polarity() == TransitionPolarity.FLAT

    def test_from_function(self):
        w = Waveform.from_function(lambda t: t * 2.0, 0.0, 1.0, n=11)
        assert w(0.25) == pytest.approx(0.5)

    def test_equality_and_hash(self):
        a = Waveform([0.0, 1.0], [0.0, 1.0])
        b = Waveform([0.0, 1.0], [0.0, 1.0])
        c = Waveform([0.0, 1.0], [0.0, 2.0])
        assert a == b and hash(a) == hash(b)
        assert a != c


class TestEvaluation:
    def test_interpolates(self):
        w = Waveform([0.0, 1.0], [0.0, 2.0])
        assert w(0.25) == pytest.approx(0.5)

    def test_clamps_outside_window(self):
        w = Waveform([0.0, 1.0], [0.3, 0.9])
        assert w(-5.0) == pytest.approx(0.3)
        assert w(5.0) == pytest.approx(0.9)

    def test_vectorised_call(self):
        w = Waveform([0.0, 1.0], [0.0, 1.0])
        out = w(np.array([0.0, 0.5, 1.0]))
        assert np.allclose(out, [0.0, 0.5, 1.0])


class TestTransforms:
    def test_shifted(self):
        w = sigmoid_edge(1e-9, 100e-12)
        s = w.shifted(50e-12)
        assert s.cross_time(0.6) == pytest.approx(w.cross_time(0.6) + 50e-12, abs=1e-15)

    def test_scaled(self):
        w = Waveform([0.0, 1.0], [0.0, 1.0])
        s = w.scaled(2.0, offset=0.5)
        assert s(1.0) == pytest.approx(2.5)

    def test_clipped(self):
        w = Waveform([0.0, 1.0, 2.0], [-1.0, 0.5, 2.0])
        c = w.clipped(0.0, 1.0)
        assert c.v_min == 0.0 and c.v_max == 1.0

    def test_windowed_adds_exact_endpoints(self):
        w = Waveform([0.0, 1.0, 2.0], [0.0, 1.0, 2.0])
        win = w.windowed(0.25, 1.75)
        assert win.t_start == pytest.approx(0.25)
        assert win.t_end == pytest.approx(1.75)
        assert win(0.25) == pytest.approx(0.25)

    def test_windowed_outside_raises(self):
        w = Waveform([0.0, 1.0], [0.0, 1.0])
        with pytest.raises(ValueError):
            w.windowed(2.0, 3.0)

    def test_resampled_uniform(self):
        w = sigmoid_edge(1e-9, 100e-12)
        r = w.resampled(n=17)
        assert len(r) == 17
        assert r(1.0e-9) == pytest.approx(w(1.0e-9), abs=1e-3)

    def test_resampled_explicit_grid(self):
        w = Waveform([0.0, 1.0], [0.0, 1.0])
        r = w.resampled(times=[0.2, 0.8])
        assert r.values.tolist() == pytest.approx([0.2, 0.8])

    def test_resampled_requires_exactly_one_spec(self):
        w = Waveform([0.0, 1.0], [0.0, 1.0])
        with pytest.raises(ValueError):
            w.resampled()
        with pytest.raises(ValueError):
            w.resampled(n=5, times=[0.1])

    def test_reversed_polarity(self):
        w = sigmoid_edge(1e-9, 100e-12, rising=True)
        r = w.reversed_polarity(VDD)
        assert r.polarity() == TransitionPolarity.FALLING
        assert r(1e-9) == pytest.approx(VDD - w(1e-9))

    def test_derivative_of_line(self):
        w = Waveform([0.0, 1.0, 2.0], [0.0, 2.0, 4.0])
        d = w.derivative()
        assert np.allclose(d.values, 2.0)

    def test_plus_minus_roundtrip(self):
        a = sigmoid_edge(1e-9, 100e-12)
        b = sigmoid_edge(1.2e-9, 150e-12)
        s = a.plus(b).minus(b)
        assert s(1.0e-9) == pytest.approx(a(1.0e-9), abs=1e-9)


class TestMeasurements:
    def test_polarity_detection(self):
        assert sigmoid_edge(1e-9, 100e-12).polarity() == TransitionPolarity.RISING
        assert sigmoid_edge(1e-9, 100e-12, rising=False).polarity() == \
            TransitionPolarity.FALLING

    def test_polarity_ignores_bumps(self):
        w = bumped_edge(1e-9, 100e-12, bump_at=0.5e-9, bump_height=0.5,
                        bump_width=30e-12)
        assert w.polarity() == TransitionPolarity.RISING

    def test_cross_time_first_vs_last(self):
        w = bumped_edge(1e-9, 100e-12, bump_at=0.6e-9, bump_height=0.8,
                        bump_width=40e-12)
        assert w.cross_time(0.6, "first") < w.cross_time(0.6, "last")

    def test_cross_time_missing_level_raises(self):
        w = Waveform([0.0, 1.0], [0.0, 0.5])
        with pytest.raises(ValueError, match="never crosses"):
            w.cross_time(0.9)

    def test_crossing_count(self):
        w = bumped_edge(1e-9, 100e-12, bump_at=0.6e-9, bump_height=0.9,
                        bump_width=40e-12)
        assert w.crossing_count(0.6) == 3

    def test_arrival_time_uses_latest(self):
        w = bumped_edge(1e-9, 100e-12, bump_at=0.6e-9, bump_height=0.9,
                        bump_width=40e-12)
        assert w.arrival_time(VDD) == pytest.approx(w.cross_time(0.6, "last"))

    def test_slew_modes_differ_on_noisy(self):
        w = bumped_edge(1e-9, 100e-12, bump_at=0.7e-9, bump_height=0.25,
                        bump_width=40e-12)
        assert w.slew(VDD, mode="noisy") >= w.slew(VDD, mode="clean")

    def test_slew_of_flat_raises(self):
        w = Waveform.constant(0.5, 0.0, 1e-9)
        with pytest.raises(ValueError):
            w.slew(VDD)

    def test_slew_falling(self):
        w = sigmoid_edge(1e-9, 120e-12, rising=False)
        assert w.slew(VDD) == pytest.approx(120e-12, rel=5e-3)

    def test_slew_inverted_band_traversal_raises(self):
        # Starts above the 90% level, dips through the band, then settles
        # slightly higher: overall polarity is "rising", but the first
        # 90%-crossing precedes the first 10%-crossing.  The old abs()
        # wrapper silently reported a plausible positive slew here.
        w = Waveform([0.0, 0.4e-9, 0.8e-9, 1.2e-9],
                     [1.10, 0.05, 0.05, 1.19])
        with pytest.raises(ValueError, match="inverted transition band"):
            w.slew(VDD, mode="clean")

    def test_slew_inverted_band_traversal_noisy_mode(self):
        # A glitch over the 90% level followed by a partial-swing settle:
        # the *last* 90%-crossing (back edge of the glitch) precedes the
        # first 10%-crossing, so the noisy-rule measurement is inverted.
        w = Waveform([0.0, 0.3e-9, 0.7e-9, 1.0e-9],
                     [0.30, 1.15, 0.05, 0.50])
        with pytest.raises(ValueError, match="inverted transition band"):
            w.slew(VDD, mode="noisy")

    def test_critical_region_rising(self):
        w = sigmoid_edge(1e-9, 100e-12)
        t0, t1 = w.critical_region(VDD)
        assert t0 == pytest.approx(w.cross_time(0.12, "first"))
        assert t1 == pytest.approx(w.cross_time(1.08, "last"))

    def test_critical_region_falling(self):
        w = sigmoid_edge(1e-9, 100e-12, rising=False)
        t0, t1 = w.critical_region(VDD)
        assert t0 == pytest.approx(w.cross_time(1.08, "first"))
        assert t1 == pytest.approx(w.cross_time(0.12, "last"))

    def test_principal_region_clips_post_settle_dip(self):
        # Rises fully by ~1.1 ns, then a negative bump re-enters the 0.9
        # band late; the literal region would stretch to the recovery.
        w = bumped_edge(1e-9, 100e-12, bump_at=1.8e-9, bump_height=-0.35,
                        bump_width=80e-12, t_end=2.6e-9)
        lit = w.critical_region(VDD)
        pri = w.principal_critical_region(VDD)
        assert pri[1] < lit[1]
        assert pri[0] == pytest.approx(lit[0])

    def test_principal_region_keeps_pre_transition_noise(self):
        w = bumped_edge(1e-9, 100e-12, bump_at=0.4e-9, bump_height=0.4,
                        bump_width=50e-12, t_start=0.0)
        pri = w.principal_critical_region(VDD)
        assert pri[0] == pytest.approx(w.cross_time(0.12, "first"))

    def test_integral_of_constant(self):
        w = Waveform.constant(2.0, 0.0, 3.0)
        assert w.integral() == pytest.approx(6.0)

    def test_band_area_of_ramp_triangle(self):
        # Linear ramp 0→Vdd over [0, T]: area between curve (clamped to
        # the upper band) and Vdd from the 0.5Vdd crossing to T is the
        # triangle (Vdd/2)^2 / (2 * slope).
        T = 1e-9
        w = Waveform([0.0, T, 2 * T], [0.0, VDD, VDD])
        slope = VDD / T
        area = w.band_area(0.5 * VDD, VDD, w.cross_time(0.5 * VDD), 2 * T)
        assert area == pytest.approx((0.5 * VDD) ** 2 / (2 * slope), rel=1e-6)

    def test_settles_to(self):
        w = sigmoid_edge(1e-9, 100e-12)
        assert w.settles_to(VDD, 0.01 * VDD)
        assert not w.settles_to(0.0, 0.01 * VDD)

    def test_is_monotonic(self):
        assert sigmoid_edge(1e-9, 100e-12).is_monotonic(tolerance=1e-9)
        # Bump on the settled tail, where its slope dominates the edge's.
        w = bumped_edge(1e-9, 100e-12, bump_at=1.4e-9, bump_height=-0.3,
                        bump_width=40e-12)
        assert not w.is_monotonic(tolerance=1e-3)

    def test_overlaps(self):
        a = sigmoid_edge(1.0e-9, 200e-12, t_start=0.0, t_end=3e-9)
        b = sigmoid_edge(1.05e-9, 200e-12, t_start=0.0, t_end=3e-9, rising=False)
        c = sigmoid_edge(2.5e-9, 100e-12, t_start=0.0, t_end=4e-9)
        assert a.overlaps(b, VDD)
        assert not a.overlaps(c, VDD)
