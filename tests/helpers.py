"""Synthetic-waveform builders and golden-grid comparison utilities
shared across the test suite."""

from __future__ import annotations

import numpy as np

from repro.core.waveform import Waveform

VDD = 1.2


def max_node_deviation(golden, other, nodes=None) -> float:
    """Worst |ΔV| between two transient results on a common axis.

    Resamples ``other`` onto the golden result's time axis (linear
    interpolation, the semantics both results' waveforms carry), so
    adaptive non-uniform grids compare directly against fixed golden
    grids.  ``nodes`` restricts the comparison (default: every node).
    """
    worst = 0.0
    for node in (nodes if nodes is not None else golden.node_names):
        dv = np.abs(other.voltages_at(node, golden.times)
                    - golden.voltage_samples(node))
        worst = max(worst, float(dv.max()))
    return worst


def sigmoid_edge(t50: float, slew: float, vdd: float = VDD, rising: bool = True,
                 t_start: float | None = None, t_end: float | None = None,
                 n: int = 801) -> Waveform:
    """A smooth tanh edge with given 50% crossing and 10-90% slew.

    tanh hits +/-0.8 (the 10/90 levels) at +/-1.0986 normalised units,
    which fixes the time scale exactly, so ``slew`` is met analytically.
    """
    scale = slew / (2.0 * np.arctanh(0.8))
    lo = t50 - 6.0 * scale if t_start is None else t_start
    hi = t50 + 6.0 * scale if t_end is None else t_end
    t = np.linspace(lo, hi, n)
    v = 0.5 * vdd * (1.0 + np.tanh((t - t50) / scale))
    if not rising:
        v = vdd - v
    return Waveform(t, v)


def bumped_edge(t50: float, slew: float, bump_at: float, bump_height: float,
                bump_width: float, vdd: float = VDD, n: int = 1601,
                t_start: float | None = None, t_end: float | None = None) -> Waveform:
    """A rising tanh edge with a Gaussian crosstalk bump added."""
    base = sigmoid_edge(t50, slew, vdd, True,
                        t_start=t_start if t_start is not None else t50 - 8 * slew,
                        t_end=t_end if t_end is not None else t50 + 8 * slew, n=n)
    t = base.times
    bump = bump_height * np.exp(-0.5 * ((t - bump_at) / bump_width) ** 2)
    return Waveform(t, np.clip(base.values + bump, -0.3 * vdd, 1.3 * vdd))


def synthetic_gate_pair(t50: float = 1.0e-9, slew: float = 200e-12,
                        delay: float = 60e-12, vdd: float = VDD
                        ) -> tuple[Waveform, Waveform]:
    """An analytic (input, output) pair for an inverting gate.

    Output is a falling edge, slightly faster, delayed by ``delay`` -- it
    overlaps the input, so the sensitivity is well defined.
    """
    v_in = sigmoid_edge(t50, slew, vdd, rising=True,
                        t_start=t50 - 5 * slew, t_end=t50 + 5 * slew)
    v_out = sigmoid_edge(t50 + delay, 0.8 * slew, vdd, rising=False,
                         t_start=t50 - 5 * slew, t_end=t50 + 5 * slew)
    return v_in, v_out
