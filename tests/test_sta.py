"""Tests for the STA engine: netlists, timing graph, analysis, noise-aware."""

import numpy as np
import pytest

from repro.interconnect.rcline import RcLineSpec
from repro.library.cells import make_inverter
from repro.library.characterize import CharacterizedCell
from repro.library.nldm import NldmTable, TimingArc
from repro.sta.analysis import InputSpec, StaEngine
from repro.sta.graph import TimingGraph, TimingGraphError
from repro.sta.netlist import GateNetlist, NetlistError, parse_structural_verilog

VDD = 1.2


# ----------------------------------------------------------------------
# A synthetic library with analytically simple tables:
#     delay = d0 * drive_factor + 0.1 * slew + 1e9 * load / drive
#     out_slew = 0.5 * slew + 2e9 * load
# so STA results can be hand-checked without any simulation.
# ----------------------------------------------------------------------
def _stub_cell(drive: int, d0: float = 20e-12) -> CharacterizedCell:
    slews = np.array([10e-12, 100e-12, 400e-12])
    loads = np.array([1e-15, 10e-15, 100e-15]) * drive
    delay = np.empty((3, 3))
    tran = np.empty((3, 3))
    for i, s in enumerate(slews):
        for j, ld in enumerate(loads):
            delay[i, j] = d0 + 0.1 * s + 1e9 * ld / drive
            tran[i, j] = 0.5 * s + 2e9 * ld / drive
    table = NldmTable(slews, loads, delay)
    ttable = NldmTable(slews, loads, tran)
    arc = TimingArc(related_pin="A", output_pin="Y", inverting=True,
                    cell_rise=table, cell_fall=table,
                    rise_transition=ttable, fall_transition=ttable)
    return CharacterizedCell(cell=make_inverter(drive), arc=arc,
                             input_slews=slews, loads=loads)


@pytest.fixture()
def stub_library():
    return {f"INVX{d}": _stub_cell(d) for d in (1, 4, 16, 64)}


# ----------------------------------------------------------------------
# Constant-delay cells (no slew/load dependence): arrivals are exact
# longest-path sums, so required times and slacks are hand-computable.
# ----------------------------------------------------------------------
def _const_arc(rise: float, fall: float, related_pin: str = "A",
               inverting: bool = True, tran: float = 50e-12) -> TimingArc:
    slews = np.array([10e-12, 400e-12])
    loads = np.array([1e-15, 100e-15])
    def const(v):
        return NldmTable(slews, loads, np.full((2, 2), v))
    return TimingArc(related_pin=related_pin, output_pin="Y",
                     inverting=inverting,
                     cell_rise=const(rise), cell_fall=const(fall),
                     rise_transition=const(tran), fall_transition=const(tran))


def _const_cell(rise: float, fall: float, inverting: bool = True,
                arcs: "tuple[TimingArc, ...]" = ()) -> CharacterizedCell:
    first = arcs[0] if arcs else _const_arc(rise, fall, inverting=inverting)
    return CharacterizedCell(cell=make_inverter(1), arc=first,
                             input_slews=first.cell_rise.input_slews,
                             loads=first.cell_rise.loads,
                             arcs=arcs if len(arcs) > 1 else ())


class TestGateNetlist:
    def test_chain_constructor(self):
        net = GateNetlist.inverter_chain([1, 4, 16])
        assert len(net.instances) == 3
        assert net.primary_inputs == ["n0"]
        assert net.primary_outputs == ["n3"]
        net.validate()

    def test_duplicate_instance_rejected(self):
        net = GateNetlist()
        net.add_instance("u0", "INVX1", "a", "b")
        with pytest.raises(ValueError, match="duplicate"):
            net.add_instance("u0", "INVX1", "b", "c")

    def test_multiply_driven_net_rejected(self):
        net = GateNetlist()
        net.add_input("a")
        net.add_instance("u0", "INVX1", "a", "y")
        net.add_instance("u1", "INVX1", "a", "y")
        with pytest.raises(NetlistError, match="multiple"):
            net.validate()

    def test_undriven_input_rejected(self):
        net = GateNetlist()
        net.add_instance("u0", "INVX1", "ghost", "y")
        with pytest.raises(NetlistError, match="undriven"):
            net.validate()

    def test_driver_and_loads_queries(self):
        net = GateNetlist.inverter_chain([1, 4])
        assert net.driver_of("n1").name == "u0"
        assert net.driver_of("n0") is None
        assert [i.name for i in net.loads_of("n1")] == ["u1"]
        assert net.fanout_count("n2") == 0


class TestVerilogParser:
    SOURCE = """
    // a comment
    module chain (a, y);
      input a;
      output y;
      wire n1, n2;
      INVX1 u0 (.A(a), .Y(n1));
      INVX4 u1 (.A(n1), .Y(n2));  /* inline */
      INVX16 u2 (.A(n2), .Y(y));
    endmodule
    """

    def test_parses_structure(self):
        net = parse_structural_verilog(self.SOURCE)
        assert net.name == "chain"
        assert net.primary_inputs == ["a"]
        assert net.primary_outputs == ["y"]
        assert [i.cell for i in net.instances] == ["INVX1", "INVX4", "INVX16"]

    def test_missing_module_rejected(self):
        with pytest.raises(NetlistError):
            parse_structural_verilog("wire x;")

    def test_missing_endmodule_rejected(self):
        with pytest.raises(NetlistError):
            parse_structural_verilog("module m (a); input a;")

    def test_positional_ports_rejected(self):
        src = "module m (a, y); input a; output y; INVX1 u0 (a, y); endmodule"
        with pytest.raises(NetlistError, match="named ports"):
            parse_structural_verilog(src)

    def test_decl_keyword_not_matched_inside_identifier(self):
        # Regression: the old decl regex had no word boundary, so the
        # instance of a cell named ``winput`` was read as an input
        # declaration of net ``y``.
        src = """
        module m (a, y);
          input a; output y;
          winput u0 (.A(a), .Y(y));
        endmodule
        """
        net = parse_structural_verilog(src)
        assert net.primary_inputs == ["a"]
        assert [i.cell for i in net.instances] == ["winput"]

    def test_vector_declarations_rejected(self):
        src = "module m (a, y); input [3:0] a; output y; endmodule"
        with pytest.raises(NetlistError, match="[Vv]ector"):
            parse_structural_verilog(src)

    def test_multi_port_instance(self):
        src = """
        module m (a, b, y);
          input a, b; output y; wire w;
          NAND2X1 u0 (.A(a), .B(b), .Y(w));
          INVX1 u1 (.A(w), .Y(y));
        endmodule
        """
        net = parse_structural_verilog(src)
        u0 = net.instances[0]
        assert dict(u0.inputs) == {"A": "a", "B": "b"}
        assert u0.output_net == "w"
        assert u0.output_pin == "Y"


class TestTimingGraph:
    def test_levels_topological(self):
        net = GateNetlist.inverter_chain([1, 1, 1])
        order = TimingGraph.build(net).levels()
        assert order.index("n0") < order.index("n1") < order.index("n3")

    def test_cycle_detected(self):
        net = GateNetlist()
        net.add_input("a")
        net.add_instance("u0", "INVX1", "a", "x")
        net.add_instance("u1", "INVX1", "y", "z")
        net.add_instance("u2", "INVX1", "z", "y")
        net.primary_outputs.append("x")
        with pytest.raises(TimingGraphError, match="cycle"):
            TimingGraph.build(net).levels()

    def test_depth(self):
        net = GateNetlist.inverter_chain([1, 4, 16, 64])
        g = TimingGraph.build(net)
        assert g.depth_of("n0") == 0
        assert g.depth_of("n4") == 4

    def test_transitive_fanin(self):
        net = GateNetlist.inverter_chain([1, 4, 16])
        g = TimingGraph.build(net)
        assert g.transitive_fanin_nets("n2") == ["n0", "n1", "n2"]


class TestStaAnalysis:
    def test_single_stage_hand_computed(self, stub_library):
        net = GateNetlist.inverter_chain([4])
        # INVX4 output drives nothing: load = 0 ⇒ extrapolated table value.
        engine = StaEngine(stub_library)
        res = engine.analyze(net, inputs={"n0": InputSpec(arrival=1e-9,
                                                          slew=100e-12)})
        d_expect = 20e-12 + 0.1 * 100e-12 + 0.0
        assert res.arrival("n1") == pytest.approx(1e-9 + d_expect, rel=1e-6)

    def test_chain_loads_seen_by_each_stage(self, stub_library):
        net = GateNetlist.inverter_chain([1, 4])
        engine = StaEngine(stub_library)
        res = engine.analyze(net, inputs={"n0": InputSpec(slew=100e-12)})
        cin4 = stub_library["INVX4"].cell.input_capacitance
        d0 = 20e-12 + 0.1 * 100e-12 + 1e9 * cin4 / 1
        assert res.arrival("n1") == pytest.approx(d0, rel=1e-6)
        s1 = 0.5 * 100e-12 + 2e9 * cin4 / 1
        d1 = 20e-12 + 0.1 * s1 + 0.0
        assert res.arrival("n2") == pytest.approx(d0 + d1, rel=1e-6)

    def test_wire_adds_elmore_delay(self, stub_library):
        from repro.interconnect.elmore import elmore_delays_line
        net = GateNetlist.inverter_chain([1, 4])
        spec = RcLineSpec(total_r=500.0, total_c=50e-15, n_segments=3)
        bare = StaEngine(stub_library).analyze(
            net, inputs={"n0": InputSpec(slew=100e-12)})
        wired = StaEngine(stub_library, wire_specs={"n1": spec}).analyze(
            net, inputs={"n0": InputSpec(slew=100e-12)})
        assert wired.arrival("n1") > bare.arrival("n1")
        cin4 = stub_library["INVX4"].cell.input_capacitance
        elm = elmore_delays_line(500.0, 50e-15, 3, load_c=cin4)
        extra_gate = 1e9 * spec.total_c / 1  # wire cap also loads the driver
        assert wired.arrival("n1") - bare.arrival("n1") == pytest.approx(
            elm + extra_gate, rel=1e-6)

    def test_edges_alternate_through_inverters(self, stub_library):
        net = GateNetlist.inverter_chain([1, 1])
        engine = StaEngine(stub_library)
        res = engine.analyze(net, inputs={"n0": InputSpec(arrival=0.0,
                                                          slew=100e-12)})
        # Both edges exist everywhere and are finite.
        for n in ("n1", "n2"):
            assert np.isfinite(res.rise[n].arrival)
            assert np.isfinite(res.fall[n].arrival)

    def test_required_times_and_slack(self, stub_library):
        net = GateNetlist.inverter_chain([1, 4, 16])
        engine = StaEngine(stub_library)
        res = engine.analyze(net, inputs={"n0": InputSpec(slew=100e-12)},
                             required_times={"n3": 1e-9})
        assert res.slack("n3") == pytest.approx(1e-9 - res.arrival("n3"))
        assert res.worst_slack() <= res.slack("n3")
        assert "n0" in res.required  # propagated to the input

    def test_critical_path_traces_chain(self, stub_library):
        net = GateNetlist.inverter_chain([1, 4, 16])
        res = StaEngine(stub_library).analyze(
            net, inputs={"n0": InputSpec(slew=100e-12)})
        assert res.critical_path("n3") == ["n0", "n1", "n2", "n3"]

    def test_unknown_cell_raises(self, stub_library):
        net = GateNetlist()
        net.add_input("a")
        net.add_instance("u0", "NAND2X1", "a", "y")
        net.add_output("y")
        with pytest.raises(KeyError, match="NAND2X1"):
            StaEngine(stub_library).analyze(net)


class TestRequiredTimePropagation:
    """Regression: required times must subtract the *causal* edge's arc
    delay, not the gap between output arrival and the max input arrival.

    Chain: n0 -> INV_A (rise 50ps / fall 10ps) -> n1 -> INV_B
    (rise 100ps / fall 10ps) -> n2, required(n2) = 120ps.

    Hand computation (constant tables, so arrivals are exact sums):
      n1: rise 50ps (caused by n0 fall), fall 10ps (caused by n0 rise)
      n2: rise 110ps (caused by n1 fall), fall 60ps (caused by n1 rise)
      req_rise(n1) = req_fall(n2) - 10ps = 110ps  -> slack 60ps
      req_fall(n1) = req_rise(n2) - 100ps = 20ps  -> slack 10ps
      required(n1) = min = 20ps

    The old backward pass subtracted ``arrival(n2,worst) - max(arrival
    rise/fall at n1)`` = 110 - 50 = 60ps and reported required(n1) =
    60ps — matching *neither* edge (off by 40ps against the causal fall
    edge) — so these asserts fail on the pre-fix code.
    """

    @pytest.fixture()
    def result(self):
        lib = {"INV_A": _const_cell(50e-12, 10e-12),
               "INV_B": _const_cell(100e-12, 10e-12)}
        net = GateNetlist()
        net.add_input("n0")
        net.add_instance("u0", "INV_A", "n0", "n1")
        net.add_instance("u1", "INV_B", "n1", "n2")
        net.add_output("n2")
        return StaEngine(lib).analyze(
            net, inputs={"n0": InputSpec(slew=50e-12)},
            required_times={"n2": 120e-12})

    def test_asymmetric_arrivals(self, result):
        assert result.rise["n1"].arrival == pytest.approx(50e-12, rel=1e-9)
        assert result.fall["n1"].arrival == pytest.approx(10e-12, rel=1e-9)
        assert result.rise["n2"].arrival == pytest.approx(110e-12, rel=1e-9)
        assert result.fall["n2"].arrival == pytest.approx(60e-12, rel=1e-9)

    def test_per_edge_required_times(self, result):
        assert result.required_rise["n1"] == pytest.approx(110e-12, rel=1e-9)
        assert result.required_fall["n1"] == pytest.approx(20e-12, rel=1e-9)

    def test_summary_required_is_min_over_edges(self, result):
        # Pre-fix value was 60ps (gap to the max input arrival).
        assert result.required["n1"] == pytest.approx(20e-12, rel=1e-9)

    def test_hand_computed_slacks(self, result):
        assert result.slack_edge("n1", "rise") == pytest.approx(60e-12, rel=1e-9)
        assert result.slack_edge("n1", "fall") == pytest.approx(10e-12, rel=1e-9)
        assert result.slack("n1") == pytest.approx(10e-12, rel=1e-9)
        assert result.worst_slack() == pytest.approx(10e-12, rel=1e-9)

    def test_required_reaches_primary_input(self, result):
        # req_rise(n0) = req_fall(n1) - 10ps; req_fall(n0) = req_rise(n1) - 50ps.
        assert result.required_rise["n0"] == pytest.approx(10e-12, rel=1e-9)
        assert result.required_fall["n0"] == pytest.approx(60e-12, rel=1e-9)
        assert result.required["n0"] == pytest.approx(10e-12, rel=1e-9)


class TestCriticalPathEdges:
    """Regression: path tracing follows the recorded causal ``from_edge``
    instead of flipping the edge at every stage (wrong for non-inverting
    arcs, which ``TimingArc.inverting=False`` already supported)."""

    @pytest.fixture()
    def result(self):
        lib = {"INV": _const_cell(50e-12, 10e-12),
               "BUF": _const_cell(30e-12, 10e-12, inverting=False)}
        net = GateNetlist()
        net.add_input("n0")
        net.add_instance("u0", "INV", "n0", "n1")
        net.add_instance("u1", "BUF", "n1", "n2")
        net.add_output("n2")
        return StaEngine(lib).analyze(net, inputs={"n0": InputSpec()})

    def test_non_inverting_arc_keeps_edge(self, result):
        # n2 rise (50+30=80ps) is caused by n1 *rise*, not a flipped fall.
        assert result.rise["n2"].arrival == pytest.approx(80e-12, rel=1e-9)
        assert result.rise["n2"].from_edge == "rise"
        assert result.fall["n2"].from_edge == "fall"
        # The inverter stage does flip: n1 rise is caused by n0 fall.
        assert result.rise["n1"].from_edge == "fall"

    def test_trace_selected_edge(self, result):
        assert result.critical_path("n2") == ["n0", "n1", "n2"]
        assert result.critical_path("n2", edge="fall") == ["n0", "n1", "n2"]
        # Fall at n2 traces n1 fall (10ps) back to n0 rise.
        assert result.fall["n2"].arrival == pytest.approx(20e-12, rel=1e-9)


class TestMultiInputCells:
    """Per-arc propagation through a 2-input gate with per-pin delays."""

    @pytest.fixture()
    def library(self):
        arc_a = _const_arc(20e-12, 15e-12, related_pin="A")
        arc_b = _const_arc(40e-12, 35e-12, related_pin="B")
        nand = CharacterizedCell(cell=make_inverter(1), arc=arc_a,
                                 input_slews=arc_a.cell_rise.input_slews,
                                 loads=arc_a.cell_rise.loads,
                                 arcs=(arc_a, arc_b), input_cap=2e-15)
        return {"NAND2": nand, "INV": _const_cell(50e-12, 10e-12)}

    def test_worst_arc_wins(self, library):
        net = GateNetlist()
        net.add_input("a")
        net.add_input("b")
        net.add_instance("u0", "NAND2", {"A": "a", "B": "b"}, "y")
        net.add_output("y")
        res = StaEngine(library).analyze(
            net, inputs={"a": InputSpec(), "b": InputSpec()})
        # Both inputs at t=0: the slower B arc dominates both edges.
        assert res.rise["y"].arrival == pytest.approx(40e-12, rel=1e-9)
        assert res.fall["y"].arrival == pytest.approx(35e-12, rel=1e-9)
        assert res.rise["y"].from_pin == "B"
        assert res.rise["y"].from_net == "b"

    def test_late_arrival_switches_pin(self, library):
        net = GateNetlist()
        net.add_input("a")
        net.add_input("b")
        net.add_instance("u0", "NAND2", {"A": "a", "B": "b"}, "y")
        net.add_output("y")
        res = StaEngine(library).analyze(
            net, inputs={"a": InputSpec(arrival=100e-12), "b": InputSpec()})
        # A arrives 100ps late: 100+20 beats 0+40 on the rise.
        assert res.rise["y"].arrival == pytest.approx(120e-12, rel=1e-9)
        assert res.rise["y"].from_pin == "A"
        assert res.critical_path("y") == ["a", "y"]

    def test_per_pin_required_times(self, library):
        net = GateNetlist()
        net.add_input("a")
        net.add_input("b")
        net.add_instance("u0", "NAND2", {"A": "a", "B": "b"}, "y")
        net.add_output("y")
        res = StaEngine(library).analyze(
            net, inputs={"a": InputSpec(), "b": InputSpec()},
            required_times={"y": 100e-12})
        # req_fall(a) = req_rise(y) - 20ps; req_fall(b) = req_rise(y) - 40ps.
        assert res.required_fall["a"] == pytest.approx(80e-12, rel=1e-9)
        assert res.required_fall["b"] == pytest.approx(60e-12, rel=1e-9)
        assert res.required_rise["a"] == pytest.approx(85e-12, rel=1e-9)
        assert res.required_rise["b"] == pytest.approx(65e-12, rel=1e-9)

    def test_depth_and_levels_with_reconvergence(self, library):
        # a -> inv -> x; NAND(a, x) -> y : reconvergent fanin.
        net = GateNetlist()
        net.add_input("a")
        net.add_instance("u0", "INV", "a", "x")
        net.add_instance("u1", "NAND2", {"A": "a", "B": "x"}, "y")
        net.add_output("y")
        g = TimingGraph.build(net)
        order = g.levels()
        assert order.index("a") < order.index("x") < order.index("y")
        assert g.depth_of("y") == 2
        assert g.transitive_fanin_nets("y") == ["a", "x", "y"]
        res = StaEngine(library).analyze(net, inputs={"a": InputSpec()})
        # Path through the inverter dominates: x rises at 50ps, the B-pin
        # fall arc adds 35ps.
        assert res.arrival("y") == pytest.approx(85e-12, rel=1e-9)


class TestNoiseAwarePath:
    @pytest.fixture(scope="class")
    def quiet_stage(self):
        from repro.sta.noise_aware import NoisyStage
        return NoisyStage(
            driver=make_inverter(1),
            line=RcLineSpec.from_length(500.0),
            receiver=make_inverter(4),
        )

    def test_quiet_stage_technique_matches_reference(self, quiet_stage):
        from repro.core.ramp import SaturatedRamp
        from repro.sta.noise_aware import propagate_path
        ramp = SaturatedRamp.from_arrival_slew(0.3e-9, 150e-12, VDD, rising=False)
        tech = propagate_path([quiet_stage], ramp, dt=4e-12)
        ref = propagate_path([quiet_stage], ramp, dt=4e-12, full_waveform=True)
        assert tech[0].output_arrival == pytest.approx(ref[0].output_arrival,
                                                       abs=20e-12)

    def test_aggressor_changes_arrival(self, quiet_stage):
        from dataclasses import replace
        from repro.core.ramp import SaturatedRamp
        from repro.sta.noise_aware import AggressorSpec, propagate_path
        ramp = SaturatedRamp.from_arrival_slew(0.3e-9, 150e-12, VDD, rising=False)
        agg = AggressorSpec(coupling=100e-15, transition_start=0.35e-9,
                            rising=False, slew=150e-12,
                            driver=make_inverter(1))
        noisy_stage = replace(quiet_stage, aggressors=(agg,))
        quiet = propagate_path([quiet_stage], ramp, dt=4e-12)
        noisy = propagate_path([noisy_stage], ramp, dt=4e-12)
        assert abs(noisy[0].output_arrival - quiet[0].output_arrival) > 5e-12
