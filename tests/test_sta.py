"""Tests for the STA engine: netlists, timing graph, analysis, noise-aware."""

import numpy as np
import pytest

from repro.interconnect.rcline import RcLineSpec
from repro.library.cells import make_inverter
from repro.library.characterize import CharacterizedCell
from repro.library.nldm import NldmTable, TimingArc
from repro.sta.analysis import InputSpec, StaEngine
from repro.sta.graph import TimingGraph, TimingGraphError
from repro.sta.netlist import GateNetlist, NetlistError, parse_structural_verilog

VDD = 1.2


# ----------------------------------------------------------------------
# A synthetic library with analytically simple tables:
#     delay = d0 * drive_factor + 0.1 * slew + 1e9 * load / drive
#     out_slew = 0.5 * slew + 2e9 * load
# so STA results can be hand-checked without any simulation.
# ----------------------------------------------------------------------
def _stub_cell(drive: int, d0: float = 20e-12) -> CharacterizedCell:
    slews = np.array([10e-12, 100e-12, 400e-12])
    loads = np.array([1e-15, 10e-15, 100e-15]) * drive
    delay = np.empty((3, 3))
    tran = np.empty((3, 3))
    for i, s in enumerate(slews):
        for j, ld in enumerate(loads):
            delay[i, j] = d0 + 0.1 * s + 1e9 * ld / drive
            tran[i, j] = 0.5 * s + 2e9 * ld / drive
    table = NldmTable(slews, loads, delay)
    ttable = NldmTable(slews, loads, tran)
    arc = TimingArc(related_pin="A", output_pin="Y", inverting=True,
                    cell_rise=table, cell_fall=table,
                    rise_transition=ttable, fall_transition=ttable)
    return CharacterizedCell(cell=make_inverter(drive), arc=arc,
                             input_slews=slews, loads=loads)


@pytest.fixture()
def stub_library():
    return {f"INVX{d}": _stub_cell(d) for d in (1, 4, 16, 64)}


class TestGateNetlist:
    def test_chain_constructor(self):
        net = GateNetlist.inverter_chain([1, 4, 16])
        assert len(net.instances) == 3
        assert net.primary_inputs == ["n0"]
        assert net.primary_outputs == ["n3"]
        net.validate()

    def test_duplicate_instance_rejected(self):
        net = GateNetlist()
        net.add_instance("u0", "INVX1", "a", "b")
        with pytest.raises(ValueError, match="duplicate"):
            net.add_instance("u0", "INVX1", "b", "c")

    def test_multiply_driven_net_rejected(self):
        net = GateNetlist()
        net.add_input("a")
        net.add_instance("u0", "INVX1", "a", "y")
        net.add_instance("u1", "INVX1", "a", "y")
        with pytest.raises(NetlistError, match="multiple"):
            net.validate()

    def test_undriven_input_rejected(self):
        net = GateNetlist()
        net.add_instance("u0", "INVX1", "ghost", "y")
        with pytest.raises(NetlistError, match="undriven"):
            net.validate()

    def test_driver_and_loads_queries(self):
        net = GateNetlist.inverter_chain([1, 4])
        assert net.driver_of("n1").name == "u0"
        assert net.driver_of("n0") is None
        assert [i.name for i in net.loads_of("n1")] == ["u1"]
        assert net.fanout_count("n2") == 0


class TestVerilogParser:
    SOURCE = """
    // a comment
    module chain (a, y);
      input a;
      output y;
      wire n1, n2;
      INVX1 u0 (.A(a), .Y(n1));
      INVX4 u1 (.A(n1), .Y(n2));  /* inline */
      INVX16 u2 (.A(n2), .Y(y));
    endmodule
    """

    def test_parses_structure(self):
        net = parse_structural_verilog(self.SOURCE)
        assert net.name == "chain"
        assert net.primary_inputs == ["a"]
        assert net.primary_outputs == ["y"]
        assert [i.cell for i in net.instances] == ["INVX1", "INVX4", "INVX16"]

    def test_missing_module_rejected(self):
        with pytest.raises(NetlistError):
            parse_structural_verilog("wire x;")

    def test_missing_endmodule_rejected(self):
        with pytest.raises(NetlistError):
            parse_structural_verilog("module m (a); input a;")

    def test_positional_ports_rejected(self):
        src = "module m (a, y); input a; output y; INVX1 u0 (a, y); endmodule"
        with pytest.raises(NetlistError, match="named ports"):
            parse_structural_verilog(src)


class TestTimingGraph:
    def test_levels_topological(self):
        net = GateNetlist.inverter_chain([1, 1, 1])
        order = TimingGraph.build(net).levels()
        assert order.index("n0") < order.index("n1") < order.index("n3")

    def test_cycle_detected(self):
        net = GateNetlist()
        net.add_input("a")
        net.add_instance("u0", "INVX1", "a", "x")
        net.add_instance("u1", "INVX1", "y", "z")
        net.add_instance("u2", "INVX1", "z", "y")
        net.primary_outputs.append("x")
        with pytest.raises(TimingGraphError, match="cycle"):
            TimingGraph.build(net).levels()

    def test_depth(self):
        net = GateNetlist.inverter_chain([1, 4, 16, 64])
        g = TimingGraph.build(net)
        assert g.depth_of("n0") == 0
        assert g.depth_of("n4") == 4

    def test_transitive_fanin(self):
        net = GateNetlist.inverter_chain([1, 4, 16])
        g = TimingGraph.build(net)
        assert g.transitive_fanin_nets("n2") == ["n0", "n1", "n2"]


class TestStaAnalysis:
    def test_single_stage_hand_computed(self, stub_library):
        net = GateNetlist.inverter_chain([4])
        # INVX4 output drives nothing: load = 0 ⇒ extrapolated table value.
        engine = StaEngine(stub_library)
        res = engine.analyze(net, inputs={"n0": InputSpec(arrival=1e-9,
                                                          slew=100e-12)})
        d_expect = 20e-12 + 0.1 * 100e-12 + 0.0
        assert res.arrival("n1") == pytest.approx(1e-9 + d_expect, rel=1e-6)

    def test_chain_loads_seen_by_each_stage(self, stub_library):
        net = GateNetlist.inverter_chain([1, 4])
        engine = StaEngine(stub_library)
        res = engine.analyze(net, inputs={"n0": InputSpec(slew=100e-12)})
        cin4 = stub_library["INVX4"].cell.input_capacitance
        d0 = 20e-12 + 0.1 * 100e-12 + 1e9 * cin4 / 1
        assert res.arrival("n1") == pytest.approx(d0, rel=1e-6)
        s1 = 0.5 * 100e-12 + 2e9 * cin4 / 1
        d1 = 20e-12 + 0.1 * s1 + 0.0
        assert res.arrival("n2") == pytest.approx(d0 + d1, rel=1e-6)

    def test_wire_adds_elmore_delay(self, stub_library):
        from repro.interconnect.elmore import elmore_delays_line
        net = GateNetlist.inverter_chain([1, 4])
        spec = RcLineSpec(total_r=500.0, total_c=50e-15, n_segments=3)
        bare = StaEngine(stub_library).analyze(
            net, inputs={"n0": InputSpec(slew=100e-12)})
        wired = StaEngine(stub_library, wire_specs={"n1": spec}).analyze(
            net, inputs={"n0": InputSpec(slew=100e-12)})
        assert wired.arrival("n1") > bare.arrival("n1")
        cin4 = stub_library["INVX4"].cell.input_capacitance
        elm = elmore_delays_line(500.0, 50e-15, 3, load_c=cin4)
        extra_gate = 1e9 * spec.total_c / 1  # wire cap also loads the driver
        assert wired.arrival("n1") - bare.arrival("n1") == pytest.approx(
            elm + extra_gate, rel=1e-6)

    def test_edges_alternate_through_inverters(self, stub_library):
        net = GateNetlist.inverter_chain([1, 1])
        engine = StaEngine(stub_library)
        res = engine.analyze(net, inputs={"n0": InputSpec(arrival=0.0,
                                                          slew=100e-12)})
        # Both edges exist everywhere and are finite.
        for n in ("n1", "n2"):
            assert np.isfinite(res.rise[n].arrival)
            assert np.isfinite(res.fall[n].arrival)

    def test_required_times_and_slack(self, stub_library):
        net = GateNetlist.inverter_chain([1, 4, 16])
        engine = StaEngine(stub_library)
        res = engine.analyze(net, inputs={"n0": InputSpec(slew=100e-12)},
                             required_times={"n3": 1e-9})
        assert res.slack("n3") == pytest.approx(1e-9 - res.arrival("n3"))
        assert res.worst_slack() <= res.slack("n3")
        assert "n0" in res.required  # propagated to the input

    def test_critical_path_traces_chain(self, stub_library):
        net = GateNetlist.inverter_chain([1, 4, 16])
        res = StaEngine(stub_library).analyze(
            net, inputs={"n0": InputSpec(slew=100e-12)})
        assert res.critical_path("n3") == ["n0", "n1", "n2", "n3"]

    def test_unknown_cell_raises(self, stub_library):
        net = GateNetlist()
        net.add_input("a")
        net.add_instance("u0", "NAND2X1", "a", "y")
        net.add_output("y")
        with pytest.raises(KeyError, match="NAND2X1"):
            StaEngine(stub_library).analyze(net)


class TestNoiseAwarePath:
    @pytest.fixture(scope="class")
    def quiet_stage(self):
        from repro.sta.noise_aware import NoisyStage
        return NoisyStage(
            driver=make_inverter(1),
            line=RcLineSpec.from_length(500.0),
            receiver=make_inverter(4),
        )

    def test_quiet_stage_technique_matches_reference(self, quiet_stage):
        from repro.core.ramp import SaturatedRamp
        from repro.sta.noise_aware import propagate_path
        ramp = SaturatedRamp.from_arrival_slew(0.3e-9, 150e-12, VDD, rising=False)
        tech = propagate_path([quiet_stage], ramp, dt=4e-12)
        ref = propagate_path([quiet_stage], ramp, dt=4e-12, full_waveform=True)
        assert tech[0].output_arrival == pytest.approx(ref[0].output_arrival,
                                                       abs=20e-12)

    def test_aggressor_changes_arrival(self, quiet_stage):
        from dataclasses import replace
        from repro.core.ramp import SaturatedRamp
        from repro.sta.noise_aware import AggressorSpec, propagate_path
        ramp = SaturatedRamp.from_arrival_slew(0.3e-9, 150e-12, VDD, rising=False)
        agg = AggressorSpec(coupling=100e-15, transition_start=0.35e-9,
                            rising=False, slew=150e-12,
                            driver=make_inverter(1))
        noisy_stage = replace(quiet_stage, aggressors=(agg,))
        quiet = propagate_path([quiet_stage], ramp, dt=4e-12)
        noisy = propagate_path([noisy_stage], ramp, dt=4e-12)
        assert abs(noisy[0].output_arrival - quiet[0].output_arrival) > 5e-12
