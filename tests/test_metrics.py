"""Tests for error statistics and formatting."""

import math

import pytest

from repro.core.metrics import error_stats, format_ps


class TestErrorStats:
    def test_basic_statistics(self):
        s = error_stats([1e-12, -3e-12, 2e-12])
        assert s.count == 3
        assert s.failures == 0
        assert s.max_abs == pytest.approx(3e-12)
        assert s.mean_abs == pytest.approx(2e-12)
        assert s.mean_signed == pytest.approx(0.0, abs=1e-15)

    def test_rms(self):
        s = error_stats([3e-12, 4e-12])
        assert s.rms == pytest.approx(math.sqrt((9 + 16) / 2) * 1e-12)

    def test_failures_counted(self):
        s = error_stats([1e-12, None, None])
        assert s.count == 1 and s.failures == 2

    def test_all_failures_gives_nan(self):
        s = error_stats([None, None])
        assert s.count == 0
        assert math.isnan(s.max_abs)

    def test_ps_properties(self):
        s = error_stats([5e-12])
        assert s.max_ps == pytest.approx(5.0)
        assert s.avg_ps == pytest.approx(5.0)

    def test_bias_sign_convention(self):
        s = error_stats([10e-12, 20e-12])
        assert s.mean_signed > 0  # pessimistic


class TestFormatting:
    def test_format_ps(self):
        assert format_ps(12.34e-12).strip() == "12.3"

    def test_format_nan(self):
        assert format_ps(float("nan")).strip() == "n/a"
