// ISCAS-85 c17 benchmark, mapped to NAND2X1.
module c17 (N1, N2, N3, N6, N7, N22, N23);
  input N1, N2, N3, N6, N7;
  output N22, N23;
  wire N10, N11, N16, N19;

  NAND2X1 u10 (.A(N1),  .B(N3),  .Y(N10));
  NAND2X1 u11 (.A(N3),  .B(N6),  .Y(N11));
  NAND2X1 u16 (.A(N2),  .B(N11), .Y(N16));
  NAND2X1 u19 (.A(N11), .B(N7),  .Y(N19));
  NAND2X1 u22 (.A(N10), .B(N16), .Y(N22));
  NAND2X1 u23 (.A(N16), .B(N19), .Y(N23));
endmodule
