"""Property-based tests (hypothesis) on the core data structures.

These pin algebraic invariants that hold for *any* waveform/ramp/table,
not just the hand-picked examples of the unit tests.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ramp import SaturatedRamp
from repro.core.techniques import fit_line_weighted
from repro.core.waveform import Waveform
from repro.library.nldm import NldmTable

from tests.helpers import VDD

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
# Picosecond-grid times: well separated so float operations (shifts,
# interpolation) cannot collapse adjacent samples.
times_strategy = st.lists(
    st.integers(min_value=0, max_value=10_000),
    min_size=4, max_size=40, unique=True,
).map(lambda ticks: [t * 1e-12 for t in sorted(ticks)])

voltages_strategy = st.lists(
    st.floats(min_value=-0.5, max_value=2.0, allow_nan=False),
    min_size=4, max_size=40,
)


@st.composite
def waveforms(draw):
    t = draw(times_strategy)
    v = draw(st.lists(st.floats(min_value=-0.5, max_value=2.0, allow_nan=False),
                      min_size=len(t), max_size=len(t)))
    return Waveform(t, v)


@st.composite
def monotone_rising_waveforms(draw):
    t = draw(times_strategy)
    steps = draw(st.lists(st.floats(min_value=0.0, max_value=0.3),
                          min_size=len(t), max_size=len(t)))
    v = np.cumsum(steps)
    return Waveform(t, v)


@st.composite
def ramps(draw):
    arrival = draw(st.floats(min_value=1e-10, max_value=5e-9))
    slew = draw(st.floats(min_value=1e-12, max_value=2e-9))
    rising = draw(st.booleans())
    return SaturatedRamp.from_arrival_slew(arrival, slew, VDD, rising=rising)


# ----------------------------------------------------------------------
# Waveform invariants
# ----------------------------------------------------------------------
class TestWaveformProperties:
    @given(waveforms(), st.floats(min_value=-1e-9, max_value=1e-9))
    @settings(max_examples=60, deadline=None)
    def test_shift_preserves_values(self, w, dt):
        s = w.shifted(dt)
        mid = 0.5 * (w.t_start + w.t_end)
        assert s(mid + dt) == pytest.approx(w(mid), abs=1e-9)

    @given(waveforms())
    @settings(max_examples=60, deadline=None)
    def test_evaluation_bounded_by_extremes(self, w):
        ts = np.linspace(w.t_start, w.t_end, 17)
        vals = np.asarray(w(ts))
        assert np.all(vals >= w.v_min - 1e-12)
        assert np.all(vals <= w.v_max + 1e-12)

    @given(waveforms())
    @settings(max_examples=60, deadline=None)
    def test_double_polarity_reverse_is_identity(self, w):
        rr = w.reversed_polarity(VDD).reversed_polarity(VDD)
        assert np.allclose(rr.values, w.values, atol=1e-12)

    @given(monotone_rising_waveforms(), st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=60, deadline=None)
    def test_monotone_waveform_crosses_interior_level_once(self, w, frac):
        level = w.v_initial + frac * (w.v_final - w.v_initial)
        if w.v_final - w.v_initial < 1e-6:
            return  # effectively flat — nothing to cross
        hits = w.crossings(level)
        # Strictly within the span, a monotone curve crosses 1+ times and
        # all crossings collapse onto flat segments if repeated.
        assert hits.size >= 1
        assert np.all(np.diff(hits) >= 0)

    @given(waveforms())
    @settings(max_examples=60, deadline=None)
    def test_integral_additivity(self, w):
        mid = 0.5 * (w.t_start + w.t_end)
        if mid <= w.t_start or mid >= w.t_end:
            return
        total = w.integral()
        parts = w.integral(w.t_start, mid) + w.integral(mid, w.t_end)
        assert parts == pytest.approx(total, rel=1e-6, abs=1e-18)

    @given(waveforms(), st.integers(min_value=2, max_value=100))
    @settings(max_examples=60, deadline=None)
    def test_resample_endpoints_preserved(self, w, n):
        r = w.resampled(n=n)
        assert r.v_initial == pytest.approx(w.v_initial, abs=1e-12)
        assert r.v_final == pytest.approx(w.v_final, abs=1e-12)


# ----------------------------------------------------------------------
# Ramp invariants
# ----------------------------------------------------------------------
class TestRampProperties:
    @given(ramps())
    @settings(max_examples=80, deadline=None)
    def test_arrival_slew_roundtrip(self, r):
        again = SaturatedRamp.from_arrival_slew(r.arrival_time(), r.slew(), VDD,
                                                rising=r.rising)
        assert again.a == pytest.approx(r.a, rel=1e-9)
        assert again.b == pytest.approx(r.b, rel=1e-6, abs=1e-9)

    @given(ramps(), st.floats(min_value=-1e-9, max_value=1e-9))
    @settings(max_examples=80, deadline=None)
    def test_shift_moves_arrival_linearly(self, r, dt):
        assert r.shifted(dt).arrival_time() == pytest.approx(
            r.arrival_time() + dt, abs=1e-15)

    @given(ramps())
    @settings(max_examples=80, deadline=None)
    def test_clamped_evaluation_within_rails(self, r):
        ts = np.linspace(r.t_begin - 1e-9, r.t_finish + 1e-9, 33)
        vals = np.asarray(r(ts))
        assert np.all(vals >= 0.0) and np.all(vals <= VDD)

    @given(ramps())
    @settings(max_examples=80, deadline=None)
    def test_waveform_agrees_with_callable(self, r):
        w = r.to_waveform(r.t_begin - 0.5e-9, r.t_finish + 0.5e-9)
        ts = np.linspace(w.t_start, w.t_end, 17)
        assert np.allclose(np.asarray(w(ts)), np.asarray(r(ts)), atol=1e-9)


# ----------------------------------------------------------------------
# Weighted line fit invariants
# ----------------------------------------------------------------------
class TestFitProperties:
    @given(
        st.floats(min_value=-5e9, max_value=5e9).filter(lambda a: abs(a) > 1e6),
        st.floats(min_value=-5.0, max_value=5.0),
        st.integers(min_value=5, max_value=60),
    )
    @settings(max_examples=80, deadline=None)
    def test_exact_line_recovery(self, a, b, n):
        t = np.linspace(1e-9, 3e-9, n)
        v = a * t + b
        fa, fb = fit_line_weighted(t, v)
        assert fa == pytest.approx(a, rel=1e-6)
        assert fa * 2e-9 + fb == pytest.approx(a * 2e-9 + b, abs=1e-6)

    @given(st.integers(min_value=5, max_value=40),
           st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=60, deadline=None)
    def test_weight_scaling_invariance(self, n, scale):
        rng = np.random.default_rng(n)
        t = np.linspace(0.0, 1e-9, n)
        v = 1e9 * t + rng.normal(0, 0.01, n)
        w = rng.uniform(0.1, 1.0, n)
        a1, b1 = fit_line_weighted(t, v, w)
        a2, b2 = fit_line_weighted(t, v, w * scale)
        assert a1 == pytest.approx(a2, rel=1e-9)
        assert b1 == pytest.approx(b2, rel=1e-9, abs=1e-12)


# ----------------------------------------------------------------------
# NLDM table invariants
# ----------------------------------------------------------------------
@st.composite
def tables(draw):
    n_s = draw(st.integers(min_value=2, max_value=6))
    n_l = draw(st.integers(min_value=2, max_value=6))
    slews = np.cumsum(draw(st.lists(st.floats(min_value=1e-12, max_value=1e-10),
                                    min_size=n_s, max_size=n_s)))
    loads = np.cumsum(draw(st.lists(st.floats(min_value=1e-16, max_value=1e-14),
                                    min_size=n_l, max_size=n_l)))
    vals = np.array(draw(st.lists(
        st.lists(st.floats(min_value=1e-12, max_value=1e-9),
                 min_size=n_l, max_size=n_l),
        min_size=n_s, max_size=n_s)))
    return NldmTable(slews, loads, vals)


class TestNldmProperties:
    @given(tables())
    @settings(max_examples=60, deadline=None)
    def test_grid_points_exact(self, table):
        for i, s in enumerate(table.input_slews):
            for j, ld in enumerate(table.loads):
                assert table.lookup(float(s), float(ld)) == pytest.approx(
                    table.values[i, j], rel=1e-9)

    @given(tables(), st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_interior_lookup_within_cell_bounds(self, table, fs, fl):
        s = table.input_slews[0] + fs * (table.input_slews[-1] - table.input_slews[0])
        ld = table.loads[0] + fl * (table.loads[-1] - table.loads[0])
        val = table.lookup(float(s), float(ld))
        assert table.values.min() - 1e-15 <= val <= table.values.max() + 1e-15
