"""Property-based tests (hypothesis) on the core data structures.

These pin algebraic invariants that hold for *any* waveform/ramp/table,
not just the hand-picked examples of the unit tests.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.netlist import Circuit
from repro.circuit.sources import RampSource
from repro.circuit.transient import TransientJob, TransientOptions
from repro.core.ramp import SaturatedRamp
from repro.core.techniques import fit_line_weighted
from repro.core.waveform import Waveform
from repro.exec import job_key
from repro.library.nldm import NldmTable

from tests.helpers import VDD

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
# Picosecond-grid times: well separated so float operations (shifts,
# interpolation) cannot collapse adjacent samples.
times_strategy = st.lists(
    st.integers(min_value=0, max_value=10_000),
    min_size=4, max_size=40, unique=True,
).map(lambda ticks: [t * 1e-12 for t in sorted(ticks)])

voltages_strategy = st.lists(
    st.floats(min_value=-0.5, max_value=2.0, allow_nan=False),
    min_size=4, max_size=40,
)


@st.composite
def waveforms(draw):
    t = draw(times_strategy)
    v = draw(st.lists(st.floats(min_value=-0.5, max_value=2.0, allow_nan=False),
                      min_size=len(t), max_size=len(t)))
    return Waveform(t, v)


@st.composite
def monotone_rising_waveforms(draw):
    t = draw(times_strategy)
    steps = draw(st.lists(st.floats(min_value=0.0, max_value=0.3),
                          min_size=len(t), max_size=len(t)))
    v = np.cumsum(steps)
    return Waveform(t, v)


@st.composite
def ramps(draw):
    arrival = draw(st.floats(min_value=1e-10, max_value=5e-9))
    slew = draw(st.floats(min_value=1e-12, max_value=2e-9))
    rising = draw(st.booleans())
    return SaturatedRamp.from_arrival_slew(arrival, slew, VDD, rising=rising)


# ----------------------------------------------------------------------
# Waveform invariants
# ----------------------------------------------------------------------
class TestWaveformProperties:
    @given(waveforms(), st.floats(min_value=-1e-9, max_value=1e-9))
    @settings(max_examples=60, deadline=None)
    def test_shift_preserves_values(self, w, dt):
        s = w.shifted(dt)
        mid = 0.5 * (w.t_start + w.t_end)
        assert s(mid + dt) == pytest.approx(w(mid), abs=1e-9)

    @given(waveforms())
    @settings(max_examples=60, deadline=None)
    def test_evaluation_bounded_by_extremes(self, w):
        ts = np.linspace(w.t_start, w.t_end, 17)
        vals = np.asarray(w(ts))
        assert np.all(vals >= w.v_min - 1e-12)
        assert np.all(vals <= w.v_max + 1e-12)

    @given(waveforms())
    @settings(max_examples=60, deadline=None)
    def test_double_polarity_reverse_is_identity(self, w):
        rr = w.reversed_polarity(VDD).reversed_polarity(VDD)
        assert np.allclose(rr.values, w.values, atol=1e-12)

    @given(monotone_rising_waveforms(), st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=60, deadline=None)
    def test_monotone_waveform_crosses_interior_level_once(self, w, frac):
        level = w.v_initial + frac * (w.v_final - w.v_initial)
        if w.v_final - w.v_initial < 1e-6:
            return  # effectively flat — nothing to cross
        hits = w.crossings(level)
        # Strictly within the span, a monotone curve crosses 1+ times and
        # all crossings collapse onto flat segments if repeated.
        assert hits.size >= 1
        assert np.all(np.diff(hits) >= 0)

    @given(waveforms())
    @settings(max_examples=60, deadline=None)
    def test_integral_additivity(self, w):
        mid = 0.5 * (w.t_start + w.t_end)
        if mid <= w.t_start or mid >= w.t_end:
            return
        total = w.integral()
        parts = w.integral(w.t_start, mid) + w.integral(mid, w.t_end)
        assert parts == pytest.approx(total, rel=1e-6, abs=1e-18)

    @given(waveforms(), st.integers(min_value=2, max_value=100))
    @settings(max_examples=60, deadline=None)
    def test_resample_endpoints_preserved(self, w, n):
        r = w.resampled(n=n)
        assert r.v_initial == pytest.approx(w.v_initial, abs=1e-12)
        assert r.v_final == pytest.approx(w.v_final, abs=1e-12)

    @given(waveforms())
    @settings(max_examples=60, deadline=None)
    def test_resample_onto_own_grid_roundtrips_exactly(self, w):
        r = w.resampled(times=w.times)
        assert np.array_equal(r.times, w.times)
        assert np.array_equal(r.values, w.values)

    @given(waveforms(), st.floats(min_value=-1e-9, max_value=1e-9))
    @settings(max_examples=60, deadline=None)
    def test_time_axis_stays_strictly_increasing(self, w, dt):
        # Every constructor/transform output upholds the core invariant.
        for out in (w, w.shifted(dt), w.resampled(n=7), w.derivative()):
            assert np.all(np.diff(out.times) > 0)

    @given(times_strategy, st.data())
    @settings(max_examples=60, deadline=None)
    def test_non_monotone_time_axis_is_rejected(self, t, data):
        perm = data.draw(st.permutations(range(len(t))))
        shuffled = [t[i] for i in perm]
        values = [0.0] * len(t)
        if shuffled == sorted(shuffled):
            Waveform(shuffled, values)  # identity permutation: fine
        else:
            with pytest.raises(ValueError):
                Waveform(shuffled, values)

    @given(times_strategy, st.integers(min_value=0, max_value=100))
    @settings(max_examples=60, deadline=None)
    def test_duplicate_sample_time_is_rejected(self, t, pick):
        k = pick % (len(t) - 1)
        dup = t[:k + 1] + [t[k]] + t[k + 1:]
        with pytest.raises(ValueError):
            Waveform(dup, [0.0] * len(dup))

    @given(waveforms(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_resample_onto_nonuniform_superset_preserves_polyline(self, w, data):
        # Adaptive results are piecewise-linear records on non-uniform
        # axes; adding interpolated sample points (any strictly-increasing
        # superset grid) must not move the curve: original samples are
        # reproduced exactly and crossing times are unchanged.
        k = data.draw(st.integers(min_value=0, max_value=len(w.times) - 2))
        frac = data.draw(st.floats(min_value=0.25, max_value=0.75))
        extra = w.times[k] + frac * (w.times[k + 1] - w.times[k])
        grid = np.union1d(w.times, [extra])
        r = w.resampled(times=grid)
        pos = np.searchsorted(grid, w.times)
        np.testing.assert_array_equal(r.values[pos], w.values)
        level = data.draw(st.floats(min_value=-0.4, max_value=1.9))
        np.testing.assert_allclose(r.crossings(level), w.crossings(level),
                                   rtol=0, atol=1e-21)

    @given(st.floats(min_value=1e-11, max_value=1e-9),
           st.lists(st.integers(min_value=1, max_value=400),
                    min_size=4, max_size=30, unique=True))
    @settings(max_examples=60, deadline=None)
    def test_ramp_slew_invariant_on_nonuniform_axes(self, slew, ticks):
        # A saturated ramp resampled onto an arbitrary non-uniform axis
        # that covers its span keeps its measured slew and arrival: the
        # invariant the golden-grid harness relies on when comparing
        # adaptive (non-uniform) and fixed-grid records.
        w = Waveform.ramp(t_start=1e-10, slew=slew, vdd=VDD)
        span = w.t_end - w.t_start
        grid = np.union1d(w.times,
                          w.t_start + span * np.asarray(sorted(ticks)) / 401.0)
        r = w.resampled(times=grid)
        assert r.slew(VDD) == pytest.approx(w.slew(VDD), rel=1e-9, abs=1e-21)
        assert r.cross_time(VDD / 2) == pytest.approx(w.cross_time(VDD / 2),
                                                      rel=0, abs=1e-21)

    @given(st.floats(min_value=1e-12, max_value=1e-9),
           st.floats(min_value=0.0, max_value=5e-9),
           st.booleans())
    @settings(max_examples=80, deadline=None)
    def test_ramp_slew_measurement_roundtrips(self, slew, t_start, rising):
        # Band traversal of a clean saturated ramp: the measured 10-90
        # transition time recovers the constructor's slew, and the band
        # is entered before it is exited (the invariant Waveform.slew
        # enforces by raising on inverted traversals).
        w = Waveform.ramp(t_start=t_start, slew=slew, vdd=VDD, rising=rising)
        assert w.slew(VDD) == pytest.approx(slew, rel=1e-9, abs=1e-21)
        assert w.slew(VDD, mode="clean") == pytest.approx(slew, rel=1e-9, abs=1e-21)
        lo, hi = w.critical_region(VDD)
        assert hi > lo


# ----------------------------------------------------------------------
# Ramp invariants
# ----------------------------------------------------------------------
class TestRampProperties:
    @given(ramps())
    @settings(max_examples=80, deadline=None)
    def test_arrival_slew_roundtrip(self, r):
        again = SaturatedRamp.from_arrival_slew(r.arrival_time(), r.slew(), VDD,
                                                rising=r.rising)
        assert again.a == pytest.approx(r.a, rel=1e-9)
        assert again.b == pytest.approx(r.b, rel=1e-6, abs=1e-9)

    @given(ramps(), st.floats(min_value=-1e-9, max_value=1e-9))
    @settings(max_examples=80, deadline=None)
    def test_shift_moves_arrival_linearly(self, r, dt):
        assert r.shifted(dt).arrival_time() == pytest.approx(
            r.arrival_time() + dt, abs=1e-15)

    @given(ramps())
    @settings(max_examples=80, deadline=None)
    def test_clamped_evaluation_within_rails(self, r):
        ts = np.linspace(r.t_begin - 1e-9, r.t_finish + 1e-9, 33)
        vals = np.asarray(r(ts))
        assert np.all(vals >= 0.0) and np.all(vals <= VDD)

    @given(ramps())
    @settings(max_examples=80, deadline=None)
    def test_waveform_agrees_with_callable(self, r):
        w = r.to_waveform(r.t_begin - 0.5e-9, r.t_finish + 0.5e-9)
        ts = np.linspace(w.t_start, w.t_end, 17)
        assert np.allclose(np.asarray(w(ts)), np.asarray(r(ts)), atol=1e-9)


# ----------------------------------------------------------------------
# Weighted line fit invariants
# ----------------------------------------------------------------------
class TestFitProperties:
    @given(
        st.floats(min_value=-5e9, max_value=5e9).filter(lambda a: abs(a) > 1e6),
        st.floats(min_value=-5.0, max_value=5.0),
        st.integers(min_value=5, max_value=60),
    )
    @settings(max_examples=80, deadline=None)
    def test_exact_line_recovery(self, a, b, n):
        t = np.linspace(1e-9, 3e-9, n)
        v = a * t + b
        fa, fb = fit_line_weighted(t, v)
        assert fa == pytest.approx(a, rel=1e-6)
        assert fa * 2e-9 + fb == pytest.approx(a * 2e-9 + b, abs=1e-6)

    @given(st.integers(min_value=5, max_value=40),
           st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=60, deadline=None)
    def test_weight_scaling_invariance(self, n, scale):
        rng = np.random.default_rng(n)
        t = np.linspace(0.0, 1e-9, n)
        v = 1e9 * t + rng.normal(0, 0.01, n)
        w = rng.uniform(0.1, 1.0, n)
        a1, b1 = fit_line_weighted(t, v, w)
        a2, b2 = fit_line_weighted(t, v, w * scale)
        assert a1 == pytest.approx(a2, rel=1e-9)
        assert b1 == pytest.approx(b2, rel=1e-9, abs=1e-12)


# ----------------------------------------------------------------------
# NLDM table invariants
# ----------------------------------------------------------------------
@st.composite
def tables(draw):
    n_s = draw(st.integers(min_value=2, max_value=6))
    n_l = draw(st.integers(min_value=2, max_value=6))
    slews = np.cumsum(draw(st.lists(st.floats(min_value=1e-12, max_value=1e-10),
                                    min_size=n_s, max_size=n_s)))
    loads = np.cumsum(draw(st.lists(st.floats(min_value=1e-16, max_value=1e-14),
                                    min_size=n_l, max_size=n_l)))
    vals = np.array(draw(st.lists(
        st.lists(st.floats(min_value=1e-12, max_value=1e-9),
                 min_size=n_l, max_size=n_l),
        min_size=n_s, max_size=n_s)))
    return NldmTable(slews, loads, vals)


class TestNldmProperties:
    @given(tables())
    @settings(max_examples=60, deadline=None)
    def test_grid_points_exact(self, table):
        for i, s in enumerate(table.input_slews):
            for j, ld in enumerate(table.loads):
                assert table.lookup(float(s), float(ld)) == pytest.approx(
                    table.values[i, j], rel=1e-9)

    @given(tables(), st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_interior_lookup_within_cell_bounds(self, table, fs, fl):
        s = table.input_slews[0] + fs * (table.input_slews[-1] - table.input_slews[0])
        ld = table.loads[0] + fl * (table.loads[-1] - table.loads[0])
        val = table.lookup(float(s), float(ld))
        assert table.values.min() - 1e-15 <= val <= table.values.max() + 1e-15


# ----------------------------------------------------------------------
# Result-store key invariants
# ----------------------------------------------------------------------
_OPTION_VALUES = {
    "abstol": [1e-6, 2e-6, 1e-7],
    "max_newton": [40, 60, 80],
    "max_halvings": [8, 10, 12],
    "v_limit": [0.5, 0.6, 0.7],
    "backend": ["auto", "dense", "banded", "sparse"],
    "adaptive": [False, True],
    "lte_rtol": [5e-7, 1e-6, 1e-7],
    "lte_atol": [2e-7, 1e-7, 4e-7],
    "max_step": [0.0, 64e-12, 256e-12],
    "min_step": [0.0, 0.5e-12],
}
_OPTION_FIELDS = {name: st.sampled_from(values)
                  for name, values in _OPTION_VALUES.items()}


def _store_job(options: TransientOptions,
               initial: "dict[str, float] | None" = None) -> TransientJob:
    c = Circuit("rc")
    c.vsource("Vin", "a", "0", RampSource(50e-12, 100e-12, 0.0, VDD))
    c.resistor("R1", "a", "b", 1e3)
    c.capacitor("C1", "b", "0", 20e-15)
    return TransientJob(c, t_stop=0.5e-9, dt=2e-12, options=options,
                        initial_voltages=initial)


class TestStoreKeyProperties:
    @given(st.fixed_dictionaries(_OPTION_FIELDS), st.data())
    @settings(max_examples=60, deadline=None)
    def test_key_is_stable_under_option_kwarg_order(self, opts, data):
        # Construct the same TransientOptions with the kwargs supplied in
        # a permuted dict order: the key must not notice.
        perm = data.draw(st.permutations(list(opts.items())))
        a = _store_job(TransientOptions(**opts))
        b = _store_job(TransientOptions(**dict(perm)))
        assert job_key(a) == job_key(b)

    @given(st.fixed_dictionaries(_OPTION_FIELDS),
           st.sampled_from(sorted(_OPTION_FIELDS)))
    @settings(max_examples=60, deadline=None)
    def test_any_option_change_changes_the_key(self, opts, field):
        alternatives = [v for v in _OPTION_VALUES[field] if v != opts[field]]
        changed = dict(opts, **{field: alternatives[0]})
        assert job_key(_store_job(TransientOptions(**opts))) != \
            job_key(_store_job(TransientOptions(**changed)))

    @given(st.dictionaries(st.sampled_from(["a", "b"]),
                           st.floats(min_value=0.0, max_value=1.2,
                                     allow_nan=False),
                           max_size=2),
           st.data())
    @settings(max_examples=60, deadline=None)
    def test_key_is_stable_under_initial_voltage_order(self, initial, data):
        perm = data.draw(st.permutations(list(initial.items())))
        a = _store_job(TransientOptions(), initial=initial)
        b = _store_job(TransientOptions(), initial=dict(perm))
        assert job_key(a) == job_key(b)

    @given(st.fixed_dictionaries({k: v for k, v in _OPTION_FIELDS.items()
                                  if k != "adaptive"}))
    @settings(max_examples=60, deadline=None)
    def test_stepping_modes_never_alias(self, opts):
        # The store must re-key when only the stepping mode differs:
        # adaptive results live on a different grid and carry an
        # LTE-sized deviation, so replaying a fixed-grid entry for an
        # adaptive job (or vice versa) would be silent corruption.
        fixed = _store_job(TransientOptions(adaptive=False, **opts))
        adaptive = _store_job(TransientOptions(adaptive=True, **opts))
        assert job_key(fixed) != job_key(adaptive)
