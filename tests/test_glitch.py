"""Tests for the quiet-victim glitch analysis."""

import pytest

from repro.experiments.glitch import glitch_sweep, measure_glitch, worst_glitch
from repro.experiments.noise_injection import SweepTiming
from repro.experiments.setup import CONFIG_I, CONFIG_II

FAST = SweepTiming(dt=4e-12)


class TestMeasureGlitch:
    @pytest.fixture(scope="class")
    def config1_glitch(self):
        return measure_glitch(CONFIG_I, offsets=(0.0,), timing=FAST)

    def test_victim_stays_near_rail_overall(self, config1_glitch):
        # Quiet victim rests at 0 (rising-victim configuration): it must
        # start and end at the rail even though the glitch moves it.
        w = config1_glitch.v_victim
        assert w.v_initial == pytest.approx(0.0, abs=0.02)
        assert w.v_final == pytest.approx(0.0, abs=0.05)

    def test_glitch_is_substantial_in_this_regime(self, config1_glitch):
        # 100 fF coupling against ~30 fF of line capacitance: the noise
        # pulse is a large fraction of the supply.
        assert config1_glitch.peak_height > 0.1
        assert config1_glitch.width_at_half > 10e-12

    def test_receiver_attenuates_subthreshold_glitch(self, config1_glitch):
        # The Config I glitch peaks just below the device threshold, so a
        # healthy receiver must reject it almost entirely.
        assert config1_glitch.peak_height < 0.35
        assert config1_glitch.output_disturbance < 0.1 * CONFIG_I.vdd
        assert not config1_glitch.propagates(CONFIG_I.vdd)

    def test_propagation_criterion(self, config1_glitch):
        flag = config1_glitch.propagates(CONFIG_I.vdd, fraction=0.5)
        assert flag == (config1_glitch.output_disturbance > 0.6)

    def test_offset_count_validated(self):
        with pytest.raises(ValueError):
            measure_glitch(CONFIG_I, offsets=(0.0, 0.0), timing=FAST)


class TestSweep:
    def test_two_aggressors_inject_more_noise(self):
        one = measure_glitch(CONFIG_I, offsets=(0.0,), timing=FAST)
        two = measure_glitch(CONFIG_II, offsets=(0.0, 0.0), timing=FAST)
        assert two.peak_height > one.peak_height

    def test_worst_glitch_selection(self):
        sweep = glitch_sweep(CONFIG_I, n_cases=2, timing=FAST)
        worst = worst_glitch(sweep)
        assert worst.peak_height == max(m.peak_height for m in sweep)

    def test_worst_glitch_empty_rejected(self):
        with pytest.raises(ValueError):
            worst_glitch([])
